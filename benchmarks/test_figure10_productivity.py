"""Figure 10: productivity (Eq. 1), double precision, both platforms.

productivity = (time_OMP / time_model) / (lines_model / lines_OMP)
"""

import pytest

from repro.apps import ALL_APPS
from repro.core.productivity import compute_productivity
from repro.core.report import render_figure10

FIGURE_APPS = tuple(app.name for app in ALL_APPS)


@pytest.fixture(scope="module")
def productivity(study):
    return {
        apu: compute_productivity(study, ALL_APPS, apu=apu)
        for apu in (True, False)
    }


def test_compute_productivity(benchmark, study):
    result = benchmark(compute_productivity, study, ALL_APPS, True)
    assert len(result.entries) == len(ALL_APPS) * 3


def test_print_figure10(productivity):
    for apu in (True, False):
        print("\n" + render_figure10(productivity[apu], FIGURE_APPS))


class TestFigure10a:
    """APU: the emerging models give the biggest bang for the buck."""

    def test_cppamp_best_harmonic_mean(self, productivity):
        means = productivity[True].harmonic_means()
        assert means["C++ AMP"] > means["OpenCL"]

    def test_cppamp_xsbench_advantage(self, productivity):
        """'C++ AMP ... is 3x more productive for XSBench on the APU'
        (shape: a clear multiple over OpenCL)."""
        result = productivity[True]
        amp = result.get("XSBench", "C++ AMP").productivity
        ocl = result.get("XSBench", "OpenCL").productivity
        assert amp > 1.5 * ocl

    def test_emerging_models_beat_opencl_on_multiple_apps(self, productivity):
        """'The emerging programming models are more productive than
        OpenCL on multiple occasions on the APU.'"""
        result = productivity[True]
        wins = 0
        for app in FIGURE_APPS:
            ocl = result.get(app, "OpenCL").productivity
            if result.get(app, "C++ AMP").productivity > ocl:
                wins += 1
            if result.get(app, "OpenACC").productivity > ocl:
                wins += 1
        assert wins >= 3


class TestFigure10b:
    """dGPU: OpenCL's speedups justify its verbosity."""

    def test_opencl_productivity_rises_on_dgpu(self, productivity):
        apu_means = productivity[True].harmonic_means()
        dgpu_means = productivity[False].harmonic_means()
        assert dgpu_means["OpenCL"] > apu_means["OpenCL"]

    def test_opencl_competitive_on_dgpu(self, productivity):
        means = productivity[False].harmonic_means()
        assert means["OpenCL"] > 0.5 * max(means.values())


class TestEquationSanity:
    def test_all_positive(self, productivity):
        for result in productivity.values():
            for entry in result.entries:
                assert entry.productivity > 0
                assert entry.lines_ratio >= 1.0
