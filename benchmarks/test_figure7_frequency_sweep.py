"""Figure 7: normalized performance vs core and memory frequency.

Regenerates all five subplots on the paper's full 9x8 frequency grid
and asserts each application's scaling shape.
"""

import pytest

from repro.apps import ALL_APPS, APPS_BY_NAME
from repro.core.report import render_figure7
from repro.core.sweep import run_sweep
from repro.hardware.frequency import PAPER_CORE_SWEEP_MHZ, PAPER_MEMORY_SWEEP_MHZ


@pytest.fixture(scope="module")
def sweeps(sweep_cfgs):
    return {
        app.name: run_sweep(app, sweep_cfgs[app.name])
        for app in ALL_APPS
    }


def test_run_figure7_sweep(benchmark, sweep_cfgs):
    """Time one full-grid sweep (CoMD) and print all subplots."""
    app = APPS_BY_NAME["CoMD"]
    result = benchmark.pedantic(
        lambda: run_sweep(app, sweep_cfgs["CoMD"]), rounds=1, iterations=1
    )
    assert len(result.points) == len(PAPER_CORE_SWEEP_MHZ) * len(PAPER_MEMORY_SWEEP_MHZ)


def test_print_all_subplots(sweeps):
    for name in ("read-benchmark", "LULESH", "CoMD", "XSBench", "miniFE"):
        print("\n" + render_figure7(sweeps[name]))


class TestSubplotShapes:
    def test_7a_readmem_memory_scaling(self, sweeps):
        """Fig. 7a: performance scales with memory frequency; best at
        1250 MHz; core frequency does not matter."""
        sweep = sweeps["read-benchmark"]
        assert sweep.classify() == "Memory"
        best = max(p.normalized_performance for p in sweep.points)
        assert best == max(p.normalized_performance for p in sweep.series(1250))
        assert sweep.core_sensitivity() < 1.2

    def test_7b_lulesh_balanced(self, sweeps):
        """Fig. 7b: 'LULESH is a balanced application; its performance
        scales with both memory and core frequencies.'"""
        sweep = sweeps["LULESH"]
        assert sweep.classify() == "Balanced"
        assert sweep.core_sensitivity() > 1.3
        assert sweep.memory_sensitivity() > 1.3

    def test_7c_comd_core_scaling(self, sweeps):
        """Fig. 7c: 'performance of CoMD scales almost linearly with
        the increase in core frequency ... change in memory frequency
        does not affect its performance.'"""
        sweep = sweeps["CoMD"]
        assert sweep.classify() == "Compute"
        assert sweep.core_sensitivity() > 2.0
        assert sweep.memory_sensitivity() < 1.25

    def test_7d_xsbench_core_scaling_with_low_memory_caveat(self, sweeps):
        """Fig. 7d: 'steady increase in performance with the increase
        in core frequency, except at extremely low memory frequencies
        at which the memory requests are not optimally serviced.'"""
        sweep = sweeps["XSBench"]
        assert sweep.classify() == "Compute"
        assert sweep.core_sensitivity() > 1.5
        # The caveat: at the lowest memory clock, core scaling saturates
        # earlier than at the highest.
        low_memory = sweep.series(480)[-1].normalized_performance
        high_memory = sweep.series(1250)[-1].normalized_performance
        assert high_memory > 1.15 * low_memory

    def test_7e_minife_memory_scaling(self, sweeps):
        """Fig. 7e: memory-bandwidth bound once compute suffices."""
        sweep = sweeps["miniFE"]
        assert sweep.classify() == "Memory"
        assert sweep.memory_sensitivity() > 1.8

    def test_all_performances_normalized_to_slowest(self, sweeps):
        for sweep in sweeps.values():
            slowest = sweep.get(200, 480)
            assert slowest.normalized_performance == pytest.approx(1.0)
            assert max(p.normalized_performance for p in sweep.points) < 6.0
