"""Shared fixtures for the benchmark harness.

The expensive artifacts (the full comparison study, the frequency
sweeps) are computed once per session and shared by the figure
benchmarks; each benchmark then times one representative unit of work
and asserts the paper-shape properties of the shared artifact.
"""

import pytest

from repro.apps import ALL_APPS
from repro.core.configs import bench_configs, sweep_configs
from repro.core.study import run_study
from repro.hardware.specs import Precision


@pytest.fixture(scope="session")
def study():
    """The full Figures 8/9 study at bench scale (projection mode)."""
    return run_study(ALL_APPS, paper_scale=True, configs=bench_configs())


@pytest.fixture(scope="session")
def configs():
    return bench_configs()


@pytest.fixture(scope="session")
def sweep_cfgs():
    return sweep_configs()


def speedup_of(study, app, model, apu, precision=Precision.SINGLE, kernel_only=False):
    entry = study.get(app, model, apu, precision)
    return entry.kernel_speedup if kernel_only else entry.speedup
