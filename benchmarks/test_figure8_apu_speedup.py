"""Figure 8: speedup over 4-core OpenMP on the AMD A10-7850K APU.

Regenerates all five subplots in both precisions and asserts the
paper's findings: the APU levels the field — the emerging models match
(and for XSBench beat) OpenCL.
"""

import pytest

from repro.apps import ALL_APPS, APPS_BY_NAME
from repro.core.report import render_speedups
from repro.core.study import run_port
from repro.hardware.specs import Precision

from conftest import speedup_of

FIGURE_APPS = tuple(app.name for app in ALL_APPS)


def test_run_one_port(benchmark, configs):
    """Time one projected port run (CoMD OpenCL on the APU)."""
    app = APPS_BY_NAME["CoMD"]
    benchmark.pedantic(
        lambda: run_port(app, "OpenCL", True, Precision.SINGLE, configs["CoMD"], projection=True),
        rounds=1, iterations=1,
    )


def test_print_figure8(study):
    print("\n" + render_speedups(study, FIGURE_APPS, apu=True,
                                 title="Figure 8: speedup over 4-core OpenMP on the APU"))


class TestSubplot8a:
    """read-benchmark (kernel time only, as in the paper)."""

    def test_opencl_best_with_paper_ratios(self, study):
        ocl = speedup_of(study, "read-benchmark", "OpenCL", apu=True, kernel_only=True)
        amp = speedup_of(study, "read-benchmark", "C++ AMP", apu=True, kernel_only=True)
        acc = speedup_of(study, "read-benchmark", "OpenACC", apu=True, kernel_only=True)
        assert ocl / amp == pytest.approx(1.3, abs=0.25)
        assert ocl / acc == pytest.approx(2.0, abs=0.4)

    def test_magnitude_within_figure_axis(self, study):
        ocl = speedup_of(study, "read-benchmark", "OpenCL", apu=True, kernel_only=True)
        assert 1.5 < ocl < 6.0


class TestSubplot8b:
    def test_lulesh_opencl_best_amp_close(self, study):
        """'OpenCL performed the best ... Both C++ AMP and OpenACC
        achieved similar performance on the APU.'"""
        ocl = speedup_of(study, "LULESH", "OpenCL", apu=True)
        amp = speedup_of(study, "LULESH", "C++ AMP", apu=True)
        acc = speedup_of(study, "LULESH", "OpenACC", apu=True)
        assert ocl >= 0.95 * amp
        assert ocl > acc


class TestSubplot8c:
    def test_comd_openacc_worst(self, study):
        ocl = speedup_of(study, "CoMD", "OpenCL", apu=True)
        amp = speedup_of(study, "CoMD", "C++ AMP", apu=True)
        acc = speedup_of(study, "CoMD", "OpenACC", apu=True)
        assert acc < amp < ocl

    def test_comd_double_precision_collapses(self, study):
        """'1/16th [DP throughput] on the APU': DP loses to OpenMP."""
        sp = speedup_of(study, "CoMD", "OpenCL", apu=True, precision=Precision.SINGLE)
        dp = speedup_of(study, "CoMD", "OpenCL", apu=True, precision=Precision.DOUBLE)
        assert sp > 3.0
        assert dp < 1.0


class TestSubplot8d:
    def test_xsbench_cppamp_best_on_apu(self, study):
        """'C++ AMP resulted in the best performance on the APU.'"""
        for precision in (Precision.SINGLE, Precision.DOUBLE):
            amp = speedup_of(study, "XSBench", "C++ AMP", apu=True, precision=precision)
            ocl = speedup_of(study, "XSBench", "OpenCL", apu=True, precision=precision)
            acc = speedup_of(study, "XSBench", "OpenACC", apu=True, precision=precision)
            assert amp > ocl
            assert amp > acc


class TestSubplot8e:
    def test_minife_opencl_and_amp_near_openmp(self, study):
        """'OpenCL and C++ AMP just match OpenMP's performance' —
        bounded above by the shared-DRAM ceiling."""
        ocl = speedup_of(study, "miniFE", "OpenCL", apu=True, precision=Precision.DOUBLE)
        amp = speedup_of(study, "miniFE", "C++ AMP", apu=True, precision=Precision.DOUBLE)
        assert 0.8 < ocl < 2.5
        assert 0.8 < amp < 2.5

    def test_minife_openacc_slowdown(self, study):
        """'The OpenACC implementation results in a slowdown.'"""
        acc = speedup_of(study, "miniFE", "OpenACC", apu=True, precision=Precision.DOUBLE)
        assert acc < 1.0


class TestFigureWideClaims:
    def test_emerging_models_competitive_on_apu(self, study):
        """'The emerging programming models ... match performance of
        OpenCL on an APU': C++ AMP within 2x of OpenCL everywhere."""
        for app in FIGURE_APPS:
            ocl = speedup_of(study, app, "OpenCL", apu=True)
            amp = speedup_of(study, app, "C++ AMP", apu=True)
            assert amp > 0.5 * ocl, app
