"""Table I: Characteristics of Proxy Applications.

Regenerates every column — LLC miss rate (cache-simulated), IPC
(CPU-counter model), kernel counts and boundedness (frequency-sweep
classification) — and checks the paper's qualitative structure.
"""

import pytest

from repro.apps import APPS_BY_NAME, PROXY_APPS
from repro.core.characterize import (
    PAPER_TABLE1,
    characterize,
    dominant_spec,
    measure_ipc,
    measure_miss_rate,
)
from repro.core.report import render_table1


@pytest.fixture(scope="module")
def table1(configs, sweep_cfgs):
    return [
        characterize(app, configs[app.name], sweep_config=sweep_cfgs[app.name])
        for app in PROXY_APPS
    ]


def test_render_table1(benchmark, configs, sweep_cfgs, table1):
    """Time one characterization (CoMD) and print the full table."""
    app = APPS_BY_NAME["CoMD"]
    benchmark.pedantic(
        lambda: characterize(app, configs["CoMD"], sweep_config=sweep_cfgs["CoMD"]),
        rounds=1, iterations=1,
    )
    print("\n" + render_table1(table1))


class TestMissRateColumn:
    def test_ordering_matches_paper(self, table1):
        """Paper: LULESH 11% < CoMD 26% < miniFE 39% < XSBench 53%.
        We assert LULESH lowest and the gather apps well above it."""
        rates = {row.app: row.llc_miss_rate for row in table1}
        assert rates["LULESH"] == min(rates.values())
        assert rates["CoMD"] > 1.5 * rates["LULESH"]
        assert rates["XSBench"] > rates["CoMD"]
        assert rates["miniFE"] > rates["CoMD"]

    def test_magnitudes(self, table1):
        for row in table1:
            paper = PAPER_TABLE1[row.app]["miss_rate"]
            assert 0.1 * paper < row.llc_miss_rate < 2.0 * paper, row.app


class TestIPCColumn:
    def test_xsbench_below_compute_apps(self, configs):
        ipcs = {
            name: measure_ipc(APPS_BY_NAME[name], configs[name])
            for name in ("LULESH", "CoMD", "XSBench")
        }
        assert ipcs["XSBench"] < ipcs["CoMD"]
        assert ipcs["XSBench"] < ipcs["LULESH"]


class TestKernelAndBoundednessColumns:
    def test_kernel_counts(self, table1):
        counts = {row.app: row.n_kernels for row in table1}
        assert counts == {"LULESH": 28, "CoMD": 3, "XSBench": 1, "miniFE": 3}

    def test_boundedness_matches_paper(self, table1):
        for row in table1:
            assert row.boundedness == PAPER_TABLE1[row.app]["boundedness"], row.app


def test_miss_rate_measurement_is_deterministic(configs):
    app = APPS_BY_NAME["XSBench"]
    spec = dominant_spec(app, configs["XSBench"])
    assert measure_miss_rate(spec) == measure_miss_rate(spec)
