"""Table II / Table III: the hardware and toolchain inventory.

Not a measurement — a consistency benchmark: the specs the simulator
runs on must agree with every number the paper prints, and rendering
must be cheap.
"""

import pytest

from repro.core.report import render_table2, render_table3
from repro.hardware.specs import A10_7850K_CPU, A10_7850K_GPU, R9_280X, table2_rows
from repro.models.registry import table3_rows


def test_render_table2(benchmark):
    text = benchmark(render_table2)
    print("\n" + text)
    print()
    print(render_table3())
    assert "258 GB/s" in text


class TestPaperNumbers:
    def test_dgpu_column(self):
        rows = table2_rows()[0]
        assert rows["Stream Processors"] == "2048"
        assert rows["Compute Units"] == "32"
        assert rows["Core Clock Frequency"] == "925 MHz"
        assert rows["Memory Bus type"] == "GDDR5"
        assert rows["Device Memory"] == "3 GB"
        assert rows["Local Memory"] == "64 KB"
        assert rows["Peak Bandwidth"] == "258 GB/s"
        assert rows["Peak Single Precision Perf."] == "3800 GFLOPS"

    def test_apu_column(self):
        rows = table2_rows()[1]
        assert rows["Core Clock Frequency"] == "720 MHz"
        assert rows["Memory Bus type"] == "DDR3"
        assert rows["Peak Bandwidth"] == "33 GB/s"
        assert rows["Peak Single Precision Perf."] == "738 GFLOPS"

    def test_host(self):
        assert A10_7850K_CPU.cores == 4
        assert A10_7850K_CPU.clock_mhz == 3700.0

    def test_dp_ratios(self):
        assert R9_280X.dp_rate_ratio == pytest.approx(1 / 4)
        assert A10_7850K_GPU.dp_rate_ratio == pytest.approx(1 / 16)

    def test_table3(self):
        compilers = {r.model: r.compiler for r in table3_rows()}
        assert compilers["OpenCL"] == "AMD Catalyst driver v14.6"
        assert compilers["C++ AMP"] == "CLAMP v0.6.0"
        assert "PGI v14.10" in compilers["OpenACC"]
