"""Table IV: Source Lines of Code Changed Starting from Serial.

Runs the SLOCCount-equivalent over our own ports and checks the
paper's productivity ordering.
"""

from repro.apps import ALL_APPS
from repro.core.report import render_table4
from repro.sloc import PAPER_TABLE4, table4


def test_measure_table4(benchmark):
    measured = benchmark(table4, ALL_APPS)
    print("\n" + render_table4(measured, PAPER_TABLE4))
    assert set(measured) == set(PAPER_TABLE4)


class TestOrdering:
    def test_opencl_most_verbose_everywhere(self):
        for app, counts in table4(ALL_APPS).items():
            assert counts["OpenCL"] == max(counts.values()), app

    def test_openmp_least_verbose_everywhere(self):
        for app, counts in table4(ALL_APPS).items():
            assert counts["OpenMP"] == min(counts.values()), app

    def test_emerging_models_much_cheaper_than_opencl(self):
        """read-benchmark: 'OpenCL requires 4x more lines of code than
        both C++ AMP and OpenACC' (shape: a clear multiple)."""
        counts = table4(ALL_APPS)["read-benchmark"]
        assert counts["OpenCL"] >= 2 * counts["C++ AMP"]
        assert counts["OpenCL"] >= 2 * counts["OpenACC"]

    def test_lulesh_exception(self):
        """LULESH 'required almost similar number of lines of code
        across all the programming models'."""
        counts = table4(ALL_APPS)["LULESH"]
        gpu = [counts["OpenCL"], counts["C++ AMP"], counts["OpenACC"]]
        assert max(gpu) < 3 * min(gpu)

    def test_openacc_minimal_changes_on_average(self):
        """'Among all the programming models examined, OpenACC required
        minimal changes to the serial code' (of the GPU models)."""
        measured = table4(ALL_APPS)
        acc_total = sum(counts["OpenACC"] for counts in measured.values())
        amp_total = sum(counts["C++ AMP"] for counts in measured.values())
        ocl_total = sum(counts["OpenCL"] for counts in measured.values())
        assert acc_total < amp_total < ocl_total
