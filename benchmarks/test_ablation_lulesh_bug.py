"""Ablation: the CLAMP LULESH compiler bug (27 of 28 kernels).

Sec. VI-A: one LULESH kernel 'was implemented on the CPU which led to
data-transfer overhead'.  The toolchain model exposes the bug as a
knob; fixing it quantifies what the paper's C++ AMP numbers lost.
"""

import pytest

from repro.apps import APPS_BY_NAME
from repro.apps.lulesh import LuleshConfig
from repro.core.ablation import lulesh_compiler_bug_ablation
from repro.hardware.specs import Precision

LULESH = APPS_BY_NAME["LULESH"]
CONFIG = LuleshConfig(size=48, iterations=10)


@pytest.fixture(scope="module")
def ablation():
    return lulesh_compiler_bug_ablation(CONFIG, Precision.SINGLE)


@pytest.fixture(scope="module")
def buggy(ablation):
    return ablation[0]


@pytest.fixture(scope="module")
def fixed(ablation):
    return ablation[1]


def test_run_with_bug(benchmark):
    result = benchmark.pedantic(
        lambda: lulesh_compiler_bug_ablation(CONFIG, Precision.SINGLE)[0],
        rounds=1, iterations=1,
    )
    assert result.seconds > 0


class TestBugCost:
    def test_fixed_compiler_is_faster(self, buggy, fixed):
        assert fixed.seconds < buggy.seconds

    def test_bug_costs_transfers(self, buggy, fixed):
        """The CPU fallback forces its seven arrays across PCIe every
        iteration."""
        assert buggy.counters.transfer_seconds > fixed.counters.transfer_seconds
        extra_bytes = (
            buggy.counters.bytes_to_device + buggy.counters.bytes_to_host
            - fixed.counters.bytes_to_device - fixed.counters.bytes_to_host
        )
        assert extra_bytes > 0

    def test_bug_explains_large_share_of_gap_to_opencl(self, buggy, fixed):
        from repro.core.study import run_port

        opencl = run_port(LULESH, "OpenCL", False, Precision.SINGLE, CONFIG, projection=True)
        gap_with_bug = buggy.seconds / opencl.seconds
        gap_fixed = fixed.seconds / opencl.seconds
        assert gap_fixed < gap_with_bug
