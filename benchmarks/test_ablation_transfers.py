"""Ablation: explicit vs compiler-managed transfers on the dGPU.

Sec. VI-A: 'The requirement to rely on the compiler for data-transfers
was the single biggest reason for poor performance with C++ AMP and
OpenACC.'  We isolate the effect by decomposing each model's simulated
time into kernel vs transfer components on the same workload.
"""

import pytest

from repro.apps import APPS_BY_NAME
from repro.apps.lulesh import LuleshConfig
from repro.core.study import run_port
from repro.hardware.specs import Precision

LULESH = APPS_BY_NAME["LULESH"]
CONFIG = LuleshConfig(size=48, iterations=100)


@pytest.fixture(scope="module")
def runs():
    return {
        model: run_port(LULESH, model, False, Precision.SINGLE, CONFIG, projection=True)
        for model in ("OpenCL", "C++ AMP", "OpenACC")
    }


def test_run_decomposition(benchmark):
    result = benchmark.pedantic(
        lambda: run_port(LULESH, "C++ AMP", False, Precision.SINGLE, CONFIG, projection=True),
        rounds=1, iterations=1,
    )
    assert result.counters.transfer_seconds > 0


class TestTransferShares:
    def test_opencl_transfers_are_minor(self, runs):
        """Explicit staging: one upload plus per-iteration constraint
        readbacks only."""
        counters = runs["OpenCL"].counters
        assert counters.transfer_seconds < 0.5 * counters.kernel_seconds

    def test_cppamp_transfers_dominate(self, runs):
        """Per-launch write-back + the CPU-fallback round trips swamp
        the kernels."""
        counters = runs["C++ AMP"].counters
        assert counters.transfer_seconds > counters.kernel_seconds

    def test_data_region_rescues_openacc(self, runs):
        """The `acc data` region hoists OpenACC's transfers: its
        absolute transfer time sits between OpenCL's (minimal explicit
        copies) and C++ AMP's (per-launch write-backs)."""
        seconds = {
            model: runs[model].counters.transfer_seconds for model in runs
        }
        assert seconds["OpenCL"] < seconds["OpenACC"] < seconds["C++ AMP"]

    def test_bytes_moved_ordering(self, runs):
        moved = {
            model: runs[model].counters.bytes_to_device + runs[model].counters.bytes_to_host
            for model in runs
        }
        assert moved["OpenCL"] < moved["OpenACC"] < moved["C++ AMP"]


class TestKernelTimeParity:
    def test_gap_is_transfers_not_kernels(self, runs):
        """Kernel-only, C++ AMP is within ~1.6x of OpenCL; the dGPU
        loss comes from data movement (plus the fallback kernel)."""
        ratio = runs["C++ AMP"].kernel_seconds / runs["OpenCL"].kernel_seconds
        total_ratio = runs["C++ AMP"].seconds / runs["OpenCL"].seconds
        assert ratio < 2.5
        assert total_ratio > 1.5 * ratio
