"""Figure 11: optimizations allowed by each programming model."""

from repro.core.features import PAPER_FIGURE11, feature_matrix
from repro.core.report import render_figure11


def test_matrix_matches_paper(benchmark):
    matrix = benchmark(feature_matrix)
    print("\n" + render_figure11())
    assert matrix == PAPER_FIGURE11


def test_feature_counts():
    matrix = feature_matrix()
    assert sum(matrix["OpenCL"].values()) == 5
    assert sum(matrix["C++ AMP"].values()) == 3
    assert sum(matrix["OpenACC"].values()) == 1
