"""Ablation: Heterogeneous Compute (Sec. VII), 'the best of both worlds'.

HC = C++ AMP's single-source productivity + OpenCL's explicit
transfers and tuning surface.  The paper introduces it as the fix for
everything Sec. VI measured; this bench quantifies the claim on the
read-memory benchmark (the only workload with ports in all four
models) and at the lowering level for the other kernels.
"""

import pytest

from repro.apps import APPS_BY_NAME
from repro.apps.readmem import ReadMemConfig
from repro.core.study import run_port
from repro.hardware.specs import Precision
from repro.models.hc import HC_PROFILE
from repro.models.registry import PROFILES
from repro.sloc.report import measure_lines_added

READMEM = APPS_BY_NAME["read-benchmark"]
CONFIG = ReadMemConfig(size=1 << 24)


@pytest.fixture(scope="module")
def runs():
    out = {}
    for apu in (True, False):
        out[apu] = {
            model: run_port(READMEM, model, apu, Precision.SINGLE, CONFIG, projection=True)
            for model in ("OpenCL", "C++ AMP", "OpenACC", "Heterogeneous Compute")
        }
    return out


def test_run_hc(benchmark):
    result = benchmark.pedantic(
        lambda: run_port(READMEM, "Heterogeneous Compute", False, Precision.SINGLE, CONFIG, projection=True),
        rounds=1, iterations=1,
    )
    assert result.seconds > 0


class TestBestOfBothWorlds:
    def test_hc_close_to_opencl_performance(self, runs):
        """HC keeps explicit transfers: within ~15% of OpenCL end to
        end on both platforms."""
        for apu in (True, False):
            hc = runs[apu]["Heterogeneous Compute"].seconds
            ocl = runs[apu]["OpenCL"].seconds
            assert hc < 1.15 * ocl

    def test_hc_beats_emerging_models_on_dgpu(self, runs):
        hc = runs[False]["Heterogeneous Compute"].seconds
        assert hc < runs[False]["C++ AMP"].seconds
        assert hc < runs[False]["OpenACC"].seconds

    def test_hc_beats_opencl_on_apu(self, runs):
        """On the APU, HC's HSA dispatch + raw pointers skip OpenCL's
        cl_mem mapping toll."""
        assert runs[True]["Heterogeneous Compute"].seconds < runs[True]["OpenCL"].seconds

    def test_hc_productivity_close_to_cppamp(self):
        """Single source: the HC port costs far fewer changed lines
        than OpenCL's host boilerplate."""
        lines = measure_lines_added(READMEM, models=("OpenCL", "C++ AMP", "Heterogeneous Compute"))
        assert lines["Heterogeneous Compute"] < 0.8 * lines["OpenCL"]

    def test_hc_profile_has_full_capability(self):
        from repro.models.base import Capability

        assert HC_PROFILE.capabilities == Capability.all()
        assert PROFILES["Heterogeneous Compute"] is HC_PROFILE
