"""Whole-study pricing: the columnar engine vs the scalar oracle.

Runs the paper-scale comparison matrix (5 apps x 2 platforms x
2 precisions x 4 models = 80 cells) through both engines, app by app
from cold caches, asserts bit-identity at full problem size, and
records the per-app and whole-matrix speedups in ``BENCH_study.json``
(the tracked perf baseline; CI regenerates it and uploads the
artifact).  Marked ``perf`` so a plain run can deselect it.

The only wall-clock assertion is the one that must never regress: the
columnar engine may not be *slower* than pricing cell by cell.  The
headline ratio (>=10x on an idle machine) is recorded, not asserted —
CI runners are too noisy to pin it.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.apps import ALL_APPS
from repro.core.configs import bench_configs
from repro.core.study import GPU_MODELS, run_study
from repro.engine import memo

ENERGY_MODELS = ("OpenCL", "OpenACC", "OpenMP Offload")
ENERGY_PLATFORMS = ("dgpu", "v100")

pytestmark = pytest.mark.perf

BENCH_PATH = Path(
    os.environ.get(
        "BENCH_STUDY_OUT", Path(__file__).resolve().parent.parent / "BENCH_study.json"
    )
)


def test_whole_study_columnar_speedup():
    per_app = {}
    totals = {"scalar": 0.0, "vector": 0.0}
    cells = 0
    for app in ALL_APPS:
        seconds = {}
        studies = {}
        for engine in ("scalar", "vector"):
            memo.clear_caches()
            started = time.perf_counter()
            studies[engine] = run_study((app,), paper_scale=True, engine=engine)
            seconds[engine] = time.perf_counter() - started
        # Bit-identity at full paper scale, before any timing claims.
        assert studies["scalar"].complete and studies["vector"].complete
        assert [e.__dict__ for e in studies["vector"].entries] == [
            e.__dict__ for e in studies["scalar"].entries
        ], app.name
        cells += len(studies["scalar"].entries) + 4  # + the 4 baselines
        per_app[app.name] = {
            "scalar_seconds": round(seconds["scalar"], 3),
            "vector_seconds": round(seconds["vector"], 3),
            "speedup": round(seconds["scalar"] / seconds["vector"], 2),
        }
        totals["scalar"] += seconds["scalar"]
        totals["vector"] += seconds["vector"]
    memo.clear_caches()

    # The cross-vendor energy row: simulated joules are deterministic,
    # so the totals are exact contracts (benchdiff direction "equal"),
    # gated on scalar/vector energy bit-identity.
    energy = {}
    for engine in ("scalar", "vector"):
        memo.clear_caches()
        energy[engine] = run_study(
            ALL_APPS, configs=bench_configs(),
            models=ENERGY_MODELS, platforms=ENERGY_PLATFORMS, engine=engine,
        )
    assert [(e.joules, e.edp) for e in energy["vector"].entries] == [
        (e.joules, e.edp) for e in energy["scalar"].entries
    ]
    memo.clear_caches()

    doc = {
        "matrix": {
            "apps": [app.name for app in ALL_APPS],
            "models": ["OpenMP", *GPU_MODELS],
            "platforms": 2,
            "precisions": 2,
        },
        "cells": cells,
        "scalar_seconds": round(totals["scalar"], 3),
        "vector_seconds": round(totals["vector"], 3),
        "speedup": round(totals["scalar"] / totals["vector"], 2),
        "per_app": per_app,
        "identical": True,  # the assertions above gate writing this file
        "energy": {
            "models": list(ENERGY_MODELS),
            "platforms": list(ENERGY_PLATFORMS),
            "total_joules": round(
                sum(e.joules for e in energy["scalar"].entries), 3
            ),
            "total_edp": round(sum(e.edp for e in energy["scalar"].entries), 6),
            "identical": True,  # gated by the joules/edp assertion above
        },
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    print(f"\n{'app':16s} {'scalar':>10s} {'vector':>10s} {'ratio':>7s}")
    for name, row in per_app.items():
        print(
            f"{name:16s} {row['scalar_seconds']:8.2f} s {row['vector_seconds']:8.2f} s "
            f"{row['speedup']:6.1f}x"
        )
    print(
        f"{'TOTAL':16s} {totals['scalar']:8.2f} s {totals['vector']:8.2f} s "
        f"{totals['scalar'] / totals['vector']:6.1f}x"
    )
    assert totals["vector"] < totals["scalar"], doc
