"""Microbenchmark: scalar vs vectorized cache replay, per access kind.

Times one characterization-sized replay of every
:class:`~repro.engine.kernel.AccessKind` through both engines and
prints the ratio table.  Marked ``perf`` so a plain run can deselect it
(``pytest benchmarks -m 'not perf'``); the assertions only pin
bit-identity, never wall time, so the suite stays green on slow
machines.
"""

import time

import pytest

from repro.engine.kernel import AccessKind, AccessPattern
from repro.engine.trace import generate_trace, make_replay_cache, scaled_cache_spec
from repro.hardware.specs import R9_280X

pytestmark = pytest.mark.perf

BUDGET = 100_000


def make_pattern(kind: AccessKind) -> AccessPattern:
    overrides = {"table_entries": 700_000} if kind is AccessKind.BINARY_SEARCH else {}
    return AccessPattern(
        kind=kind, working_set_bytes=64 * 1024 * 1024, request_bytes=4,
        reuse_fraction=0.3, **overrides,
    )


def replay_once(engine: str, spec, trace):
    cache = make_replay_cache(spec, engine)
    cache.replay(trace[: len(trace) // 4])
    return cache.replay(trace)


@pytest.mark.parametrize("kind", list(AccessKind))
def test_vector_engine_speedup(benchmark, kind):
    """Benchmark the vector engine; cross-check the scalar reference."""
    pattern = make_pattern(kind)
    spec, _ = scaled_cache_spec(pattern, R9_280X.l2_cache)
    trace = generate_trace(pattern, budget=BUDGET)
    expected = replay_once("scalar", spec, trace)
    stats = benchmark.pedantic(
        lambda: replay_once("vector", spec, trace), rounds=3, iterations=1
    )
    assert stats == expected


def test_ratio_table():
    """Print the per-kind scalar/vector ratio table (run with -s)."""
    rows = []
    for kind in AccessKind:
        pattern = make_pattern(kind)
        spec, _ = scaled_cache_spec(pattern, R9_280X.l2_cache)
        trace = generate_trace(pattern, budget=BUDGET)
        timings = {}
        results = {}
        for engine in ("scalar", "vector"):
            best = float("inf")
            for _ in range(2):
                started = time.perf_counter()
                results[engine] = replay_once(engine, spec, trace)
                best = min(best, time.perf_counter() - started)
            timings[engine] = best
        assert results["scalar"] == results["vector"]
        rows.append((kind.value, timings["scalar"], timings["vector"]))
    print(f"\n{'kind':14s} {'scalar':>10s} {'vector':>10s} {'ratio':>7s}")
    for kind, scalar_s, vector_s in rows:
        print(f"{kind:14s} {scalar_s * 1e3:8.1f} ms {vector_s * 1e3:8.1f} ms "
              f"{scalar_s / vector_s:6.1f}x")
    total_scalar = sum(r[1] for r in rows)
    total_vector = sum(r[2] for r in rows)
    print(f"{'TOTAL':14s} {total_scalar * 1e3:8.1f} ms {total_vector * 1e3:8.1f} ms "
          f"{total_scalar / total_vector:6.1f}x")
    assert total_vector < total_scalar
