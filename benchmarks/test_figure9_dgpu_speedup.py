"""Figure 9: speedup over 4-core OpenMP on the AMD Radeon R9 280X.

Regenerates all five subplots in both precisions and asserts the
paper's headline: OpenCL wins on the discrete GPU because explicit
transfers beat compiler-managed ones.
"""

import pytest

from repro.apps import ALL_APPS, APPS_BY_NAME
from repro.core.report import render_speedups
from repro.core.study import run_port
from repro.hardware.specs import Precision

from conftest import speedup_of

FIGURE_APPS = tuple(app.name for app in ALL_APPS)


def test_run_one_port(benchmark, configs):
    """Time one projected port run (LULESH OpenCL on the dGPU)."""
    app = APPS_BY_NAME["LULESH"]
    benchmark.pedantic(
        lambda: run_port(app, "OpenCL", False, Precision.SINGLE, configs["LULESH"], projection=True),
        rounds=1, iterations=1,
    )


def test_print_figure9(study):
    print("\n" + render_speedups(study, FIGURE_APPS, apu=False,
                                 title="Figure 9: speedup over 4-core OpenMP on the dGPU"))


class TestSubplot9a:
    def test_readmem_kernel_ratios(self, study):
        ocl = speedup_of(study, "read-benchmark", "OpenCL", apu=False, kernel_only=True)
        amp = speedup_of(study, "read-benchmark", "C++ AMP", apu=False, kernel_only=True)
        acc = speedup_of(study, "read-benchmark", "OpenACC", apu=False, kernel_only=True)
        assert ocl / amp == pytest.approx(1.3, abs=0.25)
        assert ocl / acc == pytest.approx(2.0, abs=0.4)

    def test_readmem_magnitude_fits_figure_axis(self, study):
        """Fig. 9a's axis runs to 30; OpenCL lands in the twenties."""
        ocl = speedup_of(study, "read-benchmark", "OpenCL", apu=False, kernel_only=True)
        assert 12 < ocl < 32

    def test_order_of_magnitude_vs_apu(self, study):
        """'An order of magnitude more bandwidth available on the
        discrete GPU.'"""
        dgpu = speedup_of(study, "read-benchmark", "OpenCL", apu=False, kernel_only=True)
        apu = speedup_of(study, "read-benchmark", "OpenCL", apu=True, kernel_only=True)
        assert 5 < dgpu / apu < 13


class TestSubplot9b:
    def test_lulesh_cppamp_worst_from_compiler_bug(self, study):
        """'C++ AMP performed poorly because we were able to implement
        only 27 out of the 28 kernels on the GPU.'"""
        ocl = speedup_of(study, "LULESH", "OpenCL", apu=False)
        amp = speedup_of(study, "LULESH", "C++ AMP", apu=False)
        acc = speedup_of(study, "LULESH", "OpenACC", apu=False)
        assert amp < acc < ocl
        assert amp < 0.35 * ocl


class TestSubplot9c:
    def test_comd_opencl_dominates(self, study):
        """Fig. 9c: OpenCL's hand-tuned, LDS-tiled force kernel wins
        big (58.75x in the paper; same ballpark here)."""
        ocl = speedup_of(study, "CoMD", "OpenCL", apu=False)
        assert 20 < ocl < 90

    def test_comd_ordering_and_dp_gap(self, study):
        ocl_sp = speedup_of(study, "CoMD", "OpenCL", apu=False)
        amp_sp = speedup_of(study, "CoMD", "C++ AMP", apu=False)
        acc_sp = speedup_of(study, "CoMD", "OpenACC", apu=False)
        assert acc_sp < amp_sp < ocl_sp
        ocl_dp = speedup_of(study, "CoMD", "OpenCL", apu=False, precision=Precision.DOUBLE)
        assert ocl_dp < 0.6 * ocl_sp  # 1/4 DP rate shows clearly


class TestSubplot9d:
    def test_xsbench_opencl_up_to_2x_better(self, study):
        """'The OpenCL implementation performed the best with an
        improvement of up to 2x over the other programming models.'"""
        ocl = speedup_of(study, "XSBench", "OpenCL", apu=False, precision=Precision.DOUBLE)
        amp = speedup_of(study, "XSBench", "C++ AMP", apu=False, precision=Precision.DOUBLE)
        acc = speedup_of(study, "XSBench", "OpenACC", apu=False, precision=Precision.DOUBLE)
        assert ocl > amp > acc
        assert ocl / acc == pytest.approx(2.0, abs=0.7)

    def test_xsbench_magnitude_fits_axis(self, study):
        """Fig. 9d's axis runs to 10."""
        ocl = speedup_of(study, "XSBench", "OpenCL", apu=False, precision=Precision.DOUBLE)
        assert 2 < ocl < 10


class TestSubplot9e:
    def test_minife_scales_with_bandwidth(self, study):
        """'Both OpenCL and C++ AMP implementations scale with improved
        memory bandwidth on the discrete GPU.'"""
        for model in ("OpenCL", "C++ AMP"):
            dgpu = speedup_of(study, "miniFE", model, apu=False, precision=Precision.DOUBLE)
            apu = speedup_of(study, "miniFE", model, apu=True, precision=Precision.DOUBLE)
            assert dgpu > 3 * apu, model

    def test_minife_openacc_slowest(self, study):
        ocl = speedup_of(study, "miniFE", "OpenACC", apu=False, precision=Precision.DOUBLE)
        assert ocl < speedup_of(study, "miniFE", "C++ AMP", apu=False, precision=Precision.DOUBLE)
        assert ocl < speedup_of(study, "miniFE", "OpenCL", apu=False, precision=Precision.DOUBLE)


class TestFigureWideClaims:
    def test_opencl_wins_every_app_on_dgpu(self, study):
        """'On a discrete GPU, OpenCL performs substantially better
        than both OpenACC and C++ AMP.'"""
        for app in FIGURE_APPS:
            ocl = speedup_of(study, app, "OpenCL", apu=False)
            for other in ("C++ AMP", "OpenACC"):
                assert ocl > speedup_of(study, app, other, apu=False), (app, other)

    def test_performance_portability_of_emerging_models(self, study):
        """'The performance improvement in all cases when moved from
        APU to discrete GPU' for the unmodified emerging-model codes.
        Kernel-level comparison, as the paper's portability argument is
        about the generated device code (its transfer costs are the
        separately-discussed dGPU weakness)."""
        for app in FIGURE_APPS:
            for model in ("C++ AMP", "OpenACC"):
                dgpu = speedup_of(study, app, model, apu=False, kernel_only=True)
                apu = speedup_of(study, app, model, apu=True, kernel_only=True)
                assert dgpu > apu, (app, model)
