"""Ablation: C++ AMP tiling (tile_static) on the CoMD force kernel.

Sec. VI-C: 'exposing parallelism in the form of tiles improved the
performance of CoMD by almost 3x.'  We lower the same force kernel
through the CLAMP profile with and without the LDS capability and
price it on both devices.
"""

import dataclasses

import pytest

from repro.apps.comd import CoMDConfig, kernel_specs
from repro.engine.timing import time_gpu_kernel
from repro.hardware.device import make_apu_platform, make_dgpu_platform
from repro.hardware.specs import Precision
from repro.models.base import Capability
from repro.models.cppamp.compiler import CPPAMP_PROFILE

#: CLAMP without tiling: LDS and the tile barrier are unavailable.
UNTILED_PROFILE = dataclasses.replace(
    CPPAMP_PROFILE,
    capabilities=CPPAMP_PROFILE.capabilities & ~(Capability.LDS | Capability.FINE_SYNC),
)

CONFIG = CoMDConfig(nx=24, ny=24, nz=24, steps=1)


def force_spec():
    return kernel_specs(CONFIG, Precision.SINGLE)["comd.lj_force"]


def time_with(profile, platform):
    lowered = profile.lower(force_spec())
    return time_gpu_kernel(lowered, platform.gpu, Precision.SINGLE).seconds


def test_tiled_lowering(benchmark):
    platform = make_dgpu_platform()
    seconds = benchmark(time_with, CPPAMP_PROFILE, platform)
    assert seconds > 0


class TestTilingEffect:
    def test_tiling_speeds_up_comd_force(self):
        """The tiled lowering must clearly beat the untiled one (the
        paper measured ~3x end-to-end)."""
        platform = make_dgpu_platform()
        tiled = time_with(CPPAMP_PROFILE, platform)
        untiled = time_with(UNTILED_PROFILE, platform)
        assert 1.3 < untiled / tiled < 5.0

    def test_tiling_helps_on_apu_too(self):
        platform = make_apu_platform()
        tiled = time_with(CPPAMP_PROFILE, platform)
        untiled = time_with(UNTILED_PROFILE, platform)
        assert untiled > tiled

    def test_untiled_lowering_reports_fallback(self):
        lowered = UNTILED_PROFILE.lower(force_spec())
        assert not lowered.uses_lds
        assert any("LDS" in note for note in lowered.notes)

    def test_untiled_moves_more_dram_traffic(self):
        tiled = CPPAMP_PROFILE.lower(force_spec())
        untiled = UNTILED_PROFILE.lower(force_spec())
        cache = make_dgpu_platform().gpu.spec.l2_cache.size_bytes
        assert untiled.dram_traffic_bytes(cache) > 1.5 * tiled.dram_traffic_bytes(cache)
