#!/usr/bin/env python
"""Porting walkthrough: the read-memory benchmark in four models.

Section III of the paper introduces each programming model by porting
the same micro-benchmark.  This example does the same against the
simulated runtimes, showing exactly the API shapes the paper's
pseudocode figures show — and then measures what Table IV measures:
how many lines each port took.

Run:
    python examples/porting_walkthrough.py
"""

import numpy as np

from repro import ExecutionContext, Precision, make_dgpu_platform
from repro.apps.readmem import BLOCK_SIZE, ReadMemConfig, make_input, read_gpu_kernel, read_kernel_spec
from repro.models import cppamp as amp
from repro.models import opencl as cl
from repro.models.openacc import OpenACC
from repro.models.openmp import OpenMP
from repro.sloc import measure_lines_added
from repro.apps import APPS_BY_NAME

config = ReadMemConfig(size=1 << 20)
spec = read_kernel_spec(config, Precision.SINGLE)


def fresh():
    ctx = ExecutionContext(platform=make_dgpu_platform(), precision=Precision.SINGLE)
    data = make_input(config, Precision.SINGLE)
    out = np.zeros(config.n_blocks, dtype=np.float32)
    return ctx, data, out


# --- OpenMP (Figure 3b): one pragma ----------------------------------
ctx, data, out = fresh()
omp = OpenMP(ctx, num_threads=4)
omp.parallel_for(read_gpu_kernel, spec, arrays=[data, out], scalars=[BLOCK_SIZE])
print(f"OpenMP    {omp.simulated_seconds * 1e6:9.1f} us   sum={out.sum():.2f}")

# --- OpenCL (Figure 4): the full host-side ceremony -------------------
ctx, data, out = fresh()
platform = cl.get_platforms(ctx)[0]
device = next(d for d in platform.get_devices() if d.is_gpu)
context = cl.Context(ctx, [device])
queue = cl.CommandQueue(context, device)
program = cl.Program(context).build()
in_cl = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=data.nbytes)
out_cl = cl.Buffer(context, cl.MemFlags.WRITE_ONLY, hostbuf=out)
queue.enqueue_write_buffer(in_cl, data)
kernel = program.create_kernel("read", read_gpu_kernel, spec)
kernel.set_args(in_cl, out_cl, BLOCK_SIZE)
queue.enqueue_nd_range_kernel(kernel, config.n_blocks, 256)
queue.enqueue_read_buffer(out_cl, out)
print(f"OpenCL    {queue.finish() * 1e6:9.1f} us   sum={out.sum():.2f}")

# --- C++ AMP (Figure 6): array_view + parallel_for_each ---------------
ctx, data, out = fresh()
rt = amp.AmpRuntime(ctx)
in_view = amp.array_view(rt, data)
out_view = amp.array_view(rt, out)
out_view.discard_data()
rt.parallel_for_each(
    amp.extent(config.n_blocks), read_gpu_kernel, spec,
    views=[in_view, out_view], scalars=[BLOCK_SIZE], writes=[out_view],
)
out_view.synchronize()
print(f"C++ AMP   {rt.simulated_seconds * 1e6:9.1f} us   sum={out.sum():.2f}")

# --- OpenACC (Figure 5): one annotated loop ---------------------------
ctx, data, out = fresh()
acc = OpenACC(ctx)
acc.kernels_loop(
    read_gpu_kernel, spec, arrays=[data, out], scalars=[BLOCK_SIZE],
    writes=[out], gang=config.n_blocks // BLOCK_SIZE, vector=BLOCK_SIZE,
)
print(f"OpenACC   {acc.simulated_seconds * 1e6:9.1f} us   sum={out.sum():.2f}")

# --- what each port cost, in lines (Table IV's measurement) -----------
print("\nLines added to port the serial code (SLOCCount-equivalent):")
for model, lines in measure_lines_added(APPS_BY_NAME["read-benchmark"]).items():
    print(f"  {model:10s} {lines:4d}")
