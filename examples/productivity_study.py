#!/usr/bin/env python
"""Productivity study: regenerate Figures 8, 9 and 10 end to end.

Runs the full comparison (five workloads x three GPU models x two
platforms x two precisions) at reduced paper scale in projection mode,
then computes the paper's productivity metric (Eq. 1).

Run:
    python examples/productivity_study.py          # a couple of minutes
"""

from repro import ALL_APPS, Precision, bench_configs, compute_productivity, run_study
from repro.core.report import render_figure10, render_speedups

FIGURE_APPS = tuple(app.name for app in ALL_APPS)

print("running the apps x models x platforms x precisions study ...\n")
study = run_study(ALL_APPS, paper_scale=True, configs=bench_configs())

print(render_speedups(study, FIGURE_APPS, apu=True,
                      title="Figure 8: speedup over 4-core OpenMP on the APU"))
print()
print(render_speedups(study, FIGURE_APPS, apu=False,
                      title="Figure 9: speedup over 4-core OpenMP on the dGPU"))
print()

for apu in (True, False):
    productivity = compute_productivity(study, ALL_APPS, apu=apu)
    print(render_figure10(productivity, FIGURE_APPS))
    means = productivity.harmonic_means()
    best = max(means, key=means.get)
    print(f"-> most productive model here: {best}\n")

print("The paper's conclusion, reproduced: the emerging models win the")
print("productivity contest on the APU; OpenCL's dGPU speedups justify")
print("its verbosity there.")
