#!/usr/bin/env python
"""Sedov blast: run the LULESH hydrodynamics and watch the shock.

Uses the LULESH substrate directly (no programming-model layer): the
same 28-kernel Lagrange schedule the ports launch, driven serially,
with the physics observable — shock radius, energy partition, the
adaptive time step.

Run:
    python examples/sedov_blast.py
"""

import numpy as np

from repro import Precision
from repro.apps.lulesh import LuleshConfig, make_state, run_iteration
from repro.apps.lulesh.physics import E_ZERO

config = LuleshConfig(size=12, iterations=60)
state = make_state(config, Precision.DOUBLE)
initial_energy = E_ZERO * config.spacing**3

print(f"Sedov blast on a {config.size}^3 Lagrangian hex mesh")
print(f"blast energy deposited in the origin element: {E_ZERO:.3e}\n")
print(f"{'iter':>4s} {'time':>12s} {'dt':>12s} {'shock radius':>13s} "
      f"{'internal %':>10s} {'kinetic %':>9s} {'E drift %':>9s}")

for iteration in range(1, config.iterations + 1):
    run_iteration(state)
    if iteration % 10 == 0 or iteration == 1:
        # Shock front: outermost element whose energy is significant.
        hot = np.argwhere(state.e > 1e-4 * E_ZERO)
        radius = 0.0
        if len(hot):
            radius = float(np.max(np.linalg.norm((hot + 0.5) * config.spacing, axis=1)))
        internal = float((state.e * state.elem_mass).sum())
        kinetic = 0.5 * float(
            (state.nodal_mass * (state.xd**2 + state.yd**2 + state.zd**2)).sum()
        )
        total = internal + kinetic
        drift = 100.0 * (total - initial_energy) / initial_energy
        print(
            f"{iteration:4d} {state.time:12.4e} {state.dt:12.4e} {radius:13.4f} "
            f"{100 * internal / total:9.1f}% {100 * kinetic / total:8.1f}% {drift:8.2f}%"
        )

print("\nThe shock expands, internal energy converts to kinetic energy,")
print("and the Courant condition throttles dt as the sound speed rises.")
