#!/usr/bin/env python
"""Heterogeneous Compute: overlap transfers with kernels (Sec. VII).

The paper's closing section argues HC's explicit *asynchronous*
transfers fix the emerging models' biggest discrete-GPU weakness.
This example processes the XSBench lookup stream in chunks three ways:

1. C++ AMP style — runtime-managed transfers, results written back
   after every launch;
2. HC synchronous — explicit copies, but serialized with the kernels;
3. HC double-buffered — chunk i+1's upload rides the DMA stream while
   chunk i computes.

Run:
    python examples/hc_overlap.py
"""

import numpy as np

from repro import ExecutionContext, Precision, make_dgpu_platform
from repro.apps.xsbench import XSBenchConfig, lookup_kernel_spec, make_data, xs_lookup
from repro.apps.xsbench.reference import N_XS
from repro.models import cppamp as amp
from repro.models.hc import HCRuntime

config = XSBenchConfig(n_nuclides=68, n_gridpoints=2000, n_lookups=1_000_000)
precision = Precision.DOUBLE
N_CHUNKS = 8

print(f"XSBench: {config.n_lookups:,} lookups, "
      f"{config.table_bytes(precision) / 1e6:.0f} MB table, {N_CHUNKS} chunks\n")


def fresh():
    ctx = ExecutionContext(
        platform=make_dgpu_platform(), precision=precision, execute_kernels=False
    )
    data = make_data(config, precision)
    macro = np.zeros((config.n_lookups, N_XS), dtype=ctx.dtype)
    return ctx, data, macro


def chunks_of(data, macro):
    return list(zip(
        np.array_split(data.lookup_energy, N_CHUNKS),
        np.array_split(data.lookup_material, N_CHUNKS),
        np.array_split(macro, N_CHUNKS),
    ))


def table_arrays(data):
    return [data.union_energy, data.union_index, data.material_nuclides,
            data.material_density, data.material_n, data.nuclide_energy,
            data.nuclide_xs]


# --- 1. C++ AMP: the runtime owns the transfer schedule ---------------
ctx, data, macro = fresh()
rt = amp.AmpRuntime(ctx)
table_views = [amp.array_view(rt, a) for a in table_arrays(data)]
for e_chunk, m_chunk, out_chunk in chunks_of(data, macro):
    e_view, m_view = amp.array_view(rt, e_chunk), amp.array_view(rt, m_chunk)
    out_view = amp.array_view(rt, out_chunk)
    out_view.discard_data()
    spec = lookup_kernel_spec(config, precision, n_lookups=len(e_chunk))
    rt.parallel_for_each(amp.extent(len(e_chunk)), xs_lookup, spec,
                         views=[e_view, m_view, *table_views, out_view],
                         writes=[out_view])
    out_view.synchronize()
amp_seconds = rt.simulated_seconds

# --- 2. HC, synchronous copies -----------------------------------------
ctx, data, macro = fresh()
hc = HCRuntime(ctx)
table = table_arrays(data)
for a in table:
    hc.copy_to_device(a)
for e_chunk, m_chunk, out_chunk in chunks_of(data, macro):
    hc.copy_to_device(e_chunk)
    hc.copy_to_device(m_chunk)
    hc.copy_to_device(out_chunk)
    spec = lookup_kernel_spec(config, precision, n_lookups=len(e_chunk))
    hc.launch(xs_lookup, spec, arrays=[e_chunk, m_chunk, *table, out_chunk])
    hc.copy_to_host(out_chunk)
hc_sync_seconds = hc.finish()

# --- 3. HC, double-buffered async prefetch ----------------------------
ctx, data, macro = fresh()
hc = HCRuntime(ctx)
table = table_arrays(data)
for a in table:
    hc.async_copy_to_device(a)
parts = chunks_of(data, macro)
# Prefetch the first chunk's inputs behind the table upload.
hc.async_copy_to_device(parts[0][0])
hc.async_copy_to_device(parts[0][1])
hc.async_copy_to_device(parts[0][2])
for i, (e_chunk, m_chunk, out_chunk) in enumerate(parts):
    if i + 1 < len(parts):
        hc.async_copy_to_device(parts[i + 1][0])
        hc.async_copy_to_device(parts[i + 1][1])
        hc.async_copy_to_device(parts[i + 1][2])
    spec = lookup_kernel_spec(config, precision, n_lookups=len(e_chunk))
    hc.launch(xs_lookup, spec, arrays=[e_chunk, m_chunk, *table, out_chunk])
    hc.copy_to_host(out_chunk)
hc_async_seconds = hc.finish()

print(f"C++ AMP (runtime-managed transfers): {amp_seconds * 1e3:8.1f} ms")
print(f"HC, synchronous explicit copies:     {hc_sync_seconds * 1e3:8.1f} ms"
      f"   ({amp_seconds / hc_sync_seconds:.2f}x vs AMP)")
print(f"HC, double-buffered async copies:    {hc_async_seconds * 1e3:8.1f} ms"
      f"   ({amp_seconds / hc_async_seconds:.2f}x vs AMP)")
print("\nExplicit transfers close most of the gap; overlapping them with")
print("kernel execution (the Sec. VII feature) buys the rest.")
