#!/usr/bin/env python
"""Frequency characterization: classify a workload like Figure 7.

Sweeps the discrete GPU's core clock (200-1000 MHz) and memory clock
(480-1250 MHz) for two contrasting workloads and prints the normalized-
performance grid plus the boundedness classification the paper derives
from it (Table I's last column).

Run:
    python examples/frequency_characterization.py
"""

from repro import APPS_BY_NAME, run_sweep, sweep_configs
from repro.core.report import render_figure7

configs = sweep_configs()

for name in ("CoMD", "miniFE"):
    app = APPS_BY_NAME[name]
    sweep = run_sweep(app, configs[name])
    print(render_figure7(sweep))
    print(
        f"core sensitivity:   {sweep.core_sensitivity():.2f}x "
        f"(speedup from the core-clock sweep at max memory clock)"
    )
    print(
        f"memory sensitivity: {sweep.memory_sensitivity():.2f}x "
        f"(speedup from the memory-clock sweep at max core clock)"
    )
    print(f"classification:     {sweep.classify()}-bound\n")

print("CoMD rides the core clock (LJ force arithmetic); miniFE rides")
print("the memory clock (SpMV streams the matrix) — Figures 7c and 7e.")
