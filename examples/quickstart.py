#!/usr/bin/env python
"""Quickstart: run one workload under every programming model.

Reproduces the core measurement of the paper on the CoMD molecular-
dynamics proxy: how do OpenCL, C++ AMP and OpenACC compare against the
4-core OpenMP baseline on an APU and on a discrete GPU?

Run:
    python examples/quickstart.py
"""

from repro import APPS_BY_NAME, Precision, make_apu_platform, make_dgpu_platform
from repro.apps.comd import CoMDConfig

comd = APPS_BY_NAME["CoMD"]

# A small functional run: the NumPy physics really executes, and the
# simulator prices every kernel launch and transfer on the platform.
config = CoMDConfig(nx=8, ny=8, nz=8, steps=3)

print(f"CoMD: {config.n_atoms} atoms, {config.steps} velocity-Verlet steps")
print(f"{'platform':6s} {'model':10s} {'simulated time':>16s} {'vs OpenMP':>10s} {'energy':>14s}")

for platform_name, make_platform in (("APU", make_apu_platform), ("dGPU", make_dgpu_platform)):
    baseline = comd.run("OpenMP", make_platform(), Precision.SINGLE, config)
    for model in ("OpenMP", "OpenCL", "C++ AMP", "OpenACC"):
        result = comd.run(model, make_platform(), Precision.SINGLE, config)
        print(
            f"{platform_name:6s} {model:10s} {result.seconds * 1e3:13.3f} ms "
            f"{baseline.seconds / result.seconds:9.2f}x {result.checksum:14.2f}"
        )
    print()

print("Every model computes the same physics (identical energies);")
print("what differs is the simulated cost of how each one got there.")
