"""Shared test helpers."""

import json
from pathlib import Path

import pytest

from repro.hardware.device import make_platform
from repro.hardware.specs import Precision
from repro.models.base import ExecutionContext

GOLDEN_DIR = Path(__file__).parent / "goldens"


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden snapshots under tests/goldens/ from "
        "the current model output instead of diffing against them",
    )


@pytest.fixture
def golden(request):
    """Compare (or with ``--regen-goldens``, rewrite) a JSON snapshot.

    Usage: ``golden("name", payload)`` — payload must be JSON-safe.
    """
    regen = request.config.getoption("--regen-goldens")

    def check(name: str, payload):
        path = GOLDEN_DIR / f"{name}.json"
        rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if regen:
            path.write_text(rendered)
            return
        assert path.exists(), (
            f"golden {path} missing — run pytest --regen-goldens to create it"
        )
        expected = json.loads(path.read_text())
        mismatches = _diff_golden(expected, json.loads(rendered))
        assert not mismatches, (
            f"golden {name} drifted at {mismatches[:10]} — inspect the "
            f"diff, and if the change is intended run pytest --regen-goldens"
        )

    return check


def _diff_golden(expected, actual, path="$", rel=1e-9):
    """Recursive comparison with a tiny float tolerance (libm's last
    ulp may differ across platforms; anything larger is real drift)."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        bad = []
        for key in expected.keys() | actual.keys():
            if key not in expected or key not in actual:
                bad.append(f"{path}.{key} (missing)")
            else:
                bad.extend(_diff_golden(expected[key], actual[key], f"{path}.{key}", rel))
        return bad
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            return [f"{path} (length {len(expected)} != {len(actual)})"]
        bad = []
        for i, (e, a) in enumerate(zip(expected, actual)):
            bad.extend(_diff_golden(e, a, f"{path}[{i}]", rel))
        return bad
    if isinstance(expected, float) or isinstance(actual, float):
        if actual == pytest.approx(expected, rel=rel, abs=1e-300):
            return []
        return [f"{path} ({expected!r} != {actual!r})"]
    return [] if expected == actual else [f"{path} ({expected!r} != {actual!r})"]


def project(app, model, apu, precision, config):
    """Run one port in projection mode (paper-scale pricing, numerics
    skipped) — used by shape assertions that need saturated devices."""
    ctx = ExecutionContext(
        platform=make_platform(apu=apu), precision=precision, execute_kernels=False
    )
    return app.ports[model](ctx, config)
