"""Shared test helpers."""

from repro.hardware.device import make_platform
from repro.hardware.specs import Precision
from repro.models.base import ExecutionContext


def project(app, model, apu, precision, config):
    """Run one port in projection mode (paper-scale pricing, numerics
    skipped) — used by shape assertions that need saturated devices."""
    ctx = ExecutionContext(
        platform=make_platform(apu=apu), precision=precision, execute_kernels=False
    )
    return app.ports[model](ctx, config)
