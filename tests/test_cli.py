"""CLI smoke tests (the cheap subcommands end to end)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        names = set(subparsers.choices)
        assert {"table1", "table2", "table4", "figure7", "figure8", "figure9",
                "figure10", "figure11", "ablation", "export", "all"} <= names

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure7_app_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure7", "--app", "nope"])


class TestExecution:
    def test_figure11(self, capsys):
        assert main(["figure11"]) == 0
        out = capsys.readouterr().out
        assert "OpenACC" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "258 GB/s" in out
        assert "PGI v14.10" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        assert "read-benchmark" in capsys.readouterr().out

    def test_ablation(self, capsys):
        assert main(["ablation", "--app", "read-benchmark"]) == 0
        out = capsys.readouterr().out
        assert "Transfer decomposition" in out
        assert "OpenCL" in out
