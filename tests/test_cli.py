"""CLI smoke tests (the cheap subcommands end to end)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        names = set(subparsers.choices)
        assert {"table1", "table2", "table4", "figure7", "figure8", "figure9",
                "figure10", "figure11", "ablation", "export", "all"} <= names

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure7_app_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure7", "--app", "nope"])


class TestFaultFlags:
    def test_study_and_sweep_take_fault_flags(self):
        parser = build_parser()
        args = parser.parse_args([
            "study", "--retries", "5", "--run-timeout", "30",
            "--inject-faults", "crash:0.2", "--fault-seed", "7",
            "--resume", "ck.jsonl",
        ])
        assert args.retries == 5
        assert args.run_timeout == 30.0
        assert args.inject_faults == "crash:0.2"
        assert args.fault_seed == 7
        assert args.resume == "ck.jsonl"
        args = parser.parse_args(["sweep", "--inject-faults", "timeout:0.1"])
        assert args.inject_faults == "timeout:0.1"

    def test_characterize_has_no_resume(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "--resume", "x"])

    def test_sweep_under_transient_injection_exits_zero(self, capsys):
        code = main([
            "sweep", "--app", "read-benchmark",
            "--inject-faults", "crash:0.5", "--fault-seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "retries" in out

    def test_sweep_quarantine_exits_nonzero_with_table(self, capsys):
        code = main([
            "sweep", "--app", "read-benchmark",
            "--inject-faults", "poison:0.3", "--fault-seed", "2",
            "--retries", "2",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "Quarantined runs" in out
        assert "poisoned" in out

    def test_malformed_fault_spec_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            main(["sweep", "--app", "read-benchmark", "--inject-faults", "crash"])


class TestExecution:
    def test_figure11(self, capsys):
        assert main(["figure11"]) == 0
        out = capsys.readouterr().out
        assert "OpenACC" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "258 GB/s" in out
        assert "PGI v14.10" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        assert "read-benchmark" in capsys.readouterr().out

    def test_ablation(self, capsys):
        assert main(["ablation", "--app", "read-benchmark"]) == 0
        out = capsys.readouterr().out
        assert "Transfer decomposition" in out
        assert "OpenCL" in out


class TestServeCommands:
    def test_serve_and_loadtest_registered_with_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["serve"])
        assert args.port == 8351
        assert args.window_ms == 2.0
        assert args.max_queue == 64
        args = parser.parse_args(["loadtest", "--spawn", "--mode", "open",
                                  "--rate", "200", "--bench", "B.json"])
        assert args.rate == 200.0
        assert args.bench == "B.json"

    def test_loadtest_url_and_spawn_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadtest", "--url", "http://x", "--spawn"])

    def test_help_groups_every_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        for section in ("paper artifacts:", "studies & data:",
                        "performance & telemetry:"):
            assert section in out
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        # Every registered command appears in the grouped epilog.
        for name in subparsers.choices:
            assert f"\n    {name} " in out or f"    {name:<13}" in out

    def test_loadtest_end_to_end(self, capsys, tmp_path):
        bench = tmp_path / "BENCH_serve.json"
        code = main([
            "loadtest", "--spawn", "--duration", "0.3", "--concurrency", "2",
            "--model", "OpenCL", "--platform", "apu", "--precision", "single",
            "--bench", str(bench),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "req/s" in out and "p99" in out
        assert bench.exists()
