"""Figure 11 feature-matrix tests."""

from repro.core.features import FEATURE_COLUMNS, FEATURE_ROWS, PAPER_FIGURE11, feature_matrix


class TestFigure11:
    def test_matches_paper_exactly(self):
        """Figure 11 must fall out of the compiler profiles verbatim."""
        assert feature_matrix() == PAPER_FIGURE11

    def test_rows_and_columns(self):
        assert FEATURE_ROWS == ("OpenCL", "OpenACC", "C++ AMP")
        assert [name for name, _ in FEATURE_COLUMNS] == [
            "Vectorization",
            "Use of Local Data Store (LDS)",
            "Fine-grained Synchronization",
            "Explicit Loop Unrolling",
            "Reducing Code Motion",
        ]

    def test_opencl_all_yes(self):
        matrix = feature_matrix()
        assert all(matrix["OpenCL"].values())

    def test_openacc_only_vectorization(self):
        row = feature_matrix()["OpenACC"]
        assert row["Vectorization"]
        assert sum(row.values()) == 1

    def test_cppamp_three_features(self):
        row = feature_matrix()["C++ AMP"]
        assert sum(row.values()) == 3
        assert not row["Explicit Loop Unrolling"]
        assert not row["Reducing Code Motion"]
