"""Golden regression snapshots for the paper's headline artifacts.

The figures and tables are deterministic functions of the model, so
their exact numbers are committed under ``tests/goldens/`` and diffed
here.  Any model or calibration change that moves a published number
fails loudly; an intended recalibration is recorded by re-running

    pytest tests/core/test_goldens.py --regen-goldens

and committing the updated JSON alongside the change that caused it.
"""

import pytest

from repro.apps import ALL_APPS
from repro.core.configs import bench_configs
from repro.core.export import speedup_tables
from repro.core.study import GPU_MODELS, run_study
from repro.sloc import table4

APP_NAMES = tuple(app.name for app in ALL_APPS)


@pytest.fixture(scope="module")
def bench_study():
    return run_study(ALL_APPS, configs=bench_configs())


def test_figure8_figure9_speedups_match_golden(bench_study, golden):
    golden("speedup_tables", speedup_tables(bench_study))


def test_vector_engine_matches_the_same_golden(golden):
    """The columnar engine reproduces the committed Figure 8/9 numbers
    from the *same* golden file — there is no separate vector golden,
    because the engines are bit-identical by contract."""
    study = run_study(ALL_APPS, configs=bench_configs(), engine="vector")
    golden("speedup_tables", speedup_tables(study))


def test_table4_sloc_matches_golden(golden):
    golden("table4_sloc", table4(ALL_APPS))


def test_cross_vendor_energy_matches_golden(golden):
    """The second-vendor study family: every app through the directive
    models on the dGPU and the V100, with whole-run energy and EDP —
    the numbers behind 'a study the paper couldn't run'."""
    study = run_study(
        ALL_APPS,
        configs=bench_configs(),
        models=("OpenCL", "OpenACC", "OpenMP Offload"),
        platforms=("dgpu", "v100"),
    )
    table: dict = {}
    for e in study.entries:
        cell = {"speedup": e.speedup, "joules": e.joules, "edp": e.edp}
        table.setdefault(e.platform_key, {}).setdefault(
            e.precision.value, {}
        ).setdefault(e.app, {})[e.model] = cell
    golden("cross_vendor_energy", table)


def test_cross_vendor_energy_vector_engine_matches_the_same_golden(golden):
    """The columnar engine reproduces the committed cross-vendor
    energy numbers from the same golden file."""
    study = run_study(
        ALL_APPS,
        configs=bench_configs(),
        models=("OpenCL", "OpenACC", "OpenMP Offload"),
        platforms=("dgpu", "v100"),
        engine="vector",
    )
    table: dict = {}
    for e in study.entries:
        cell = {"speedup": e.speedup, "joules": e.joules, "edp": e.edp}
        table.setdefault(e.platform_key, {}).setdefault(
            e.precision.value, {}
        ).setdefault(e.app, {})[e.model] = cell
    golden("cross_vendor_energy", table)


def test_speedup_tables_cover_full_matrix(bench_study):
    """Shape guard, independent of the stored numbers: every platform,
    precision, app and model appears, so a silently shrunken study
    cannot 'pass' against a stale golden."""
    tables = speedup_tables(bench_study)
    assert set(tables) == {"APU", "dGPU"}
    for precisions in tables.values():
        assert set(precisions) == {"single", "double"}
        for apps in precisions.values():
            assert set(apps) == set(APP_NAMES)
            for models in apps.values():
                assert set(models) == set(GPU_MODELS)
