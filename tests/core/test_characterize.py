"""Table I characterization tests."""

import pytest

from repro.apps import APPS_BY_NAME, PROXY_APPS
from repro.core.characterize import (
    DOMINANT_KERNEL,
    PAPER_TABLE1,
    characterize,
    dominant_spec,
    measure_ipc,
    measure_miss_rate,
)
from repro.core.configs import sweep_configs


@pytest.fixture(scope="module")
def miss_rates():
    configs = sweep_configs()
    return {
        app.name: measure_miss_rate(dominant_spec(app, configs[app.name]))
        for app in PROXY_APPS
    }


@pytest.fixture(scope="module")
def ipcs():
    configs = sweep_configs()
    return {app.name: measure_ipc(app, configs[app.name]) for app in PROXY_APPS}


class TestMissRates:
    def test_all_in_range(self, miss_rates):
        for app, rate in miss_rates.items():
            assert 0.0 < rate < 1.0, app

    def test_lulesh_has_best_locality(self, miss_rates):
        """Table I: LULESH 'portrays good data locality as shown by the
        low miss rate'."""
        assert miss_rates["LULESH"] == min(miss_rates.values())

    def test_xsbench_has_worst_locality_of_gathers(self, miss_rates):
        """Table I: XSBench 'manifests poor data-locality'."""
        assert miss_rates["XSBench"] > 2 * miss_rates["LULESH"]
        assert miss_rates["XSBench"] > miss_rates["CoMD"]

    def test_minife_misses_heavily(self, miss_rates):
        assert miss_rates["miniFE"] > miss_rates["CoMD"]


class TestIPC:
    def test_xsbench_locality_hurts_ipc(self, ipcs):
        """Table I: XSBench's appalling locality 'also results in poor
        instructions per cycle' — below the compute-bound apps.
        (Deviation from the paper: our bandwidth-starved CPU model
        gives miniFE the lowest IPC instead of the highest; recorded
        in EXPERIMENTS.md.)"""
        assert ipcs["XSBench"] < ipcs["CoMD"]
        assert ipcs["XSBench"] < ipcs["LULESH"]

    def test_ipc_magnitudes_sane(self, ipcs):
        for app, ipc in ipcs.items():
            assert 0.01 < ipc < 2.5, app


class TestCharacterize:
    def test_full_row(self):
        app = APPS_BY_NAME["CoMD"]
        config = sweep_configs()["CoMD"]
        row = characterize(app, config)
        assert row.app == "CoMD"
        assert row.n_kernels == 3
        assert row.boundedness == "Compute"

    def test_kernel_counts_match_table1(self):
        for app in PROXY_APPS:
            assert app.n_kernels == PAPER_TABLE1[app.name]["kernels"]

    def test_dominant_kernels_defined(self):
        for app in PROXY_APPS:
            assert app.name in DOMINANT_KERNEL


class TestCharacterizeApps:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.core.characterize import characterize_apps

        return characterize_apps(PROXY_APPS)

    def test_one_row_per_app(self, result):
        assert [r.app for r in result.rows] == [app.name for app in PROXY_APPS]

    def test_stats_include_trace_counters(self, result):
        lookups = result.stats.trace_hits + result.stats.trace_misses
        assert lookups >= len(PROXY_APPS)
        assert "trace-replay memo cache" in result.stats.summary()

    def test_engines_bit_identical(self):
        from repro.core.characterize import characterize_apps
        from repro.engine.memo import cache_disabled

        with cache_disabled():
            vector = characterize_apps(PROXY_APPS[:2], engine="vector")
            scalar = characterize_apps(PROXY_APPS[:2], engine="scalar")
        assert vector.rows == scalar.rows

    def test_workers_bit_identical(self, result):
        from repro.core.characterize import characterize_apps

        parallel = characterize_apps(PROXY_APPS, max_workers=2)
        assert parallel.rows == result.rows

    def test_no_cache_bit_identical(self, result):
        from repro.core.characterize import characterize_apps

        uncached = characterize_apps(PROXY_APPS, use_cache=False)
        assert uncached.rows == result.rows
        assert uncached.stats.trace_hits == 0
