"""Report-renderer tests."""

from repro.apps import ALL_APPS
from repro.apps.readmem import ReadMemConfig
from repro.core.characterize import AppCharacterization
from repro.core.report import (
    format_table,
    render_figure7,
    render_figure10,
    render_figure11,
    render_speedups,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.core.productivity import compute_productivity
from repro.core.study import run_study
from repro.core.sweep import run_sweep
from repro.hardware.specs import Precision
from repro.sloc import PAPER_TABLE4, table4

READMEM = ALL_APPS[0]


def small_study():
    return run_study(
        (READMEM,),
        paper_scale=False,
        configs={"read-benchmark": ReadMemConfig(size=1 << 16)},
        precisions=(Precision.SINGLE, Precision.DOUBLE),
    )


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in lines[-1]

    def test_no_title(self):
        text = format_table(["a"], [["1"]])
        assert text.splitlines()[0].startswith("a")


class TestRenderers:
    def test_table1(self):
        rows = [AppCharacterization(app="LULESH", llc_miss_rate=0.1, ipc=0.6, n_kernels=28, boundedness="Balanced")]
        text = render_table1(rows)
        assert "LULESH" in text and "paper" in text

    def test_table2(self):
        text = render_table2()
        assert "258 GB/s" in text
        assert "AMD Radeon R9 280X" in text

    def test_table3(self):
        text = render_table3()
        assert "PGI v14.10" in text

    def test_table4(self):
        text = render_table4(table4(ALL_APPS), PAPER_TABLE4)
        assert "read-benchmark" in text
        assert "paper 181" in text

    def test_figure7(self):
        sweep = run_sweep(
            READMEM, ReadMemConfig(size=1 << 18),
            core_grid=(200.0, 1000.0), memory_grid=(480.0, 1250.0),
        )
        text = render_figure7(sweep)
        assert "read-benchmark" in text
        assert "1250" in text

    def test_speedups(self):
        text = render_speedups(small_study(), ["read-benchmark"], apu=True, title="Fig 8")
        assert "OpenCL" in text and "x" in text

    def test_figure10(self):
        study = small_study()
        result = compute_productivity(study, (READMEM,), apu=True)
        text = render_figure10(result, ["read-benchmark"])
        assert "Har. Mean" in text

    def test_figure11(self):
        text = render_figure11()
        assert "OpenACC" in text and "no" in text and "yes" in text
