"""Metric tests with hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import geometric_mean, harmonic_mean, normalize, speedup


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)

    def test_slowdown_below_one(self):
        assert speedup(1.0, 2.0) == pytest.approx(0.5)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)


class TestMeans:
    def test_harmonic_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_geometric_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])


class TestNormalize:
    def test_basic(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)


@given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_property_mean_inequality(values):
    """HM <= GM <= AM for positive values."""
    hm = harmonic_mean(values)
    gm = geometric_mean(values)
    am = sum(values) / len(values)
    assert hm <= gm * (1 + 1e-9)
    assert gm <= am * (1 + 1e-9)


@given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_property_means_bounded_by_extremes(values):
    for mean in (harmonic_mean(values), geometric_mean(values)):
        assert min(values) * (1 - 1e-9) <= mean <= max(values) * (1 + 1e-9)
