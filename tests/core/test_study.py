"""Comparison-study framework tests (functional, small sizes)."""

import pytest

from repro.apps import APPS_BY_NAME
from repro.apps.readmem import ReadMemConfig
from repro.core.study import GPU_MODELS, StudyEntry, StudyResult, run_port, run_study
from repro.hardware.specs import Precision

READMEM = APPS_BY_NAME["read-benchmark"]


def small_study():
    return run_study(
        (READMEM,),
        paper_scale=False,
        configs={"read-benchmark": ReadMemConfig(size=1 << 16)},
        precisions=(Precision.SINGLE,),
    )


class TestRunPort:
    def test_projection_flag(self):
        config = ReadMemConfig(size=1 << 16)
        functional = run_port(READMEM, "OpenCL", False, Precision.SINGLE, config, projection=False)
        projected = run_port(READMEM, "OpenCL", False, Precision.SINGLE, config, projection=True)
        assert functional.seconds == pytest.approx(projected.seconds, rel=1e-12)


class TestStudyResult:
    def test_entries_cover_grid(self):
        study = small_study()
        # 1 app x 3 models x 2 platforms x 1 precision
        assert len(study.entries) == 6

    def test_lookup(self):
        study = small_study()
        entry = study.get("read-benchmark", "OpenCL", apu=True, precision=Precision.SINGLE)
        assert isinstance(entry, StudyEntry)
        assert entry.speedup > 0

    def test_missing_entry_raises(self):
        with pytest.raises(KeyError):
            small_study().get("nope", "OpenCL", apu=True, precision=Precision.SINGLE)

    def test_speedups_per_subplot(self):
        study = small_study()
        speedups = study.speedups("read-benchmark", apu=False, precision=Precision.SINGLE)
        assert set(speedups) == set(GPU_MODELS)
        assert all(v > 0 for v in speedups.values())

    def test_kernel_speedup_differs_from_total_on_dgpu(self):
        study = small_study()
        entry = study.get("read-benchmark", "OpenCL", apu=False, precision=Precision.SINGLE)
        assert entry.kernel_speedup > entry.speedup  # transfers hurt totals

    def test_config_override_used(self):
        study = run_study(
            (READMEM,),
            paper_scale=False,
            configs={"read-benchmark": ReadMemConfig(size=1 << 14)},
            precisions=(Precision.SINGLE,),
            apu_values=(False,),
        )
        assert len(study.entries) == 3


class TestStudyFaultTolerance:
    def test_transient_injection_is_bit_identical(self):
        from repro.exec import RetryPolicy, parse_fault_plan

        clean = small_study()
        chaotic = run_study(
            (READMEM,),
            paper_scale=False,
            configs={"read-benchmark": ReadMemConfig(size=1 << 16)},
            precisions=(Precision.SINGLE,),
            policy=RetryPolicy(backoff_base=0.0),
            faults=parse_fault_plan("crash:0.5,corrupt:0.3", seed=4),
        )
        assert chaotic.entries == clean.entries
        assert chaotic.complete
        assert chaotic.stats.retries > 0

    def test_quarantined_cells_drop_entries_not_the_study(self):
        from repro.exec import RetryPolicy, parse_fault_plan

        study = run_study(
            (READMEM,),
            paper_scale=False,
            configs={"read-benchmark": ReadMemConfig(size=1 << 16)},
            precisions=(Precision.SINGLE,),
            policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
            faults=parse_fault_plan("poison:0.4", seed=1),
        )
        assert not study.complete
        assert study.failures
        clean = small_study()
        # Surviving entries are unchanged; lost ones are just absent.
        assert len(study.entries) < len(clean.entries)
        surviving = {(e.app, e.model, e.apu, e.precision) for e in study.entries}
        for entry in clean.entries:
            if (entry.app, entry.model, entry.apu, entry.precision) in surviving:
                assert entry in study.entries

    def test_checkpoint_resume_is_bit_identical(self, tmp_path):
        clean = small_study()
        path = tmp_path / "study.ck"
        first = run_study(
            (READMEM,),
            paper_scale=False,
            configs={"read-benchmark": ReadMemConfig(size=1 << 16)},
            precisions=(Precision.SINGLE,),
            checkpoint=path,
        )
        resumed = run_study(
            (READMEM,),
            paper_scale=False,
            configs={"read-benchmark": ReadMemConfig(size=1 << 16)},
            precisions=(Precision.SINGLE,),
            checkpoint=path,
        )
        assert first.entries == clean.entries == resumed.entries
        assert resumed.stats.resumed_runs == resumed.stats.unique_runs
