"""Ablation-API tests."""

import pytest

from repro.apps import APPS_BY_NAME
from repro.apps.comd import CoMDConfig, kernel_specs
from repro.apps.lulesh import LuleshConfig
from repro.core.ablation import (
    decompose_transfers,
    lulesh_compiler_bug_ablation,
    tiling_ablation,
    without_capabilities,
)
from repro.hardware.specs import Precision
from repro.models.base import Capability
from repro.models.cppamp.compiler import CPPAMP_PROFILE
from repro.models.opencl.compiler import OPENCL_PROFILE


class TestWithoutCapabilities:
    def test_removes_requested(self):
        masked = without_capabilities(OPENCL_PROFILE, Capability.LDS)
        assert Capability.LDS not in masked.capabilities
        assert Capability.VECTORIZE in masked.capabilities

    def test_original_untouched(self):
        without_capabilities(OPENCL_PROFILE, Capability.all())
        assert OPENCL_PROFILE.capabilities == Capability.all()


class TestDecomposeTransfers:
    def test_components_sum_to_total(self):
        app = APPS_BY_NAME["LULESH"]
        decomposition = decompose_transfers(app, LuleshConfig(size=16, iterations=4))
        for d in decomposition.values():
            total = d.kernel_seconds + d.transfer_seconds + d.overhead_seconds
            assert total == pytest.approx(d.total_seconds, rel=0.01)

    def test_share_bounded(self):
        app = APPS_BY_NAME["LULESH"]
        decomposition = decompose_transfers(app, LuleshConfig(size=16, iterations=4))
        for d in decomposition.values():
            assert 0.0 <= d.transfer_share < 1.0

    def test_apu_has_no_transfers(self):
        app = APPS_BY_NAME["LULESH"]
        decomposition = decompose_transfers(app, LuleshConfig(size=16, iterations=4), apu=True)
        for d in decomposition.values():
            assert d.transfer_seconds == 0.0


class TestTilingAblation:
    def test_comd_force_kernel(self):
        spec = kernel_specs(CoMDConfig(nx=24, ny=24, nz=24, steps=1), Precision.SINGLE)["comd.lj_force"]
        tiled, untiled = tiling_ablation(spec, CPPAMP_PROFILE)
        assert untiled > tiled

    def test_no_lds_kernel_unaffected(self):
        spec = kernel_specs(CoMDConfig(nx=24, ny=24, nz=24, steps=1), Precision.SINGLE)["comd.advance_velocity"]
        tiled, untiled = tiling_ablation(spec, CPPAMP_PROFILE)
        assert untiled == pytest.approx(tiled)


class TestLuleshBugAblation:
    def test_buggy_slower(self):
        buggy, fixed = lulesh_compiler_bug_ablation(LuleshConfig(size=16, iterations=4))
        assert buggy.seconds > fixed.seconds
        assert buggy.counters.transfer_seconds > fixed.counters.transfer_seconds
