"""Export round-trip tests."""

import pytest

from repro.apps import APPS_BY_NAME
from repro.apps.readmem import ReadMemConfig
from repro.core.export import load_json, study_records, sweep_records, write_csv, write_json
from repro.core.study import run_study
from repro.core.sweep import run_sweep
from repro.hardware.specs import Precision

READMEM = APPS_BY_NAME["read-benchmark"]


@pytest.fixture(scope="module")
def study():
    return run_study(
        (READMEM,),
        paper_scale=False,
        configs={"read-benchmark": ReadMemConfig(size=1 << 16)},
        precisions=(Precision.SINGLE,),
    )


class TestStudyRecords:
    def test_one_record_per_entry(self, study):
        records = study_records(study)
        assert len(records) == len(study.entries)

    def test_fields(self, study):
        record = study_records(study)[0]
        assert set(record) >= {"app", "model", "platform", "precision", "speedup"}
        assert record["platform"] in ("APU", "dGPU")


class TestSweepRecords:
    def test_sorted_grid(self):
        sweep = run_sweep(
            READMEM, ReadMemConfig(size=1 << 18),
            core_grid=(200.0, 1000.0), memory_grid=(480.0, 1250.0),
        )
        records = sweep_records(sweep)
        assert len(records) == 4
        assert records[0]["memory_mhz"] <= records[-1]["memory_mhz"]


class TestRoundTrips:
    def test_json(self, study, tmp_path):
        path = write_json(study_records(study), tmp_path / "out.json")
        loaded = load_json(path)
        assert loaded == study_records(study)

    def test_csv(self, study, tmp_path):
        path = write_csv(study_records(study), tmp_path / "out.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(study.entries) + 1  # header
        assert lines[0].startswith("app,")

    def test_empty_csv_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "empty.csv")
