"""Per-kernel breakdown tests — the paper's Sec. IV hot-kernel claims."""

import pytest

from repro.apps import APPS_BY_NAME
from repro.apps.comd import CoMDConfig
from repro.apps.lulesh import LuleshConfig
from repro.apps.minife import MiniFEConfig
from repro.core.breakdown import kernel_breakdown, render_breakdown


class TestCoMD:
    def test_force_kernel_dominates(self):
        """Sec. IV-B: 'Computation of forces accounts for more than 90%
        of total execution time.'"""
        shares = kernel_breakdown(
            APPS_BY_NAME["CoMD"], CoMDConfig(nx=24, ny=24, nz=24, steps=5)
        )
        assert shares[0].name == "comd.lj_force"
        assert shares[0].share > 0.9


class TestLULESH:
    def test_all_28_kernels_appear(self):
        shares = kernel_breakdown(
            APPS_BY_NAME["LULESH"], LuleshConfig(size=32, iterations=3)
        )
        assert len(shares) == 28

    def test_nodal_phase_heavy(self):
        """Sec. IV-A: 'Advancing the node quantities is the most
        computationally intensive part of the simulation' — the
        force/geometry kernels sit at the top of the breakdown."""
        shares = kernel_breakdown(
            APPS_BY_NAME["LULESH"], LuleshConfig(size=32, iterations=3)
        )
        top3 = {s.name for s in shares[:3]}
        nodal_heavy = {
            "lulesh.calc_face_normals", "lulesh.calc_kinematics",
            "lulesh.stress_force_x", "lulesh.stress_force_y", "lulesh.stress_force_z",
            "lulesh.hourglass_force_x", "lulesh.hourglass_force_y", "lulesh.hourglass_force_z",
        }
        assert top3 & nodal_heavy

    def test_shares_sum_to_one(self):
        shares = kernel_breakdown(
            APPS_BY_NAME["LULESH"], LuleshConfig(size=16, iterations=2)
        )
        assert sum(s.share for s in shares) == pytest.approx(1.0)


class TestMiniFE:
    def test_spmv_most_expensive(self):
        """Sec. IV-D: 'Among the different kernels, SpMV is the most
        computationally intensive.'"""
        shares = kernel_breakdown(
            APPS_BY_NAME["miniFE"], MiniFEConfig(nx=32, ny=32, nz=32, cg_iterations=10)
        )
        assert shares[0].name == "minife.spmv"
        assert shares[0].share > 0.5


class TestRender:
    def test_render(self):
        shares = kernel_breakdown(
            APPS_BY_NAME["CoMD"], CoMDConfig(nx=12, ny=12, nz=12, steps=2)
        )
        text = render_breakdown(shares)
        assert "comd.lj_force" in text
        assert "Share" in text
