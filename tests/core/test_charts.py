"""ASCII chart renderer tests."""

import pytest

from repro.apps import APPS_BY_NAME
from repro.apps.readmem import ReadMemConfig
from repro.core.charts import BAR_WIDTH, bar, bar_chart, figure_chart, speedup_chart
from repro.core.study import run_study
from repro.hardware.specs import Precision


@pytest.fixture(scope="module")
def study():
    return run_study(
        (APPS_BY_NAME["read-benchmark"],),
        paper_scale=False,
        configs={"read-benchmark": ReadMemConfig(size=1 << 16)},
        precisions=(Precision.SINGLE, Precision.DOUBLE),
    )


class TestBar:
    def test_full_bar(self):
        assert bar(10, 10) == "█" * BAR_WIDTH

    def test_half_bar(self):
        assert len(bar(5, 10).rstrip("▏▎▍▌▋▊▉")) == BAR_WIDTH // 2

    def test_zero(self):
        assert bar(0, 10) == ""

    def test_never_exceeds_width(self):
        assert len(bar(20, 10)) <= BAR_WIDTH

    def test_zero_maximum_rejected(self):
        with pytest.raises(ValueError):
            bar(1, 0)


class TestBarChart:
    def test_largest_value_gets_longest_bar(self):
        text = bar_chart({"a": 1.0, "b": 4.0})
        lines = text.splitlines()
        assert lines[1].count("█") > lines[0].count("█")

    def test_labels_aligned(self):
        text = bar_chart({"x": 1.0, "longer": 2.0})
        starts = [line.index("█") for line in text.splitlines() if "█" in line]
        assert len(set(starts)) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestSpeedupChart:
    def test_contains_models(self, study):
        text = speedup_chart(study, "read-benchmark", apu=False)
        for model in ("OpenCL", "C++ AMP", "OpenACC"):
            assert model in text

    def test_readmem_defaults_to_kernel_time(self, study):
        kernel = speedup_chart(study, "read-benchmark", apu=False)
        total = speedup_chart(study, "read-benchmark", apu=False, kernel_only=False)
        assert kernel != total

    def test_figure_chart_covers_both_precisions(self, study):
        text = figure_chart(study, ("read-benchmark",), apu=True)
        assert text.count("read-benchmark on the APU") == 2
        assert "double" in text and "single" in text
