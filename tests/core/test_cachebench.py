"""Cache-replay benchmark (BENCH_cache.json) tests.

The benchmark doubles as a correctness gate: every run replays each
Table I pattern through both engines and raises if their stats differ,
so these tests exercise the bit-identity contract at the paper's real
workload shapes (with a reduced trace budget to stay fast).
"""

import json

import pytest

from repro.apps import ALL_APPS, APPS_BY_NAME
from repro.core.cachebench import (
    bench_pattern,
    render_cache_bench,
    run_cache_bench,
    write_cache_bench,
)


@pytest.fixture(scope="module")
def bench():
    return run_cache_bench(apps=ALL_APPS[:2], repeats=1, reps=2, budget=4000)


class TestRunCacheBench:
    def test_structure(self, bench):
        assert {"budget", "patterns", "replay_totals", "characterization"} <= set(bench)
        assert len(bench["patterns"]) == 2
        for row in bench["patterns"]:
            assert row["scalar_seconds"] > 0
            assert row["vector_seconds"] > 0
            assert row["speedup"] == pytest.approx(
                row["scalar_seconds"] / row["vector_seconds"]
            )
            assert 0.0 <= row["miss_rate"] <= 1.0

    def test_characterization_protocol(self, bench):
        c = bench["characterization"]
        assert c["reps"] == 2
        # Rep 1 misses once per pattern; every later rep hits.
        assert c["trace_memo_misses"] == len(bench["patterns"])
        assert c["trace_memo_hits"] == len(bench["patterns"]) * (c["reps"] - 1)
        assert c["scalar_path_seconds"] > 0
        assert c["vector_memo_path_seconds"] > 0

    def test_json_round_trip(self, bench, tmp_path):
        path = tmp_path / "bench.json"
        write_cache_bench(bench, str(path))
        assert json.loads(path.read_text()) == bench

    def test_render(self, bench):
        text = render_cache_bench(bench)
        assert "Cache-replay engine benchmark" in text
        assert "TOTAL" in text
        assert "Repeated characterization" in text


class TestBenchPattern:
    def test_engines_asserted_identical(self):
        row = bench_pattern(APPS_BY_NAME["LULESH"], repeats=1, budget=3000)
        assert row.app == "LULESH"
        assert row.kind == "stencil"
        assert row.accesses > 0
