"""Frequency-sweep tests (Figure 7 shapes and Table I boundedness)."""

import pytest

from repro.apps import APPS_BY_NAME
from repro.core.configs import sweep_configs
from repro.core.sweep import run_sweep

#: Coarse grid: sweep corners plus midpoints, enough to classify.
CORE = (200.0, 600.0, 1000.0)
MEMORY = (480.0, 810.0, 1250.0)


def sweep(app_name):
    return run_sweep(
        APPS_BY_NAME[app_name],
        sweep_configs()[app_name],
        core_grid=CORE,
        memory_grid=MEMORY,
    )


class TestSweepMechanics:
    def test_grid_covered(self):
        result = sweep("read-benchmark")
        assert len(result.points) == 9

    def test_normalized_to_slowest_point(self):
        result = sweep("read-benchmark")
        slowest = result.get(200.0, 480.0)
        assert slowest.normalized_performance == pytest.approx(1.0)
        assert all(p.normalized_performance >= 0.99 for p in result.points)

    def test_series_sorted_by_core(self):
        series = sweep("read-benchmark").series(1250.0)
        assert [p.core_mhz for p in series] == sorted(p.core_mhz for p in series)


class TestBoundednessClassification:
    """Table I's Boundedness column, measured via the Figure 7 sweep."""

    def test_readmem_memory_bound(self):
        assert sweep("read-benchmark").classify() == "Memory"

    def test_lulesh_balanced(self):
        assert sweep("LULESH").classify() == "Balanced"

    def test_comd_compute_bound(self):
        assert sweep("CoMD").classify() == "Compute"

    def test_xsbench_compute_bound(self):
        """Fig. 7d: XSBench scales with the core clock despite its
        terrible locality (latency-bound, on-chip latency dominates)."""
        assert sweep("XSBench").classify() == "Compute"

    def test_minife_memory_bound(self):
        assert sweep("miniFE").classify() == "Memory"


class TestFigure7Shapes:
    def test_readmem_scales_with_memory_not_core(self):
        result = sweep("read-benchmark")
        assert result.memory_sensitivity() > 2.0
        assert result.core_sensitivity() < 1.2

    def test_comd_scales_with_core_not_memory(self):
        result = sweep("CoMD")
        assert result.core_sensitivity() > 1.8
        assert result.memory_sensitivity() < 1.3

    def test_lulesh_scales_with_both(self):
        result = sweep("LULESH")
        assert result.core_sensitivity() > 1.3
        assert result.memory_sensitivity() > 1.3

    def test_xsbench_low_memory_clock_still_hurts(self):
        """Fig. 7d: 'except at extremely low memory frequencies at
        which the memory requests are not optimally serviced'."""
        result = sweep("XSBench")
        at_high_core = result.get(1000.0, 480.0).normalized_performance
        at_high_core_fast_mem = result.get(1000.0, 1250.0).normalized_performance
        assert at_high_core_fast_mem > at_high_core


class TestSweepFaultTolerance:
    def test_transient_injection_is_bit_identical(self):
        from repro.exec import RetryPolicy, parse_fault_plan

        clean = sweep("read-benchmark")
        chaotic = run_sweep(
            APPS_BY_NAME["read-benchmark"],
            sweep_configs()["read-benchmark"],
            core_grid=CORE,
            memory_grid=MEMORY,
            policy=RetryPolicy(backoff_base=0.0),
            faults=parse_fault_plan("crash:0.5,timeout:0.3", seed=2),
        )
        assert chaotic.points == clean.points
        assert chaotic.complete

    def test_quarantined_points_leave_holes_not_crashes(self):
        from repro.exec import RetryPolicy, parse_fault_plan

        result = run_sweep(
            APPS_BY_NAME["read-benchmark"],
            sweep_configs()["read-benchmark"],
            core_grid=CORE,
            memory_grid=MEMORY,
            policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
            faults=parse_fault_plan("poison:0.3", seed=2),
        )
        assert not result.complete
        assert 0 < len(result.points) < 9
        assert len(result.points) + len(result.failures) == 9
        # Surviving points still normalize against a real anchor.
        assert all(p.normalized_performance > 0 for p in result.points)
