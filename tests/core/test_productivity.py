"""Productivity (Eq. 1, Figure 10) tests."""

import pytest

from repro.apps import ALL_APPS
from repro.core.configs import bench_configs
from repro.core.productivity import ProductivityEntry, compute_productivity
from repro.core.study import run_study
from repro.hardware.specs import Precision


@pytest.fixture(scope="module")
def study():
    return run_study(
        ALL_APPS,
        paper_scale=True,
        configs=bench_configs(),
        precisions=(Precision.DOUBLE,),
    )


class TestEquation1:
    def test_definition(self):
        entry = ProductivityEntry(app="x", model="OpenCL", apu=True, speedup=6.0, lines_ratio=3.0)
        assert entry.productivity == pytest.approx(2.0)


class TestFigure10(object):
    def test_apu_emerging_models_beat_opencl_on_average(self, study):
        """Fig. 10a: 'The emerging programming models are more
        productive than OpenCL on multiple occasions on the APU' —
        C++ AMP has the best harmonic mean."""
        result = compute_productivity(study, ALL_APPS, apu=True)
        means = result.harmonic_means()
        assert means["C++ AMP"] > means["OpenCL"]

    def test_dgpu_opencl_competitive(self, study):
        """Fig. 10b: on the dGPU 'it is worthwhile to undergo the
        arduous programming effort and still achieve better
        productivity with OpenCL' — OpenCL's harmonic mean is at least
        comparable to the emerging models."""
        result = compute_productivity(study, ALL_APPS, apu=False)
        means = result.harmonic_means()
        assert means["OpenCL"] > 0.5 * max(means.values())

    def test_xsbench_cppamp_most_productive_on_apu(self, study):
        """Fig. 10a: C++ AMP 'is 3x more productive for XSBench on the
        APU' than OpenCL."""
        result = compute_productivity(study, ALL_APPS, apu=True)
        amp = result.get("XSBench", "C++ AMP").productivity
        ocl = result.get("XSBench", "OpenCL").productivity
        assert amp > 1.5 * ocl

    def test_all_entries_positive(self, study):
        for apu in (True, False):
            result = compute_productivity(study, ALL_APPS, apu=apu)
            assert all(e.productivity > 0 for e in result.entries)

    def test_lookup_missing_raises(self, study):
        result = compute_productivity(study, ALL_APPS, apu=True)
        with pytest.raises(KeyError):
            result.get("nope", "OpenCL")
