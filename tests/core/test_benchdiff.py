"""The SLO sentinel: tolerance bands over the committed bench JSON."""

import json

import pytest

from repro.core.benchdiff import (
    BENCH_CHECKS,
    MetricCheck,
    check_metric,
    compare,
    compare_file,
    lookup,
    render,
)


def test_metric_check_validates_direction():
    with pytest.raises(ValueError, match="unknown direction"):
        MetricCheck("x", "sideways")


def test_lookup_resolves_dot_paths():
    doc = {"latency_ms": {"p99": 3.5}}
    assert lookup(doc, "latency_ms.p99") == 3.5
    with pytest.raises(KeyError):
        lookup(doc, "latency_ms.p50")


def test_higher_band_allows_the_tolerance_and_flags_below_it():
    check = MetricCheck("speedup", "higher", 0.5)
    baseline, fast, slow = {"speedup": 10.0}, {"speedup": 5.0}, {"speedup": 4.9}
    assert check_metric(check, baseline, fast, "f").ok
    assert not check_metric(check, baseline, slow, "f").ok
    # Better than baseline is always fine.
    assert check_metric(check, baseline, {"speedup": 99.0}, "f").ok


def test_lower_band_allows_the_tolerance_and_flags_above_it():
    check = MetricCheck("p99", "lower", 1.0)
    baseline = {"p99": 10.0}
    assert check_metric(check, baseline, {"p99": 20.0}, "f").ok
    assert not check_metric(check, baseline, {"p99": 20.1}, "f").ok


def test_equal_and_zero_bands_never_widen():
    equal = MetricCheck("identical", "equal")
    assert check_metric(equal, {"identical": True}, {"identical": True}, "f", scale=100).ok
    assert not check_metric(equal, {"identical": True}, {"identical": False}, "f").ok
    zero = MetricCheck("errors", "zero")
    assert check_metric(zero, {"errors": 5}, {"errors": 0}, "f").ok
    assert not check_metric(zero, {"errors": 0}, {"errors": 1}, "f", scale=100).ok


def test_tolerance_scale_widens_ratio_bands_but_caps():
    check = MetricCheck("speedup", "higher", 0.5)
    baseline = {"speedup": 100.0}
    assert not check_metric(check, baseline, {"speedup": 20.0}, "f").ok
    assert check_metric(check, baseline, {"speedup": 20.0}, "f", scale=1.7).ok
    # The cap: even huge scales keep a floor at 5% of baseline.
    assert not check_metric(check, baseline, {"speedup": 4.0}, "f", scale=1000).ok


def test_missing_metric_and_non_numeric_candidate_fail():
    check = MetricCheck("speedup", "higher", 0.5)
    assert not check_metric(check, {"speedup": 2.0}, {}, "f").ok
    assert not check_metric(check, {}, {"speedup": 2.0}, "f").ok
    assert not check_metric(check, {"speedup": 2.0}, {"speedup": "fast"}, "f").ok


def test_compare_file_flags_unknown_names_and_missing_baselines(tmp_path):
    unknown = tmp_path / "BENCH_novel.json"
    unknown.write_text("{}")
    deltas = compare_file(unknown, tmp_path)
    assert len(deltas) == 1 and not deltas[0].ok
    orphan = tmp_path / "BENCH_serve.json"
    orphan.write_text("{}")
    deltas = compare_file(orphan, tmp_path / "nowhere")
    assert len(deltas) == 1 and not deltas[0].ok


def _serve_doc(**overrides) -> dict:
    """A serve bench document covering every guarded metric."""
    doc = {
        "errors": 0, "throughput_rps": 1000.0,
        "latency_ms": {"p50": 1.0, "p99": 3.0},
        "sharded": {"shards": 2, "errors": 0, "cells_rps": 50000.0},
        "restart": {"shard": 0, "cold_misses": 0},
        "chaos": {"mismatches": 0, "final_mismatches": 0,
                  "cold_misses": 0, "converged": 1},
    }
    doc.update(overrides)
    return doc


def test_compare_passes_an_identical_serve_bench(tmp_path):
    doc = _serve_doc()
    baseline_dir = tmp_path / "base"
    baseline_dir.mkdir()
    (baseline_dir / "BENCH_serve.json").write_text(json.dumps(doc))
    candidate = tmp_path / "BENCH_serve.json"
    candidate.write_text(json.dumps(doc))
    deltas = compare([candidate], baseline_dir)
    assert len(deltas) == len(BENCH_CHECKS["BENCH_serve.json"])
    assert all(delta.ok for delta in deltas)
    assert "all 11 checks within tolerance" in render(deltas)


def test_compare_catches_a_regression_and_render_names_it(tmp_path):
    baseline_dir = tmp_path / "base"
    baseline_dir.mkdir()
    (baseline_dir / "BENCH_serve.json").write_text(json.dumps(_serve_doc()))
    candidate = tmp_path / "BENCH_serve.json"
    candidate.write_text(json.dumps(
        _serve_doc(throughput_rps=100.0)  # collapsed throughput
    ))
    deltas = compare([candidate], baseline_dir)
    bad = [delta for delta in deltas if not delta.ok]
    assert [delta.metric for delta in bad] == ["throughput_rps"]
    assert "REGRESSION" in render(deltas)
    assert "1 regression(s) out of 11 checks" in render(deltas)


def test_compare_catches_a_restart_gone_cold(tmp_path):
    """A bounced shard that recomputes warm traffic fails the gate."""
    baseline_dir = tmp_path / "base"
    baseline_dir.mkdir()
    (baseline_dir / "BENCH_serve.json").write_text(json.dumps(_serve_doc()))
    candidate = tmp_path / "BENCH_serve.json"
    candidate.write_text(json.dumps(
        _serve_doc(restart={"shard": 0, "cold_misses": 3})
    ))
    deltas = compare([candidate], baseline_dir)
    bad = [delta for delta in deltas if not delta.ok]
    assert [delta.metric for delta in bad] == ["restart.cold_misses"]


def test_committed_baselines_pass_against_themselves():
    """The sentinel's identity property on the real committed files."""
    from pathlib import Path

    repo = Path(__file__).resolve().parents[2]
    candidates = [
        repo / name for name in BENCH_CHECKS if (repo / name).exists()
    ]
    assert candidates, "no committed BENCH_*.json baselines found"
    deltas = compare(candidates, repo)
    assert all(delta.ok for delta in deltas)


def test_benchdiff_cli_exit_codes(tmp_path, capsys):
    from repro.cli import main

    baseline_dir = tmp_path / "base"
    baseline_dir.mkdir()
    doc = _serve_doc()
    (baseline_dir / "BENCH_serve.json").write_text(json.dumps(doc))
    candidate = tmp_path / "BENCH_serve.json"
    candidate.write_text(json.dumps(doc))
    code = main([
        "benchdiff", str(candidate), "--baseline-dir", str(baseline_dir),
    ])
    assert code == 0
    assert "within tolerance" in capsys.readouterr().out

    candidate.write_text(json.dumps({**doc, "errors": 3}))
    code = main([
        "benchdiff", str(candidate), "--baseline-dir", str(baseline_dir),
        "--tolerance-scale", "10",
    ])
    assert code == 1
    assert "REGRESSION" in capsys.readouterr().out
