"""Property tests for the LRU set-associative cache model.

``test_cache.py`` covers point behaviours; this file pins the *order*
properties the rest of the reproduction leans on when it converts
Table I miss rates into DRAM traffic:

* counters are conserved: ``hits + misses == accesses`` on any trace;
* LRU inclusion — growing a cache (more ways per set at fixed sets,
  or a deeper fully-associative array) never increases the miss rate
  of a fixed trace;
* a working set that fits is resident after one pass: replaying the
  same trace again is 100% hits.

The monotonicity tests use the geometries where inclusion is a
theorem, not a tendency: adding ways at a fixed set count leaves the
address→set mapping unchanged, so each set's LRU stack strictly
includes the smaller one.  (Growing capacity by adding *sets* remaps
addresses and is famously non-monotonic in general, so it is pinned
only for the repo's realistic kernel traces below.)
"""

import random

import pytest

from repro.engine.kernel import AccessKind, AccessPattern
from repro.engine.trace import generate_trace
from repro.hardware.cache import SetAssociativeCache
from repro.hardware.specs import CacheSpec

LINE = 64


def make_cache(sets: int, ways: int) -> SetAssociativeCache:
    return SetAssociativeCache(
        CacheSpec(size_bytes=LINE * sets * ways, line_bytes=LINE, ways=ways)
    )


def random_trace(rng: random.Random, n: int, span: int) -> list[int]:
    """A mixed trace: sequential bursts, strided walks, random touches."""
    trace: list[int] = []
    while len(trace) < n:
        mode = rng.random()
        base = rng.randrange(span)
        if mode < 0.4:  # sequential burst
            trace.extend(base + 4 * i for i in range(rng.randint(4, 40)))
        elif mode < 0.7:  # strided walk
            stride = rng.choice([LINE, 2 * LINE, 256, 1024])
            trace.extend(base + stride * i for i in range(rng.randint(4, 30)))
        else:  # random pointer chases
            trace.extend(rng.randrange(span) for _ in range(rng.randint(1, 10)))
    return trace[:n]


TRACES = [random_trace(random.Random(seed), 2000, 1 << 18) for seed in range(8)]


@pytest.mark.parametrize("trace_id", range(len(TRACES)))
def test_counters_conserved(trace_id):
    trace = TRACES[trace_id]
    cache = make_cache(sets=16, ways=4)
    stats = cache.replay(trace)
    assert stats.accesses == len(trace)
    assert stats.hits + stats.misses == stats.accesses
    assert stats.evictions <= stats.misses
    assert cache.resident_lines <= cache.n_sets * cache.spec.ways
    # The replay delta and the cache's cumulative stats agree.
    assert cache.stats.hits == stats.hits
    assert cache.stats.misses == stats.misses


@pytest.mark.parametrize("trace_id", range(len(TRACES)))
def test_miss_rate_non_increasing_in_associativity(trace_id):
    """More ways at fixed sets: LRU inclusion ⇒ fewer (or equal) misses."""
    trace = TRACES[trace_id]
    previous = 1.0 + 1e-12
    for ways in (1, 2, 4, 8, 16):
        rate = make_cache(sets=32, ways=ways).replay(trace).miss_rate
        assert rate <= previous, f"ways={ways}: {rate} > {previous}"
        previous = rate


@pytest.mark.parametrize("trace_id", range(len(TRACES)))
def test_miss_rate_non_increasing_in_capacity(trace_id):
    """A deeper fully-associative cache (sets=1, ways doubling) is the
    textbook LRU stack: capacity growth never adds misses."""
    trace = TRACES[trace_id]
    previous = 1.0 + 1e-12
    for ways in (4, 8, 16, 32, 64, 128):
        rate = make_cache(sets=1, ways=ways).replay(trace).miss_rate
        assert rate <= previous, f"ways={ways}: {rate} > {previous}"
        previous = rate


@pytest.mark.parametrize("sets,ways", [(4, 2), (16, 4), (8, 8)])
def test_resident_trace_all_hits_on_replay(sets, ways):
    """Once a fitting working set is resident, replaying it is free.

    Sequential lines spread evenly over the sets, so a trace covering
    at most ``sets*ways`` lines never overflows any one set.
    """
    cache = make_cache(sets=sets, ways=ways)
    lines = sets * ways
    trace = [line * LINE + offset for line in range(lines) for offset in (0, 4)]
    first = cache.replay(trace)
    assert first.misses == lines  # one compulsory miss per line
    assert cache.resident_lines == lines
    for _ in range(3):
        again = cache.replay(trace)
        assert again.hits == again.accesses == len(trace)
        assert again.misses == 0


def test_eviction_makes_replay_miss_again():
    """Contrast case: a working set one line over capacity thrashes a
    1-way cache — replay is all misses, not all hits."""
    cache = make_cache(sets=4, ways=1)
    # Stride of sets*LINE bytes: all five lines map to set 0.
    trace = [line * 4 * LINE for line in range(5)]
    cache.replay(trace)
    again = cache.replay(trace)
    assert again.hits == 0


@pytest.mark.parametrize(
    "kind,reuse",
    [
        (AccessKind.STREAMING, 0.0),
        (AccessKind.STENCIL, 0.6),
        (AccessKind.NEIGHBOR_LIST, 0.3),
        (AccessKind.CSR_SPMV, 0.4),
    ],
    ids=lambda v: getattr(v, "value", v),
)
def test_kernel_traces_monotone_across_realistic_geometries(kind, reuse):
    """The repo's own synthetic kernel traces, replayed through the LLC
    geometries the platforms actually use (growing sets *and* ways):
    miss rates stay monotone there too.  This is the empirical pin for
    the capacity axis the theorems above do not cover."""
    pattern = AccessPattern(
        kind=kind,
        working_set_bytes=1 << 20,
        request_bytes=8,
        reuse_fraction=reuse,
    )
    trace = generate_trace(pattern, budget=4000).tolist()
    previous = 1.0 + 1e-12
    for sets, ways in ((64, 4), (128, 8), (256, 16)):
        rate = make_cache(sets=sets, ways=ways).replay(trace).miss_rate
        assert rate <= previous + 1e-9, f"{sets}x{ways}: {rate} > {previous}"
        previous = rate
