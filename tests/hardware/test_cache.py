"""Set-associative cache simulator tests, including property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cache import CacheStats, SetAssociativeCache
from repro.hardware.specs import CacheSpec


def small_cache(size=1024, line=64, ways=2):
    return SetAssociativeCache(CacheSpec(size_bytes=size, line_bytes=line, ways=ways))


class TestBasicBehaviour:
    def test_first_access_misses(self):
        cache = small_cache()
        assert cache.access(0) is False

    def test_second_access_hits(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(0) is True

    def test_same_line_hits(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(63) is True

    def test_adjacent_line_misses(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(64) is False

    def test_reset_clears_contents_and_stats(self):
        cache = small_cache()
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.access(0) is False


class TestLRUEviction:
    def test_conflict_evicts_least_recently_used(self):
        # 2-way, 8 sets: lines 0, 8, 16 map to set 0.
        cache = small_cache(size=1024, line=64, ways=2)
        sets = cache.n_sets
        a, b, c = 0, sets * 64, 2 * sets * 64
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a
        assert cache.access(b) is True
        assert cache.access(a) is False

    def test_touch_refreshes_lru(self):
        cache = small_cache(size=1024, line=64, ways=2)
        sets = cache.n_sets
        a, b, c = 0, sets * 64, 2 * sets * 64
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a; b is now LRU
        cache.access(c)  # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_eviction_counter(self):
        cache = small_cache(size=128, line=64, ways=1)
        cache.access(0)
        cache.access(cache.n_sets * 64)
        assert cache.stats.evictions == 1


class TestStats:
    def test_replay_returns_delta(self):
        cache = small_cache()
        first = cache.replay([0, 0, 64])
        assert first.accesses == 3
        assert first.hits == 1
        second = cache.replay([0])
        assert second.accesses == 1

    def test_miss_rate(self):
        stats = CacheStats(accesses=10, hits=6, misses=4)
        assert stats.miss_rate == pytest.approx(0.4)
        assert stats.hit_rate == pytest.approx(0.6)

    def test_empty_miss_rate_is_zero(self):
        assert CacheStats().miss_rate == 0.0

    def test_merge(self):
        merged = CacheStats(accesses=2, hits=1, misses=1).merge(
            CacheStats(accesses=3, hits=0, misses=3)
        )
        assert merged.accesses == 5
        assert merged.misses == 4


class TestGeometry:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(CacheSpec(size_bytes=1000, line_bytes=64, ways=3))

    def test_resident_lines_bounded_by_capacity(self):
        cache = small_cache(size=512, line=64, ways=2)
        for address in range(0, 64 * 100, 64):
            cache.access(address)
        assert cache.resident_lines <= 512 // 64


class TestStreamingMissRate:
    def test_sequential_4byte_stream_misses_once_per_line(self):
        cache = small_cache(size=64 * 1024, line=64, ways=16)
        addresses = np.arange(0, 32 * 1024, 4)
        stats = cache.replay(addresses.tolist())
        assert stats.miss_rate == pytest.approx(4 / 64, rel=0.05)


@given(
    addresses=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300),
    ways=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=50, deadline=None)
def test_property_counters_consistent(addresses, ways):
    cache = SetAssociativeCache(CacheSpec(size_bytes=64 * 8 * ways, line_bytes=64, ways=ways))
    stats = cache.replay(addresses)
    assert stats.accesses == len(addresses)
    assert stats.hits + stats.misses == stats.accesses
    assert 0.0 <= stats.miss_rate <= 1.0
    assert cache.resident_lines <= cache.n_sets * ways


@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_immediate_retouch_always_hits(addresses):
    cache = small_cache(size=4096, line=64, ways=4)
    for address in addresses:
        cache.access(address)
        assert cache.access(address) is True
