"""Interconnect (PCIe / unified memory) tests."""

import pytest

from repro.hardware.interconnect import Interconnect
from repro.hardware.specs import HSA_UNIFIED, PCIE3_X16, InterconnectSpec


class TestPCIe:
    def test_transfer_time_has_latency_floor(self):
        link = Interconnect(spec=PCIE3_X16)
        assert link.transfer_time(1) >= PCIE3_X16.latency_s

    def test_bandwidth_term(self):
        link = Interconnect(spec=PCIE3_X16)
        seconds = link.transfer_time(8_000_000_000)
        assert seconds == pytest.approx(1.0 + PCIE3_X16.latency_s, rel=0.01)

    def test_zero_bytes_free(self):
        assert Interconnect(spec=PCIE3_X16).transfer_time(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Interconnect(spec=PCIE3_X16).transfer_time(-1)


class TestUnified:
    def test_no_cost(self):
        link = Interconnect(spec=HSA_UNIFIED)
        assert link.is_unified
        assert link.transfer_time(1 << 30) == 0.0


class TestAccounting:
    def test_log_records_direction_and_bytes(self):
        link = Interconnect(spec=PCIE3_X16)
        link.transfer(1000, "h2d")
        link.transfer(2000, "d2h")
        assert link.total_bytes() == 3000
        assert link.total_bytes("h2d") == 1000
        assert link.total_bytes("d2h") == 2000
        assert link.total_seconds() > 0

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            Interconnect(spec=PCIE3_X16).transfer(10, "sideways")

    def test_reset(self):
        link = Interconnect(spec=PCIE3_X16)
        link.transfer(1000, "h2d")
        link.reset()
        assert link.total_bytes() == 0

    def test_custom_spec(self):
        spec = InterconnectSpec(name="test", bandwidth_gbps=1.0, latency_s=0.0)
        link = Interconnect(spec=spec)
        assert link.transfer_time(1_000_000_000) == pytest.approx(1.0)
