"""Table II catalog invariants."""

import pytest

from repro.hardware.specs import (
    A10_7850K_CPU,
    A10_7850K_GPU,
    R9_280X,
    CacheSpec,
    GPUSpec,
    MemoryTechnology,
    Precision,
    table2_rows,
)


class TestR9280X:
    def test_stream_processor_geometry(self):
        assert R9_280X.stream_processors == 2048
        assert R9_280X.compute_units * R9_280X.simd_per_cu * R9_280X.lanes_per_simd == 2048

    def test_peak_sp_close_to_fma_math(self):
        computed = R9_280X.stream_processors * 2 * R9_280X.core_clock_mhz * 1e6 / 1e9
        assert computed == pytest.approx(R9_280X.peak_sp_gflops, rel=0.01)

    def test_dp_is_quarter_rate(self):
        assert R9_280X.dp_rate_ratio == 0.25

    def test_gddr5(self):
        assert R9_280X.memory_technology is MemoryTechnology.GDDR5
        assert R9_280X.peak_bandwidth_gbps == 258.0

    def test_device_memory_3gb(self):
        assert R9_280X.device_memory_bytes == 3 * 1024**3


class TestA10GPU:
    def test_eight_gcn_cus(self):
        assert A10_7850K_GPU.compute_units == 8
        assert A10_7850K_GPU.stream_processors == 512

    def test_peak_sp_matches_table2(self):
        computed = 512 * 2 * 720e6 / 1e9
        assert computed == pytest.approx(A10_7850K_GPU.peak_sp_gflops, rel=0.01)

    def test_dp_is_sixteenth_rate(self):
        assert A10_7850K_GPU.dp_rate_ratio == pytest.approx(1 / 16)

    def test_shared_ddr3_bandwidth(self):
        assert A10_7850K_GPU.memory_technology is MemoryTechnology.DDR3
        assert A10_7850K_GPU.peak_bandwidth_gbps == 33.0


class TestCPU:
    def test_four_cores_at_3_7ghz(self):
        assert A10_7850K_CPU.cores == 4
        assert A10_7850K_CPU.clock_mhz == 3700.0

    def test_peak_sp_gflops(self):
        # 4 cores x 3.7 GHz x 8 lanes x 2 flops = 236.8 GFLOPS peak.
        assert A10_7850K_CPU.peak_sp_gflops == pytest.approx(236.8)

    def test_system_memory(self):
        assert A10_7850K_CPU.system_memory_bytes == 32 * 1024**3


class TestGPUSpecValidation:
    def test_inconsistent_geometry_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(
                name="bogus",
                compute_units=10,
                stream_processors=512,  # 10 * 4 * 16 = 640 != 512
                core_clock_mhz=700,
                core_clock_range_mhz=(200, 800),
                memory_clock_mhz=1000,
                memory_clock_range_mhz=(500, 1200),
                memory_technology=MemoryTechnology.DDR3,
                device_memory_bytes=1 << 30,
                local_memory_bytes=64 * 1024,
                peak_bandwidth_gbps=30,
                peak_sp_gflops=700,
                dp_rate_ratio=0.25,
            )


class TestCacheSpec:
    def test_sets_math(self):
        spec = CacheSpec(size_bytes=768 * 1024, line_bytes=64, ways=16)
        assert spec.sets == 768 * 1024 // (64 * 16)


class TestPrecision:
    def test_bytes(self):
        assert Precision.SINGLE.bytes_per_element == 4
        assert Precision.DOUBLE.bytes_per_element == 8


class TestTable2Rows:
    def test_two_platforms(self):
        rows = table2_rows()
        assert len(rows) == 2
        assert rows[0]["Peak Bandwidth"] == "258 GB/s"
        assert rows[1]["Peak Single Precision Perf."] == "738 GFLOPS"

    def test_shared_host(self):
        rows = table2_rows()
        assert rows[0]["Host Processor"] == rows[1]["Host Processor"]
