"""Clock-domain and DVFS tests."""

import pytest

from repro.hardware.frequency import (
    PAPER_CORE_SWEEP_MHZ,
    PAPER_MEMORY_SWEEP_MHZ,
    ClockDomain,
    FrequencyError,
    FrequencyPlan,
    paper_sweep_grid,
)


def make_domain(**overrides):
    kwargs = dict(name="core", default_mhz=925.0, min_mhz=200.0, max_mhz=1050.0)
    kwargs.update(overrides)
    return ClockDomain(**kwargs)


class TestClockDomain:
    def test_starts_at_default(self):
        assert make_domain().current_mhz == 925.0

    def test_hz_and_ghz(self):
        domain = make_domain()
        assert domain.hz == 925e6
        assert domain.ghz == pytest.approx(0.925)

    def test_set_within_range(self):
        domain = make_domain()
        domain.set(500.0)
        assert domain.current_mhz == 500.0

    def test_set_below_range_rejected(self):
        with pytest.raises(FrequencyError):
            make_domain().set(100.0)

    def test_set_above_range_rejected(self):
        with pytest.raises(FrequencyError):
            make_domain().set(2000.0)

    def test_boundaries_are_legal(self):
        domain = make_domain()
        domain.set(200.0)
        domain.set(1050.0)
        assert domain.current_mhz == 1050.0

    def test_reset_returns_to_default(self):
        domain = make_domain()
        domain.set(300.0)
        domain.reset()
        assert domain.current_mhz == 925.0

    def test_scale_vs_default(self):
        domain = make_domain()
        domain.set(462.5)
        assert domain.scale_vs_default() == pytest.approx(0.5)

    def test_invalid_range_rejected(self):
        with pytest.raises(FrequencyError):
            make_domain(min_mhz=500.0, max_mhz=400.0)

    def test_default_outside_range_rejected(self):
        with pytest.raises(FrequencyError):
            make_domain(default_mhz=100.0)

    def test_zero_min_rejected(self):
        with pytest.raises(FrequencyError):
            make_domain(min_mhz=0.0)


class TestFrequencyPlan:
    def test_apply_sets_both_domains(self):
        core = make_domain()
        memory = make_domain(name="memory", default_mhz=1250.0, min_mhz=480.0, max_mhz=1500.0)
        FrequencyPlan(core_mhz=600.0, memory_mhz=700.0).apply(core, memory)
        assert core.current_mhz == 600.0
        assert memory.current_mhz == 700.0

    def test_apply_validates(self):
        core = make_domain()
        memory = make_domain(name="memory", default_mhz=1250.0, min_mhz=480.0, max_mhz=1500.0)
        with pytest.raises(FrequencyError):
            FrequencyPlan(core_mhz=600.0, memory_mhz=100.0).apply(core, memory)


class TestPaperGrid:
    def test_core_sweep_matches_figure7(self):
        assert PAPER_CORE_SWEEP_MHZ == (200, 300, 400, 500, 600, 700, 800, 900, 1000)

    def test_memory_sweep_matches_figure7(self):
        assert PAPER_MEMORY_SWEEP_MHZ == (480, 590, 700, 810, 920, 1030, 1140, 1250)

    def test_grid_is_full_cross_product(self):
        grid = paper_sweep_grid()
        assert len(grid) == 9 * 8
        assert len({(p.core_mhz, p.memory_mhz) for p in grid}) == 72
