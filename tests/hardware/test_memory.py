"""Memory-system model tests."""

import pytest

from repro.hardware.frequency import ClockDomain
from repro.hardware.memory import MemorySystem
from repro.hardware.specs import MemoryTechnology


def make_memory(**overrides):
    clock = ClockDomain(name="memory", default_mhz=1250.0, min_mhz=480.0, max_mhz=1500.0)
    kwargs = dict(
        technology=MemoryTechnology.GDDR5,
        peak_bandwidth_gbps=258.0,
        clock=clock,
        capacity_bytes=3 * 1024**3,
    )
    kwargs.update(overrides)
    return MemorySystem(**kwargs)


class TestBandwidthScaling:
    def test_peak_at_default_clock(self):
        assert make_memory().peak_bandwidth_at_clock() == pytest.approx(258.0)

    def test_scales_linearly_with_clock(self):
        memory = make_memory()
        memory.clock.set(625.0)
        assert memory.peak_bandwidth_at_clock() == pytest.approx(129.0)

    def test_effective_bandwidth_derated_by_pattern(self):
        memory = make_memory()
        assert memory.effective_bandwidth(0.5) == pytest.approx(129.0)

    def test_pattern_efficiency_must_be_positive(self):
        with pytest.raises(ValueError):
            make_memory().effective_bandwidth(0.0)

    def test_pattern_efficiency_cannot_exceed_one(self):
        with pytest.raises(ValueError):
            make_memory().effective_bandwidth(1.5)


class TestTransferTime:
    def test_one_gigabyte_at_peak(self):
        seconds = make_memory().transfer_time(258e9)
        assert seconds == pytest.approx(1.0)

    def test_zero_bytes_is_free(self):
        assert make_memory().transfer_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            make_memory().transfer_time(-1)

    def test_halved_efficiency_doubles_time(self):
        memory = make_memory()
        assert memory.transfer_time(1e9, 0.5) == pytest.approx(2 * memory.transfer_time(1e9, 1.0))


class TestBurstPadding:
    def test_small_requests_pad_to_burst(self):
        memory = make_memory()
        # 4-byte requests pay a full 64-byte burst each.
        assert memory.burst_padded_bytes(4, 1000) == 64 * 1000

    def test_large_requests_unpadded(self):
        memory = make_memory()
        assert memory.burst_padded_bytes(256, 10) == 2560


class TestAllocationLimit:
    def test_paper_xsbench_5gb_table_rejected(self):
        """The paper: 'the next step in the lookup-table size was 5 GB'
        which does not fit the R9 280X's 3 GB."""
        with pytest.raises(MemoryError):
            make_memory().check_allocation(5 * 1024**3)

    def test_240mb_table_fits(self):
        make_memory().check_allocation(240 * 1024**2)
