"""Occupancy-model tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.compute_unit import (
    Occupancy,
    latency_hiding_factor,
    occupancy,
    wavefronts_for,
)
from repro.hardware.specs import A10_7850K_GPU, R9_280X


class TestWavefrontsFor:
    def test_exact_multiple(self):
        assert wavefronts_for(640, 64) == 10

    def test_rounds_up(self):
        assert wavefronts_for(65, 64) == 2

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            wavefronts_for(0, 64)


class TestOccupancyLimits:
    def test_plenty_of_work_hits_slot_limit(self):
        occ = occupancy(R9_280X, registers_per_thread=8, lds_bytes_per_workgroup=0,
                        workgroup_size=256, total_work_items=10_000_000)
        assert occ.limited_by == "slots"
        assert occ.wavefronts_per_cu == R9_280X.max_wavefronts_per_cu

    def test_register_pressure_limits(self):
        occ = occupancy(R9_280X, registers_per_thread=128, lds_bytes_per_workgroup=0,
                        workgroup_size=256, total_work_items=10_000_000)
        assert occ.limited_by == "registers"
        assert occ.wavefronts_per_cu < R9_280X.max_wavefronts_per_cu

    def test_lds_pressure_limits(self):
        occ = occupancy(R9_280X, registers_per_thread=8,
                        lds_bytes_per_workgroup=32 * 1024,
                        workgroup_size=64, total_work_items=10_000_000)
        assert occ.limited_by == "lds"
        assert occ.wavefronts_per_cu == 2  # 64 KiB LDS / 32 KiB per group

    def test_small_launch_cannot_fill(self):
        occ = occupancy(R9_280X, registers_per_thread=8, lds_bytes_per_workgroup=0,
                        workgroup_size=64, total_work_items=64 * 32)
        assert occ.limited_by == "workitems"
        assert occ.wavefronts_per_cu == 1

    def test_lds_overflow_rejected(self):
        with pytest.raises(ValueError):
            occupancy(R9_280X, registers_per_thread=8,
                      lds_bytes_per_workgroup=128 * 1024,
                      workgroup_size=64, total_work_items=1_000_000)

    def test_bad_workgroup_size_rejected(self):
        with pytest.raises(ValueError):
            occupancy(R9_280X, registers_per_thread=8, lds_bytes_per_workgroup=0,
                      workgroup_size=100, total_work_items=1_000_000)

    def test_zero_workgroup_rejected(self):
        with pytest.raises(ValueError):
            occupancy(R9_280X, registers_per_thread=8, lds_bytes_per_workgroup=0,
                      workgroup_size=0, total_work_items=1_000_000)


class TestLatencyHiding:
    def test_monotonic_in_wavefronts(self):
        values = [
            latency_hiding_factor(Occupancy(wavefronts_per_cu=w, limited_by="slots"))
            for w in (1, 2, 4, 8, 16, 40)
        ]
        assert values == sorted(values)

    def test_saturation_near_ninety_percent(self):
        occ = Occupancy(wavefronts_per_cu=8, limited_by="slots")
        assert latency_hiding_factor(occ) == pytest.approx(0.9, abs=0.01)

    def test_bounded_by_one(self):
        occ = Occupancy(wavefronts_per_cu=40, limited_by="slots")
        assert latency_hiding_factor(occ) <= 1.0


@given(
    regs=st.integers(min_value=1, max_value=256),
    lds=st.sampled_from([0, 1024, 4096, 16384, 65536]),
    wg=st.sampled_from([64, 128, 256, 512]),
    items=st.integers(min_value=1, max_value=10_000_000),
)
@settings(max_examples=100, deadline=None)
def test_property_occupancy_within_hardware_bounds(regs, lds, wg, items):
    for gpu in (R9_280X, A10_7850K_GPU):
        occ = occupancy(gpu, registers_per_thread=regs, lds_bytes_per_workgroup=lds,
                        workgroup_size=wg, total_work_items=items)
        assert 1 <= occ.wavefronts_per_cu <= gpu.max_wavefronts_per_cu
        assert occ.limited_by in ("registers", "lds", "slots", "workitems")
        assert 0.0 < latency_hiding_factor(occ) <= 1.0
