"""Device and platform tests."""

import pytest

from repro.hardware.device import (
    CPUDevice,
    GPUDevice,
    make_apu_platform,
    make_dgpu_platform,
    make_platform,
)
from repro.hardware.specs import A10_7850K_CPU, A10_7850K_GPU, R9_280X, Precision


class TestCPUDevice:
    def test_peak_flops_all_cores(self):
        cpu = CPUDevice(spec=A10_7850K_CPU)
        assert cpu.peak_flops(Precision.SINGLE) == pytest.approx(236.8e9)

    def test_peak_flops_scales_with_threads(self):
        cpu = CPUDevice(spec=A10_7850K_CPU)
        assert cpu.peak_flops(Precision.SINGLE, threads=1) == pytest.approx(59.2e9)

    def test_threads_clamped_to_cores(self):
        cpu = CPUDevice(spec=A10_7850K_CPU)
        assert cpu.peak_flops(Precision.SINGLE, threads=16) == cpu.peak_flops(Precision.SINGLE)

    def test_double_precision_half_rate(self):
        cpu = CPUDevice(spec=A10_7850K_CPU)
        ratio = cpu.peak_flops(Precision.DOUBLE) / cpu.peak_flops(Precision.SINGLE)
        assert ratio == pytest.approx(0.5)

    def test_memory_system(self):
        memory = CPUDevice(spec=A10_7850K_CPU).memory_system()
        assert memory.peak_bandwidth_gbps == 33.0


class TestGPUDevice:
    def test_peak_flops_default_clock(self):
        gpu = GPUDevice(spec=R9_280X)
        assert gpu.peak_flops(Precision.SINGLE) == pytest.approx(3.79e12, rel=0.01)

    def test_peak_flops_follows_core_clock(self):
        gpu = GPUDevice(spec=R9_280X)
        base = gpu.peak_flops(Precision.SINGLE)
        gpu.core_clock.set(462.5)
        assert gpu.peak_flops(Precision.SINGLE) == pytest.approx(base / 2)

    def test_dp_ratio_tahiti(self):
        gpu = GPUDevice(spec=R9_280X)
        assert gpu.peak_flops(Precision.DOUBLE) == pytest.approx(gpu.peak_flops(Precision.SINGLE) / 4)

    def test_dp_ratio_kaveri(self):
        gpu = GPUDevice(spec=A10_7850K_GPU)
        assert gpu.peak_flops(Precision.DOUBLE) == pytest.approx(gpu.peak_flops(Precision.SINGLE) / 16)

    def test_reset_clocks(self):
        gpu = GPUDevice(spec=R9_280X)
        gpu.core_clock.set(300.0)
        gpu.memory_clock.set(480.0)
        gpu.reset_clocks()
        assert gpu.core_clock.current_mhz == 925.0
        assert gpu.memory_clock.current_mhz == 1250.0

    def test_memory_bandwidth_follows_memory_clock(self):
        gpu = GPUDevice(spec=R9_280X)
        gpu.memory_clock.set(625.0)
        assert gpu.memory.peak_bandwidth_at_clock() == pytest.approx(129.0)


class TestPlatforms:
    def test_dgpu_platform(self):
        platform = make_dgpu_platform()
        assert not platform.is_apu
        assert platform.gpu.spec is R9_280X
        assert platform.interconnect.transfer_time(8_000_000_000) > 0.9

    def test_apu_platform(self):
        platform = make_apu_platform()
        assert platform.is_apu
        assert platform.gpu.spec is A10_7850K_GPU
        assert platform.interconnect.transfer_time(1 << 30) == 0.0

    def test_both_share_host(self):
        assert make_dgpu_platform().host.spec is make_apu_platform().host.spec

    def test_factory_flag(self):
        assert make_platform(apu=True).is_apu
        assert not make_platform(apu=False).is_apu

    def test_fresh_resets_state(self):
        platform = make_dgpu_platform()
        platform.gpu.core_clock.set(300.0)
        platform.interconnect.transfer(1024, "h2d")
        fresh = platform.fresh()
        assert fresh.gpu.core_clock.current_mhz == 925.0
        assert fresh.interconnect.total_bytes() == 0
