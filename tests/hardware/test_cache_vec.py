"""Differential and property tests for the vectorized cache engine.

The vectorized batch simulator must be **bit-identical** to the scalar
dict-based reference on every trace and geometry: same hits, misses,
evictions and resident lines, including across persistent state carried
over multiple ``replay`` calls.  The scalar model stays in the tree as
the differential oracle; these tests are the contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.kernel import AccessKind, AccessPattern
from repro.engine.trace import generate_trace
from repro.hardware.cache import SetAssociativeCache
from repro.hardware.cache_vec import VectorSetAssociativeCache
from repro.hardware.specs import CacheSpec

LINE = 64

GEOMETRIES = {
    "tiny": CacheSpec(size_bytes=LINE * 8 * 2, line_bytes=LINE, ways=2),
    "direct-mapped": CacheSpec(size_bytes=LINE * 16, line_bytes=LINE, ways=1),
    "fully-associative": CacheSpec(size_bytes=LINE * 8, line_bytes=LINE, ways=8),
    "single-set-single-way": CacheSpec(size_bytes=LINE, line_bytes=LINE, ways=1),
    "l2-like": CacheSpec(size_bytes=768 * 1024, line_bytes=LINE, ways=16),
    "odd-line": CacheSpec(size_bytes=48 * 24 * 4, line_bytes=48, ways=4),
}


def assert_identical(spec, traces, tail_cutoff=None):
    """Replay ``traces`` through both engines on shared persistent state
    and compare every per-call delta and the cumulative counters."""
    scalar = SetAssociativeCache(spec)
    vector = VectorSetAssociativeCache(spec, tail_cutoff=tail_cutoff)
    for trace in traces:
        expected = scalar.replay(list(trace))
        actual = vector.replay(np.asarray(trace, dtype=np.int64))
        assert actual == expected
    assert vector.stats == scalar.stats
    assert vector.resident_lines == scalar.resident_lines


class TestDifferential:
    @pytest.mark.parametrize("name", sorted(GEOMETRIES))
    def test_random_traces(self, name):
        spec = GEOMETRIES[name]
        rng = np.random.default_rng(7)
        span = 8 * spec.size_bytes
        traces = [rng.integers(0, span, size=n) for n in (1, 7, 500, 3000)]
        assert_identical(spec, traces)

    @pytest.mark.parametrize("cutoff", [0, 3, 10**9])
    def test_round_tail_split_is_exact(self, cutoff):
        """Any round/scalar-tail split point gives identical stats:
        0 = pure round loop, huge = pure scalar tail."""
        spec = GEOMETRIES["tiny"]
        rng = np.random.default_rng(11)
        traces = [rng.integers(0, 4 * spec.size_bytes, size=2000) for _ in range(2)]
        assert_identical(spec, traces, tail_cutoff=cutoff)

    def test_wide_tags_fall_back_exactly(self):
        """Addresses near 2**60 force tags too wide for the packed
        round state; the unpacked fallback must stay bit-identical."""
        spec = GEOMETRIES["tiny"]
        rng = np.random.default_rng(13)
        base = 1 << 60
        traces = [base + rng.integers(0, 4 * spec.size_bytes, size=1500)]
        assert_identical(spec, traces)

    def test_skewed_set_pressure(self):
        """One scorching set plus a uniform background — the shape that
        exercises the depth-ascending row compaction."""
        spec = GEOMETRIES["l2-like"]
        rng = np.random.default_rng(17)
        hot = rng.integers(0, 4, size=4000) * spec.line_bytes * spec.sets
        cold = rng.integers(0, 8 * spec.size_bytes, size=4000)
        trace = np.where(rng.random(4000) < 0.5, hot, cold)
        assert_identical(spec, [trace])

    @pytest.mark.parametrize("kind", list(AccessKind))
    def test_kernel_traces(self, kind):
        overrides = {"table_entries": 1 << 14} if kind is AccessKind.BINARY_SEARCH else {}
        pattern = AccessPattern(
            kind=kind, working_set_bytes=2 * 1024 * 1024, request_bytes=4, **overrides
        )
        trace = generate_trace(pattern, budget=6000)
        assert_identical(GEOMETRIES["l2-like"], [trace])
        assert_identical(GEOMETRIES["tiny"], [trace])

    def test_single_access_matches(self):
        spec = GEOMETRIES["direct-mapped"]
        scalar = SetAssociativeCache(spec)
        vector = VectorSetAssociativeCache(spec)
        for addr in (0, 0, LINE, 0, 17 * LINE, LINE):
            assert vector.access(addr) == scalar.access(addr)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=400))
    def test_hypothesis_traces(self, addresses):
        assert_identical(GEOMETRIES["tiny"], [addresses])


class TestProperties:
    @pytest.mark.parametrize("name", sorted(GEOMETRIES))
    def test_counters_conserved(self, name):
        spec = GEOMETRIES[name]
        rng = np.random.default_rng(23)
        cache = VectorSetAssociativeCache(spec)
        for n in (100, 2000):
            cache.replay(rng.integers(0, 8 * spec.size_bytes, size=n))
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert 0 <= cache.resident_lines <= spec.sets * spec.ways
        # Lines enter on misses and leave on evictions; nothing else.
        assert stats.misses - stats.evictions == cache.resident_lines

    def test_replay_returns_per_call_delta(self):
        spec = GEOMETRIES["tiny"]
        cache = VectorSetAssociativeCache(spec)
        first = cache.replay([0, 0, LINE])
        second = cache.replay([0])
        assert (first.accesses, first.hits) == (3, 1)
        assert (second.accesses, second.hits) == (1, 1)
        assert cache.stats.accesses == 4

    def test_reset_clears_state(self):
        cache = VectorSetAssociativeCache(GEOMETRIES["tiny"])
        cache.replay([0, LINE, 2 * LINE])
        cache.reset()
        assert cache.resident_lines == 0
        assert cache.stats == type(cache.stats)()
        assert cache.replay([0]).misses == 1

    def test_negative_address_rejected(self):
        cache = VectorSetAssociativeCache(GEOMETRIES["tiny"])
        with pytest.raises(ValueError):
            cache.replay([0, -1])

    def test_empty_replay(self):
        cache = VectorSetAssociativeCache(GEOMETRIES["tiny"])
        delta = cache.replay([])
        assert delta.accesses == 0


class TestScalarArrayInput:
    def test_scalar_replay_accepts_numpy(self):
        """The reference engine takes the same array-native traces."""
        spec = GEOMETRIES["tiny"]
        rng = np.random.default_rng(29)
        trace = rng.integers(0, 4 * spec.size_bytes, size=1000)
        from_list = SetAssociativeCache(spec)
        from_array = SetAssociativeCache(spec)
        assert from_array.replay(trace) == from_list.replay(trace.tolist())
