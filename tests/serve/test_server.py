"""End-to-end loopback tests of the prediction service."""

import asyncio
import json

import pytest

from repro.apps import APPS_BY_NAME
from repro.core.configs import bench_configs
from repro.core.study import GPU_MODELS, run_study
from repro.hardware.specs import Precision
from repro.obs.metrics import parse_prometheus
from repro.serve import ServeConfig, Server, ServerThread

from .conftest import request

XSBENCH_STUDY_BODY = {"apps": ["XSBench"], "scale": "bench"}


@pytest.fixture(scope="module")
def xsbench_study():
    """Direct batch-pipeline output to compare HTTP responses against."""
    return run_study(
        (APPS_BY_NAME["XSBench"],), paper_scale=True, configs=bench_configs()
    )


# -- bit-identity ------------------------------------------------------


def test_predict_is_bit_identical_to_run_study(server, xsbench_study):
    """Every matrix cell served over HTTP equals the batch pipeline."""
    for model in GPU_MODELS:
        for apu in (True, False):
            for precision in (Precision.SINGLE, Precision.DOUBLE):
                status, _headers, doc = request(server, "POST", "/v1/predict", {
                    "app": "XSBench", "model": model,
                    "platform": "apu" if apu else "dgpu",
                    "precision": precision.value, "scale": "bench",
                })
                assert status == 200
                entry = xsbench_study.get("XSBench", model, apu, precision)
                assert doc["seconds"] == entry.seconds
                assert doc["kernel_seconds"] == entry.kernel_seconds
                assert doc["baseline_seconds"] == entry.baseline_seconds
                assert doc["speedup"] == entry.speedup
                assert doc["version"] == "v1"


def test_study_route_is_bit_identical_to_run_study(server, xsbench_study):
    status, _headers, doc = request(server, "POST", "/v1/study", XSBENCH_STUDY_BODY)
    assert status == 200
    assert len(doc["entries"]) == len(xsbench_study.entries)
    for served in doc["entries"]:
        entry = xsbench_study.get(
            served["app"], served["model"], served["platform"] == "APU",
            Precision(served["precision"]),
        )
        assert served["seconds"] == entry.seconds
        assert served["speedup"] == entry.speedup
        assert served["baseline_seconds"] == entry.baseline_seconds
    assert sum(doc["served"].values()) == 16  # 4 cells x (1 baseline + 3 models)


def test_predict_provenance_progresses_to_cache(server):
    body = {"app": "CoMD", "model": "OpenCL", "platform": "dgpu",
            "precision": "double"}
    _status, _headers, cold = request(server, "POST", "/v1/predict", body)
    _status, _headers, warm = request(server, "POST", "/v1/predict", body)
    assert cold["provenance"]["model"] == "computed"
    assert warm["provenance"] == {"baseline": "cache", "model": "cache"}
    assert warm["seconds"] == cold["seconds"]
    assert warm["key"] == cold["key"]


# -- pricing engines ----------------------------------------------------


def test_cold_study_engages_the_columnar_path():
    """A cold ``/v1/study`` on the default (vector) engine prices its
    misses through the whole-batch columnar call — and stays
    bit-identical to the direct pipeline, which the tests above check
    against the same default server."""
    with ServerThread(ServeConfig(window_s=0.001, engine="vector")) as thread:
        status, _headers, doc = request(thread, "POST", "/v1/study", XSBENCH_STUDY_BODY)
        assert status == 200
        _status, _headers, text = request(thread, "GET", "/metrics")
        samples = parse_prometheus(text)
        # All 16 unique cold cells (4 baselines + 12 model runs) went
        # through the columnar path, across however many batch windows.
        assert sum(v for _labels, v in samples["repro_serve_columnar_specs_total"]) == 16


def test_scalar_engine_serves_identical_entries(xsbench_study):
    """``engine="scalar"`` disables the columnar path entirely and
    serves the same bits."""
    with ServerThread(ServeConfig(window_s=0.001, engine="scalar")) as thread:
        status, _headers, doc = request(thread, "POST", "/v1/study", XSBENCH_STUDY_BODY)
        assert status == 200
        assert len(doc["entries"]) == len(xsbench_study.entries)
        for served in doc["entries"]:
            entry = xsbench_study.get(
                served["app"], served["model"], served["platform"] == "APU",
                Precision(served["precision"]),
            )
            assert served["seconds"] == entry.seconds
            assert served["speedup"] == entry.speedup
        _status, _headers, text = request(thread, "GET", "/metrics")
        assert "repro_serve_columnar_specs_total" not in parse_prometheus(text)


# -- operational endpoints ---------------------------------------------


def test_health_and_readiness(server):
    assert request(server, "GET", "/healthz")[0] == 200
    status, _headers, doc = request(server, "GET", "/readyz")
    assert status == 200 and doc == {"status": "ready"}


def test_metrics_exposition_is_valid_and_consistent(server):
    request(server, "POST", "/v1/predict", {
        "app": "XSBench", "model": "OpenCL", "platform": "apu",
        "precision": "single",
    })
    status, headers, text = request(server, "GET", "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    samples = parse_prometheus(text)
    assert any(
        'route="predict"' in labels and 'status="200"' in labels
        for labels, _value in samples["repro_serve_requests_total"]
    )
    assert "repro_memo_singleflight_coalesced_total" in samples
    assert "repro_serve_queue_depth" in samples
    assert "repro_memo_hit_ratio" in samples
    # Histogram self-consistency: the +Inf bucket equals _count.
    inf = {
        labels: value
        for labels, value in samples["repro_serve_latency_seconds_bucket"]
        if '+Inf' in labels
    }
    counts = dict(samples["repro_serve_latency_seconds_count"])
    for labels, total in counts.items():
        matching = [v for k, v in inf.items() if labels.strip("{}") in k]
        assert matching and matching[0] == total


# -- error handling ----------------------------------------------------


def test_bad_routes_and_methods(server):
    assert request(server, "GET", "/nope")[0] == 404
    assert request(server, "GET", "/v1/predict")[0] == 405
    status, _headers, doc = request(server, "POST", "/v1/predict", {"app": "bogus"})
    assert status == 400
    assert "unknown app" in doc["error"]["message"]


def test_malformed_json_is_a_400(server):
    import http.client
    from urllib.parse import urlsplit

    split = urlsplit(server.url)
    conn = http.client.HTTPConnection(split.hostname, split.port, timeout=30)
    try:
        conn.request("POST", "/v1/predict", body="{not json")
        response = conn.getresponse()
        doc = json.loads(response.read())
        assert response.status == 400
        assert "not valid JSON" in doc["error"]["message"]
    finally:
        conn.close()


# -- admission control, deadlines, drain --------------------------------


def test_overload_sheds_with_429_and_retry_after():
    with ServerThread(ServeConfig(window_s=0.001, max_queue=0)) as thread:
        status, headers, doc = request(thread, "POST", "/v1/predict", {
            "app": "XSBench", "model": "OpenCL", "platform": "apu",
            "precision": "single",
        })
        assert status == 429
        assert headers["Retry-After"] == "1"
        assert "admission queue full" in doc["error"]["message"]
        _status, _headers, text = request(thread, "GET", "/metrics")
        samples = parse_prometheus(text)
        assert samples["repro_serve_shed_total"][0][1] == 1
        # Operational endpoints are never shed.
        assert request(thread, "GET", "/healthz")[0] == 200


def test_deadline_overrun_is_a_504():
    with ServerThread(ServeConfig(window_s=0.001, deadline_s=0.0)) as thread:
        status, _headers, doc = request(thread, "POST", "/v1/predict", {
            "app": "XSBench", "model": "OpenCL", "platform": "apu",
            "precision": "single",
        })
        assert status == 504
        assert "deadline" in doc["error"]["message"]


def test_graceful_drain_finishes_in_flight_work():
    """Shutdown waits for admitted requests and then refuses new ones."""
    async def main():
        server = Server(ServeConfig(window_s=0.001))
        await server.start()
        port = server.port
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        body = json.dumps({
            "app": "LULESH", "model": "OpenACC", "platform": "apu",
            "precision": "single",
        }).encode()
        writer.write(
            (f"POST /v1/predict HTTP/1.1\r\nHost: x\r\n"
             f"Content-Length: {len(body)}\r\n\r\n").encode() + body
        )
        await writer.drain()
        await asyncio.sleep(0.01)  # let the request be admitted
        shutdown = asyncio.ensure_future(server.shutdown())
        head = await reader.readuntil(b"\r\n\r\n")
        status = int(head.split(b" ")[1])
        await shutdown
        writer.close()
        # The listener is closed: new connections must fail.
        with pytest.raises(OSError):
            await asyncio.open_connection("127.0.0.1", port)
        return status

    assert asyncio.run(main()) == 200


def test_readyz_flips_to_503_while_draining():
    async def main():
        server = Server(ServeConfig(window_s=0.001))
        await server.start()
        # A keep-alive connection opened before the drain begins.
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        server._draining = True
        writer.write(b"GET /readyz HTTP/1.1\r\nHost: x\r\n\r\n")
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        writer.close()
        server._draining = False
        await server.shutdown()
        return int(head.split(b" ")[1])

    assert asyncio.run(main()) == 503
