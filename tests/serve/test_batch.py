"""The ``/v1/batch`` bulk endpoint: caps, validation, bit-identity.

Bulk cells bypass the micro-batch window (straight to columnar
pricing) but must serve exactly the bytes the study pipeline computes.
"""

import pytest

from repro.apps import APPS_BY_NAME
from repro.core.configs import bench_configs
from repro.core.study import GPU_MODELS, run_study
from repro.hardware.specs import Precision
from repro.obs.metrics import parse_prometheus
from repro.serve import ServeConfig, ServerThread

from .conftest import request


def _cell(model: str, platform: str = "dgpu", precision: str = "single") -> dict:
    return {"app": "XSBench", "model": model, "platform": platform,
            "precision": precision, "scale": "bench"}


@pytest.fixture(scope="module")
def xsbench_study():
    return run_study(
        (APPS_BY_NAME["XSBench"],), paper_scale=True, configs=bench_configs()
    )


# -- bit-identity -------------------------------------------------------


def test_batch_is_bit_identical_to_run_study(server, xsbench_study):
    """Every cell of the full matrix — models and the OpenMP baseline —
    priced in one bulk call equals the batch pipeline."""
    cells = []
    for platform in ("apu", "dgpu"):
        for precision in ("single", "double"):
            cells.append(_cell("OpenMP", platform, precision))
            cells.extend(_cell(m, platform, precision) for m in GPU_MODELS)
    status, _headers, doc = request(server, "POST", "/v1/batch", {"cells": cells})
    assert status == 200
    assert doc["count"] == len(cells)
    assert [r["model"] for r in doc["results"]] == [c["model"] for c in cells]
    for cell, served in zip(cells, doc["results"]):
        entry = xsbench_study.get(
            "XSBench",
            cell["model"] if cell["model"] != "OpenMP" else GPU_MODELS[0],
            cell["platform"] == "apu",
            Precision(cell["precision"]),
        )
        if cell["model"] == "OpenMP":
            assert served["seconds"] == entry.baseline_seconds
        else:
            assert served["seconds"] == entry.seconds
            assert served["kernel_seconds"] == entry.kernel_seconds


def test_batch_bypasses_the_micro_batch_window(server):
    status, _headers, _doc = request(
        server, "POST", "/v1/batch",
        {"cells": [_cell(m) for m in GPU_MODELS]},
    )
    assert status == 200
    _status, _headers, text = request(server, "GET", "/metrics")
    samples = parse_prometheus(text)
    assert sum(v for _l, v in samples["repro_serve_bulk_batches_total"]) >= 1


def test_repeated_batch_serves_entirely_from_cache(server):
    body = {"cells": [_cell(m) for m in GPU_MODELS]}
    request(server, "POST", "/v1/batch", body)
    _status, _headers, doc = request(server, "POST", "/v1/batch", body)
    assert doc["served"] == {"cache": len(GPU_MODELS)}
    assert all(r["provenance"] == "cache" for r in doc["results"])


# -- validation ---------------------------------------------------------


def test_malformed_cell_error_names_its_index(server):
    cells = [_cell("OpenCL"), {"app": "XSBench", "model": "NoSuchModel"}]
    status, _headers, doc = request(server, "POST", "/v1/batch", {"cells": cells})
    assert status == 400
    assert "cells[1]" in doc["error"]["message"]


def test_empty_and_non_array_cells_are_rejected(server):
    for body in ({"cells": []}, {"cells": "OpenCL"}, {}, [1, 2]):
        status, _headers, doc = request(server, "POST", "/v1/batch", body)
        assert status == 400, body
        assert "error" in doc


# -- size caps (413) ----------------------------------------------------


def test_batch_over_the_configured_cap_is_413():
    config = ServeConfig(window_s=0.001, max_batch_cells=4)
    with ServerThread(config) as thread:
        cells = [_cell("OpenCL")] * 5
        status, _headers, doc = request(thread, "POST", "/v1/batch", {"cells": cells})
        assert status == 413
        message = doc["error"]["message"]
        assert "limit" in message and "split" in message
        # At the cap is fine.
        status, _h, _d = request(thread, "POST", "/v1/batch", {"cells": cells[:4]})
        assert status == 200


def test_study_over_the_env_cap_is_413(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_MAX_STUDY_RUNS", "8")
    with ServerThread(ServeConfig(window_s=0.001)) as thread:
        # One app expands to 16 runs (4 cells x 1 baseline + 3 models).
        status, _headers, doc = request(
            thread, "POST", "/v1/study", {"apps": ["XSBench"], "scale": "bench"}
        )
        assert status == 413
        assert "16" in doc["error"]["message"] and "8" in doc["error"]["message"]


def test_config_cap_beats_the_protocol_default():
    config = ServeConfig(window_s=0.001, max_study_runs=16)
    with ServerThread(config) as thread:
        status, _h, _d = request(
            thread, "POST", "/v1/study", {"apps": ["XSBench"], "scale": "bench"}
        )
        assert status == 200  # exactly at the cap
        status, _h, doc = request(
            thread, "POST", "/v1/study",
            {"apps": ["XSBench", "LULESH"], "scale": "bench"},
        )
        assert status == 413
