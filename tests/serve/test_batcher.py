"""Micro-batching, single-flight coalescing, and drain semantics."""

import asyncio

import pytest

from repro.engine.memo import SingleFlightCache
from repro.obs.metrics import MetricsRegistry
from repro.serve import Batcher, PredictRequest
from repro.serve.batcher import CACHED, COALESCED, COMPUTED


def _spec(model="OpenCL", platform="apu", precision="single"):
    request = PredictRequest.from_json({
        "app": "XSBench", "model": model, "platform": platform,
        "precision": precision,
    })
    return request.specs()[1]


def _batcher(**kwargs):
    kwargs.setdefault("window_s", 0.001)
    kwargs.setdefault("metrics", MetricsRegistry())
    kwargs.setdefault("cache", SingleFlightCache())
    return Batcher(**kwargs)


def test_submit_computes_then_serves_from_cache():
    async def main():
        batcher = _batcher()
        spec = _spec()
        first, prov_first = await batcher.submit(spec)
        second, prov_second = await batcher.submit(spec)
        await batcher.drain()
        assert prov_first == COMPUTED
        assert prov_second == CACHED
        # Same cached object: bit-identity is trivially guaranteed.
        assert second is first
    asyncio.run(main())


def test_concurrent_identical_submits_coalesce():
    async def main():
        batcher = _batcher(window_s=0.05)
        spec = _spec()
        outcomes = await asyncio.gather(*(batcher.submit(spec) for _ in range(5)))
        await batcher.drain()
        return batcher, outcomes
    batcher, outcomes = asyncio.run(main())
    labels = [label for _result, label in outcomes]
    assert labels.count(COMPUTED) == 1
    assert labels.count(COALESCED) == 4
    assert batcher.cache.coalesced == 4
    results = {id(result) for result, _label in outcomes}
    assert len(results) == 1  # one engine run answered everyone


def test_distinct_specs_merge_into_one_batch():
    async def main():
        batcher = _batcher(window_s=0.05)
        specs = [_spec(model=m) for m in ("OpenCL", "C++ AMP", "OpenACC")]
        await batcher.submit_many(specs)
        await batcher.drain()
        return batcher
    batcher = asyncio.run(main())
    batches = batcher.metrics.get("repro_serve_batches_total")
    assert batches is not None and batches.value == 1
    _counts, total, count = batcher.metrics.get(
        "repro_serve_batch_size"
    ).snapshot()
    assert count == 1 and total == 3  # one batch of three specs


def test_full_batch_flushes_before_window():
    async def main():
        batcher = _batcher(window_s=60.0, max_batch=2)
        specs = [_spec(model=m) for m in ("OpenCL", "C++ AMP")]
        # A 60 s window would time the test out unless max_batch flushes.
        await asyncio.wait_for(batcher.submit_many(specs), timeout=30)
        await batcher.drain()
    asyncio.run(main())


def test_backend_failure_propagates_and_is_not_cached():
    class Boom(RuntimeError):
        pass

    async def main():
        # Scalar engine: the columnar path would price this eligible
        # spec before _compute is ever consulted.
        batcher = _batcher(engine="scalar")
        spec = _spec()
        real_compute = batcher._compute
        calls = {"n": 0}

        def failing_compute(spec):
            calls["n"] += 1
            raise Boom("engine exploded")

        batcher._compute = failing_compute
        with pytest.raises(Boom):
            await batcher.submit(spec)
        # The failure must not poison the cache: a retry recomputes.
        batcher._compute = real_compute
        _result, label = await batcher.submit(spec)
        await batcher.drain()
        assert calls["n"] == 1
        assert label == COMPUTED
    asyncio.run(main())


def test_drain_rejects_cold_work_but_serves_cache():
    async def main():
        batcher = _batcher()
        spec = _spec()
        await batcher.submit(spec)
        await batcher.drain()
        # Warm answers still work (pure cache lookup) ...
        _result, label = await batcher.submit(spec)
        assert label == CACHED
        # ... but cold specs are refused.
        with pytest.raises(RuntimeError, match="draining"):
            await batcher.submit(_spec(model="C++ AMP"))
    asyncio.run(main())


def test_columnar_failure_falls_back_to_scalar(monkeypatch):
    """A broken columnar path must never lose a request: the batcher
    silently reverts the whole batch to the scalar retry ladder."""
    import repro.engine.study_vec as study_vec

    def boom(specs):
        raise RuntimeError("injected columnar failure")

    monkeypatch.setattr(study_vec, "price_specs", boom)

    async def main():
        batcher = _batcher(engine="vector")
        result, label = await batcher.submit(_spec())
        await batcher.drain()
        return result, label

    result, label = asyncio.run(main())
    assert label == COMPUTED
    assert result.seconds > 0


def test_vector_batcher_counts_columnar_specs():
    """Cold eligible specs are tallied by the columnar counter; a
    scalar batcher never creates it."""

    async def main(engine):
        metrics = MetricsRegistry()
        batcher = _batcher(metrics=metrics, engine=engine, window_s=0.05)
        await asyncio.gather(
            batcher.submit(_spec()), batcher.submit(_spec(model="OpenACC"))
        )
        await batcher.drain()
        return metrics

    vector = asyncio.run(main("vector"))
    assert vector.counter("repro_serve_columnar_specs_total").value == 2
    scalar = asyncio.run(main("scalar"))
    assert scalar.counter("repro_serve_columnar_specs_total").value == 0
