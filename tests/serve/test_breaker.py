"""Circuit breaker and retry budget state machines, on a fake clock."""

import pytest

from repro.serve.breaker import (
    BREAKER_STATE_VALUES,
    BreakerState,
    CircuitBreaker,
    RetryBudget,
)


class Clock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


def make(failures=3, reset_s=2.0, transitions=None):
    clock = Clock()
    breaker = CircuitBreaker(
        failures=failures, reset_s=reset_s, clock=clock,
        on_transition=(
            (lambda old, new: transitions.append((old.value, new.value)))
            if transitions is not None else None
        ),
    )
    return breaker, clock


def test_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failures=0)
    with pytest.raises(ValueError):
        CircuitBreaker(reset_s=-1.0)


def test_closed_tolerates_sub_threshold_failures():
    breaker, _clock = make(failures=3)
    for _ in range(2):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED
    breaker.record_success()        # success resets the consecutive count
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED


def test_consecutive_failures_open_the_breaker():
    transitions = []
    breaker, clock = make(failures=3, transitions=transitions)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens == 1
    assert not breaker.allow()       # fail fast
    clock.now += 1.9
    assert not breaker.allow()       # still inside reset_s
    assert transitions == [("closed", "open")]


def test_half_open_admits_one_probe_then_decides():
    breaker, clock = make(failures=1, reset_s=2.0)
    breaker.record_failure()
    clock.now += 2.0
    assert breaker.allow()           # the half-open probe
    assert breaker.state is BreakerState.HALF_OPEN
    assert not breaker.allow()       # no thundering herd on recovery
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow()


def test_failed_probe_reopens():
    breaker, clock = make(failures=1, reset_s=2.0)
    breaker.record_failure()
    clock.now += 2.0
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens == 2
    assert not breaker.allow()
    clock.now += 2.0
    assert breaker.allow()           # probes again after another reset_s


def test_to_json_and_gauge_encoding():
    breaker, _clock = make(failures=2)
    breaker.record_failure()
    assert breaker.to_json() == {
        "state": "closed", "opens": 0, "consecutive_failures": 1,
    }
    assert BREAKER_STATE_VALUES[BreakerState.CLOSED] == 0.0
    assert BREAKER_STATE_VALUES[BreakerState.OPEN] == 2.0


def test_retry_budget_starts_full_and_drains():
    budget = RetryBudget(ratio=0.1, cap=3.0)
    assert [budget.spend() for _ in range(4)] == [True, True, True, False]
    assert budget.exhausted == 1
    assert budget.tokens == 0.0


def test_retry_budget_earns_back_on_success():
    budget = RetryBudget(ratio=0.5, cap=2.0)
    while budget.spend():
        pass
    budget.earn()
    assert not budget.spend()        # half a token is not a retry
    budget.earn()
    assert budget.spend()
    for _ in range(10):
        budget.earn()
    assert budget.tokens == 2.0      # capped


def test_retry_budget_validation():
    with pytest.raises(ValueError):
        RetryBudget(ratio=-0.1)
    with pytest.raises(ValueError):
        RetryBudget(cap=0.5)
