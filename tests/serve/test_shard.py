"""The sharded tier: routing, fan-out, aggregation, restart drill.

One module-scoped two-shard tier over a shared store (shard processes
cost ~1 s each to boot); every test drives the router's loopback URL
through the same helper the single-server tests use.
"""

import pytest

from repro.apps import APPS_BY_NAME
from repro.core.configs import bench_configs
from repro.core.study import GPU_MODELS, run_study
from repro.hardware.specs import Precision
from repro.serve import ServeConfig, ShardedTier, shard_for_key
from repro.serve.protocol import PredictRequest

from .conftest import request

XSBENCH_STUDY_BODY = {"apps": ["XSBench"], "scale": "bench"}


def _cell(app: str, model: str, platform: str, precision: str) -> dict:
    return {"app": app, "model": model, "platform": platform,
            "precision": precision, "scale": "bench"}


# -- the routing function ----------------------------------------------


def test_shard_for_key_is_deterministic_and_in_range():
    spec, _model = PredictRequest.from_json(
        _cell("XSBench", "OpenCL", "dgpu", "single")
    ).specs()
    key = spec.content_key()
    for shards in (1, 2, 3, 7):
        owner = shard_for_key(key, shards)
        assert 0 <= owner < shards
        assert owner == shard_for_key(key, shards)  # stable


def test_shard_for_key_spreads_the_preset_lattice():
    from repro.serve.warmup import preset_specs

    owners = {shard_for_key(spec.content_key(), 2) for spec in preset_specs()}
    assert owners == {0, 1}  # both shards own work


def test_shard_for_key_rejects_zero_shards():
    with pytest.raises(ValueError):
        shard_for_key("ab" * 32, 0)


# -- the live tier ------------------------------------------------------


@pytest.fixture(scope="module")
def tier(tmp_path_factory):
    config = ServeConfig(
        window_s=0.001, store_path=str(tmp_path_factory.mktemp("store")),
        warm="load",
    )
    with ShardedTier(config, shards=2) as tier:
        yield tier


@pytest.fixture(scope="module")
def xsbench_study():
    return run_study(
        (APPS_BY_NAME["XSBench"],), paper_scale=True, configs=bench_configs()
    )


def test_predict_through_the_router_is_bit_identical(tier, xsbench_study):
    for model in GPU_MODELS:
        status, _headers, doc = request(
            tier, "POST", "/v1/predict", _cell("XSBench", model, "dgpu", "double")
        )
        assert status == 200
        entry = xsbench_study.get("XSBench", model, False, Precision.DOUBLE)
        assert doc["seconds"] == entry.seconds
        assert doc["baseline_seconds"] == entry.baseline_seconds
        assert doc["speedup"] == entry.speedup


def test_study_fans_out_and_reassembles_bit_identically(tier, xsbench_study):
    status, _headers, doc = request(tier, "POST", "/v1/study", XSBENCH_STUDY_BODY)
    assert status == 200
    assert len(doc["entries"]) == len(xsbench_study.entries)
    for served in doc["entries"]:
        entry = xsbench_study.get(
            served["app"], served["model"], served["platform"] == "APU",
            Precision(served["precision"]),
        )
        assert served["seconds"] == entry.seconds
        assert served["kernel_seconds"] == entry.kernel_seconds
        assert served["baseline_seconds"] == entry.baseline_seconds
        assert served["speedup"] == entry.speedup


def test_batch_scatter_gather_preserves_cell_order(tier):
    cells = [
        _cell("XSBench", model, platform, precision)
        for model in GPU_MODELS
        for platform in ("apu", "dgpu")
        for precision in ("single", "double")
    ]
    status, _headers, doc = request(tier, "POST", "/v1/batch", {"cells": cells})
    assert status == 200
    assert doc["count"] == len(cells)
    echoed = [(r["model"], r["platform"], r["precision"]) for r in doc["results"]]
    assert echoed == [(c["model"], c["platform"], c["precision"]) for c in cells]
    assert sum(doc["served"].values()) == len(cells)


def test_health_readiness_and_shard_listing(tier):
    status, _headers, _doc = request(tier, "GET", "/healthz")
    assert status == 200
    status, _headers, doc = request(tier, "GET", "/readyz")
    assert status == 200
    assert doc["status"] == "ready"
    assert [probe["status"] for probe in doc["shards"]] == [200, 200]
    status, _headers, doc = request(tier, "GET", "/v1/shards")
    assert status == 200
    assert doc["count"] == 2
    assert len(doc["shards"]) == 2


def test_restart_drill_serves_warm_with_zero_cold_misses(tier):
    """Bounce shard 0 mid-tier; the replacement must answer the whole
    previously-priced mix from its store-loaded cache — the zero
    cold-start guarantee the bench gate enforces."""
    cells = [
        _cell("XSBench", model, platform, precision)
        for model in GPU_MODELS
        for platform in ("apu", "dgpu")
        for precision in ("single", "double")
    ]
    # Price (and persist) everything first.
    status, _h, _d = request(tier, "POST", "/v1/batch", {"cells": cells})
    assert status == 200

    status, _headers, doc = request(tier, "POST", "/v1/admin/restart", {"shard": 0})
    assert status == 200
    assert doc["shard"] == 0

    status, _headers, doc = request(tier, "POST", "/v1/batch", {"cells": cells})
    assert status == 200
    assert "computed" not in doc["served"]  # zero cold misses
    assert set(doc["served"]) <= {"cache", "store"}

    status, _headers, doc = request(tier, "GET", "/v1/shards")
    assert doc["restarts"] == 1


def test_oversize_batch_through_the_router_is_413(tier):
    cells = [_cell("XSBench", "OpenCL", "dgpu", "single")] * 513
    status, _headers, doc = request(tier, "POST", "/v1/batch", {"cells": cells})
    assert status == 413
    assert "split" in doc["error"]["message"]


def test_malformed_request_through_the_router_is_400(tier):
    status, _headers, doc = request(
        tier, "POST", "/v1/predict", {"app": "NoSuchApp", "model": "OpenCL"}
    )
    assert status == 400
    assert "NoSuchApp" in doc["error"]["message"]


def test_unknown_route_is_404(tier):
    status, _headers, _doc = request(tier, "GET", "/v1/nope")
    assert status == 404
