"""The self-healing tier, live: kill, crash-loop, quarantine, repair.

One module-scoped two-shard tier with drill-speed supervision (50 ms
probes, tens-of-ms backoff, a two-attempt quarantine window) so the
whole recovery ladder runs in seconds.  Throughout every test the
correctness bar is absolute: any 200 must carry exactly the same
numbers as the first (healthy) answer — failures may slow the tier
down or degrade its provenance, never change its arithmetic.
"""

import time

import pytest

from repro.serve import RouterConfig, ServeConfig, ShardedTier, shard_for_key
from repro.serve.faults import ENV_SERVE_FAULTS
from repro.serve.protocol import PredictRequest
from repro.serve.supervise import SupervisionPolicy

from .conftest import request

FAST_POLICY = SupervisionPolicy(
    probe_interval_s=0.05,
    probe_timeout_s=0.5,
    probe_failures=2,
    backoff_base_s=0.01,
    backoff_factor=2.0,
    backoff_cap_s=0.05,
    quarantine_after=2,
    quarantine_window_s=8.0,
    quarantine_cooldown_s=0.8,
)

FAST_ROUTER = RouterConfig(deadline_s=2.0, breaker_reset_s=0.25)

#: The comparable numbers of a predict response.
FIELDS = ("seconds", "kernel_seconds", "baseline_seconds",
          "speedup", "kernel_speedup", "key")


@pytest.fixture(scope="module")
def tier(tmp_path_factory):
    config = ServeConfig(
        window_s=0.001, store_path=str(tmp_path_factory.mktemp("store")),
        warm="load",
    )
    with ShardedTier(
        config, shards=2, router=FAST_ROUTER, policy=FAST_POLICY
    ) as tier:
        yield tier


def _cell_owned_by(shard: int) -> dict:
    """A predict body whose model spec routes to the given shard."""
    from repro.core.study import GPU_MODELS

    for model in GPU_MODELS:
        for platform in ("apu", "dgpu"):
            for precision in ("single", "double"):
                cell = {"app": "XSBench", "model": model, "platform": platform,
                        "precision": precision, "scale": "bench"}
                spec = PredictRequest.from_json(cell).specs()[1]
                if shard_for_key(spec.content_key(), 2) == shard:
                    return cell
    raise AssertionError(f"no XSBench cell routes to shard {shard}")


def _member(tier, shard: int) -> dict:
    status, _headers, doc = request(tier, "GET", "/v1/shards")
    assert status == 200
    return next(m for m in doc["shards"] if m["shard"] == shard)


def _predict_expecting(tier, cell: dict, expected: dict | None) -> dict:
    """One predict that must succeed and must not change its numbers."""
    status, _headers, doc = request(tier, "POST", "/v1/predict", cell)
    assert status == 200, doc
    if expected is not None:
        got = {name: doc[name] for name in FIELDS}
        assert got == expected
    return doc


def _wait_until(tier, cell, predicate, timeout_s: float, expected) -> None:
    """Drive predict traffic (checked for bit-identity) until the shard
    listing satisfies the predicate; supervision and breakers need live
    traffic to make progress observable."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _predict_expecting(tier, cell, expected)
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"tier did not reach the expected state in {timeout_s} s")


def test_shard_listing_reports_health_and_breaker_detail(tier):
    status, _headers, doc = request(tier, "GET", "/v1/shards")
    assert status == 200
    for member in doc["shards"]:
        assert member["state"] == "serving"
        assert member["alive"]
        assert member["respawns"] == 0
        assert member["quarantines"] == 0
        assert member["breaker"]["state"] == "closed"
        assert member["breaker"]["opens"] == 0


def test_killed_shard_respawns_and_range_is_served_meanwhile(tier):
    shard = 0
    cell = _cell_owned_by(shard)
    expected = {
        name: _predict_expecting(tier, cell, None)[name] for name in FIELDS
    }

    tier.supervisor._shards[shard].process.kill()

    # Until the supervisor's replacement is up, the owner's key range
    # keeps answering — degraded local pricing behind the breaker —
    # with exactly the same numbers.
    _wait_until(
        tier, cell,
        lambda: (
            _member(tier, shard)["respawns"] >= 1
            and _member(tier, shard)["state"] == "serving"
        ),
        timeout_s=60.0, expected=expected,
    )
    # And the router re-homes: direct calls resume and the breaker closes.
    _wait_until(
        tier, cell,
        lambda: _member(tier, shard)["breaker"]["state"] == "closed",
        timeout_s=30.0, expected=expected,
    )


def test_crash_loop_is_quarantined_then_rehabilitated(tier, monkeypatch):
    shard = 1
    cell = _cell_owned_by(shard)
    expected = {
        name: _predict_expecting(tier, cell, None)[name] for name in FIELDS
    }

    # Arm a crash-every-request plan for this shard in the tier's
    # environment: the *currently running* generation was spawned
    # disarmed, but every respawn inherits the environment — exactly
    # how a bad deploy keeps crashing its replacements.
    monkeypatch.setenv(ENV_SERVE_FAULTS, f"crash:1,shard:{shard}")
    tier.supervisor._shards[shard].process.kill()

    _wait_until(
        tier, cell,
        lambda: _member(tier, shard)["state"] == "quarantined",
        timeout_s=90.0, expected=expected,
    )
    member = _member(tier, shard)
    assert member["quarantines"] >= 1
    assert member["respawns"] >= 1

    # Roll the bad deploy back: the next probation respawn boots clean
    # and fully rehabilitates the shard.
    monkeypatch.delenv(ENV_SERVE_FAULTS)
    _wait_until(
        tier, cell,
        lambda: (
            _member(tier, shard)["state"] == "serving"
            and _member(tier, shard)["breaker"]["state"] == "closed"
        ),
        timeout_s=90.0, expected=expected,
    )


def test_admin_chaos_corrupt_forces_detect_recompute_repair(tier):
    cell = _cell_owned_by(0)
    expected_doc = _predict_expecting(tier, cell, None)
    expected = {name: expected_doc[name] for name in FIELDS}

    status, _headers, doc = request(
        tier, "POST", "/v1/admin/chaos", {"plan": "corrupt:1,limit:1"}
    )
    assert status == 200
    armed = [entry for entry in doc["shards"] if entry.get("status") == 200]
    assert armed, doc

    # The doomed request scribbles the cell's store entry and evicts the
    # memory copy — then answers it anyway, bit-identically, by
    # detecting the damage, recomputing, and repairing the file.
    doc = _predict_expecting(tier, cell, expected)
    assert doc["provenance"]["model"] == "computed"

    # Disarm (empty plan) and confirm the repaired entry serves warm.
    status, _headers, _doc = request(tier, "POST", "/v1/admin/chaos", {})
    assert status == 200
    doc = _predict_expecting(tier, cell, expected)
    assert doc["provenance"]["model"] in ("cache", "store")
