"""The seeded serve-layer fault injector (pure logic; no live tier)."""

import pytest

from repro.serve.faults import (
    ENV_SERVE_FAULTS,
    ENV_SERVE_SEED,
    SERVE_FAULT_KINDS,
    ServeChaos,
    ServeFaultPlan,
    parse_serve_fault_plan,
    serve_fault_plan_from_env,
)


# -- parsing ------------------------------------------------------------


def test_parse_rates_and_pseudo_keys():
    plan = parse_serve_fault_plan(
        "crash:0.004,reset:0.01,slow_s:0.02,limit:7,shard:1,seed:42"
    )
    assert plan.rate("crash") == 0.004
    assert plan.rate("reset") == 0.01
    assert plan.rate("hang") == 0.0
    assert plan.slow_s == 0.02
    assert plan.limit == 7
    assert plan.only_shard == 1
    assert plan.seed == 42
    assert plan.active


def test_parse_round_trips_through_spec_string():
    plan = parse_serve_fault_plan("corrupt:0.005,slow:0.01,slow_s:0.03,shard:0")
    assert parse_serve_fault_plan(plan.spec_string(), seed=plan.seed) == plan


def test_parse_rejects_unknown_kind_and_bad_rate():
    with pytest.raises(ValueError, match="unknown serve fault kind"):
        parse_serve_fault_plan("meteor:0.1")
    with pytest.raises(ValueError, match="must be in"):
        parse_serve_fault_plan("crash:1.5")
    with pytest.raises(ValueError, match="malformed"):
        parse_serve_fault_plan("crash")
    with pytest.raises(ValueError, match="malformed"):
        parse_serve_fault_plan("crash:lots")


def test_empty_plan_is_inert():
    plan = parse_serve_fault_plan("")
    assert not plan.active
    assert plan.draw(0, 0) is None


# -- the draw schedule --------------------------------------------------


def test_draws_are_deterministic_per_seed():
    plan = parse_serve_fault_plan("crash:0.01,reset:0.05", seed=3)
    again = parse_serve_fault_plan("crash:0.01,reset:0.05", seed=3)
    schedule = [plan.draw(0, n) for n in range(2000)]
    assert schedule == [again.draw(0, n) for n in range(2000)]
    assert any(kind is not None for kind in schedule)  # storm actually lands


def test_different_seeds_give_different_schedules():
    a = parse_serve_fault_plan("reset:0.05", seed=1)
    b = parse_serve_fault_plan("reset:0.05", seed=2)
    assert [a.draw(0, n) for n in range(2000)] != [b.draw(0, n) for n in range(2000)]


def test_only_shard_confines_the_plan():
    plan = parse_serve_fault_plan("reset:1.0,shard:1")
    assert plan.draw(0, 0) is None
    assert plan.draw(1, 0) == "reset"
    assert plan.applies_to(1) and not plan.applies_to(0)


def test_draw_order_prefers_earlier_kinds():
    everything = ",".join(f"{kind}:1.0" for kind in SERVE_FAULT_KINDS)
    plan = parse_serve_fault_plan(everything)
    assert plan.draw(0, 0) == SERVE_FAULT_KINDS[0]


def test_rate_one_dooms_every_request():
    plan = parse_serve_fault_plan("slow:1.0")
    assert all(plan.draw(None, n) == "slow" for n in range(50))


# -- ServeChaos state ---------------------------------------------------


def test_chaos_counts_and_limit():
    chaos = ServeChaos(parse_serve_fault_plan("reset:1.0,limit:3"), shard=0)
    kinds = [chaos.next_fault() for _ in range(5)]
    assert kinds == ["reset", "reset", "reset", None, None]
    assert chaos.total_injected == 3
    assert chaos.counts == {"reset": 3}
    doc = chaos.to_json()
    assert doc["armed"] and doc["ordinal"] == 5
    assert doc["injected"] == {"reset": 3}


def test_chaos_without_plan_is_disarmed():
    chaos = ServeChaos(None, shard=0)
    assert not chaos.armed
    assert chaos.next_fault() is None
    assert chaos.to_json()["plan"] is None


def test_chaos_ignores_plans_for_other_shards():
    chaos = ServeChaos(parse_serve_fault_plan("crash:1.0,shard:1"), shard=0)
    assert not chaos.armed
    assert chaos.next_fault() is None


# -- environment arming -------------------------------------------------


def test_plan_from_env(monkeypatch):
    monkeypatch.delenv(ENV_SERVE_FAULTS, raising=False)
    assert serve_fault_plan_from_env() is None
    monkeypatch.setenv(ENV_SERVE_FAULTS, "crash:0.25")
    monkeypatch.setenv(ENV_SERVE_SEED, "9")
    plan = serve_fault_plan_from_env()
    assert plan == ServeFaultPlan(seed=9, rates=(("crash", 0.25),))
