"""Graceful tier shutdown under in-flight load.

The drain contract: once ``stop()`` begins, every request already
admitted completes with one full, correct response; later arrivals are
refused at the connection or admission level (503), never answered
with garbage, and no request is ever answered twice.
"""

import http.client
import json
import threading
import time
from urllib.parse import urlsplit

from repro.serve import ServeConfig, ShardedTier
from repro.serve.supervise import SupervisionPolicy

from .conftest import request

CELL = {"app": "XSBench", "model": "OpenCL", "platform": "dgpu",
        "precision": "single", "scale": "bench"}


class _Worker(threading.Thread):
    """Hammers /v1/predict on one keep-alive connection until the
    connection dies, recording every complete response it receives."""

    def __init__(self, url: str, stop_flag: threading.Event) -> None:
        super().__init__(daemon=True)
        self.url = url
        self.stop_flag = stop_flag
        self.responses: list[tuple[int, object]] = []
        self.decode_failures = 0

    def run(self) -> None:
        split = urlsplit(self.url)
        conn = http.client.HTTPConnection(split.hostname, split.port, timeout=30)
        payload = json.dumps(CELL)
        try:
            while not self.stop_flag.is_set():
                try:
                    conn.request("POST", "/v1/predict", body=payload)
                    response = conn.getresponse()
                    raw = response.read()
                except (OSError, http.client.HTTPException):
                    return  # clean connection-level refusal: allowed
                try:
                    doc = json.loads(raw)
                except json.JSONDecodeError:
                    self.decode_failures += 1  # torn response: forbidden
                    return
                self.responses.append((response.status, doc))
        finally:
            conn.close()


def test_tier_stop_drains_in_flight_requests_cleanly(tmp_path):
    config = ServeConfig(
        window_s=0.001, store_path=str(tmp_path / "store"), warm="load",
    )
    # Slow probes: supervision must not mistake the drain for a hang.
    policy = SupervisionPolicy(probe_interval_s=5.0, probe_timeout_s=5.0)
    tier = ShardedTier(config, shards=2, policy=policy)
    tier.start()
    stopped = False
    stop_flag = threading.Event()
    workers = [_Worker(tier.url, stop_flag) for _ in range(6)]
    try:
        status, _headers, expected = request(tier, "POST", "/v1/predict", CELL)
        assert status == 200

        for worker in workers:
            worker.start()
        time.sleep(0.5)  # load is in full flight

        tier.stop()  # drains: in-flight requests finish first
        stopped = True
        stop_flag.set()
        for worker in workers:
            worker.join(timeout=30)
            assert not worker.is_alive()
    finally:
        stop_flag.set()
        if not stopped:
            tier.stop()

    completed = [r for worker in workers for r in worker.responses]
    assert completed, "no worker completed a single request"
    # Every completed response is whole and inside the contract:
    # 200s bit-identical, refusals only as 503 (shedding) — and the
    # connection either answered fully or died cleanly, never both.
    assert sum(w.decode_failures for w in workers) == 0
    for status, doc in completed:
        assert status in (200, 503), doc
        if status == 200:
            assert doc["seconds"] == expected["seconds"]
            assert doc["kernel_seconds"] == expected["kernel_seconds"]
            assert doc["key"] == expected["key"]
