"""End-to-end request tracing through the live prediction service."""

import http.client
import json
from urllib.parse import urlsplit

import pytest

import repro
from repro.obs.metrics import parse_exemplars, parse_prometheus
from repro.serve import ServeConfig, ServerThread

from .conftest import request

PREDICT_BODY = {
    "app": "XSBench", "model": "OpenCL", "platform": "apu",
    "precision": "single", "scale": "bench",
}


def _request_with_headers(thread, method, path, headers, body=None):
    split = urlsplit(thread.url)
    conn = http.client.HTTPConnection(split.hostname, split.port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _span_index(doc):
    return {span["span_id"]: span for span in doc["spans"]}


# -- the complete span tree ---------------------------------------------


def test_cold_predict_yields_a_complete_parented_trace(server):
    status, _headers, _doc = request(server, "POST", "/v1/predict", PREDICT_BODY)
    assert status == 200
    _status, _headers, index = request(server, "GET", "/v1/debug/traces")
    assert index["tracing"] is True
    assert index["retained"] == 1
    summary = index["traces"][0]
    assert summary["route"] == "predict"
    assert summary["status"] == 200
    assert summary["duration_ms"] > 0

    status, _headers, doc = request(server, "GET", summary["href"])
    assert status == 200
    spans = doc["spans"]
    by_id = _span_index(doc)
    names = {span["name"] for span in spans}
    # Server, batcher and engine layers are all present.
    assert {"request", "handle", "serialize", "batch_wait", "queue_wait",
            "engine"} <= names
    roots = [span for span in spans if not span["parent_id"]]
    assert len(roots) == 1 and roots[0]["name"] == "request"
    # Complete parentage: every non-root span chains to a present parent.
    for span in spans:
        if span["parent_id"]:
            assert span["parent_id"] in by_id, span
    # The root's direct children tile the request: their durations sum
    # to the measured end-to-end latency within 5%.
    direct = [s for s in spans if s["parent_id"] == roots[0]["span_id"]]
    covered_us = sum(s["duration_us"] for s in direct)
    assert covered_us == pytest.approx(doc["duration_ms"] * 1e3, rel=0.05)
    # Attribution segments hang off the handle span.
    handle = next(s for s in spans if s["name"] == "handle")
    for name in ("batch_wait", "queue_wait", "engine"):
        segment = next(s for s in spans if s["name"] == name)
        assert segment["parent_id"] == handle["span_id"]
    assert doc["segments_ms"]["engine"] > 0


def test_trace_is_reachable_from_a_metrics_exemplar(server):
    request(server, "POST", "/v1/predict", PREDICT_BODY)
    _status, _headers, text = request(server, "GET", "/metrics")
    exemplars = parse_exemplars(text, "repro_serve_latency_seconds")
    assert exemplars, "latency buckets carry no exemplars"
    trace_ids = {labels["trace_id"] for _bucket, labels, _value in exemplars}
    assert len(trace_ids) == 1
    trace_id = trace_ids.pop()
    status, _headers, doc = request(server, "GET", f"/v1/debug/traces/{trace_id}")
    assert status == 200
    assert doc["trace_id"] == trace_id
    # The exemplar's observed value is the trace's own duration.
    _bucket, _labels, value = exemplars[0]
    assert value * 1e3 == pytest.approx(doc["duration_ms"], rel=1e-3)


def test_inbound_traceparent_continues_the_callers_trace(server):
    trace_id, parent_span = "ab" * 16, "cd" * 8
    status, doc = _request_with_headers(
        server, "POST", "/v1/predict",
        {"traceparent": f"00-{trace_id}-{parent_span}-01",
         "Content-Type": "application/json"},
        PREDICT_BODY,
    )
    assert status == 200
    status, _headers, doc = request(server, "GET", f"/v1/debug/traces/{trace_id}")
    assert status == 200
    roots = [span for span in doc["spans"] if span["parent_id"] == parent_span]
    assert len(roots) == 1 and roots[0]["name"] == "request"


def test_chrome_export_and_unknown_trace_404(server):
    request(server, "POST", "/v1/predict", PREDICT_BODY)
    _status, _headers, index = request(server, "GET", "/v1/debug/traces")
    href = index["traces"][0]["href"]
    status, _headers, exported = request(server, "GET", href + "?format=chrome")
    assert status == 200
    names = {event["name"] for event in exported["traceEvents"]
             if event.get("ph") == "X"}
    assert {"request", "engine"} <= names
    assert request(server, "GET", "/v1/debug/traces/" + "0" * 32)[0] == 404


def test_debug_logs_expose_the_access_record(server):
    request(server, "POST", "/v1/predict", PREDICT_BODY)
    _status, _headers, doc = request(server, "GET", "/v1/debug/logs")
    access = [r for r in doc["records"]
              if r["event"] == "request" and r.get("route") == "predict"]
    assert access
    assert access[-1]["status"] == 200
    assert len(access[-1]["trace_id"]) == 32
    assert "segments_ms" in access[-1]


# -- satellite metrics ---------------------------------------------------


def test_latency_histogram_labels_shed_requests_by_status():
    with ServerThread(ServeConfig(window_s=0.001, max_queue=0)) as thread:
        status, _headers, _doc = request(thread, "POST", "/v1/predict", PREDICT_BODY)
        assert status == 429
        _status, _headers, text = request(thread, "GET", "/metrics")
        samples = parse_prometheus(text)
        shed_counts = [
            value for labels, value in samples["repro_serve_latency_seconds_count"]
            if 'route="predict"' in labels and 'status="429"' in labels
        ]
        assert shed_counts == [1.0]


def test_build_info_and_uptime_gauges(server):
    _status, _headers, text = request(server, "GET", "/metrics")
    samples = parse_prometheus(text)
    build = samples["repro_build_info"]
    assert len(build) == 1
    labels, value = build[0]
    assert value == 1.0
    assert f'version="{repro.__version__}"' in labels
    assert 'engine="vector"' in labels
    assert 'python="3.' in labels
    uptime = dict(samples["repro_serve_uptime_seconds"])
    assert uptime[""] >= 0.0


# -- tracing off: dark, and bit-identical --------------------------------


def test_tracing_off_is_dark_and_bit_identical():
    with ServerThread(ServeConfig(window_s=0.001, tracing=True)) as thread:
        _status, _headers, traced = request(thread, "POST", "/v1/predict", PREDICT_BODY)
    from repro.engine import memo
    from repro.obs import tracing
    memo.RESULT_CACHE.clear()
    tracing.TRACER.clear()  # the trace store is process-global
    with ServerThread(ServeConfig(window_s=0.001, tracing=False)) as thread:
        _status, _headers, untraced = request(thread, "POST", "/v1/predict", PREDICT_BODY)
        _status, _headers, index = request(thread, "GET", "/v1/debug/traces")
        assert index["tracing"] is False
        assert index["retained"] == 0
        _status, _headers, text = request(thread, "GET", "/metrics")
        assert parse_exemplars(text, "repro_serve_latency_seconds") == []
    for field in ("seconds", "kernel_seconds", "baseline_seconds",
                  "speedup", "kernel_speedup", "key", "provenance"):
        assert traced[field] == untraced[field], field
