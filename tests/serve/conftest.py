"""Shared helpers for the prediction-service tests."""

import http.client
import json
from urllib.parse import urlsplit

import pytest

from repro.engine import memo
from repro.obs import tracing
from repro.serve import ServeConfig, ServerThread


@pytest.fixture(autouse=True)
def fresh_result_cache():
    """Isolate the process-global whole-run result cache per test."""
    memo.RESULT_CACHE.clear()
    yield
    memo.RESULT_CACHE.clear()


@pytest.fixture(autouse=True)
def fresh_tracer():
    """Isolate the process-global tracer (buffers + trace store)."""
    tracing.TRACER.clear()
    yield
    tracing.TRACER.clear()


@pytest.fixture
def server():
    """A live loopback prediction server with a short batch window."""
    with ServerThread(ServeConfig(window_s=0.001)) as thread:
        yield thread


def request(thread, method: str, path: str, body: dict | None = None):
    """One HTTP exchange with a ServerThread; returns (status, headers, doc)."""
    split = urlsplit(thread.url)
    conn = http.client.HTTPConnection(split.hostname, split.port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        raw = response.read()
        headers = dict(response.getheaders())
        if headers.get("Content-Type", "").startswith("application/json"):
            doc = json.loads(raw)
        else:
            doc = raw.decode()
        return response.status, headers, doc
    finally:
        conn.close()
