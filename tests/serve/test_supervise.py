"""The supervision state machine, on a hand-driven clock."""

import pytest

from repro.exec.retry import backoff_delay
from repro.serve.supervise import ShardHealth, ShardState, SupervisionPolicy

FAST = SupervisionPolicy(
    probe_interval_s=0.05,
    probe_timeout_s=0.5,
    probe_failures=2,
    backoff_base_s=0.05,
    backoff_factor=2.0,
    backoff_cap_s=2.0,
    quarantine_after=3,
    quarantine_window_s=10.0,
    quarantine_cooldown_s=5.0,
)


def test_policy_validation():
    with pytest.raises(ValueError):
        SupervisionPolicy(probe_interval_s=0.0)
    with pytest.raises(ValueError):
        SupervisionPolicy(probe_failures=0)
    with pytest.raises(ValueError):
        SupervisionPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        SupervisionPolicy(quarantine_after=0)
    with pytest.raises(ValueError):
        SupervisionPolicy(quarantine_window_s=0.0)


def test_respawn_delay_is_the_shared_deterministic_curve():
    assert FAST.respawn_delay(0, 2) == backoff_delay(
        "shard:0", 2, base=0.05, factor=2.0, cap=2.0
    )
    # Jittered exponential: monotone non-decreasing envelope, capped.
    assert FAST.respawn_delay(0, 9) <= 2.0
    assert FAST.respawn_delay(0, 0) < FAST.respawn_delay(0, 6)


def test_probe_miss_budget():
    health = ShardHealth(0, FAST)
    assert not health.probe_missed()       # one miss: maybe a GC pause
    health.probe_ok()                      # recovery clears the count
    assert not health.probe_missed()
    assert health.probe_missed()           # second consecutive: hung


def test_plan_respawn_backs_off_and_gates_on_the_clock():
    health = ShardHealth(0, FAST)
    delay = health.plan_respawn(100.0, "died")
    assert health.state is ShardState.RESPAWNING
    assert health.last_reason == "died"
    assert delay == FAST.respawn_delay(0, 0)
    assert not health.respawn_due(100.0 + delay / 2)
    assert health.respawn_due(100.0 + delay)
    health.record_attempt(100.0 + delay, ok=True)
    assert health.state is ShardState.SERVING
    assert health.respawns == 1


def test_repeated_deaths_escalate_the_backoff():
    health = ShardHealth(0, FAST)
    now = 100.0
    delays = []
    for _ in range(3):
        delays.append(health.plan_respawn(now, "died"))
        now += delays[-1]
        health.record_attempt(now, ok=False)
    # Attempt index grows with the in-window attempt count.
    assert delays == [FAST.respawn_delay(0, i) for i in range(3)]


def test_quarantine_after_a_crash_loop_then_probation():
    health = ShardHealth(0, FAST)
    now = 100.0
    for _ in range(3):
        now += health.plan_respawn(now, "died")
        health.record_attempt(now, ok=True)   # boots, then dies again
    assert health.should_quarantine(now)
    health.enter_quarantine(now)
    assert health.state is ShardState.QUARANTINED
    assert health.quarantines == 1
    assert health.to_json()["quarantined"]

    assert not health.probation_due(now + 4.9)
    assert health.probation_due(now + 5.0)
    health.leave_quarantine(now + 5.0)
    assert health.state is ShardState.RESPAWNING
    assert health.last_reason == "probation"
    assert health.respawn_due(now + 5.0)      # probation runs immediately
    # The attempt window was cleared: one clean boot rehabilitates.
    assert health.attempts_in_window(now + 5.0) == 0
    health.record_attempt(now + 5.0, ok=True)
    assert health.state is ShardState.SERVING


def test_old_attempts_age_out_of_the_window():
    health = ShardHealth(0, FAST)
    health.record_attempt(100.0, ok=False)
    health.record_attempt(101.0, ok=False)
    assert health.attempts_in_window(105.0) == 2
    assert health.attempts_in_window(100.0 + 10.5) == 1
    assert health.attempts_in_window(120.0) == 0
    assert not health.should_quarantine(120.0)


def test_manual_reset_is_a_clean_slate():
    health = ShardHealth(0, FAST)
    health.plan_respawn(100.0, "hung")
    health.record_attempt(100.1, ok=False)
    health.enter_quarantine(100.2)
    health.reset()
    assert health.state is ShardState.SERVING
    assert health.attempts_in_window(100.3) == 0
    assert health.to_json()["reason"] is None
