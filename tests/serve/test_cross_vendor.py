"""The second-vendor family over the wire: V100 cells with energy and
EDP through ``/v1/predict`` on a single server and ``/v1/study``
through a two-shard tier, both against the local pipeline oracle."""

import pytest

from repro.apps import APPS_BY_NAME
from repro.core.configs import bench_configs
from repro.core.study import run_study
from repro.hardware.specs import Precision
from repro.serve import ServeConfig, ShardedTier

from .conftest import request

CROSS_VENDOR_STUDY_BODY = {
    "apps": ["XSBench"],
    "models": ["omp-offload", "OpenACC"],
    "platforms": ["v100"],
    "scale": "bench",
}


@pytest.fixture(scope="module")
def v100_study():
    """Direct batch-pipeline output to compare HTTP responses against."""
    return run_study(
        (APPS_BY_NAME["XSBench"],),
        configs=bench_configs(),
        models=("OpenMP Offload", "OpenACC"),
        platforms=("v100",),
    )


# -- single server ------------------------------------------------------


def test_predict_v100_omp_offload_carries_energy(server, v100_study):
    """A V100 cell via the model alias serves joules and EDP equal to
    the local oracle, bit for bit."""
    for precision in (Precision.SINGLE, Precision.DOUBLE):
        status, _headers, doc = request(server, "POST", "/v1/predict", {
            "app": "XSBench", "model": "omp-offload", "platform": "v100",
            "precision": precision.value, "scale": "bench",
        })
        assert status == 200
        entry = v100_study.get(
            "XSBench", "OpenMP Offload", precision=precision, platform="v100"
        )
        assert doc["seconds"] == entry.seconds
        assert doc["speedup"] == entry.speedup
        assert doc["joules"] == entry.joules
        assert doc["edp"] == entry.edp
        assert doc["joules"] > 0.0


def test_study_v100_family_matches_oracle(server, v100_study):
    status, _headers, doc = request(
        server, "POST", "/v1/study", CROSS_VENDOR_STUDY_BODY
    )
    assert status == 200
    assert len(doc["entries"]) == len(v100_study.entries)
    for served in doc["entries"]:
        assert served["platform"] == "V100"
        entry = v100_study.get(
            served["app"], served["model"],
            precision=Precision(served["precision"]), platform="v100",
        )
        assert served["seconds"] == entry.seconds
        assert served["speedup"] == entry.speedup
        assert served["joules"] == entry.joules
        assert served["edp"] == entry.edp


# -- the sharded tier ---------------------------------------------------


@pytest.fixture(scope="module")
def tier(tmp_path_factory):
    config = ServeConfig(
        window_s=0.001, store_path=str(tmp_path_factory.mktemp("store")),
    )
    with ShardedTier(config, shards=2) as tier:
        yield tier


def test_sharded_study_v100_family_matches_oracle(tier, v100_study):
    """The acceptance bar: the same cells through a two-shard tier match
    the local oracle, including the energy columns."""
    status, _headers, doc = request(
        tier, "POST", "/v1/study", CROSS_VENDOR_STUDY_BODY
    )
    assert status == 200
    assert len(doc["entries"]) == len(v100_study.entries)
    for served in doc["entries"]:
        entry = v100_study.get(
            served["app"], served["model"],
            precision=Precision(served["precision"]), platform="v100",
        )
        assert served["seconds"] == entry.seconds
        assert served["kernel_seconds"] == entry.kernel_seconds
        assert served["baseline_seconds"] == entry.baseline_seconds
        assert served["speedup"] == entry.speedup
        assert served["joules"] == entry.joules
        assert served["edp"] == entry.edp


def test_sharded_predict_v100_alias_round_trips(tier, v100_study):
    status, _headers, doc = request(tier, "POST", "/v1/predict", {
        "app": "XSBench", "model": "openmp offload", "platform": "v100",
        "precision": "double", "scale": "bench",
    })
    assert status == 200
    entry = v100_study.get(
        "XSBench", "OpenMP Offload", precision=Precision.DOUBLE, platform="v100"
    )
    assert doc["seconds"] == entry.seconds
    assert doc["joules"] == entry.joules
    assert doc["edp"] == entry.edp
