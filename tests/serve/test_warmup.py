"""Boot-time warm-up: the preset lattice, store loading, work splitting."""

import pytest

from repro.engine.memo import SingleFlightCache
from repro.serve.store import ResultStore
from repro.serve.warmup import WarmReport, load_store, preset_specs, warm_presets


# -- the preset lattice -------------------------------------------------


def test_preset_specs_are_deduplicated_and_stable():
    specs = preset_specs(("bench",))
    keys = [spec.content_key() for spec in specs]
    assert len(keys) == len(set(keys))
    assert keys == [spec.content_key() for spec in preset_specs(("bench",))]
    # Every preset is clock-default projection pricing.
    assert all(spec.core_mhz is None and spec.projection for spec in specs)


def test_preset_specs_grow_with_scales():
    bench = preset_specs(("bench",))
    both = preset_specs(("bench", "paper"))
    assert len(both) > len(bench)
    # The bench lattice is a prefix: stable enumeration order.
    assert [s.content_key() for s in both][: len(bench)] == \
        [s.content_key() for s in bench]


def test_preset_specs_reject_unknown_scales():
    with pytest.raises(ValueError, match="nope"):
        preset_specs(("nope",))


# -- loading ------------------------------------------------------------


def test_load_store_seeds_the_memory_cache(tmp_path):
    store = ResultStore(tmp_path)
    specs = preset_specs(("bench",))[:3]
    for i, spec in enumerate(specs):
        store.put(spec.content_key(), {"i": i})
    cache = SingleFlightCache()
    assert load_store(cache, store) == 3
    for i, spec in enumerate(specs):
        found, value = cache.peek(spec.content_key())
        assert found and value == {"i": i}


def test_load_store_skips_corrupt_entries(tmp_path):
    store = ResultStore(tmp_path)
    key = "ab" * 32
    store.put(key, {"ok": True})
    path = store.path_for(key)
    path.write_bytes(path.read_bytes()[:10])
    assert load_store(SingleFlightCache(), store) == 0


# -- pre-pricing --------------------------------------------------------


def test_warm_presets_prices_once_then_loads_forever(tmp_path):
    """First boot prices the lattice; every later boot loads it."""
    store = ResultStore(tmp_path)
    first = SingleFlightCache()
    report = warm_presets(first, store, scales=("bench",))
    assert report.total == len(preset_specs(("bench",)))
    assert report.priced > 0
    assert report.deferred == 0
    assert report.loaded + report.priced == report.total

    # A "restarted" process over the same store: nothing to price.
    second = SingleFlightCache()
    again = warm_presets(second, store, scales=("bench",))
    assert again.priced == 0
    assert again.loaded == again.total
    # And both caches hold bit-identical values for every preset.
    for spec in preset_specs(("bench",)):
        key = spec.content_key()
        found_a, a = first.peek(key)
        found_b, b = second.peek(key)
        assert found_a and found_b and a == b


def test_warm_presets_defers_keys_another_process_holds(tmp_path):
    """A key locked by a concurrent warmer is not priced here; once the
    leader publishes, the deferred-poll loop seeds it as a load."""
    import threading
    import time

    store = ResultStore(tmp_path)
    claimed = preset_specs(("bench",))[0]
    key = claimed.content_key()
    assert store._try_lock(key)  # "another process" holds the claim

    def leader():
        time.sleep(0.3)
        store.put(key, {"published": "by-leader"})
        store._unlock(key)

    publisher = threading.Thread(target=leader)
    publisher.start()
    try:
        report = warm_presets(SingleFlightCache(), store, scales=("bench",),
                              wait_s=30)
        # The claimed key was loaded once the leader published, never
        # priced by this warmer.
        assert report.priced == report.total - 1
        assert report.loaded == 1
        assert report.deferred == 0
        assert store.get(key) == {"published": "by-leader"}
    finally:
        publisher.join()


def test_warm_report_summary_reads_like_a_boot_line():
    report = WarmReport(total=120, loaded=100, priced=18, deferred=2, wall_s=1.5)
    summary = report.summary()
    assert "100 loaded" in summary
    assert "18 priced" in summary
    assert "2 deferred" in summary
    assert "120 presets" in summary
