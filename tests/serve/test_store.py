"""The disk-backed content-addressed result store.

Covers the PR-8 durability contract: pickle round-trips are
bit-identical, torn or garbled entries read as misses (and are
repaired), first write wins, single-flight holds across processes,
and a restarted server answers from disk without recomputing.
"""

import hashlib
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core.metrics import speedup
from repro.engine.memo import SingleFlightCache
from repro.exec.retry import RetryPolicy, run_with_retry
from repro.serve import PersistentResultCache, ResultStore, ServeConfig, ServerThread
from repro.serve.protocol import PredictRequest

from .conftest import request

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _key(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@pytest.fixture(scope="module")
def xsbench_cell():
    """One scalar-priced cell as the bit-identity oracle."""
    body = {"app": "XSBench", "model": "OpenCL", "platform": "dgpu",
            "precision": "single", "scale": "bench"}
    req = PredictRequest.from_json(body)
    baseline_spec, model_spec = req.specs()
    policy = RetryPolicy(max_attempts=2)
    baseline = run_with_retry(baseline_spec, policy).result
    model = run_with_retry(model_spec, policy).result
    return body, model_spec, baseline, model


# -- round trip and layout ---------------------------------------------


def test_put_get_round_trip_is_bit_identical(tmp_path, xsbench_cell):
    _body, spec, _baseline, result = xsbench_cell
    store = ResultStore(tmp_path)
    key = spec.content_key()
    assert store.put(key, result, label=spec.label)
    loaded = store.get(key)
    assert loaded == result  # frozen dataclasses: exact float equality
    assert loaded.seconds == result.seconds
    assert loaded.counters == result.counters
    assert store.snapshot().hits == 1


def test_keys_len_contains(tmp_path):
    store = ResultStore(tmp_path)
    keys = [_key(f"entry-{i}") for i in range(3)]
    for i, key in enumerate(keys):
        store.put(key, {"i": i})
    assert sorted(store.keys()) == sorted(keys)
    assert len(store) == 3
    assert keys[0] in store
    assert _key("absent") not in store


def test_first_write_wins(tmp_path):
    store = ResultStore(tmp_path)
    key = _key("contested")
    assert store.put(key, {"writer": "first"}) is True
    assert store.put(key, {"writer": "second"}) is False
    assert store.get(key) == {"writer": "first"}


# -- torn / corrupt tolerance ------------------------------------------


def test_truncated_entry_reads_as_miss_and_is_repaired(tmp_path):
    store = ResultStore(tmp_path)
    key = _key("torn")
    store.put(key, {"value": 42})
    path = store.path_for(key)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])  # a torn write
    assert store.get(key) is None
    assert not path.exists()  # defective file unlinked
    assert store.snapshot().corrupt == 1
    # The next write repairs the entry.
    assert store.put(key, {"value": 43}) is True
    assert store.get(key) == {"value": 43}


def test_garbage_bytes_read_as_miss(tmp_path):
    store = ResultStore(tmp_path)
    key = _key("garbage")
    path = store.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_bytes(b"\x00\xffnot json at all")
    assert store.get(key) is None
    assert store.snapshot().corrupt == 1


def test_tampered_payload_fails_the_checksum(tmp_path):
    store = ResultStore(tmp_path)
    key = _key("tampered")
    store.put(key, {"value": 1})
    path = store.path_for(key)
    doc = json.loads(path.read_text())
    doc["payload"] = doc["payload"][:-8] + "AAAAAAA="
    path.write_text(json.dumps(doc))
    assert store.get(key) is None


def test_entry_filed_under_the_wrong_key_is_rejected(tmp_path):
    store = ResultStore(tmp_path)
    key, wrong = _key("right"), _key("wrong")
    store.put(key, {"value": 1})
    target = store.path_for(wrong)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_bytes(store.path_for(key).read_bytes())
    assert store.get(wrong) is None  # key field mismatch == corrupt


# -- single-flight ------------------------------------------------------


def test_fetch_or_compute_computes_once_then_serves_from_disk(tmp_path):
    store = ResultStore(tmp_path)
    key = _key("once")
    calls = []
    value, source = store.fetch_or_compute(key, lambda: calls.append(1) or {"n": 1})
    assert source == "computed" and value == {"n": 1}
    value, source = store.fetch_or_compute(key, lambda: calls.append(1) or {"n": 2})
    assert source == "store" and value == {"n": 1}
    assert len(calls) == 1


def test_stale_lock_is_broken(tmp_path):
    store = ResultStore(tmp_path, lock_timeout_s=10.0, lock_stale_s=0.05)
    key = _key("dead-leader")
    assert store._try_lock(key)  # a leader that died without unlocking
    lock = store._lock_path(key)
    old = lock.stat().st_mtime - 60
    os.utime(lock, (old, old))
    value, source = store.fetch_or_compute(key, lambda: {"n": 3})
    assert source == "computed" and value == {"n": 3}


_DYING_LEADER_CHILD = textwrap.dedent("""
    import os, sys
    from repro.serve.store import ResultStore

    root, key = sys.argv[1], sys.argv[2]
    assert ResultStore(root)._try_lock(key)
    os._exit(9)  # dies mid-compute, lock file left behind
""")


def test_follower_breaks_a_dead_leaders_lock_and_computes_once(tmp_path):
    """A leader that really dies (O_EXCL lock held, process gone) must
    not wedge the key: a follower waits out ``lock_stale_s``, breaks
    the orphaned lock, elects itself leader, and computes exactly once.
    """
    key = _key("dying-leader")
    env = {**os.environ, "PYTHONPATH": _SRC}
    child = subprocess.run(
        [sys.executable, "-c", _DYING_LEADER_CHILD, str(tmp_path), key],
        env=env, timeout=120,
    )
    assert child.returncode == 9
    store = ResultStore(tmp_path, lock_timeout_s=30.0, lock_stale_s=0.2)
    assert store._lock_path(key).exists()  # the orphan is really there

    calls = []
    value, source = store.fetch_or_compute(
        key, lambda: calls.append(1) or {"n": 42}
    )
    assert (value, source) == ({"n": 42}, "computed")
    assert calls == [1]  # exactly one compute
    assert not store._lock_path(key).exists()  # broken and released
    value, source = store.fetch_or_compute(key, lambda: calls.append(1) or {})
    assert (value, source) == ({"n": 42}, "store")
    assert calls == [1]
    assert store.snapshot().lock_waits >= 1


_SINGLE_FLIGHT_CHILD = textwrap.dedent("""
    import os, sys, time
    from repro.serve.store import ResultStore

    root, key = sys.argv[1], sys.argv[2]
    store = ResultStore(root)

    def compute():
        time.sleep(0.3)
        return {"pid": os.getpid()}

    _value, source = store.fetch_or_compute(key, compute)
    print(source)
""")


def test_cross_process_single_flight_elects_one_leader(tmp_path):
    """Four processes race one key; exactly one computes."""
    key = _key("cross-process")
    env = {**os.environ, "PYTHONPATH": _SRC}
    children = [
        subprocess.Popen(
            [sys.executable, "-c", _SINGLE_FLIGHT_CHILD, str(tmp_path), key],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        for _ in range(4)
    ]
    sources = []
    for child in children:
        out, _ = child.communicate(timeout=120)
        assert child.returncode == 0
        sources.append(out.strip())
    assert sources.count("computed") == 1
    assert sources.count("store") == 3
    assert len(ResultStore(tmp_path)) == 1


_WRITER_CHILD = textwrap.dedent("""
    import sys
    from repro.serve.store import ResultStore

    root, key, tag = sys.argv[1], sys.argv[2], sys.argv[3]
    ResultStore(root).put(key, {"writer": tag})
""")


def test_concurrent_multi_process_writers_leave_one_valid_entry(tmp_path):
    """Racing writers never produce a torn or mixed entry."""
    key = _key("many-writers")
    env = {**os.environ, "PYTHONPATH": _SRC}
    tags = [f"writer-{i}" for i in range(6)]
    children = [
        subprocess.Popen(
            [sys.executable, "-c", _WRITER_CHILD, str(tmp_path), key, tag],
            env=env,
        )
        for tag in tags
    ]
    for child in children:
        assert child.wait(timeout=120) == 0
    store = ResultStore(tmp_path)
    assert len(store) == 1
    value = store.get(key)
    assert value is not None and value["writer"] in tags


# -- the tiered cache ---------------------------------------------------


def test_persistent_cache_tiers_memory_over_store(tmp_path):
    store = ResultStore(tmp_path)
    cache = PersistentResultCache(store)
    key = _key("tiers")
    assert cache.peek_tiered(key) == (None, None)
    store.put(key, {"n": 7})
    value, source = cache.peek_tiered(key)
    assert (value, source) == ({"n": 7}, "store")
    # The disk hit was seeded into memory for next time.
    assert cache.peek_tiered(key) == ({"n": 7}, "memory")


def test_persistent_cache_persists_computed_values(tmp_path):
    store = ResultStore(tmp_path)
    cache = PersistentResultCache(store)
    key = _key("persisted")
    assert cache.get_or_compute(key, lambda: {"n": 9}) == {"n": 9}
    # A brand-new cache over the same directory sees it: a restart.
    fresh = PersistentResultCache(ResultStore(tmp_path))
    assert fresh.peek_tiered(key) == ({"n": 9}, "store")


def test_load_store_requires_no_lock_files(tmp_path):
    """A pure load never creates lock state (read-only boot path)."""
    store = ResultStore(tmp_path)
    store.put(_key("resident"), {"n": 1})
    cache = SingleFlightCache()
    from repro.serve.warmup import load_store

    assert load_store(cache, store) == 1
    assert not (tmp_path / "locks").exists()


# -- restart bit-identity (the zero-cold-start guarantee) ---------------


def test_restart_serves_warm_and_bit_identical_to_scalar_oracle(
    tmp_path, xsbench_cell
):
    """Boot, price, stop; boot again over the same store: the second
    process answers from disk — no recompute — with bytes equal to the
    scalar retry-ladder oracle."""
    body, _spec, baseline, model = xsbench_cell
    config = ServeConfig(window_s=0.001, store_path=str(tmp_path), warm="load")
    with ServerThread(config) as thread:
        status, _headers, cold = request(thread, "POST", "/v1/predict", body)
        assert status == 200
        assert cold["provenance"]["model"] == "computed"
    # A fresh process: new memory cache, same store directory.
    with ServerThread(config) as thread:
        status, _headers, warm = request(thread, "POST", "/v1/predict", body)
        assert status == 200
        # Zero cold misses: every constituent run came from cache/store.
        assert set(warm["provenance"].values()) <= {"cache", "store"}
        assert warm["seconds"] == model.seconds
        assert warm["kernel_seconds"] == model.kernel_seconds
        assert warm["baseline_seconds"] == baseline.seconds
        assert warm["speedup"] == speedup(baseline.seconds, model.seconds)
        # The whole document matches bit for bit, provenance aside.
        assert {k: v for k, v in warm.items() if k != "provenance"} == \
            {k: v for k, v in cold.items() if k != "provenance"}


def test_warm_none_still_hits_the_store_lazily(tmp_path, xsbench_cell):
    body, _spec, _baseline, model = xsbench_cell
    with ServerThread(
        ServeConfig(window_s=0.001, store_path=str(tmp_path), warm="none")
    ) as thread:
        request(thread, "POST", "/v1/predict", body)
    with ServerThread(
        ServeConfig(window_s=0.001, store_path=str(tmp_path), warm="none")
    ) as thread:
        _status, _headers, doc = request(thread, "POST", "/v1/predict", body)
        # No boot-time seeding, so the first touch reads the disk tier.
        assert "computed" not in doc["provenance"].values()
        assert "store" in doc["provenance"].values()
        assert doc["seconds"] == model.seconds
