"""Schema validation and RunSpec translation of the wire protocol."""

import pytest

from repro.core.configs import bench_configs, sweep_configs
from repro.exec.plan import study_runs
from repro.hardware.specs import Precision
from repro.serve import MAX_STUDY_RUNS, PredictRequest, ProtocolError, StudyRequest

PREDICT_DOC = {
    "app": "XSBench",
    "model": "OpenCL",
    "platform": "apu",
    "precision": "single",
}


def test_predict_parses_and_normalizes_case():
    request = PredictRequest.from_json({
        "app": "xsbench", "model": "opencl", "platform": "APU",
        "precision": "SINGLE", "scale": "BENCH",
    })
    assert request.app == "XSBench"
    assert request.model == "OpenCL"
    assert request.platform == "apu"
    assert request.precision is Precision.SINGLE
    assert request.scale == "bench"


@pytest.mark.parametrize("mutation, message", [
    ({"app": "NotAnApp"}, "unknown app"),
    ({"model": "CUDA"}, "no 'CUDA' port"),
    ({"platform": "tpu"}, "'platform'"),
    ({"precision": "half"}, "'precision'"),
    ({"scale": "huge"}, "'scale'"),
    ({"core_mhz": -1}, "positive frequency"),
    ({"core_mhz": True}, "positive frequency"),
    ({"app": None}, "missing required field"),
])
def test_predict_rejects_bad_fields(mutation, message):
    doc = {**PREDICT_DOC, **mutation}
    with pytest.raises(ProtocolError, match=message):
        PredictRequest.from_json(doc)


def test_predict_rejects_non_object_body():
    with pytest.raises(ProtocolError, match="JSON object"):
        PredictRequest.from_json([1, 2, 3])


def test_predict_specs_match_study_runs():
    """The HTTP query builds the exact RunSpecs the batch planner builds."""
    request = PredictRequest.from_json(PREDICT_DOC)
    baseline, model = request.specs()
    planned = study_runs(
        app_names=["XSBench"],
        configs={"XSBench": bench_configs()["XSBench"]},
        apu_values=[True],
        precisions=[Precision.SINGLE],
        models=["OpenCL"],
        baseline="OpenMP",
        projection=True,
    )
    assert baseline.content_key() == planned[0].content_key()
    assert model.content_key() == planned[1].content_key()


def test_predict_baseline_ignores_clock_overrides():
    """Clock overrides apply to the queried model, never the baseline."""
    request = PredictRequest.from_json({**PREDICT_DOC, "core_mhz": 500})
    baseline, model = request.specs()
    plain_baseline, _ = PredictRequest.from_json(PREDICT_DOC).specs()
    assert baseline.content_key() == plain_baseline.content_key()
    assert model.core_mhz == 500.0


def test_predict_scale_presets_resolve_distinct_configs():
    keys = set()
    for scale in ("bench", "paper", "sweep"):
        _, model = PredictRequest.from_json({**PREDICT_DOC, "scale": scale}).specs()
        keys.add(model.content_key())
    assert len(keys) == 3


def test_sweep_scale_uses_sweep_configs():
    _, model = PredictRequest.from_json({**PREDICT_DOC, "scale": "sweep"}).specs()
    assert model.config == sweep_configs()["XSBench"]


def test_study_defaults_to_full_matrix():
    request = StudyRequest.from_json({})
    assert len(request.apps) >= 4
    assert request.compared_models == ("OpenCL", "C++ AMP", "OpenACC")
    assert request.platforms == ("apu", "dgpu")
    assert len(request.precisions) == 2
    runs = request.runs()
    assert 0 < len(runs) <= MAX_STUDY_RUNS


def test_study_narrows_and_caps():
    request = StudyRequest.from_json({
        "apps": ["XSBench"], "models": ["OpenMP", "OpenCL"],
        "platforms": ["apu"], "precisions": ["single"],
    })
    # Baseline always runs; it is not a compared model.
    assert request.compared_models == ("OpenCL",)
    assert len(request.runs()) == 2  # baseline + OpenCL


def test_study_rejects_empty_arrays():
    with pytest.raises(ProtocolError, match="non-empty array"):
        StudyRequest.from_json({"apps": []})


def test_study_run_cap_is_enforced():
    # The default (paper proxy apps) matrix sits exactly at the cap;
    # adding a fifth app overflows it.
    assert len(StudyRequest.from_json({}).runs()) == MAX_STUDY_RUNS
    with pytest.raises(ProtocolError, match="per-request limit"):
        StudyRequest.from_json({
            "apps": ["read-benchmark", "XSBench", "LULESH", "CoMD", "miniFE"],
        })
