"""Chaos-drill report logic (pure; the live drill runs in CI's
chaos-serve smoke and via ``repro loadtest --chaos``)."""

import json

from repro.serve.chaos import ChaosReport, _metric_total, chaos_bodies, merge_chaos_row
from repro.serve.loadgen import LoadResult


def _report(**overrides) -> ChaosReport:
    base = dict(
        plan="crash:0.004", seed=7, shards=2, store="/tmp/s",
        max_error_rate=0.01,
        load=LoadResult(mode="closed", duration_s=5.0, concurrency=4, rate=None),
        checked=100, mismatches=0, checker_requests=100,
        status_counts={"200": 100},
        respawns=2.0, breaker_opens=1.0, converged=True, cold_misses=0,
    )
    base.update(overrides)
    return ChaosReport(**base)


def test_passing_report_has_no_failures():
    report = _report()
    assert report.ok
    assert report.failures() == []
    row = report.row()
    assert row["converged"] == 1 and row["mismatches"] == 0
    assert "PASS" in report.summary()


def test_each_invariant_violation_is_named():
    assert "wrong answers" in "".join(_report(mismatches=1).failures())
    assert "converge" in "".join(_report(converged=False).failures())
    assert "cold misses" in "".join(_report(cold_misses=3).failures())
    assert "respawn" in "".join(_report(respawns=0.0).failures())
    assert "breaker" in "".join(_report(breaker_opens=0.0).failures())
    assert "post-recovery" in "".join(_report(final_mismatches=2).failures())


def test_error_rate_counts_non_2xx_and_transport_failures():
    load = LoadResult(mode="closed", duration_s=5.0, concurrency=4, rate=None)
    load.requests, load.errors = 100, 2
    report = _report(
        load=load, checker_requests=100,
        status_counts={"200": 95, "503": 4, "429": 1},
    )
    assert report.requests == 200
    assert report.errors == 2 + 5
    assert report.error_rate == 7 / 200
    assert report.disallowed == 0  # 429 is inside the contract
    failures = "".join(report.failures())
    assert "error rate" in failures


def test_4xx_other_than_429_is_disallowed():
    report = _report(status_counts={"200": 99, "404": 1})
    assert report.disallowed == 1
    assert "contract" in "".join(report.failures())


def test_chaos_bodies_cover_the_model_lattice():
    bodies = chaos_bodies()
    assert len(bodies) == 12
    assert len({json.dumps(b, sort_keys=True) for b in bodies}) == 12
    assert all(b["app"] == "XSBench" and b["scale"] == "bench" for b in bodies)


def test_metric_total_sums_families_and_filters_labels():
    text = "\n".join([
        "# HELP repro_shard_respawns_total respawns",
        "# TYPE repro_shard_respawns_total counter",
        'repro_shard_respawns_total{shard="0",reason="died"} 2',
        'repro_shard_respawns_total{shard="1",reason="hung"} 1',
        'repro_shard_respawns_total_created{shard="0"} 99',  # not the family
        'repro_router_breaker_transitions_total{shard="0",to="open"} 3',
        'repro_router_breaker_transitions_total{shard="0",to="closed"} 3',
    ])
    assert _metric_total(text, "repro_shard_respawns_total") == 3.0
    assert _metric_total(
        text, "repro_router_breaker_transitions_total", 'to="open"'
    ) == 3.0
    assert _metric_total(text, "repro_router_degraded_total") == 0.0


def test_merge_chaos_row_attaches_to_the_bench_doc(tmp_path):
    target = tmp_path / "BENCH_serve.json"
    target.write_text(json.dumps({"throughput_rps": 100.0}))
    merge_chaos_row(target, {"mismatches": 0, "converged": 1})
    doc = json.loads(target.read_text())
    assert doc["throughput_rps"] == 100.0
    assert doc["chaos"] == {"mismatches": 0, "converged": 1}
    # And onto a missing/garbage file without exploding.
    gone = tmp_path / "fresh.json"
    merge_chaos_row(gone, {"converged": 1})
    assert json.loads(gone.read_text())["chaos"]["converged"] == 1
