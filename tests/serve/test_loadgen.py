"""The load generator: percentile math, both loops, the bench artifact."""

import asyncio
import json

import pytest

from repro.serve import (
    LoadResult,
    ServeConfig,
    ServerThread,
    percentile,
    retry_after_delay,
    run_load,
    write_bench,
)
from repro.serve.loadgen import DEFAULT_RETRY_AFTER_S, MAX_RETRY_AFTER_S

BODIES = [
    {"app": "XSBench", "model": model, "platform": "apu", "precision": "single"}
    for model in ("OpenCL", "C++ AMP")
]


def test_percentile_nearest_rank():
    samples = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
    assert percentile(samples, 50) == 5.0
    assert percentile(samples, 95) == 10.0
    assert percentile(samples, 99) == 10.0
    assert percentile(samples, 0) == 1.0
    assert percentile([], 99) == 0.0
    assert percentile([42.0], 50) == 42.0


def test_load_result_summary_and_json():
    result = LoadResult(mode="closed", duration_s=2.0, concurrency=4, rate=None)
    result.requests = 100
    result.status_counts = {"200": 99, "429": 1}
    result.latencies_s = [0.001] * 100
    doc = result.to_json()
    assert doc["throughput_rps"] == 50.0
    assert doc["latency_ms"]["p99"] == 1.0
    assert doc["status_counts"] == {"200": 99, "429": 1}
    assert "p50 1.00 ms" in result.summary()


def test_closed_loop_against_live_server(tmp_path):
    with ServerThread(ServeConfig(window_s=0.001)) as thread:
        result = asyncio.run(run_load(
            thread.url, BODIES, mode="closed", concurrency=2, duration_s=0.3,
        ))
    assert result.errors == 0
    assert result.requests > 0
    assert set(result.status_counts) == {"200"}
    assert len(result.latencies_s) == result.requests
    target = tmp_path / "BENCH_serve.json"
    write_bench(result, target)
    doc = json.loads(target.read_text())
    assert doc["protocol"] == "v1"
    assert doc["mode"] == "closed"
    assert doc["throughput_rps"] > 0
    assert set(doc["latency_ms"]) >= {"mean", "max", "p50", "p95", "p99"}


def test_open_loop_respects_offered_rate():
    with ServerThread(ServeConfig(window_s=0.001)) as thread:
        result = asyncio.run(run_load(
            thread.url, BODIES, mode="open", concurrency=4, duration_s=0.5,
            rate=100.0,
        ))
    assert result.errors == 0
    # An open loop issues ~rate * duration arrivals regardless of
    # service speed (warm cache keeps the server well ahead here).
    assert 30 <= result.requests <= 60


def test_open_loop_requires_a_rate():
    with pytest.raises(ValueError, match="rate"):
        asyncio.run(run_load("http://127.0.0.1:1", BODIES, mode="open"))
    with pytest.raises(ValueError, match="mode"):
        asyncio.run(run_load("http://127.0.0.1:1", BODIES, mode="sideways"))


# -- Retry-After back-pressure ------------------------------------------


def test_retry_after_delay_jitters_upward_and_caps():
    # The hint is a floor: jitter stretches it 0-50%, deterministically
    # per token, and never returns early.
    delays = {
        retry_after_delay({"retry-after": "0.2"}, f"t:{n}") for n in range(20)
    }
    assert all(0.2 <= d <= 0.3 for d in delays)
    assert len(delays) > 1  # workers desynchronize
    assert retry_after_delay({"retry-after": "0.2"}, "t:0") == retry_after_delay(
        {"retry-after": "0.2"}, "t:0"
    )
    assert retry_after_delay({"retry-after": "3600"}, "t") == MAX_RETRY_AFTER_S


def test_retry_after_delay_falls_back_on_missing_or_http_date():
    ceiling = DEFAULT_RETRY_AFTER_S * 1.5
    assert 0.0 < retry_after_delay({}, "t") <= ceiling
    assert 0.0 < retry_after_delay(
        {"retry-after": "Fri, 08 Aug 2026 00:00:00 GMT"}, "t"
    ) <= ceiling
    assert retry_after_delay({"retry-after": "-5"}, "t") == 0.0


def test_closed_loop_honors_retry_after_on_429():
    """A server that always answers 429 + Retry-After must see the
    closed loop back off, not hammer: the request count is bounded by
    duration / hint, instead of the thousands an unthrottled loop
    would issue."""
    hint = 0.1
    body = (b'{"error": {"status": 429, "message": "full"}}')

    async def scenario() -> LoadResult:
        async def handle(reader, writer):
            try:
                while True:
                    head = await reader.readuntil(b"\r\n\r\n")
                    length = 0
                    for line in head.decode("latin-1").split("\r\n"):
                        name, _, value = line.partition(":")
                        if name.strip().lower() == "content-length":
                            length = int(value.strip())
                    if length:
                        await reader.readexactly(length)
                    writer.write((
                        "HTTP/1.1 429 Too Many Requests\r\n"
                        f"Retry-After: {hint}\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {len(body)}\r\n\r\n"
                    ).encode() + body)
                    await writer.drain()
            except (asyncio.IncompleteReadError, ConnectionError):
                pass
            finally:
                writer.close()

        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            return await run_load(
                f"http://127.0.0.1:{port}", BODIES, mode="closed",
                concurrency=2, duration_s=0.5, warmup=False,
            )
        finally:
            server.close()
            await server.wait_closed()

    result = asyncio.run(scenario())
    assert set(result.status_counts) == {"429"}
    # 2 workers x 0.5 s / >= 0.1 s pause: ~10 requests, not thousands.
    assert result.requests <= 2 * (int(0.5 / hint) + 2)
