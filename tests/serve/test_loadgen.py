"""The load generator: percentile math, both loops, the bench artifact."""

import asyncio
import json

import pytest

from repro.serve import (
    LoadResult,
    ServeConfig,
    ServerThread,
    percentile,
    run_load,
    write_bench,
)

BODIES = [
    {"app": "XSBench", "model": model, "platform": "apu", "precision": "single"}
    for model in ("OpenCL", "C++ AMP")
]


def test_percentile_nearest_rank():
    samples = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
    assert percentile(samples, 50) == 5.0
    assert percentile(samples, 95) == 10.0
    assert percentile(samples, 99) == 10.0
    assert percentile(samples, 0) == 1.0
    assert percentile([], 99) == 0.0
    assert percentile([42.0], 50) == 42.0


def test_load_result_summary_and_json():
    result = LoadResult(mode="closed", duration_s=2.0, concurrency=4, rate=None)
    result.requests = 100
    result.status_counts = {"200": 99, "429": 1}
    result.latencies_s = [0.001] * 100
    doc = result.to_json()
    assert doc["throughput_rps"] == 50.0
    assert doc["latency_ms"]["p99"] == 1.0
    assert doc["status_counts"] == {"200": 99, "429": 1}
    assert "p50 1.00 ms" in result.summary()


def test_closed_loop_against_live_server(tmp_path):
    with ServerThread(ServeConfig(window_s=0.001)) as thread:
        result = asyncio.run(run_load(
            thread.url, BODIES, mode="closed", concurrency=2, duration_s=0.3,
        ))
    assert result.errors == 0
    assert result.requests > 0
    assert set(result.status_counts) == {"200"}
    assert len(result.latencies_s) == result.requests
    target = tmp_path / "BENCH_serve.json"
    write_bench(result, target)
    doc = json.loads(target.read_text())
    assert doc["protocol"] == "v1"
    assert doc["mode"] == "closed"
    assert doc["throughput_rps"] > 0
    assert set(doc["latency_ms"]) >= {"mean", "max", "p50", "p95", "p99"}


def test_open_loop_respects_offered_rate():
    with ServerThread(ServeConfig(window_s=0.001)) as thread:
        result = asyncio.run(run_load(
            thread.url, BODIES, mode="open", concurrency=4, duration_s=0.5,
            rate=100.0,
        ))
    assert result.errors == 0
    # An open loop issues ~rate * duration arrivals regardless of
    # service speed (warm cache keeps the server well ahead here).
    assert 30 <= result.requests <= 60


def test_open_loop_requires_a_rate():
    with pytest.raises(ValueError, match="rate"):
        asyncio.run(run_load("http://127.0.0.1:1", BODIES, mode="open"))
    with pytest.raises(ValueError, match="mode"):
        asyncio.run(run_load("http://127.0.0.1:1", BODIES, mode="sideways"))
