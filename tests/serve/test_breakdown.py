"""The loadtest --breakdown path: segment percentiles from /metrics."""

import asyncio
import math

import pytest

from repro.serve.loadgen import (
    SegmentStats,
    _bucket_quantile,
    fetch_text,
    render_breakdown,
    segment_breakdown,
    segment_series,
)

from .conftest import request

PREDICT_BODY = {
    "app": "XSBench", "model": "OpenCL", "platform": "apu",
    "precision": "single", "scale": "bench",
}


def _exposition(engine_buckets, engine_sum, engine_count) -> str:
    lines = ["# TYPE repro_serve_segment_seconds histogram"]
    for le, cumulative in engine_buckets:
        lines.append(
            f'repro_serve_segment_seconds_bucket{{le="{le}",segment="engine"}} '
            f"{cumulative}"
        )
    lines.append(f'repro_serve_segment_seconds_sum{{segment="engine"}} {engine_sum}')
    lines.append(f'repro_serve_segment_seconds_count{{segment="engine"}} {engine_count}')
    return "\n".join(lines) + "\n"


def test_segment_series_extracts_buckets_sum_and_count():
    text = _exposition([("0.001", 3), ("0.01", 9), ("+Inf", 10)], 0.05, 10)
    series = segment_series(text)
    assert series == {
        "engine": {"0.001": 3.0, "0.01": 9.0, "+Inf": 10.0,
                   "_sum": 0.05, "_count": 10.0},
    }


def test_bucket_quantile_is_a_nearest_rank_upper_bound():
    buckets = [(0.001, 3.0), (0.01, 9.0), (math.inf, 10.0)]
    assert _bucket_quantile(buckets, 10, 50) == 0.01   # 5th of 10 in bucket 2
    assert _bucket_quantile(buckets, 10, 30) == 0.001  # 3rd of 10 in bucket 1
    assert _bucket_quantile(buckets, 10, 99) == math.inf
    assert _bucket_quantile(buckets, 0, 50) == 0.0


def test_breakdown_uses_the_window_delta_not_the_absolute_counts():
    before = _exposition([("0.001", 100), ("0.01", 100), ("+Inf", 100)], 0.1, 100)
    after = _exposition([("0.001", 100), ("0.01", 108), ("+Inf", 110)], 0.6, 110)
    stats = segment_breakdown(before, after)
    assert len(stats) == 1
    engine = stats[0]
    assert engine.segment == "engine"
    assert engine.count == 10
    assert engine.mean_ms == pytest.approx(50.0)  # 0.5 s over 10 requests
    # 8 of the 10 new observations fell in (0.001, 0.01]: p50 is 10 ms.
    assert engine.quantiles_ms["p50"] == pytest.approx(10.0)
    assert math.isinf(engine.quantiles_ms["p99"])  # 2 landed past the last bound


def test_breakdown_with_no_new_observations_is_empty():
    text = _exposition([("0.001", 5), ("+Inf", 5)], 0.001, 5)
    assert segment_breakdown(text, text) == []
    assert "no segment observations" in render_breakdown([])


def test_render_orders_waits_before_service_segments():
    stats = segment_breakdown(
        "",
        "\n".join([
            'repro_serve_segment_seconds_bucket{le="+Inf",segment="serialize"} 1',
            'repro_serve_segment_seconds_sum{segment="serialize"} 0.001',
            'repro_serve_segment_seconds_count{segment="serialize"} 1',
            'repro_serve_segment_seconds_bucket{le="+Inf",segment="queue_wait"} 1',
            'repro_serve_segment_seconds_sum{segment="queue_wait"} 0.002',
            'repro_serve_segment_seconds_count{segment="queue_wait"} 1',
        ]) + "\n",
    )
    assert [s.segment for s in stats] == ["queue_wait", "serialize"]
    table = render_breakdown(stats)
    assert table.index("queue_wait") < table.index("serialize")
    assert "p99 ms" in table


def test_live_breakdown_measures_the_served_requests(server):
    """Scrape a live server before/after traffic: the segment deltas
    describe exactly the requests issued in between."""
    before = asyncio.run(fetch_text(server.url))
    assert request(server, "POST", "/v1/predict", PREDICT_BODY)[0] == 200
    assert request(server, "POST", "/v1/predict", PREDICT_BODY)[0] == 200
    after = asyncio.run(fetch_text(server.url))
    stats = {s.segment: s for s in segment_breakdown(before, after)}
    # Both requests produced full segment accounting (the second was a
    # warm cache hit: handle/serialize only).
    assert stats["handle"].count == 2
    assert stats["serialize"].count == 2
    assert stats["engine"].count == 1
    assert stats["engine"].mean_ms > 0
    for segment in stats.values():
        assert isinstance(segment, SegmentStats)
        assert segment.quantiles_ms["p50"] > 0
