"""Property-based tests on the CoMD force field."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.comd import CoMDConfig, bin_atoms, compute_forces, make_state
from repro.hardware.specs import Precision


def perturbed_state(seed, amplitude):
    state = make_state(CoMDConfig(nx=6, ny=6, nz=6, steps=1), Precision.DOUBLE, seed=seed)
    rng = np.random.default_rng(seed + 1)
    state.positions += amplitude * rng.standard_normal(state.positions.shape)
    np.mod(state.positions, state.config.box, out=state.positions)
    bin_atoms(state)
    return state


@given(
    seed=st.integers(min_value=0, max_value=50),
    amplitude=st.floats(min_value=0.0, max_value=0.12),
)
@settings(max_examples=15, deadline=None)
def test_property_momentum_conserved_by_forces(seed, amplitude):
    """Newton's third law: internal forces sum to zero for any
    configuration."""
    state = perturbed_state(seed, amplitude)
    compute_forces(state)
    net = np.abs(state.forces.sum(axis=0)).max()
    scale = max(np.abs(state.forces).max(), 1.0)
    assert net < 1e-9 * scale


@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=10, deadline=None)
def test_property_forces_translation_invariant(seed):
    """Rigidly translating every atom (mod the periodic box) leaves
    forces unchanged."""
    state = perturbed_state(seed, 0.08)
    compute_forces(state)
    reference = state.forces.copy()

    state.positions += 0.37 * state.config.box[0] / 7.0
    np.mod(state.positions, state.config.box, out=state.positions)
    bin_atoms(state)
    compute_forces(state)
    np.testing.assert_allclose(state.forces, reference, atol=1e-8)


@given(
    seed=st.integers(min_value=0, max_value=30),
    amplitude=st.floats(min_value=0.01, max_value=0.1),
)
@settings(max_examples=10, deadline=None)
def test_property_compression_raises_energy(seed, amplitude):
    """Perturbing a crystal at its energy minimum cannot lower the
    potential energy."""
    relaxed = perturbed_state(seed, 0.0)
    compute_forces(relaxed)
    e_min = relaxed.potential_energy()

    perturbed = perturbed_state(seed, amplitude)
    compute_forces(perturbed)
    assert perturbed.potential_energy() >= e_min - 1e-9 * abs(e_min)
