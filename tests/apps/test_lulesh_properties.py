"""Property-based tests on the LULESH geometry kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lulesh import LuleshConfig, make_state
from repro.apps.lulesh.hydro_kernels import calc_face_normals
from repro.apps.lulesh.physics import element_volumes
from repro.hardware.specs import Precision


def deformed_state(scale_x, scale_y, scale_z, shear):
    """An affinely deformed mesh (volumes remain exactly computable)."""
    state = make_state(LuleshConfig(size=4, iterations=1), Precision.DOUBLE)
    x = state.x * scale_x + shear * state.y
    y = state.y * scale_y
    z = state.z * scale_z
    state.x, state.y, state.z = x, y, z
    return state


@given(
    scale_x=st.floats(min_value=0.5, max_value=2.0),
    scale_y=st.floats(min_value=0.5, max_value=2.0),
    scale_z=st.floats(min_value=0.5, max_value=2.0),
    shear=st.floats(min_value=-0.5, max_value=0.5),
)
@settings(max_examples=40, deadline=None)
def test_property_affine_volume_exact(scale_x, scale_y, scale_z, shear):
    """Under any affine map, every element's volume is |det(A)| * h^3
    exactly (the mean-edge determinant is exact for parallelepipeds)."""
    state = deformed_state(scale_x, scale_y, scale_z, shear)
    h = state.config.spacing
    expected = scale_x * scale_y * scale_z * h**3
    volumes = element_volumes(state.x, state.y, state.z)
    np.testing.assert_allclose(volumes, expected, rtol=1e-10)


@given(
    scale_x=st.floats(min_value=0.5, max_value=2.0),
    scale_y=st.floats(min_value=0.5, max_value=2.0),
    scale_z=st.floats(min_value=0.5, max_value=2.0),
    shear=st.floats(min_value=-0.5, max_value=0.5),
)
@settings(max_examples=40, deadline=None)
def test_property_face_normals_close_under_deformation(scale_x, scale_y, scale_z, shear):
    """The six outward area vectors of a closed cell sum to zero for
    any (planar-face) deformation."""
    state = deformed_state(scale_x, scale_y, scale_z, shear)
    calc_face_normals(state.x, state.y, state.z, state.face_normals)
    total = state.face_normals.sum(axis=0)
    np.testing.assert_allclose(total, 0.0, atol=1e-10)


@given(
    scale=st.floats(min_value=0.5, max_value=2.0),
)
@settings(max_examples=20, deadline=None)
def test_property_divergence_theorem(scale):
    """sum over faces of (normal . centroid offset) recovers 3V —
    the discrete divergence theorem on each cell."""
    state = deformed_state(scale, scale, scale, 0.0)
    calc_face_normals(state.x, state.y, state.z, state.face_normals)
    volumes = element_volumes(state.x, state.y, state.z)
    # For a parallelepiped, each opposite-face pair contributes V.
    h = state.config.spacing
    plus_x = state.face_normals[0]
    # area . edge = volume for the +x face of an axis-aligned scaled box
    np.testing.assert_allclose(plus_x[0] * (scale * h), volumes, rtol=1e-10)
