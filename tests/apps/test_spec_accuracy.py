"""Kernel-characterization accuracy: specs vs the actual arrays.

The timing model is only as honest as the op counts feeding it; these
tests pin the spec formulas to the arrays the kernels genuinely touch.
"""

import pytest

from repro.apps.comd import ATOMS_PER_CELL, CoMDConfig
from repro.apps.comd import kernel_specs as comd_specs
from repro.apps.lulesh import LuleshConfig
from repro.apps.lulesh import kernel_specs as lulesh_specs
from repro.apps.minife import MiniFEConfig, assemble
from repro.apps.minife import kernel_specs as minife_specs
from repro.apps.xsbench import XSBenchConfig, lookup_kernel_spec, make_data
from repro.hardware.specs import Precision


class TestCoMDSpecs:
    CONFIG = CoMDConfig(nx=8, ny=8, nz=8, steps=1)

    def test_force_work_items_is_atom_count(self):
        spec = comd_specs(self.CONFIG, Precision.SINGLE)["comd.lj_force"]
        assert spec.work_items == self.CONFIG.n_atoms

    def test_force_flops_count_pair_candidates(self):
        """The functional kernel evaluates 27 * max_occupancy pair
        candidates per atom; the spec must agree."""
        spec = comd_specs(self.CONFIG, Precision.SINGLE)["comd.lj_force"]
        checks_per_atom = 27 * ATOMS_PER_CELL
        flops_per_atom = spec.ops.flops / self.CONFIG.n_atoms
        assert flops_per_atom > 5 * checks_per_atom  # several flops per check

    def test_streaming_kernels_bytes(self):
        specs = comd_specs(self.CONFIG, Precision.DOUBLE)
        n = self.CONFIG.n_atoms
        velocity = specs["comd.advance_velocity"]
        # v += f * dt: read v and f (6 doubles), write v (3 doubles).
        assert velocity.ops.bytes_read == 6 * 8 * n
        assert velocity.ops.bytes_written == 3 * 8 * n

    def test_lds_declared_for_tiled_force(self):
        spec = comd_specs(self.CONFIG, Precision.SINGLE)["comd.lj_force"]
        assert spec.lds_bytes_per_workgroup > 0
        assert spec.lds_bytes_per_workgroup <= 64 * 1024


class TestLULESHSpecs:
    CONFIG = LuleshConfig(size=8, iterations=1)

    def test_nodal_vs_element_work_items(self):
        specs = lulesh_specs(self.CONFIG, Precision.SINGLE)
        assert specs["lulesh.calc_velocity"].work_items == self.CONFIG.n_nodes
        assert specs["lulesh.eos_compression"].work_items == self.CONFIG.n_elems

    def test_eos_kernel_bytes(self):
        """eos_pressure_half reads e_pred + compression, writes p_half."""
        spec = lulesh_specs(self.CONFIG, Precision.DOUBLE)["lulesh.eos_pressure_half"]
        n = self.CONFIG.n_elems
        assert spec.ops.bytes_read == 2 * 8 * n
        assert spec.ops.bytes_written == 8 * n

    def test_face_normals_writes_18_values_per_element(self):
        spec = lulesh_specs(self.CONFIG, Precision.SINGLE)["lulesh.calc_face_normals"]
        n = self.CONFIG.n_elems
        assert spec.ops.bytes_written == 18 * 4 * n


class TestXSBenchSpecs:
    CONFIG = XSBenchConfig(n_nuclides=34, n_gridpoints=200, n_lookups=1000)

    def test_working_set_matches_generated_tables(self):
        data = make_data(self.CONFIG, Precision.DOUBLE)
        spec = lookup_kernel_spec(self.CONFIG, Precision.DOUBLE)
        actual = (
            data.union_energy.nbytes + data.union_index.nbytes
            + data.nuclide_energy.nbytes + data.nuclide_xs.nbytes
        )
        assert spec.access.working_set_bytes == pytest.approx(actual, rel=0.05)

    def test_writes_five_channels(self):
        spec = lookup_kernel_spec(self.CONFIG, Precision.DOUBLE)
        assert spec.ops.bytes_written == 5 * 8 * self.CONFIG.n_lookups


class TestMiniFESpecs:
    CONFIG = MiniFEConfig(nx=8, ny=8, nz=8, cg_iterations=1)

    def test_spmv_nnz_matches_assembled_matrix(self):
        """The spec prices 27 nnz/row; the real matrix averages close
        to that (boundary rows have fewer)."""
        data, indices, indptr, _ = assemble(self.CONFIG, Precision.DOUBLE)
        actual_nnz_per_row = len(data) / self.CONFIG.n_rows
        spec = minife_specs(self.CONFIG, Precision.DOUBLE)["minife.spmv"]
        spec_flops_per_row = spec.ops.flops / self.CONFIG.n_rows
        assert spec_flops_per_row == 2 * 27
        assert actual_nnz_per_row <= 27

    def test_waxpby_bytes(self):
        spec = minife_specs(self.CONFIG, Precision.DOUBLE)["minife.waxpby"]
        n = self.CONFIG.n_rows
        assert spec.ops.bytes_read == 2 * 8 * n
        assert spec.ops.bytes_written == 8 * n

    def test_dot_writes_one_scalar(self):
        spec = minife_specs(self.CONFIG, Precision.DOUBLE)["minife.dot"]
        assert spec.ops.bytes_written <= 64
