"""read-memory benchmark tests."""

import numpy as np
import pytest

from repro.apps.readmem import (
    APP,
    ReadMemConfig,
    make_input,
    read_kernel_spec,
    read_serial_cpu,
    reference_checksum,
)
from repro.hardware.device import make_apu_platform, make_dgpu_platform
from repro.hardware.specs import Precision

ALL_MODELS = ("Serial", "OpenMP", "OpenCL", "C++ AMP", "OpenACC", "Heterogeneous Compute")


class TestConfig:
    def test_blocks(self):
        assert ReadMemConfig(size=1024).n_blocks == 16

    def test_size_must_be_multiple_of_block(self):
        with pytest.raises(ValueError):
            ReadMemConfig(size=100)

    def test_size_positive(self):
        with pytest.raises(ValueError):
            ReadMemConfig(size=0)


class TestReference:
    def test_block_sums(self):
        config = ReadMemConfig(size=256)
        data = np.arange(256, dtype=np.float64)
        out = np.zeros(4, dtype=np.float64)
        read_serial_cpu(data, out)
        expected = data.reshape(4, 64).sum(axis=1)
        np.testing.assert_allclose(out, expected)

    def test_checksum_is_total_sum(self):
        config = ReadMemConfig(size=1024)
        data = make_input(config, Precision.DOUBLE)
        assert reference_checksum(data, config) == pytest.approx(data.sum(), rel=1e-9)

    def test_input_deterministic(self):
        config = ReadMemConfig(size=1024)
        a = make_input(config, Precision.SINGLE)
        b = make_input(config, Precision.SINGLE)
        np.testing.assert_array_equal(a, b)


class TestPortAgreement:
    @pytest.mark.parametrize("model", ALL_MODELS)
    @pytest.mark.parametrize("apu", [True, False])
    def test_checksum_matches_reference(self, model, apu):
        config = ReadMemConfig(size=1 << 16)
        platform = make_apu_platform() if apu else make_dgpu_platform()
        result = APP.run(model, platform, Precision.SINGLE, config)
        data = make_input(config, Precision.SINGLE)
        expected = reference_checksum(data, config)
        assert result.checksum == pytest.approx(expected, rel=1e-5)

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_double_precision(self, model):
        config = ReadMemConfig(size=1 << 16)
        result = APP.run(model, make_dgpu_platform(), Precision.DOUBLE, config)
        data = make_input(config, Precision.DOUBLE)
        assert result.checksum == pytest.approx(reference_checksum(data, config), rel=1e-12)


class TestSpecAccuracy:
    """The characterization must match what the kernel actually does."""

    def test_bytes_match_arrays(self):
        config = ReadMemConfig(size=1 << 16)
        spec = read_kernel_spec(config, Precision.SINGLE)
        assert spec.ops.bytes_read == config.size * 4
        assert spec.ops.bytes_written == config.n_blocks * 4

    def test_flops_count_the_adds(self):
        config = ReadMemConfig(size=1 << 16)
        spec = read_kernel_spec(config, Precision.SINGLE)
        # 63 adds per 64-element block.
        assert spec.ops.flops == config.size - config.n_blocks

    def test_double_precision_doubles_bytes(self):
        config = ReadMemConfig(size=1 << 16)
        sp = read_kernel_spec(config, Precision.SINGLE)
        dp = read_kernel_spec(config, Precision.DOUBLE)
        assert dp.ops.bytes_read == 2 * sp.ops.bytes_read


class TestPaperShape:
    """Sec. VI-A: kernel-only comparison of code-generation quality."""

    def test_opencl_beats_amp_by_1_3x_and_acc_by_2x(self):
        config = ReadMemConfig(size=1 << 20)
        platform = make_dgpu_platform
        results = {m: APP.run(m, platform(), Precision.SINGLE, config) for m in ("OpenCL", "C++ AMP", "OpenACC")}
        amp_ratio = results["C++ AMP"].kernel_seconds / results["OpenCL"].kernel_seconds
        acc_ratio = results["OpenACC"].kernel_seconds / results["OpenCL"].kernel_seconds
        assert amp_ratio == pytest.approx(1.3, abs=0.2)
        assert acc_ratio == pytest.approx(2.0, abs=0.3)

    def test_dgpu_kernel_speedup_order_of_magnitude_above_apu(self):
        """'The difference in speedups between APU and dGPU ... is due
        to an order of magnitude more bandwidth on the dGPU.'"""
        config = ReadMemConfig(size=1 << 20)
        dgpu = APP.run("OpenCL", make_dgpu_platform(), Precision.SINGLE, config)
        apu = APP.run("OpenCL", make_apu_platform(), Precision.SINGLE, config)
        assert 5 < apu.kernel_seconds / dgpu.kernel_seconds < 12
