"""Heterogeneous Compute ports: correctness + the Sec. VII positioning."""

import pytest

from repro.apps import ALL_APPS, APPS_BY_NAME
from repro.apps.comd import CoMDConfig
from repro.apps.lulesh import LuleshConfig
from repro.apps.minife import MiniFEConfig
from repro.apps.xsbench import XSBenchConfig
from repro.hardware.device import make_apu_platform, make_dgpu_platform
from repro.hardware.specs import Precision

from tests.conftest import project

SHAPE_CONFIGS = {
    "LULESH": LuleshConfig(size=48, iterations=10),
    "CoMD": CoMDConfig(nx=24, ny=24, nz=24, steps=3),
    "XSBench": XSBenchConfig(n_nuclides=68, n_gridpoints=2000, n_lookups=1_000_000),
    "miniFE": MiniFEConfig(nx=48, ny=48, nz=48, cg_iterations=30),
}


class TestCorrectness:
    @pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
    @pytest.mark.parametrize("apu", [True, False])
    def test_hc_matches_serial(self, app, apu):
        platform = make_apu_platform() if apu else make_dgpu_platform()
        reference = app.run("Serial", platform, Precision.SINGLE)
        result = app.run("Heterogeneous Compute", platform, Precision.SINGLE)
        assert result.checksum == pytest.approx(reference.checksum, rel=1e-4)


class TestBestOfBothWorlds:
    """Sec. VII: HC should close the emerging models' dGPU transfer gap
    while keeping near-OpenCL kernel quality."""

    @pytest.mark.parametrize("app_name", sorted(SHAPE_CONFIGS))
    def test_hc_beats_cppamp_on_dgpu(self, app_name):
        app = APPS_BY_NAME[app_name]
        config = SHAPE_CONFIGS[app_name]
        hc = project(app, "Heterogeneous Compute", False, Precision.SINGLE, config)
        amp = project(app, "C++ AMP", False, Precision.SINGLE, config)
        assert hc.seconds < amp.seconds, app_name

    @pytest.mark.parametrize("app_name", sorted(SHAPE_CONFIGS))
    def test_hc_within_reach_of_opencl(self, app_name):
        app = APPS_BY_NAME[app_name]
        config = SHAPE_CONFIGS[app_name]
        hc = project(app, "Heterogeneous Compute", False, Precision.SINGLE, config)
        ocl = project(app, "OpenCL", False, Precision.SINGLE, config)
        assert hc.seconds < 1.35 * ocl.seconds, app_name

    def test_hc_overlap_pays_on_xsbench(self):
        """The double-buffered XSBench HC port should beat OpenCL's
        synchronous chunking outright on the dGPU."""
        app = APPS_BY_NAME["XSBench"]
        config = SHAPE_CONFIGS["XSBench"]
        hc = project(app, "Heterogeneous Compute", False, Precision.DOUBLE, config)
        ocl = project(app, "OpenCL", False, Precision.DOUBLE, config)
        assert hc.counters.transfer_seconds <= ocl.counters.transfer_seconds * 1.05
        assert hc.seconds < 1.1 * ocl.seconds
