"""CoMD tests: lattice, link cells, forces, energy conservation."""

import numpy as np
import pytest

from repro.apps.comd import (
    APP,
    LATTICE_A0,
    LJ_CUTOFF,
    CoMDConfig,
    bin_atoms,
    build_neighbor_map,
    compute_forces,
    make_state,
    needs_rebin,
    run_reference,
)
from repro.hardware.device import make_apu_platform, make_dgpu_platform
from repro.hardware.specs import Precision

GPU_MODELS = ("OpenCL", "C++ AMP", "OpenACC")


def small_config(steps=3):
    return CoMDConfig(nx=6, ny=6, nz=6, steps=steps)


class TestConfig:
    def test_atom_count(self):
        assert small_config().n_atoms == 4 * 6**3

    def test_paper_config(self):
        config = APP.paper_config()
        assert (config.nx, config.ny, config.nz) == (60, 60, 60)
        assert config.n_atoms == 864_000

    def test_odd_dimension_rejected(self):
        with pytest.raises(ValueError):
            CoMDConfig(nx=7, ny=6, nz=6)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            CoMDConfig(nx=4, ny=6, nz=6)

    def test_cell_edge_exceeds_cutoff(self):
        config = small_config()
        edges = config.box / np.array(config.cells_per_dim)
        assert (edges > LJ_CUTOFF).all()


class TestLattice:
    def test_fcc_nearest_neighbour_distance(self):
        state = make_state(small_config(), Precision.DOUBLE)
        # FCC nearest-neighbour distance is a0/sqrt(2) = 2^(1/6) sigma.
        p0 = state.positions[0]
        d = np.linalg.norm(state.positions[1:200] - p0, axis=1)
        assert d.min() == pytest.approx(LATTICE_A0 / np.sqrt(2), rel=1e-6)

    def test_zero_net_momentum(self):
        state = make_state(small_config(), Precision.DOUBLE)
        np.testing.assert_allclose(state.velocities.sum(axis=0), 0.0, atol=1e-9)

    def test_positions_inside_box(self):
        state = make_state(small_config(), Precision.DOUBLE)
        assert (state.positions >= 0).all()
        assert (state.positions < state.config.box).all()


class TestLinkCells:
    def test_every_atom_in_exactly_one_cell(self):
        state = make_state(small_config(), Precision.DOUBLE)
        members = state.cell_atoms[state.cell_atoms >= 0]
        assert len(members) == state.config.n_atoms
        assert len(np.unique(members)) == state.config.n_atoms

    def test_counts_match_table(self):
        state = make_state(small_config(), Precision.DOUBLE)
        assert state.cell_count.sum() == state.config.n_atoms

    def test_neighbor_map_has_27_entries(self):
        neighbors = build_neighbor_map(small_config())
        assert neighbors.shape[1] == 27
        # All 27 neighbours of a given cell are distinct (grid >= 3 wide).
        assert all(len(np.unique(row)) == 27 for row in neighbors[:10])

    def test_neighbor_map_symmetric(self):
        neighbors = build_neighbor_map(small_config())
        for cell in (0, 5, 11):
            for other in neighbors[cell]:
                assert cell in neighbors[other]

    def test_rebin_after_motion(self):
        state = make_state(small_config(), Precision.DOUBLE)
        assert not needs_rebin(state)
        state.positions += 1.0
        assert needs_rebin(state)
        bin_atoms(state)
        assert not needs_rebin(state)


class TestForces:
    def test_perfect_lattice_has_near_zero_forces(self):
        """On the ideal FCC lattice every atom's environment is
        symmetric, so forces cancel."""
        config = small_config()
        state = make_state(config, Precision.DOUBLE)
        state.velocities[:] = 0.0
        compute_forces(state)
        assert np.abs(state.forces).max() < 1e-9

    def test_newtons_third_law_net_force(self):
        state = make_state(small_config(), Precision.DOUBLE)
        rng = np.random.default_rng(3)
        state.positions += 0.05 * rng.standard_normal(state.positions.shape)
        bin_atoms(state)
        compute_forces(state)
        np.testing.assert_allclose(state.forces.sum(axis=0), 0.0, atol=1e-8)

    def test_potential_negative_in_crystal(self):
        state = make_state(small_config(), Precision.DOUBLE)
        compute_forces(state)
        assert state.potential_energy() < 0

    def test_forces_invariant_under_rebinning(self):
        state = make_state(small_config(), Precision.DOUBLE)
        rng = np.random.default_rng(4)
        state.positions += 0.05 * rng.standard_normal(state.positions.shape)
        bin_atoms(state)
        compute_forces(state)
        before = state.forces.copy()
        bin_atoms(state)
        compute_forces(state)
        np.testing.assert_allclose(state.forces, before, rtol=1e-10)


class TestIntegration:
    def test_energy_conservation(self):
        config = CoMDConfig(nx=6, ny=6, nz=6, steps=20)
        state = run_reference(config, Precision.DOUBLE)
        one = run_reference(CoMDConfig(nx=6, ny=6, nz=6, steps=1), Precision.DOUBLE)
        drift = abs(state.total_energy() - one.total_energy()) / abs(one.total_energy())
        assert drift < 1e-4

    def test_temperature_stays_finite(self):
        state = run_reference(CoMDConfig(nx=6, ny=6, nz=6, steps=15), Precision.DOUBLE)
        assert np.isfinite(state.kinetic_energy())
        assert state.kinetic_energy() > 0


class TestPortAgreement:
    @pytest.mark.parametrize("apu", [True, False])
    def test_all_ports_match_reference(self, apu):
        config = small_config(steps=2)
        reference = run_reference(config, Precision.SINGLE)
        platform_fn = make_apu_platform if apu else make_dgpu_platform
        for model in ("Serial", "OpenMP") + GPU_MODELS:
            result = APP.run(model, platform_fn(), Precision.SINGLE, config)
            assert result.checksum == pytest.approx(reference.checksum(), rel=1e-4), model


class TestPaperShape:
    @staticmethod
    def _project(model, platform, precision, config):
        from repro.models.base import ExecutionContext

        ctx = ExecutionContext(platform=platform, precision=precision, execute_kernels=False)
        return APP.ports[model](ctx, config)

    def test_openacc_worst_everywhere(self):
        """Fig. 8c/9c: 'OpenACC demonstrated the worst performance on
        both architectures' (at device-saturating sizes)."""
        config = CoMDConfig(nx=24, ny=24, nz=24, steps=3)
        for platform_fn in (make_apu_platform, make_dgpu_platform):
            results = {
                m: self._project(m, platform_fn(), Precision.SINGLE, config)
                for m in GPU_MODELS
            }
            assert results["OpenACC"].seconds > results["OpenCL"].seconds
            assert results["OpenACC"].seconds > results["C++ AMP"].seconds

    def test_dp_collapse_on_apu(self):
        """Fig. 8c: Kaveri's 1/16 DP rate erases the GPU advantage."""
        config = CoMDConfig(nx=24, ny=24, nz=24, steps=3)
        sp = self._project("OpenCL", make_apu_platform(), Precision.SINGLE, config)
        dp = self._project("OpenCL", make_apu_platform(), Precision.DOUBLE, config)
        assert dp.seconds > 4 * sp.seconds
