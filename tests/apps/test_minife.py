"""miniFE tests: FEM assembly, CG convergence, port agreement."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps.minife import (
    APP,
    NNZ_PER_ROW,
    MiniFEConfig,
    assemble,
    dot,
    hex8_stiffness,
    reference_solve,
    spmv,
    waxpby,
)
from repro.hardware.device import make_apu_platform, make_dgpu_platform
from repro.hardware.specs import Precision

GPU_MODELS = ("OpenCL", "C++ AMP", "OpenACC")


def small_config(iters=30):
    return MiniFEConfig(nx=8, ny=8, nz=8, cg_iterations=iters)


class TestStiffness:
    def test_symmetric(self):
        K = hex8_stiffness()
        np.testing.assert_allclose(K, K.T, atol=1e-12)

    def test_rows_sum_to_zero(self):
        """Constant fields are in the Laplacian's null space."""
        K = hex8_stiffness()
        np.testing.assert_allclose(K.sum(axis=1), 0.0, atol=1e-12)

    def test_positive_semidefinite(self):
        eigenvalues = np.linalg.eigvalsh(hex8_stiffness())
        assert eigenvalues.min() > -1e-12

    def test_diagonal_positive(self):
        assert (np.diag(hex8_stiffness()) > 0).all()


class TestAssembly:
    def test_shape_and_stencil(self):
        config = small_config()
        data, indices, indptr, rhs = assemble(config, Precision.DOUBLE)
        assert len(indptr) == config.n_rows + 1
        assert len(rhs) == config.n_rows
        row_nnz = np.diff(indptr)
        assert row_nnz.max() <= NNZ_PER_ROW

    def test_matrix_symmetric(self):
        config = small_config()
        data, indices, indptr, _ = assemble(config, Precision.DOUBLE)
        matrix = sp.csr_matrix((data, indices, indptr), shape=(config.n_rows,) * 2)
        diff = (matrix - matrix.T).toarray()
        np.testing.assert_allclose(diff, 0.0, atol=1e-10)

    def test_interior_spd(self):
        config = MiniFEConfig(nx=3, ny=3, nz=3)
        data, indices, indptr, _ = assemble(config, Precision.DOUBLE)
        dense = sp.csr_matrix((data, indices, indptr), shape=(config.n_rows,) * 2).toarray()
        eigenvalues = np.linalg.eigvalsh(dense)
        assert eigenvalues.min() > 0  # Dirichlet rows make it definite

    def test_boundary_rows_are_identity(self):
        config = small_config()
        data, indices, indptr, rhs = assemble(config, Precision.DOUBLE)
        matrix = sp.csr_matrix((data, indices, indptr), shape=(config.n_rows,) * 2)
        # Node 0 is a corner: its row must be e_0 and its rhs 0.
        row = matrix.getrow(0).toarray().ravel()
        assert row[0] == pytest.approx(1.0)
        assert np.abs(row[1:]).max() == 0.0
        assert rhs[0] == 0.0


class TestKernels:
    def test_spmv_matches_scipy(self):
        config = small_config()
        data, indices, indptr, rhs = assemble(config, Precision.DOUBLE)
        matrix = sp.csr_matrix((data, indices, indptr), shape=(config.n_rows,) * 2)
        x = np.random.default_rng(1).random(config.n_rows)
        y = np.zeros_like(x)
        spmv(data, indices, indptr, x, y)
        np.testing.assert_allclose(y, matrix @ x, rtol=1e-12)

    def test_waxpby(self):
        x = np.arange(5, dtype=np.float64)
        y = np.ones(5)
        w = np.zeros(5)
        waxpby(w, x, y, 2.0, -1.0)
        np.testing.assert_allclose(w, 2 * x - 1)

    def test_waxpby_aliasing_safe(self):
        """The CG loop updates x in place: w may alias x."""
        x = np.arange(5, dtype=np.float64)
        p = np.ones(5)
        waxpby(x, x, p, 1.0, 0.5)
        np.testing.assert_allclose(x, np.arange(5) + 0.5)

    def test_dot(self):
        out = np.zeros(1)
        dot(np.array([1.0, 2.0]), np.array([3.0, 4.0]), out)
        assert out[0] == pytest.approx(11.0)


class TestCGConvergence:
    def test_residual_drops(self):
        x, residuals = reference_solve(small_config(iters=100), Precision.DOUBLE)
        assert residuals[-1] < 1e-6 * residuals[0]

    def test_solves_the_system(self):
        config = MiniFEConfig(nx=5, ny=5, nz=5, cg_iterations=200, tolerance=1e-12)
        x, _ = reference_solve(config, Precision.DOUBLE)
        data, indices, indptr, rhs = assemble(config, Precision.DOUBLE)
        matrix = sp.csr_matrix((data, indices, indptr), shape=(config.n_rows,) * 2)
        np.testing.assert_allclose(matrix @ x, rhs, atol=1e-8)

    def test_solution_positive_inside(self):
        """Poisson with positive source and zero walls: u > 0 inside."""
        config = MiniFEConfig(nx=6, ny=6, nz=6, cg_iterations=200)
        x, _ = reference_solve(config, Precision.DOUBLE)
        data, indices, indptr, rhs = assemble(config, Precision.DOUBLE)
        interior = rhs > 0
        assert (x[interior] > 0).all()


class TestPortAgreement:
    @pytest.mark.parametrize("apu", [True, False])
    def test_all_ports_match(self, apu):
        config = small_config(iters=15)
        platform_fn = make_apu_platform if apu else make_dgpu_platform
        reference = APP.run("Serial", platform_fn(), Precision.DOUBLE, config)
        for model in ("OpenMP",) + GPU_MODELS:
            result = APP.run(model, platform_fn(), Precision.DOUBLE, config)
            assert result.checksum == pytest.approx(reference.checksum, rel=1e-8), model


class TestPaperShape:
    def test_openacc_slowest_everywhere(self):
        """Fig. 8e/9e: 'OpenACC performs the slowest because
        specialized sparse matrix operations cannot be easily
        expressed at a high level'."""
        from tests.conftest import project

        config = MiniFEConfig(nx=48, ny=48, nz=48, cg_iterations=30)
        for apu in (True, False):
            results = {m: project(APP, m, apu, Precision.DOUBLE, config) for m in GPU_MODELS}
            assert results["OpenACC"].seconds > results["OpenCL"].seconds
            assert results["OpenACC"].seconds > results["C++ AMP"].seconds
