"""Proxy-application framework tests."""

import pytest

from repro.apps import ALL_APPS, APPS_BY_NAME, PROXY_APPS
from repro.apps.base import ProxyApp
from repro.hardware.device import make_apu_platform
from repro.hardware.specs import Precision


class TestRegistry:
    def test_five_apps_in_paper_order(self):
        assert [app.name for app in ALL_APPS] == [
            "read-benchmark", "LULESH", "CoMD", "XSBench", "miniFE",
        ]

    def test_proxy_apps_exclude_microbenchmark(self):
        assert [app.name for app in PROXY_APPS] == ["LULESH", "CoMD", "XSBench", "miniFE"]

    def test_lookup_by_name(self):
        assert APPS_BY_NAME["CoMD"].n_kernels == 3


class TestDescriptors:
    @pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
    def test_command_lines_match_table1(self, app):
        expected = {
            "read-benchmark": "./read-benchmark",
            "LULESH": "./LULESH -s 100 -i 100",
            "CoMD": "./CoMD -x 60 -y 60 -z 60",
            "XSBench": "./XSBench -s small",
            "miniFE": "./miniFE -nx 100 -ny 100 -nz 100",
        }
        assert app.command_line == expected[app.name]

    @pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
    def test_has_core_ports(self, app):
        for model in ("Serial", "OpenMP", "OpenCL", "C++ AMP", "OpenACC"):
            assert model in app.ports, (app.name, model)

    @pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
    def test_configs_constructible(self, app):
        assert app.default_config() is not None
        assert app.paper_config() is not None

    def test_boundedness_labels(self):
        labels = {app.name: app.boundedness for app in PROXY_APPS}
        assert labels == {
            "LULESH": "Balanced", "CoMD": "Compute",
            "XSBench": "Compute", "miniFE": "Memory",
        }


class TestRun:
    def test_unknown_model_raises(self):
        app = APPS_BY_NAME["read-benchmark"]
        with pytest.raises(KeyError, match="no port"):
            app.run("CUDA", make_apu_platform(), Precision.SINGLE)

    def test_run_returns_result(self):
        app = APPS_BY_NAME["read-benchmark"]
        result = app.run("OpenMP", make_apu_platform(), Precision.SINGLE)
        assert result.app == "read-benchmark"
        assert result.model == "OpenMP"
        assert result.seconds > 0
        assert result.kernel_seconds <= result.seconds
