"""XSBench tests: data structures, lookup correctness, port agreement."""

import numpy as np
import pytest

from repro.apps.xsbench import (
    APP,
    MATERIAL_NUCLIDE_COUNTS,
    MATERIAL_PROBABILITIES,
    N_XS,
    XSBenchConfig,
    compute_macro_xs_direct,
    lookup_kernel_spec,
    make_data,
    xs_lookup,
)
from repro.hardware.device import make_apu_platform, make_dgpu_platform
from repro.hardware.specs import Precision

GPU_MODELS = ("OpenCL", "C++ AMP", "OpenACC")


def small_config(lookups=4000):
    return XSBenchConfig(n_nuclides=34, n_gridpoints=100, n_lookups=lookups)


class TestConfig:
    def test_union_size(self):
        assert small_config().n_union == 3400

    def test_paper_table_is_about_240mb(self):
        """'XSBench uses a configurable lookup-table size which was set
        to 240 MB for our experiments.'"""
        config = APP.paper_config()
        assert config.table_bytes(Precision.DOUBLE) == pytest.approx(240e6, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            XSBenchConfig(n_nuclides=10, n_gridpoints=100, n_lookups=100)
        with pytest.raises(ValueError):
            XSBenchConfig(n_nuclides=34, n_gridpoints=1, n_lookups=100)
        with pytest.raises(ValueError):
            XSBenchConfig(n_nuclides=34, n_gridpoints=100, n_lookups=0)


class TestDataGeneration:
    def test_union_grid_sorted(self):
        data = make_data(small_config(), Precision.DOUBLE)
        assert (np.diff(data.union_energy) >= 0).all()

    def test_union_contains_all_nuclide_energies(self):
        data = make_data(small_config(), Precision.DOUBLE)
        assert len(data.union_energy) == small_config().n_union

    def test_index_matrix_is_lower_bound(self):
        data = make_data(small_config(), Precision.DOUBLE)
        config = data.config
        rng = np.random.default_rng(0)
        for _ in range(50):
            row = rng.integers(0, config.n_union)
            nuclide = rng.integers(0, config.n_nuclides)
            idx = int(data.union_index[row, nuclide])
            energy = data.union_energy[row]
            grid = data.nuclide_energy[nuclide]
            assert grid[idx] <= energy or idx == 0
            assert 0 <= idx <= config.n_gridpoints - 2

    def test_hoogenboom_martin_materials(self):
        data = make_data(small_config(), Precision.DOUBLE)
        assert len(MATERIAL_NUCLIDE_COUNTS) == 12
        assert MATERIAL_NUCLIDE_COUNTS[0] == 34  # fuel has the most
        np.testing.assert_array_equal(data.material_n, MATERIAL_NUCLIDE_COUNTS)

    def test_material_distribution_respected(self):
        config = XSBenchConfig(n_nuclides=34, n_gridpoints=50, n_lookups=200_000)
        data = make_data(config, Precision.SINGLE)
        freq = np.bincount(data.lookup_material, minlength=12) / config.n_lookups
        probabilities = np.array(MATERIAL_PROBABILITIES)
        probabilities /= probabilities.sum()
        np.testing.assert_allclose(freq, probabilities, atol=0.01)

    def test_deterministic(self):
        a = make_data(small_config(), Precision.SINGLE)
        b = make_data(small_config(), Precision.SINGLE)
        np.testing.assert_array_equal(a.union_energy, b.union_energy)
        np.testing.assert_array_equal(a.lookup_material, b.lookup_material)


class TestLookupKernel:
    def test_matches_direct_oracle(self):
        """The unionized-grid kernel must agree with the independent
        per-nuclide binary-search implementation."""
        data = make_data(small_config(), Precision.DOUBLE)
        macro = np.zeros((data.config.n_lookups, N_XS), dtype=np.float64)
        xs_lookup(
            data.lookup_energy, data.lookup_material, data.union_energy,
            data.union_index, data.material_nuclides, data.material_density,
            data.material_n, data.nuclide_energy, data.nuclide_xs, macro,
        )
        oracle = compute_macro_xs_direct(data)
        np.testing.assert_allclose(macro, oracle, rtol=1e-10)

    def test_all_lookups_nonzero(self):
        data = make_data(small_config(), Precision.DOUBLE)
        macro = np.zeros((data.config.n_lookups, N_XS), dtype=np.float64)
        xs_lookup(
            data.lookup_energy, data.lookup_material, data.union_energy,
            data.union_index, data.material_nuclides, data.material_density,
            data.material_n, data.nuclide_energy, data.nuclide_xs, macro,
        )
        assert (macro > 0).all()


class TestSpec:
    def test_chunked_spec_scales(self):
        config = small_config()
        full = lookup_kernel_spec(config, Precision.DOUBLE)
        half = lookup_kernel_spec(config, Precision.DOUBLE, n_lookups=config.n_lookups // 2)
        assert half.ops.flops == pytest.approx(full.ops.flops / 2)
        assert half.work_items == config.n_lookups // 2

    def test_working_set_is_the_table(self):
        config = small_config()
        spec = lookup_kernel_spec(config, Precision.DOUBLE)
        assert spec.access.working_set_bytes == config.table_bytes(Precision.DOUBLE)


class TestPortAgreement:
    @pytest.mark.parametrize("apu", [True, False])
    def test_all_ports_match(self, apu):
        config = small_config()
        platform_fn = make_apu_platform if apu else make_dgpu_platform
        reference = APP.run("Serial", platform_fn(), Precision.DOUBLE, config)
        for model in ("OpenMP",) + GPU_MODELS:
            result = APP.run(model, platform_fn(), Precision.DOUBLE, config)
            assert result.checksum == pytest.approx(reference.checksum, rel=1e-10), model


class TestPaperShape:
    def test_cppamp_best_on_apu(self):
        """Fig. 8d: 'C++ AMP resulted in the best performance on the
        APU' for XSBench."""
        from tests.conftest import project

        config = XSBenchConfig(n_nuclides=68, n_gridpoints=2000, n_lookups=1_000_000)
        results = {m: project(APP, m, True, Precision.DOUBLE, config) for m in GPU_MODELS}
        assert results["C++ AMP"].seconds < results["OpenCL"].seconds
        assert results["C++ AMP"].seconds < results["OpenACC"].seconds

    def test_opencl_best_on_dgpu(self):
        """Fig. 9d: OpenCL wins on the discrete GPU, up to 2x."""
        from tests.conftest import project

        config = XSBenchConfig(n_nuclides=68, n_gridpoints=2000, n_lookups=1_000_000)
        results = {m: project(APP, m, False, Precision.DOUBLE, config) for m in GPU_MODELS}
        assert results["OpenCL"].seconds < results["C++ AMP"].seconds
        assert results["OpenACC"].seconds / results["OpenCL"].seconds == pytest.approx(2.0, abs=0.7)
