"""LULESH tests: geometry, physics invariants, port agreement."""

import numpy as np
import pytest

from repro.apps.lulesh import (
    APP,
    SCHEDULE,
    LuleshConfig,
    kernel_specs,
    make_state,
    run_iteration,
    run_reference,
)
from repro.apps.lulesh.hydro_kernels import calc_face_normals
from repro.apps.lulesh.physics import E_ZERO, element_volumes
from repro.hardware.device import make_apu_platform, make_dgpu_platform
from repro.hardware.specs import Precision

GPU_MODELS = ("OpenCL", "C++ AMP", "OpenACC")


class TestConfig:
    def test_counts(self):
        config = LuleshConfig(size=10, iterations=5)
        assert config.n_elems == 1000
        assert config.n_nodes == 11**3

    def test_validation(self):
        with pytest.raises(ValueError):
            LuleshConfig(size=1, iterations=5)
        with pytest.raises(ValueError):
            LuleshConfig(size=10, iterations=0)

    def test_paper_config_matches_table1(self):
        config = APP.paper_config()
        assert config.size == 100 and config.iterations == 100


class TestGeometry:
    def test_initial_volumes_exact(self):
        state = make_state(LuleshConfig(size=6, iterations=1), Precision.DOUBLE)
        volumes = element_volumes(state.x, state.y, state.z)
        np.testing.assert_allclose(volumes, state.config.spacing**3, rtol=1e-12)

    def test_face_normals_closed_surface(self):
        """The outward area vectors of a closed hexahedron sum to zero."""
        state = make_state(LuleshConfig(size=4, iterations=1), Precision.DOUBLE)
        calc_face_normals(state.x, state.y, state.z, state.face_normals)
        total = state.face_normals.sum(axis=0)  # sum over faces
        np.testing.assert_allclose(total, 0.0, atol=1e-12)

    def test_face_normals_outward(self):
        state = make_state(LuleshConfig(size=4, iterations=1), Precision.DOUBLE)
        calc_face_normals(state.x, state.y, state.z, state.face_normals)
        h = state.config.spacing
        # +x face normal of an undeformed element is (h^2, 0, 0).
        np.testing.assert_allclose(state.face_normals[0, 0], h * h, rtol=1e-12)
        np.testing.assert_allclose(state.face_normals[1, 0], -h * h, rtol=1e-12)

    def test_nodal_mass_conserves_total(self):
        state = make_state(LuleshConfig(size=6, iterations=1), Precision.DOUBLE)
        assert state.nodal_mass.sum() == pytest.approx(state.elem_mass.sum(), rel=1e-12)


class TestSedovPhysics:
    def test_energy_deposited_at_origin(self):
        state = make_state(LuleshConfig(size=8, iterations=1), Precision.DOUBLE)
        assert state.e[0, 0, 0] == E_ZERO
        assert state.e.sum() == pytest.approx(E_ZERO)

    def test_shock_propagates_outward(self):
        state = run_reference(LuleshConfig(size=8, iterations=40), Precision.DOUBLE)
        assert state.e[1, 0, 0] > 0.01 * E_ZERO
        assert state.e[0, 0, 0] < E_ZERO

    def test_total_energy_approximately_conserved(self):
        config = LuleshConfig(size=8, iterations=40)
        state = run_reference(config, Precision.DOUBLE)
        e0 = E_ZERO * config.spacing**3
        assert 0.80 * e0 < state.total_energy() < 1.05 * e0

    def test_volumes_stay_positive(self):
        state = run_reference(LuleshConfig(size=8, iterations=40), Precision.DOUBLE)
        assert state.v.min() > 0

    def test_dt_positive_and_finite(self):
        state = run_reference(LuleshConfig(size=8, iterations=20), Precision.DOUBLE)
        assert 0 < state.dt < 1.0
        assert np.isfinite(state.time)

    def test_symmetry_planes_hold(self):
        """Normal velocities on the symmetry planes must stay zero."""
        state = run_reference(LuleshConfig(size=8, iterations=20), Precision.DOUBLE)
        np.testing.assert_allclose(state.xd[0, :, :], 0.0, atol=1e-10)
        np.testing.assert_allclose(state.yd[:, 0, :], 0.0, atol=1e-10)
        np.testing.assert_allclose(state.zd[:, :, 0], 0.0, atol=1e-10)

    def test_diagonal_symmetry_of_solution(self):
        """The Sedov problem is symmetric under coordinate permutation."""
        state = run_reference(LuleshConfig(size=6, iterations=15), Precision.DOUBLE)
        np.testing.assert_allclose(state.e, state.e.transpose(1, 0, 2), rtol=1e-7, atol=1e-3)
        np.testing.assert_allclose(state.e, state.e.transpose(2, 1, 0), rtol=1e-7, atol=1e-3)

    def test_deterministic(self):
        a = run_reference(LuleshConfig(size=6, iterations=10), Precision.DOUBLE)
        b = run_reference(LuleshConfig(size=6, iterations=10), Precision.DOUBLE)
        np.testing.assert_array_equal(a.e, b.e)


class TestSchedule:
    def test_28_kernels(self):
        assert len(SCHEDULE) == 28
        assert APP.n_kernels == 28

    def test_unique_names(self):
        names = [step.name for step in SCHEDULE]
        assert len(set(names)) == 28

    def test_every_step_has_spec(self):
        specs = kernel_specs(LuleshConfig(size=6, iterations=1), Precision.SINGLE)
        for step in SCHEDULE:
            assert step.name in specs

    def test_writes_subset_of_arrays(self):
        for step in SCHEDULE:
            assert set(step.writes) <= set(step.arrays)

    def test_one_iteration_runs(self):
        state = make_state(LuleshConfig(size=6, iterations=1), Precision.DOUBLE)
        run_iteration(state)
        assert state.time > 0


class TestPortAgreement:
    @pytest.mark.parametrize("apu", [True, False])
    def test_all_ports_match_reference(self, apu):
        config = LuleshConfig(size=8, iterations=4)
        reference = run_reference(config, Precision.SINGLE)
        platform_fn = make_apu_platform if apu else make_dgpu_platform
        for model in ("Serial", "OpenMP") + GPU_MODELS:
            result = APP.run(model, platform_fn(), Precision.SINGLE, config)
            assert result.checksum == pytest.approx(reference.checksum(), rel=1e-5), model


class TestPaperShape:
    def test_cppamp_worst_on_dgpu_due_to_fallback(self):
        """Fig. 9b: the CLAMP compiler bug makes C++ AMP the slowest
        model on the discrete GPU."""
        from tests.conftest import project

        config = LuleshConfig(size=48, iterations=5)
        results = {m: project(APP, m, False, Precision.SINGLE, config) for m in GPU_MODELS}
        assert results["OpenCL"].seconds < results["OpenACC"].seconds
        assert results["OpenACC"].seconds < results["C++ AMP"].seconds

    def test_opencl_best_on_apu(self):
        from tests.conftest import project

        config = LuleshConfig(size=48, iterations=5)
        results = {m: project(APP, m, True, Precision.SINGLE, config) for m in GPU_MODELS}
        assert results["OpenCL"].seconds <= results["C++ AMP"].seconds * 1.05
        assert results["OpenCL"].seconds < results["OpenACC"].seconds
