"""SLOC-counter tests (Python and C-like)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sloc.counter import count_clike_sloc, count_file_sloc, count_python_sloc


class TestPythonCounting:
    def test_simple_lines(self):
        assert count_python_sloc("x = 1\ny = 2\n") == 2

    def test_blank_lines_ignored(self):
        assert count_python_sloc("x = 1\n\n\ny = 2\n") == 2

    def test_comments_ignored(self):
        assert count_python_sloc("# comment\nx = 1  # trailing\n") == 1

    def test_module_docstring_ignored(self):
        source = '"""Module\ndocstring."""\nx = 1\n'
        assert count_python_sloc(source) == 1

    def test_function_docstring_ignored(self):
        source = 'def f():\n    """Doc."""\n    return 1\n'
        assert count_python_sloc(source) == 2

    def test_string_assignment_counts(self):
        # A string *expression statement* is a docstring; an assigned
        # string is code.
        assert count_python_sloc('x = "hello"\n') == 1

    def test_multiline_statement_counts_each_line(self):
        source = "x = (1 +\n     2 +\n     3)\n"
        assert count_python_sloc(source) == 3

    def test_multiline_docstring_fully_ignored(self):
        source = 'def f():\n    """One.\n    Two.\n    Three."""\n    pass\n'
        assert count_python_sloc(source) == 2

    def test_empty_source(self):
        assert count_python_sloc("") == 0

    def test_only_comments(self):
        assert count_python_sloc("# a\n# b\n") == 0

    def test_invalid_source_raises(self):
        with pytest.raises(ValueError):
            count_python_sloc("def f(:\n  x")


class TestClikeCounting:
    def test_simple(self):
        assert count_clike_sloc("int x = 1;\nint y = 2;\n") == 2

    def test_line_comments(self):
        assert count_clike_sloc("// comment\nint x = 1; // trailing\n") == 1

    def test_block_comments(self):
        assert count_clike_sloc("/* a\n   b */\nint x;\n") == 1

    def test_inline_block_comment(self):
        assert count_clike_sloc("int /* c */ x;\n") == 1

    def test_comment_in_string_kept(self):
        assert count_clike_sloc('char* s = "// not a comment";\n') == 1

    def test_blank_lines(self):
        assert count_clike_sloc("\n\nint x;\n\n") == 1

    def test_opencl_kernel_source(self):
        kernel = """
__kernel void read(__global const float* in, __global float* out) {
    int tid = get_global_id(0);  // thread id
    float sum = 0.f;
    /* accumulate a block */
    for (int j = 0; j < 64; ++j)
        sum += in[tid * 64 + j];
    out[tid] = sum;
}
"""
        assert count_clike_sloc(kernel) == 7


class TestFileDispatch:
    def test_python_file(self, tmp_path):
        path = tmp_path / "x.py"
        path.write_text("x = 1\n# c\n")
        assert count_file_sloc(path) == 1

    def test_cl_file(self, tmp_path):
        path = tmp_path / "k.cl"
        path.write_text("int x;\n// c\n")
        assert count_file_sloc(path) == 1

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("hello")
        with pytest.raises(ValueError):
            count_file_sloc(path)


@given(st.lists(st.sampled_from(["x = 1", "# comment", "", "y = f(x)"]), min_size=0, max_size=50))
@settings(max_examples=50, deadline=None)
def test_property_count_matches_code_lines(lines):
    source = "\n".join(lines) + "\n" if lines else ""
    expected = sum(1 for line in lines if line and not line.startswith("#"))
    assert count_python_sloc(source) == expected
