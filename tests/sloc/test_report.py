"""Table IV measurement tests."""

import pytest

from repro.apps import ALL_APPS, APPS_BY_NAME
from repro.sloc.report import (
    PAPER_TABLE4,
    measure_lines_added,
    measure_port_sloc,
    port_source_file,
    table4,
)


class TestPortSources:
    def test_every_port_locatable(self):
        for app in ALL_APPS:
            for model in ("Serial", "OpenMP", "OpenCL", "C++ AMP", "OpenACC"):
                assert port_source_file(app, model).exists()

    def test_ports_are_distinct_modules(self):
        app = APPS_BY_NAME["CoMD"]
        files = {model: port_source_file(app, model) for model in ("OpenMP", "OpenCL")}
        assert files["OpenMP"] != files["OpenCL"]


class TestTable4Shape:
    """The paper's productivity ordering must hold on our own ports."""

    def test_opencl_needs_most_lines(self):
        for app_name, counts in table4(ALL_APPS).items():
            assert counts["OpenCL"] == max(counts.values()), app_name

    def test_openmp_needs_fewest_lines(self):
        for app_name, counts in table4(ALL_APPS).items():
            assert counts["OpenMP"] == min(counts.values()), app_name

    def test_emerging_models_far_below_opencl(self):
        """'OpenCL implementations ... resulted in an order of magnitude
        more lines of code' than the emerging models (except LULESH)."""
        counts = table4(ALL_APPS)
        for app_name in ("CoMD", "XSBench", "miniFE", "read-benchmark"):
            assert counts[app_name]["C++ AMP"] < counts[app_name]["OpenCL"]
            assert counts[app_name]["OpenACC"] < counts[app_name]["OpenCL"]

    def test_lulesh_similar_across_gpu_models(self):
        """'The only exception is LULESH, which required almost similar
        number of lines of code across all the programming models.'"""
        counts = table4(ALL_APPS)["LULESH"]
        gpu_counts = [counts["OpenCL"], counts["C++ AMP"], counts["OpenACC"]]
        assert max(gpu_counts) < 3 * min(gpu_counts)

    def test_raw_sloc_positive(self):
        for app in ALL_APPS:
            for model, sloc in measure_port_sloc(app).items():
                assert sloc > 0, (app.name, model)


class TestPaperReference:
    def test_paper_values_shipped(self):
        assert PAPER_TABLE4["read-benchmark"]["OpenCL"] == 181
        assert PAPER_TABLE4["CoMD"]["OpenCL"] == 3716
        assert PAPER_TABLE4["LULESH"]["OpenACC"] == 1276

    def test_paper_table_has_same_ordering_property(self):
        for app, counts in PAPER_TABLE4.items():
            assert counts["OpenCL"] == max(counts.values()), app
            assert counts["OpenMP"] == min(counts.values()), app
