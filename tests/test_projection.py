"""Projection mode must charge exactly what functional execution does.

This is the invariant the benchmark harness rests on: at any given
problem size, skipping the numerics changes nothing about the
simulated costs.
"""

import pytest

from repro.apps import APPS_BY_NAME
from repro.apps.comd import CoMDConfig
from repro.apps.lulesh import LuleshConfig
from repro.apps.minife import MiniFEConfig
from repro.apps.readmem import ReadMemConfig
from repro.apps.xsbench import XSBenchConfig
from repro.core.study import run_port
from repro.hardware.specs import Precision

SMALL = {
    "read-benchmark": ReadMemConfig(size=1 << 16),
    "LULESH": LuleshConfig(size=6, iterations=2),
    "CoMD": CoMDConfig(nx=6, ny=6, nz=6, steps=1),
    "XSBench": XSBenchConfig(n_nuclides=34, n_gridpoints=60, n_lookups=2000),
    "miniFE": MiniFEConfig(nx=6, ny=6, nz=6, cg_iterations=5),
}

MODELS = ("OpenMP", "OpenCL", "C++ AMP", "OpenACC")


@pytest.mark.parametrize("app_name", sorted(SMALL))
@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("apu", [True, False])
def test_projection_equals_functional(app_name, model, apu):
    app = APPS_BY_NAME[app_name]
    config = SMALL[app_name]
    functional = run_port(app, model, apu, Precision.SINGLE, config, projection=False)
    projected = run_port(app, model, apu, Precision.SINGLE, config, projection=True)
    assert projected.seconds == pytest.approx(functional.seconds, rel=1e-12)
    assert projected.counters.kernel_launches == functional.counters.kernel_launches
    assert projected.counters.bytes_to_device == functional.counters.bytes_to_device
    assert projected.counters.bytes_to_host == functional.counters.bytes_to_host
