"""Trace propagation through the executor: deterministic span trees
across worker counts, and bit-identical results with tracing on or off.
"""

import pytest

from repro.core.configs import sweep_configs
from repro.engine import memo
from repro.exec.executor import execute
from repro.exec.plan import study_runs
from repro.hardware.specs import Precision
from repro.obs import tracing
from repro.obs.tracing import (
    SpanContext,
    derived_span_id,
    orphan_spans,
    seeded_trace_id,
    tree_signature,
)


def _plan():
    return study_runs(
        app_names=["read-benchmark", "XSBench"],
        configs=dict(sweep_configs()),
        apu_values=(True, False),
        precisions=(Precision.SINGLE,),
        models=("OpenCL",),
        baseline="OpenMP",
        projection=True,
    )


def _root_ctx(seed: str) -> SpanContext:
    return SpanContext(
        trace_id=seeded_trace_id(seed),
        span_id=derived_span_id(seed, "root"),
    )


def _traced_execution(workers: int, seed: str = "det"):
    """Run the plan under a seeded root context; return (spans, outcomes)."""
    ctx = _root_ctx(seed)
    memo.clear_caches()
    tracing.TRACER.clear()
    try:
        with tracing.use(ctx):
            outcomes, _stats = execute(_plan(), max_workers=workers, telemetry=True)
        spans = tracing.TRACER.pending_spans(ctx.trace_id)
    finally:
        tracing.TRACER.clear()
        memo.clear_caches()
    return spans, outcomes


def test_execute_records_a_parented_span_tree():
    spans, outcomes = _traced_execution(workers=1)
    exec_spans = [s for s in spans if s.name == "execute"]
    assert len(exec_spans) == 1
    exec_span = exec_spans[0]
    assert exec_span.kind == "executor"
    assert exec_span.parent_id == _root_ctx("det").span_id
    assert exec_span.attrs["unique"] == len({o.spec.content_key() for o in outcomes})
    run_spans = [s for s in spans if s.name.startswith("run:")]
    assert len(run_spans) == exec_span.attrs["unique"]
    assert all(s.parent_id == exec_span.span_id for s in run_spans)
    assert all(s.kind == "worker" for s in run_spans)
    assert not orphan_spans(spans)
    # Every run span lies inside the executor span's wall window
    # (envelope spans are re-based onto per-worker cursors).
    for span in run_spans:
        assert span.start_s >= exec_span.start_s - 1e-9
        assert span.end_s <= exec_span.end_s + 1e-9


@pytest.mark.parametrize("workers", [2, 3])
def test_span_tree_identical_across_worker_counts(workers):
    """Same seed + same plan => the identical span tree — ids included —
    no matter how the plan was sharded."""
    serial_spans, serial_outcomes = _traced_execution(workers=1)
    parallel_spans, parallel_outcomes = _traced_execution(workers=workers)
    assert tree_signature(parallel_spans) == tree_signature(serial_spans)
    # And the results those spans describe are still bit-identical.
    for a, b in zip(serial_outcomes, parallel_outcomes):
        assert vars(a.result) == vars(b.result)


def test_results_bit_identical_with_tracing_on_and_off():
    plan = _plan()
    memo.clear_caches()
    tracing.TRACER.clear()
    untraced, _ = execute(plan, max_workers=2, telemetry=True)
    assert tracing.TRACER.pending_spans(seeded_trace_id("det")) == []
    memo.clear_caches()
    traced_spans, traced = _traced_execution(workers=2)
    assert traced_spans  # tracing actually happened
    for a, b in zip(untraced, traced):
        assert vars(a.result) == vars(b.result)
        assert a.wall_seconds > 0 and b.wall_seconds > 0


def test_no_ambient_context_means_no_spans():
    memo.clear_caches()
    tracing.TRACER.clear()
    assert tracing.current() is None
    execute(_plan(), max_workers=1, telemetry=True)
    assert tracing.TRACER.dropped == 0
    assert len(tracing.TRACER._buffers) == 0
    memo.clear_caches()
