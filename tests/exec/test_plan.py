"""Run-descriptor flattening and content addressing."""

import pytest

from repro.apps.readmem import ReadMemConfig
from repro.exec.plan import APU, DGPU, RunSpec, study_runs, sweep_runs
from repro.hardware.specs import Precision

CONFIG = ReadMemConfig(size=1024)


def spec(**overrides):
    base = dict(
        app="read-benchmark",
        model="OpenCL",
        platform=APU,
        precision=Precision.SINGLE,
        config=CONFIG,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestRunSpec:
    def test_rejects_unknown_platform(self):
        with pytest.raises(ValueError):
            spec(platform="fpga")

    def test_apu_property(self):
        assert spec(platform=APU).apu
        assert not spec(platform=DGPU).apu

    def test_label_mentions_identity(self):
        label = spec().label
        assert "read-benchmark" in label
        assert "OpenCL" in label
        assert "single" in label

    def test_label_includes_clock_overrides(self):
        assert "@800/1375MHz" in spec(core_mhz=800.0, memory_mhz=1375.0).label

    def test_content_key_is_content_not_identity(self):
        # Distinct but equal-content config objects collide by design.
        other = spec(config=ReadMemConfig(size=1024))
        assert spec().content_key() == other.content_key()

    def test_content_key_distinguishes_every_field(self):
        base = spec()
        for changed in (
            spec(app="XSBench"),
            spec(model="OpenACC"),
            spec(platform=DGPU),
            spec(precision=Precision.DOUBLE),
            spec(config=ReadMemConfig(size=2048)),
            spec(projection=False),
            spec(core_mhz=900.0),
            spec(memory_mhz=1100.0),
        ):
            assert changed.content_key() != base.content_key(), changed


class TestValidation:
    """Bad descriptors fail at construction with a nameable message,
    not as a KeyError deep inside a pool worker."""

    def test_rejects_unknown_app(self):
        with pytest.raises(ValueError, match="unknown app"):
            spec(app="HPL")

    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError, match="no 'CUDA' port"):
            spec(model="CUDA")

    def test_rejects_nonpositive_size(self):
        class DuckConfig:  # the net catches duck-typed configs too
            size = 0

        with pytest.raises(ValueError, match="size=0 must be positive"):
            spec(config=DuckConfig())

    def test_rejects_negative_reps(self):
        class FakeConfig:
            size = 64
            reps = -3

        with pytest.raises(ValueError, match="reps=-3"):
            spec(config=FakeConfig())

    def test_rejects_nonpositive_clocks(self):
        with pytest.raises(ValueError, match="core_mhz"):
            spec(core_mhz=0.0)
        with pytest.raises(ValueError, match="memory_mhz"):
            spec(memory_mhz=-200.0)

    def test_bool_config_fields_are_not_counts(self):
        class FlaggedConfig:
            size = 64
            steps = False  # a flag, not a count

        spec(config=FlaggedConfig())  # does not raise


class TestStudyRuns:
    def test_canonical_order_baseline_first(self):
        runs = study_runs(
            app_names=["read-benchmark"],
            configs={"read-benchmark": CONFIG},
            apu_values=(True, False),
            precisions=(Precision.SINGLE,),
            models=("OpenCL", "OpenACC"),
            baseline="OpenMP",
            projection=True,
        )
        assert [r.model for r in runs] == ["OpenMP", "OpenCL", "OpenACC"] * 2
        assert [r.platform for r in runs] == [APU] * 3 + [DGPU] * 3

    def test_cell_count(self):
        runs = study_runs(
            app_names=["XSBench", "CoMD"],
            configs={"XSBench": CONFIG, "CoMD": CONFIG},
            apu_values=(True, False),
            precisions=(Precision.SINGLE, Precision.DOUBLE),
            models=("OpenCL", "C++ AMP", "OpenACC"),
            baseline="OpenMP",
            projection=True,
        )
        assert len(runs) == 2 * 2 * 2 * (1 + 3)


class TestSweepRuns:
    def test_memory_major_grid(self):
        runs = sweep_runs(
            "read-benchmark",
            CONFIG,
            Precision.SINGLE,
            core_grid=(700.0, 800.0),
            memory_grid=(1000.0, 1200.0),
            model="OpenCL",
        )
        assert [(r.memory_mhz, r.core_mhz) for r in runs] == [
            (1000.0, 700.0),
            (1000.0, 800.0),
            (1200.0, 700.0),
            (1200.0, 800.0),
        ]
        assert all(r.platform == DGPU and r.projection for r in runs)
