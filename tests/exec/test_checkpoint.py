"""Checkpoint journal and resume: durability, bit-identity, no re-runs."""

import json

import pytest

from repro.apps.readmem import ReadMemConfig
from repro.engine import memo
from repro.exec.checkpoint import CHECKPOINT_FORMAT, CheckpointError, CheckpointJournal
from repro.exec.executor import ExecutionInterrupted, execute, execute_run
from repro.exec.faults import FaultPlan
from repro.exec.plan import APU, DGPU, RunSpec
from repro.exec.retry import RetryPolicy
from repro.hardware.specs import Precision

POLICY = RetryPolicy(max_attempts=3, backoff_base=0.0)


def spec_matrix(n=4):
    return [
        RunSpec(
            app="read-benchmark",
            model="OpenCL",
            platform=APU if i % 2 else DGPU,
            precision=Precision.SINGLE,
            config=ReadMemConfig(size=1024 * (i + 1)),
        )
        for i in range(n)
    ]


@pytest.fixture(autouse=True)
def fresh_caches():
    memo.clear_caches()
    yield
    memo.clear_caches()


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        outcome = execute_run(spec_matrix(1)[0])
        with CheckpointJournal.open(path) as journal:
            journal.record(outcome)
        loaded = CheckpointJournal.open(path)
        key = outcome.spec.content_key()
        assert len(loaded) == 1 and key in loaded
        assert loaded.restore(key).result == outcome.result

    def test_record_is_idempotent(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        outcome = execute_run(spec_matrix(1)[0])
        with CheckpointJournal.open(path) as journal:
            journal.record(outcome)
            journal.record(outcome)
        assert len(path.read_text().splitlines()) == 2  # header + one record
        assert len(CheckpointJournal.open(path)) == 1

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        a, b = (execute_run(s) for s in spec_matrix(2))
        with CheckpointJournal.open(path) as journal:
            journal.record(a)
            journal.record(b)
        # Chop the last record mid-line, as a mid-write crash would.
        text = path.read_text()
        path.write_text(text[: len(text) - 40])
        loaded = CheckpointJournal.open(path)
        assert len(loaded) == 1
        assert a.spec.content_key() in loaded

    def test_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("not a journal\n")
        with pytest.raises(CheckpointError):
            CheckpointJournal.open(path)

    def test_header_declares_format(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with CheckpointJournal.open(path) as journal:
            journal.record(execute_run(spec_matrix(1)[0]))
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"format": CHECKPOINT_FORMAT}


class TestResume:
    def test_resume_skips_completed_and_is_bit_identical(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        specs = spec_matrix()
        first, stats1 = execute(specs, use_cache=False, checkpoint=path)
        assert stats1.resumed_runs == 0
        second, stats2 = execute(specs, use_cache=False, checkpoint=path)
        assert stats2.resumed_runs == len(specs)  # nothing re-executed
        assert [o.result for o in second] == [o.result for o in first]
        assert "resumed from checkpoint" in stats2.summary()

    def test_resume_runs_only_the_missing_specs(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        specs = spec_matrix(4)
        execute(specs[:2], use_cache=False, checkpoint=path)
        _, stats = execute(specs, use_cache=False, checkpoint=path)
        assert stats.resumed_runs == 2
        assert stats.unique_runs == 4

    def test_changed_content_is_not_restored(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        execute(spec_matrix(2), use_cache=False, checkpoint=path)
        widened = spec_matrix(2) + [
            RunSpec(
                app="read-benchmark",
                model="OpenACC",
                platform=APU,
                precision=Precision.SINGLE,
                config=ReadMemConfig(size=1024),
            )
        ]
        _, stats = execute(widened, use_cache=False, checkpoint=path)
        assert stats.resumed_runs == 2  # only the matching content

    def test_interrupt_flushes_then_resume_completes(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        specs = spec_matrix()
        clean, _ = execute(specs, use_cache=False)
        # Seed 6 draws the injected Ctrl-C on one mid-plan spec.
        plan = FaultPlan(seed=6, rates=(("interrupt", 0.4),))
        assert any(plan.drawn("interrupt", s.content_key()) for s in specs)
        with pytest.raises(ExecutionInterrupted) as info:
            execute(specs, use_cache=False, checkpoint=path, faults=plan, policy=POLICY)
        assert info.value.completed == len(CheckpointJournal.open(path)) >= 1
        resumed, stats = execute(specs, use_cache=False, checkpoint=path)
        assert stats.resumed_runs == info.value.completed
        assert [o.result for o in resumed] == [o.result for o in clean]

    def test_accepts_an_open_journal_instance(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        journal = CheckpointJournal.open(path)
        _, stats = execute(spec_matrix(2), use_cache=False, checkpoint=journal)
        assert stats.resumed_runs == 0
        assert len(CheckpointJournal.open(path)) == 2
