"""Fault-tolerance layer: taxonomy, injection, retries, recovery.

The core invariant under test: a study under *transient* fault
injection (crash/timeout/corrupt/abort/hang) produces results
bit-identical to a fault-free run — the chaos harness only exercises
the recovery machinery, never the numbers.
"""

import pytest

from repro.apps.readmem import ReadMemConfig
from repro.engine import memo
from repro.exec.executor import execute, execute_run
from repro.exec.faults import (
    FAULT_KINDS,
    ErrorKind,
    FaultPlan,
    InjectedCrash,
    InjectedPoison,
    ResultValidationError,
    RunError,
    RunTimeout,
    fault_plan_from_env,
    parse_fault_plan,
)
from repro.exec.plan import APU, DGPU, RunSpec
from repro.exec.retry import RetryPolicy, classify, run_with_retry, validate_result
from repro.hardware.specs import Precision

#: Fast policy for tests: full retry ladder, no real sleeping.
POLICY = RetryPolicy(max_attempts=3, backoff_base=0.0)


def run_spec(model="OpenCL", platform=APU, size=1024, **overrides):
    return RunSpec(
        app="read-benchmark",
        model=model,
        platform=platform,
        precision=Precision.SINGLE,
        config=ReadMemConfig(size=size),
        **overrides,
    )


def spec_matrix(n=6):
    """A small matrix of distinct specs."""
    return [
        run_spec(platform=APU if i % 2 else DGPU, size=1024 * (i + 1))
        for i in range(n)
    ]


@pytest.fixture(autouse=True)
def fresh_caches():
    memo.clear_caches()
    yield
    memo.clear_caches()


class TestFaultPlan:
    def test_draws_are_deterministic(self):
        plan = FaultPlan(seed=3, rates=(("crash", 0.5),))
        again = FaultPlan(seed=3, rates=(("crash", 0.5),))
        keys = [s.content_key() for s in spec_matrix(20)]
        assert [plan.drawn("crash", k) for k in keys] == [
            again.drawn("crash", k) for k in keys
        ]

    def test_seed_changes_the_draws(self):
        keys = [s.content_key() for s in spec_matrix(40)]
        a = [FaultPlan(seed=1, rates=(("crash", 0.5),)).drawn("crash", k) for k in keys]
        b = [FaultPlan(seed=2, rates=(("crash", 0.5),)).drawn("crash", k) for k in keys]
        assert a != b

    def test_rate_bounds(self):
        keys = [s.content_key() for s in spec_matrix(10)]
        always = FaultPlan(rates=(("crash", 1.0),))
        never = FaultPlan(rates=(("crash", 0.0),))
        assert all(always.drawn("crash", k) for k in keys)
        assert not any(never.drawn("crash", k) for k in keys)
        assert not never.active

    def test_injection_stands_down_after_attempts(self):
        plan = FaultPlan(rates=(("crash", 1.0),), attempts=2)
        key = run_spec().content_key()
        assert plan.injects("crash", key, 0)
        assert plan.injects("crash", key, 1)
        assert not plan.injects("crash", key, 2)

    def test_rejects_unknown_kind_and_bad_rate(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan(rates=(("meteor", 0.5),))
        with pytest.raises(ValueError, match="must be in"):
            FaultPlan(rates=(("crash", 1.5),))

    def test_parse_round_trip(self):
        plan = parse_fault_plan("crash:0.2,timeout:0.1,attempts:2", seed=9)
        assert plan.rate("crash") == 0.2
        assert plan.rate("timeout") == 0.1
        assert plan.attempts == 2
        assert plan.seed == 9
        assert parse_fault_plan(plan.spec_string(), seed=9) == plan

    def test_parse_rejects_malformed_tokens(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_fault_plan("crash")
        with pytest.raises(ValueError, match="malformed"):
            parse_fault_plan("crash:lots")

    def test_plan_from_env(self):
        env = {"REPRO_INJECT_FAULTS": "crash:0.25", "REPRO_FAULT_SEED": "4"}
        plan = fault_plan_from_env(env)
        assert plan == FaultPlan(seed=4, rates=(("crash", 0.25),))
        assert fault_plan_from_env({}) is None


class TestClassify:
    def test_taxonomy(self):
        assert classify(InjectedCrash("x")) is ErrorKind.TRANSIENT
        assert classify(RunTimeout("x")) is ErrorKind.TRANSIENT
        assert classify(MemoryError()) is ErrorKind.TRANSIENT
        assert classify(OSError()) is ErrorKind.TRANSIENT
        assert classify(InjectedPoison("x")) is ErrorKind.POISONED
        assert classify(ResultValidationError("x")) is ErrorKind.POISONED
        assert classify(ValueError("a bug")) is ErrorKind.PERMANENT

    def test_validate_result_rejects_nonfinite(self):
        class Bad:
            seconds = float("nan")
            kernel_seconds = 0.1
            checksum = 1.0

        with pytest.raises(ResultValidationError):
            validate_result(Bad())


class TestRetryLadder:
    def test_transient_crash_recovers(self):
        plan = FaultPlan(rates=(("crash", 1.0),))
        outcome = run_with_retry(run_spec(), POLICY, faults=plan)
        clean = execute_run(run_spec())
        assert outcome.result == clean.result
        assert outcome.attempts == 2
        assert outcome.retry_history[0].kind is ErrorKind.TRANSIENT

    def test_corrupt_result_is_caught_and_retried(self):
        plan = FaultPlan(rates=(("corrupt", 1.0),))
        outcome = run_with_retry(run_spec(), POLICY, faults=plan)
        assert outcome.result == execute_run(run_spec()).result
        assert "checksum" in outcome.retry_history[0].error

    def test_poison_exhausts_the_budget(self):
        plan = FaultPlan(rates=(("poison", 1.0),))
        error = run_with_retry(run_spec(), POLICY, faults=plan)
        assert isinstance(error, RunError)
        assert error.kind is ErrorKind.POISONED
        assert error.n_attempts == POLICY.max_attempts

    def test_permanent_error_fails_fast(self):
        spec = run_spec()
        object.__setattr__(spec, "config", None)  # breaks the port call
        error = run_with_retry(spec, POLICY)
        assert isinstance(error, RunError)
        assert error.kind is ErrorKind.PERMANENT
        assert error.n_attempts == 1
        assert error.traceback  # carries the real stack

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.5)
        key = run_spec().content_key()
        delays = [policy.backoff(key, a) for a in range(6)]
        assert delays == [policy.backoff(key, a) for a in range(6)]
        assert all(0 < d <= 0.5 for d in delays)

    def test_sleep_is_injectable(self):
        slept = []
        plan = FaultPlan(rates=(("crash", 1.0),), attempts=2)
        policy = RetryPolicy(max_attempts=3, backoff_base=0.01)
        outcome = run_with_retry(run_spec(), policy, faults=plan, sleep=slept.append)
        assert outcome.attempts == 3
        assert len(slept) == 2
        assert slept == [h.backoff_seconds for h in outcome.retry_history]


class TestExecuteUnderInjection:
    """The executor-level invariant: injected transients never change
    the numbers, only the counters."""

    def assert_bit_identical(self, faults, max_workers=1, n=6, **kwargs):
        clean, _ = execute(spec_matrix(n), use_cache=False)
        out, stats = execute(
            spec_matrix(n),
            max_workers=max_workers,
            use_cache=False,
            policy=kwargs.pop("policy", POLICY),
            faults=faults,
            **kwargs,
        )
        assert [o.result for o in out] == [o.result for o in clean]
        return stats

    def test_serial_crash_storm_is_bit_identical(self):
        stats = self.assert_bit_identical(FaultPlan(rates=(("crash", 1.0),)))
        assert stats.retries == 6
        assert not stats.failures

    def test_mixed_transients_are_bit_identical(self):
        plan = parse_fault_plan("crash:0.5,timeout:0.3,corrupt:0.3", seed=1)
        stats = self.assert_bit_identical(plan)
        assert stats.retries > 0
        assert not stats.failures

    def test_pool_crash_storm_is_bit_identical(self):
        stats = self.assert_bit_identical(
            FaultPlan(rates=(("crash", 1.0),)), max_workers=2
        )
        assert stats.retries == 6

    def test_pool_abort_breaks_and_respawns(self):
        plan = FaultPlan(seed=1, rates=(("abort", 0.4),))
        stats = self.assert_bit_identical(plan, max_workers=2)
        assert stats.pool_respawns >= 1
        assert not stats.failures

    def test_hang_trips_parent_watchdog(self):
        plan = FaultPlan(rates=(("hang", 1.0),), attempts=1)
        policy = RetryPolicy(max_attempts=3, run_timeout=2.0, backoff_base=0.0)
        stats = self.assert_bit_identical(plan, max_workers=2, n=2, policy=policy)
        assert stats.pool_respawns >= 1

    def test_poison_quarantines_without_aborting(self):
        plan = FaultPlan(seed=2, rates=(("poison", 1.0),))
        specs = spec_matrix(4)
        out, stats = execute(specs, use_cache=False, policy=POLICY, faults=plan)
        assert all(o is None for o in out)
        assert len(stats.failures) == 4
        assert stats.quarantined == 4
        assert all(f.kind is ErrorKind.POISONED for f in stats.failures)
        assert {f.key for f in stats.failures} == {s.content_key() for s in specs}

    def test_partial_quarantine_keeps_survivors(self):
        plan = FaultPlan(seed=7, rates=(("poison", 0.5),))
        specs = spec_matrix(8)
        poisoned = {s.content_key() for s in specs if plan.drawn("poison", s.content_key())}
        assert 0 < len(poisoned) < 8  # seed chosen to split the matrix
        clean, _ = execute(specs, use_cache=False)
        out, stats = execute(specs, use_cache=False, policy=POLICY, faults=plan)
        for spec, outcome, reference in zip(specs, out, clean):
            if spec.content_key() in poisoned:
                assert outcome is None
            else:
                assert outcome.result == reference.result
        assert {f.key for f in stats.failures} == poisoned

    def test_stats_summary_reports_fault_tolerance(self):
        plan = FaultPlan(rates=(("crash", 1.0),))
        _, stats = execute(spec_matrix(2), use_cache=False, policy=POLICY, faults=plan)
        summary = stats.summary()
        assert "fault tolerance" in summary
        assert "2 retries" in summary

    def test_worker_count_invariance_under_injection(self):
        plan = parse_fault_plan("crash:0.4,corrupt:0.2", seed=5)
        serial, _ = execute(spec_matrix(), use_cache=False, policy=POLICY, faults=plan)
        pooled, _ = execute(
            spec_matrix(), max_workers=3, use_cache=False, policy=POLICY, faults=plan
        )
        assert [o.result for o in serial] == [o.result for o in pooled]


class TestPropertyInjection:
    def test_random_transient_plans_never_change_results(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        specs = spec_matrix(4)
        clean, _ = execute(specs, use_cache=False)
        reference = [o.result for o in clean]

        @given(
            seed=st.integers(min_value=0, max_value=2**16),
            crash=st.floats(min_value=0.0, max_value=1.0),
            timeout=st.floats(min_value=0.0, max_value=1.0),
            corrupt=st.floats(min_value=0.0, max_value=1.0),
            attempts=st.integers(min_value=1, max_value=2),
        )
        @settings(
            max_examples=15,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        def check(seed, crash, timeout, corrupt, attempts):
            plan = FaultPlan(
                seed=seed,
                rates=(("corrupt", corrupt), ("crash", crash), ("timeout", timeout)),
                attempts=attempts,
            )
            out, stats = execute(
                specs,
                use_cache=False,
                policy=RetryPolicy(max_attempts=3, backoff_base=0.0),
                faults=plan,
            )
            assert [o.result for o in out] == reference
            assert not stats.failures

        check()


class TestFaultKindCoverage:
    def test_every_kind_is_exercised_somewhere(self):
        # Guard against adding a kind without a behaviour: apply() or
        # the executor must consume every declared kind.
        assert set(FAULT_KINDS) == {
            "crash", "timeout", "corrupt", "poison", "abort", "hang", "interrupt",
        }
