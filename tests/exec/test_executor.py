"""Executor unit tests: dedup, stats, sharding, cache toggling."""

import pytest

from repro.apps.readmem import ReadMemConfig
from repro.engine import memo
from repro.exec.executor import (
    ExecStats,
    _shard_by_affinity,
    default_workers,
    execute,
    execute_run,
)
from repro.exec.plan import APU, DGPU, RunSpec
from repro.hardware.specs import Precision


def run_spec(model="OpenCL", platform=APU, size=1024, **overrides):
    return RunSpec(
        app="read-benchmark",
        model=model,
        platform=platform,
        precision=Precision.SINGLE,
        config=ReadMemConfig(size=size),
        **overrides,
    )


@pytest.fixture(autouse=True)
def fresh_caches():
    memo.clear_caches()
    yield
    memo.clear_caches()


class TestExecuteRun:
    def test_produces_result_and_counters(self):
        outcome = execute_run(run_spec())
        assert outcome.result.seconds > 0
        assert outcome.wall_seconds > 0
        assert outcome.cache_misses > 0  # cold cache priced something

    def test_applies_clock_overrides(self):
        # Big enough that the kernel is bandwidth-bound, not floor-bound.
        base = execute_run(run_spec(platform=DGPU, size=1 << 22)).result
        slow = execute_run(
            run_spec(platform=DGPU, size=1 << 22, core_mhz=500.0, memory_mhz=800.0)
        ).result
        assert slow.kernel_seconds > base.kernel_seconds


class TestDeduplication:
    def test_equal_content_runs_share_one_outcome(self):
        runs = [run_spec(), run_spec(), run_spec(model="OpenACC"), run_spec()]
        outcomes, stats = execute(runs)
        assert stats.requested_runs == 4
        assert stats.unique_runs == 2
        assert stats.deduplicated_runs == 2
        assert outcomes[0] is outcomes[1] is outcomes[3]
        assert outcomes[2] is not outcomes[0]

    def test_outcomes_align_with_submission_order(self):
        runs = [run_spec(model=m) for m in ("OpenMP", "OpenCL", "OpenACC")]
        outcomes, _ = execute(runs)
        assert [o.spec.model for o in outcomes] == ["OpenMP", "OpenCL", "OpenACC"]


class TestCacheToggling:
    def test_second_execution_hits_the_cache(self):
        execute([run_spec()])
        _, stats = execute([run_spec()])
        assert stats.cache_hits > 0
        assert stats.cache_misses == 0

    def test_no_cache_never_hits_and_restores_state(self):
        previous = memo.KERNEL_CACHE.enabled
        _, stats = execute([run_spec(), run_spec(size=2048)], use_cache=False)
        assert stats.cache_hits == 0
        assert stats.cache_misses == 0  # disabled cache counts nothing
        assert memo.KERNEL_CACHE.enabled == previous

    def test_cache_does_not_change_results(self):
        cached, _ = execute([run_spec()])
        memo.clear_caches()
        uncached, _ = execute([run_spec()], use_cache=False)
        assert cached[0].result.seconds == uncached[0].result.seconds
        assert cached[0].result.kernel_seconds == uncached[0].result.kernel_seconds


class TestStats:
    def test_summary_mentions_all_counters(self):
        _, stats = execute([run_spec(), run_spec()])
        text = stats.summary()
        assert "1 deduplicated" in text
        assert "kernel-pricing memo cache" in text
        assert "setup memo cache" in text
        assert "hit rate" in text
        assert "wall time" in text
        assert "limited by" in text

    def test_merge_adds_counters(self):
        a = ExecStats(requested_runs=2, unique_runs=2, cache_hits=5, wall_seconds=1.0)
        b = ExecStats(requested_runs=3, unique_runs=1, cache_hits=7, wall_seconds=2.0)
        merged = a.merge(b)
        assert merged.requested_runs == 5
        assert merged.cache_hits == 12
        assert merged.wall_seconds == pytest.approx(3.0)

    def test_hit_rate_handles_zero_lookups(self):
        assert ExecStats().cache_hit_rate == 0.0

    def test_default_workers_positive(self):
        assert 1 <= default_workers() <= 8


class TestAffinitySharding:
    def shard_sizes(self, runs, workers):
        shards = _shard_by_affinity(list(enumerate(runs)), workers)
        return [len(s) for s in shards]

    def test_snaps_to_affinity_boundaries(self):
        # Four problem sizes: four affinity blocks of six runs each
        # (precision does not split a block — setups for both
        # precisions of one config belong in the same worker).
        runs = []
        for size in (1024, 2048, 4096, 8192):
            for precision in (Precision.SINGLE, Precision.DOUBLE):
                for model in ("OpenMP", "OpenCL", "OpenACC"):
                    runs.append(
                        RunSpec(
                            app="read-benchmark",
                            model=model,
                            platform=APU,
                            precision=precision,
                            config=ReadMemConfig(size=size),
                        )
                    )
        shards = _shard_by_affinity(list(enumerate(runs)), 4)
        assert len(shards) == 4
        for shard in shards:
            affinities = {(s.app, repr(s.config)) for _, s in shard}
            assert len(affinities) == 1  # no block straddles a boundary

    def test_groups_interleaved_blocks_and_covers_everything(self):
        # Sizes interleave 0,1,2,0,1,2,...: sharding regroups them into
        # whole affinity blocks (shuffle-invariance — outcomes are
        # reassembled by index, so global order is free to change), but
        # every index appears exactly once and blocks stay intact.
        runs = [run_spec(size=1024 * (1 + i % 3)) for i in range(10)]
        shards = _shard_by_affinity(list(enumerate(runs)), 3)
        flat = [index for shard in shards for index, _ in shard]
        assert sorted(flat) == list(range(len(runs)))
        for shard in shards:
            affinities = {(s.app, repr(s.config)) for _, s in shard}
            assert len(affinities) == 1  # whole blocks, never fragments

    def test_single_block_falls_back_to_even_split(self):
        # A frequency sweep is one affinity block: parallelism wins.
        runs = [run_spec(core_mhz=float(mhz)) for mhz in range(500, 572)]
        sizes = self.shard_sizes(runs, 4)
        assert len(sizes) == 4
        assert max(sizes) - min(sizes) <= 1

    def test_never_exceeds_worker_count(self):
        for n_runs in (1, 2, 5, 17):
            for workers in (1, 2, 3, 8):
                runs = [run_spec(size=1024 * (1 + i)) for i in range(n_runs)]
                shards = _shard_by_affinity(list(enumerate(runs)), workers)
                assert 1 <= len(shards) <= workers
                assert sum(len(s) for s in shards) == n_runs


class TestParallelPath:
    def test_pool_results_match_serial(self):
        runs = [
            run_spec(model=m, platform=p, size=s)
            for m in ("OpenMP", "OpenCL")
            for p in (APU, DGPU)
            for s in (1024, 2048)
        ]
        serial, _ = execute(runs, max_workers=1)
        parallel, stats = execute(runs, max_workers=2)
        assert stats.workers == 2
        for a, b in zip(serial, parallel):
            assert a.result.seconds == b.result.seconds
            assert a.result.kernel_seconds == b.result.kernel_seconds


class TestTraceCounters:
    def test_trace_layer_aggregates_and_merges(self):
        from repro.exec.executor import ExecStats

        a = ExecStats(trace_hits=3, trace_misses=1)
        b = ExecStats(trace_hits=2, trace_misses=4)
        merged = a.merge(b)
        assert (merged.trace_hits, merged.trace_misses) == (5, 5)
        assert merged.trace_hit_rate == 0.5
        assert "trace-replay memo cache: 5 hits / 5 misses" in merged.summary()

    def test_trace_line_hidden_when_unused(self):
        from repro.exec.executor import ExecStats

        assert "trace-replay" not in ExecStats().summary()

    def test_run_outcome_carries_trace_delta(self):
        memo.clear_caches()
        outcomes, stats = execute([run_spec()])
        # Ports do not replay traces; the counters exist but stay zero.
        assert outcomes[0].trace_hits == 0
        assert outcomes[0].trace_misses == 0
        assert (stats.trace_hits, stats.trace_misses) == (0, 0)
