"""Determinism: parallel studies are bit-identical to serial ones.

The acceptance property of the executor (and the reason memoization is
safe): every run is a pure function of its descriptor, so worker
count, sharding and cache state must never show up in the numbers.
Entries are compared field-for-field with exact ``==`` — no tolerance.
"""

import pytest

from repro.apps import APPS_BY_NAME
from repro.core.configs import sweep_configs
from repro.core.study import run_study
from repro.core.sweep import run_sweep

APPS = (APPS_BY_NAME["read-benchmark"], APPS_BY_NAME["XSBench"])


def entry_dicts(study):
    return [entry.__dict__ for entry in study.entries]


@pytest.fixture(scope="module")
def serial_study():
    return run_study(APPS, configs=dict(sweep_configs()), max_workers=1)


@pytest.mark.parametrize("workers", [2, 3, 5])
def test_parallel_study_identical_to_serial(serial_study, workers):
    parallel = run_study(APPS, configs=dict(sweep_configs()), max_workers=workers)
    assert entry_dicts(parallel) == entry_dicts(serial_study)
    assert parallel.stats.workers == min(workers, parallel.stats.unique_runs)


def test_cache_off_identical_to_cache_on(serial_study):
    uncached = run_study(
        APPS, configs=dict(sweep_configs()), max_workers=1, use_cache=False
    )
    assert entry_dicts(uncached) == entry_dicts(serial_study)
    assert uncached.stats.cache_hits == 0


def test_parallel_uncached_identical_too(serial_study):
    """Worker count and cache state vary together: still identical."""
    both = run_study(
        APPS, configs=dict(sweep_configs()), max_workers=2, use_cache=False
    )
    assert entry_dicts(both) == entry_dicts(serial_study)


def test_parallel_sweep_identical_to_serial():
    app = APPS_BY_NAME["read-benchmark"]
    config = sweep_configs()[app.name]
    serial = run_sweep(app, config, max_workers=1)
    parallel = run_sweep(app, config, max_workers=4)
    assert parallel.points == serial.points


def test_repeated_serial_runs_identical(serial_study):
    """The baseline itself is reproducible (seeded builders, pure
    pricing) — without this the parallel comparisons above would be
    meaningless."""
    again = run_study(APPS, configs=dict(sweep_configs()), max_workers=1)
    assert entry_dicts(again) == entry_dicts(serial_study)
