"""Determinism: parallel studies are bit-identical to serial ones.

The acceptance property of the executor (and the reason memoization is
safe): every run is a pure function of its descriptor, so worker
count, sharding and cache state must never show up in the numbers.
Entries are compared field-for-field with exact ``==`` — no tolerance.
"""

import random

import pytest

from repro.apps import APPS_BY_NAME
from repro.core.configs import sweep_configs
from repro.core.study import run_study
from repro.core.sweep import run_sweep
from repro.engine import memo
from repro.exec.executor import execute
from repro.exec.plan import study_runs
from repro.hardware.specs import Precision

APPS = (APPS_BY_NAME["read-benchmark"], APPS_BY_NAME["XSBench"])


def entry_dicts(study):
    return [entry.__dict__ for entry in study.entries]


@pytest.fixture(scope="module")
def serial_study():
    return run_study(APPS, configs=dict(sweep_configs()), max_workers=1)


@pytest.mark.parametrize("workers", [2, 3, 5])
def test_parallel_study_identical_to_serial(serial_study, workers):
    parallel = run_study(APPS, configs=dict(sweep_configs()), max_workers=workers)
    assert entry_dicts(parallel) == entry_dicts(serial_study)
    assert parallel.stats.workers == min(workers, parallel.stats.unique_runs)


def test_cache_off_identical_to_cache_on(serial_study):
    uncached = run_study(
        APPS, configs=dict(sweep_configs()), max_workers=1, use_cache=False
    )
    assert entry_dicts(uncached) == entry_dicts(serial_study)
    assert uncached.stats.cache_hits == 0


def test_parallel_uncached_identical_too(serial_study):
    """Worker count and cache state vary together: still identical."""
    both = run_study(
        APPS, configs=dict(sweep_configs()), max_workers=2, use_cache=False
    )
    assert entry_dicts(both) == entry_dicts(serial_study)


def test_parallel_sweep_identical_to_serial():
    app = APPS_BY_NAME["read-benchmark"]
    config = sweep_configs()[app.name]
    serial = run_sweep(app, config, max_workers=1)
    parallel = run_sweep(app, config, max_workers=4)
    assert parallel.points == serial.points


def _plan():
    """A multi-app plan whose specs interleave setup-affinity groups
    when shuffled.  Four apps = four affinity blocks: more blocks than
    any worker count below, so sharding stays on the whole-block path
    (with fewer blocks than workers it deliberately trades setup
    affinity for parallelism, and parity is not promised)."""
    return study_runs(
        app_names=["read-benchmark", "XSBench", "LULESH", "miniFE"],
        configs=dict(sweep_configs()),
        apu_values=(True, False),
        precisions=(Precision.SINGLE, Precision.DOUBLE),
        models=("OpenCL", "OpenACC"),
        baseline="OpenMP",
        projection=True,
    )


@pytest.mark.parametrize("workers", [1, 2, 3])
def test_shuffled_plan_identical_with_cache_parity(workers):
    """Submission order is presentation, not semantics: a shuffled plan
    yields the same outcome per descriptor AND the same cache economics.

    The parity half is the regression guard for the plan-ordering
    hazard: sharding used to split a shuffled plan mid
    setup-affinity-group, so runs sharing a problem setup landed on
    different workers and rebuilt it — same bits, quietly worse cache
    behaviour.  Sharding now keeps whole affinity blocks together, so
    hit/miss totals must match the sorted plan exactly."""
    plan = _plan()
    shuffled = list(plan)
    random.Random(2015).shuffle(shuffled)

    memo.clear_caches()
    ordered_outcomes, ordered_stats = execute(plan, max_workers=workers)
    memo.clear_caches()
    shuffled_outcomes, shuffled_stats = execute(shuffled, max_workers=workers)
    memo.clear_caches()

    by_key = {
        spec.content_key(): outcome.result
        for spec, outcome in zip(plan, ordered_outcomes)
    }
    for spec, outcome in zip(shuffled, shuffled_outcomes):
        assert vars(outcome.result) == vars(by_key[spec.content_key()]), spec.label

    for field in (
        "cache_hits", "cache_misses",
        "setup_hits", "setup_misses",
        "trace_hits", "trace_misses",
    ):
        assert getattr(shuffled_stats, field) == getattr(ordered_stats, field), field


def test_repeated_serial_runs_identical(serial_study):
    """The baseline itself is reproducible (seeded builders, pure
    pricing) — without this the parallel comparisons above would be
    meaningless."""
    again = run_study(APPS, configs=dict(sweep_configs()), max_workers=1)
    assert entry_dicts(again) == entry_dicts(serial_study)
