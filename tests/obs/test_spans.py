"""Span recorder unit tests: clock, nesting, activation, merging."""

import pickle

import pytest

from repro.obs.export import merge_run_telemetry
from repro.obs.spans import (
    NullRecorder,
    SpanRecorder,
    active,
    recording,
)


class TestCursor:
    def test_leaf_spans_advance_the_simulated_clock(self):
        rec = SpanRecorder()
        rec.add("dgpu/gpu", "k1", "kernel", 2.0)
        rec.add("dgpu/gpu", "k2", "kernel", 3.0)
        assert rec.sim_now == pytest.approx(5.0)
        assert [(s.sim_start, s.sim_end) for s in rec.spans] == [(0.0, 2.0), (2.0, 5.0)]

    def test_spans_on_different_tracks_share_one_clock(self):
        """The engine charges costs serially to one run; tracks are
        display rows, not independent clocks."""
        rec = SpanRecorder()
        rec.add("dgpu/gpu", "k", "kernel", 1.0)
        rec.add("dgpu/interconnect", "h2d", "transfer", 1.0)
        assert rec.spans[1].sim_start == pytest.approx(1.0)

    def test_zero_duration_span_allowed(self):
        rec = SpanRecorder()
        rec.add("apu/interconnect", "h2d", "transfer", 0.0)
        assert rec.spans[0].sim_seconds == 0.0


class TestNesting:
    def test_enclosing_span_covers_children(self):
        rec = SpanRecorder()
        with rec.span("dgpu/gpu", "phase", "host"):
            rec.add("dgpu/gpu", "k1", "kernel", 1.0)
            rec.add("dgpu/gpu", "k2", "kernel", 2.0)
        envelope = rec.spans[-1]
        assert envelope.name == "phase"
        assert envelope.sim_start == pytest.approx(0.0)
        assert envelope.sim_end == pytest.approx(3.0)

    def test_nested_span_recorded_even_on_exception(self):
        rec = SpanRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("t", "phase", "host"):
                raise RuntimeError("boom")
        assert rec.spans[-1].name == "phase"

    def test_instants_stamp_the_current_cursor(self):
        rec = SpanRecorder()
        rec.add("t", "k", "kernel", 1.5)
        rec.instant("memo", "kernel-hit", "memo")
        assert rec.events[0].sim_ts == pytest.approx(1.5)


class TestActivation:
    def test_disabled_by_default(self):
        assert active() is None

    def test_recording_installs_and_restores(self):
        rec = SpanRecorder()
        with recording(rec) as installed:
            assert installed is rec
            assert active() is rec
        assert active() is None

    def test_recording_nests(self):
        outer, inner = SpanRecorder(), SpanRecorder()
        with recording(outer):
            with recording(inner):
                assert active() is inner
            assert active() is outer

    def test_null_recorder_swallows_everything(self):
        rec = NullRecorder()
        rec.add("t", "k", "kernel", 1.0)
        rec.instant("t", "e", "memo")
        rec.cache_event("kernel", hit=True)
        with rec.span("t", "p", "host"):
            pass
        assert rec.spans == [] and rec.events == []
        assert rec.finish("x").spans == []


class TestCap:
    def test_cap_counts_dropped_but_keeps_the_clock(self):
        rec = SpanRecorder(max_records=2)
        for _ in range(5):
            rec.add("t", "k", "kernel", 1.0)
        assert len(rec.spans) == 2
        assert rec.dropped == 3
        assert rec.sim_now == pytest.approx(5.0)  # cap never skews the clock

    def test_cache_event_counts_metrics_past_the_cap(self):
        rec = SpanRecorder(max_records=1)
        for _ in range(3):
            rec.cache_event("kernel", hit=True)
        counter = rec.metrics.get("repro_memo_lookups_total", cache="kernel", result="hit")
        assert counter.value == 3


class TestTelemetry:
    def test_finish_seals_a_picklable_recording(self):
        rec = SpanRecorder(meta={"app": "LULESH"})
        rec.add("dgpu/gpu", "k", "kernel", 1.0, limited_by="memory")
        rec.cache_event("setup", hit=False)
        telemetry = rec.finish("LULESH/OpenCL/dgpu/single")
        clone = pickle.loads(pickle.dumps(telemetry))
        assert clone.label == telemetry.label
        assert clone.sim_seconds == pytest.approx(1.0)
        assert clone.spans[0].args_dict["limited_by"] == "memory"
        assert clone.metrics.get(
            "repro_memo_lookups_total", cache="setup", result="miss"
        ).value == 1


class TestMerge:
    def _run(self, label, seconds):
        rec = SpanRecorder()
        rec.add("dgpu/gpu", "k", "kernel", seconds)
        rec.cache_event("kernel", hit=True)
        telemetry = rec.finish(label)
        telemetry.wall_seconds = seconds / 10.0  # deterministic for the test
        return telemetry

    def test_runs_are_laid_end_to_end_in_submission_order(self):
        timeline = merge_run_telemetry([(self._run("a", 2.0), 0), (self._run("b", 3.0), 0)])
        device = [s for s in timeline.spans if s.track == "dgpu/gpu"]
        assert [(s.sim_start, s.sim_end) for s in device] == [(0.0, 2.0), (2.0, 5.0)]
        # Events shift with their run.
        assert [e.sim_ts for e in timeline.events] == [2.0, 5.0]

    def test_each_run_becomes_a_span_on_its_worker_track(self):
        timeline = merge_run_telemetry([(self._run("a", 2.0), 0), (self._run("b", 3.0), 1)])
        workers = {s.track: s for s in timeline.spans if s.category == "run"}
        assert set(workers) == {"worker-0", "worker-1"}
        assert workers["worker-0"].name == "a"

    def test_worker_wall_cursor_accumulates(self):
        timeline = merge_run_telemetry([(self._run("a", 2.0), 0), (self._run("b", 3.0), 0)])
        runs = [s for s in timeline.spans if s.category == "run"]
        assert runs[1].wall_start == pytest.approx(runs[0].wall_end)

    def test_merge_is_deterministic(self):
        items = [(self._run("a", 2.0), 0), (self._run("b", 3.0), 1)]
        first = merge_run_telemetry(items)
        second = merge_run_telemetry(items)
        assert [(s.track, s.name, s.sim_start, s.sim_end) for s in first.spans] == [
            (s.track, s.name, s.sim_start, s.sim_end) for s in second.spans
        ]

    def test_metrics_merge_alongside_spans(self):
        timeline = merge_run_telemetry([(self._run("a", 1.0), 0), (self._run("b", 1.0), 0)])
        counter = timeline.metrics.get(
            "repro_memo_lookups_total", cache="kernel", result="hit"
        )
        assert counter.value == 2
