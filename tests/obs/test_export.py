"""Exporter tests: Chrome-trace schema, metrics files, text breakdown."""

import json

import pytest

from repro.obs.export import (
    EXEC_PID,
    SIM_PID,
    Timeline,
    chrome_trace,
    merge_run_telemetry,
    top_breakdown,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry, parse_prometheus
from repro.obs.spans import SpanRecorder


def recorded_run(label="LULESH/OpenCL/dgpu/single", kernel_s=2e-3):
    rec = SpanRecorder(meta={"app": "LULESH", "model": "OpenCL"})
    rec.add("dgpu/interconnect", "h2d", "transfer", 1e-4, direction="h2d")
    rec.add("dgpu/gpu", "CalcForce", "kernel", kernel_s, limited_by="memory")
    rec.add("dgpu/gpu", "launch:CalcForce", "launch", 5e-6)
    rec.cache_event("kernel", hit=False)
    return rec.finish(label)


def small_timeline():
    return merge_run_telemetry([(recorded_run(), 0), (recorded_run("b"), 1)])


def check_trace_schema(doc):
    """Assert the invariants chrome://tracing / Perfetto rely on."""
    assert set(doc) >= {"traceEvents", "displayTimeUnit"}
    named_threads = {}
    for event in doc["traceEvents"]:
        assert event["ph"] in {"M", "X", "i"}
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        if event["ph"] == "M":
            if event["name"] == "thread_name":
                named_threads[(event["pid"], event["tid"])] = event["args"]["name"]
        else:
            assert isinstance(event["ts"], float) or isinstance(event["ts"], int)
            assert event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 0
        if event["ph"] == "i":
            assert event["s"] in {"g", "p", "t"}
    # Every span/instant lands on a declared thread.
    for event in doc["traceEvents"]:
        if event["ph"] != "M":
            assert (event["pid"], event["tid"]) in named_threads
    return named_threads


class TestChromeTrace:
    def test_schema_valid_and_both_processes_present(self):
        doc = chrome_trace(small_timeline())
        threads = check_trace_schema(doc)
        pids = {pid for pid, _ in threads}
        assert pids == {SIM_PID, EXEC_PID}

    def test_one_thread_per_device_queue_and_per_worker(self):
        timeline = small_timeline()
        doc = chrome_trace(timeline)
        threads = check_trace_schema(doc)
        names = set(threads.values())
        assert {"dgpu/gpu", "dgpu/interconnect", "memo"} <= names
        assert {"worker-0", "worker-1"} <= names
        assert set(timeline.tracks()) == names

    def test_sim_spans_use_sim_domain_and_worker_spans_wall(self):
        timeline = small_timeline()
        doc = chrome_trace(timeline)
        threads = check_trace_schema(doc)
        by_name = {name: key for key, name in threads.items()}
        gpu_pid, gpu_tid = by_name["dgpu/gpu"]
        kernel = next(
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "CalcForce"
            and (e["pid"], e["tid"]) == (gpu_pid, gpu_tid)
        )
        assert kernel["dur"] == pytest.approx(2e-3 * 1e6)  # µs, sim domain
        run = next(e for e in doc["traceEvents"] if e["ph"] == "X" and e["cat"] == "run")
        assert run["pid"] == EXEC_PID

    def test_span_args_survive_into_trace(self):
        doc = chrome_trace(small_timeline())
        kernel = next(e for e in doc["traceEvents"] if e.get("name") == "CalcForce")
        assert kernel["args"]["limited_by"] == "memory"

    def test_instant_events_exported(self):
        doc = chrome_trace(small_timeline())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert any(e["name"] == "kernel-miss" for e in instants)

    def test_other_data_reports_drops(self):
        timeline = small_timeline()
        timeline.dropped = 12
        doc = chrome_trace(timeline)
        assert doc["otherData"]["dropped_records"] == 12

    def test_write_round_trips_through_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(small_timeline(), path)
        with open(path) as fh:
            check_trace_schema(json.load(fh))


class TestTimeline:
    def test_track_partition(self):
        timeline = small_timeline()
        assert timeline.worker_tracks() == ["worker-0", "worker-1"]
        assert "dgpu/gpu" in timeline.sim_tracks()
        assert not any(t.startswith("worker-") for t in timeline.sim_tracks())

    def test_empty_timeline_exports(self):
        doc = chrome_trace(Timeline())
        check_trace_schema(doc)
        assert top_breakdown(Timeline())  # no division by zero


class TestWriteMetrics:
    def test_json_extension_selects_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("repro_x_total").inc()
        path = str(tmp_path / "metrics.json")
        write_metrics(reg, path)
        with open(path) as fh:
            assert json.load(fh)["repro_x_total"]["type"] == "counter"

    def test_other_extensions_select_prometheus(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("repro_x_total").inc()
        path = str(tmp_path / "metrics.prom")
        write_metrics(reg, path)
        with open(path) as fh:
            assert parse_prometheus(fh.read())["repro_x_total"] == [("", 1.0)]


class TestTopBreakdown:
    def test_reports_phases_and_top_spans(self):
        text = top_breakdown(small_timeline(), top=3)
        assert "kernel" in text and "transfer" in text and "launch" in text
        assert "CalcForce" in text
        # Kernel dominates; it must be the first phase line.
        phase_lines = [l for l in text.splitlines() if l.startswith("  ")]
        assert phase_lines[0].split()[0] == "kernel"

    def test_run_envelopes_do_not_double_count(self):
        timeline = small_timeline()
        text = top_breakdown(timeline)
        assert "[run]" not in text

    def test_mentions_dropped_records(self):
        timeline = small_timeline()
        timeline.dropped = 3
        assert "3 records dropped" in top_breakdown(timeline)
