"""Unit tests of the request-tracing layer (ids, buffers, retention)."""

import pytest

from repro.obs import tracing
from repro.obs.export import chrome_trace
from repro.obs.tracing import (
    SpanContext,
    TraceRecord,
    TraceSpan,
    TraceStore,
    Tracer,
    children_of,
    derived_span_id,
    new_span_id,
    new_trace_id,
    orphan_spans,
    parse_traceparent,
    seeded_trace_id,
    segment_durations,
    tree_signature,
)


# -- identities and the traceparent wire format -------------------------


def test_ids_have_w3c_shapes():
    assert len(new_trace_id()) == 32
    assert len(new_span_id()) == 16
    int(new_trace_id(), 16)  # must be hex
    assert new_trace_id() != new_trace_id()


def test_traceparent_round_trip():
    ctx = SpanContext(trace_id="ab" * 16, span_id="cd" * 8)
    header = ctx.to_traceparent()
    assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"
    assert parse_traceparent(header) == ctx


@pytest.mark.parametrize("header", [
    None, "", "garbage", "00-short-short-01",
    "00-" + "0" * 32 + "-" + "ab" * 8 + "-01",  # all-zero trace id
    "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero span id
    "ff-" + "ab" * 16 + "-" + "cd" * 8 + "-01",  # unknown version
])
def test_bad_traceparent_is_none_not_an_error(header):
    assert parse_traceparent(header) is None


def test_derived_ids_are_deterministic_and_distinct():
    a = derived_span_id("trace", "parent", "run:x", "key1")
    assert a == derived_span_id("trace", "parent", "run:x", "key1")
    assert a != derived_span_id("trace", "parent", "run:x", "key2")
    assert len(a) == 16
    assert seeded_trace_id("s") == seeded_trace_id("s")
    assert seeded_trace_id("s") != seeded_trace_id("t")


# -- ambient context ----------------------------------------------------


def test_context_push_reset_and_use():
    assert tracing.current() is None
    ctx = SpanContext(trace_id="ab" * 16, span_id="cd" * 8)
    token = tracing.push(ctx)
    assert tracing.current() == ctx
    with tracing.use(None):
        assert tracing.current() is None
    assert tracing.current() == ctx
    tracing.reset(token)
    assert tracing.current() is None


# -- tracer buffers and trace completion --------------------------------


def test_span_lifecycle_and_complete():
    tracer = Tracer()
    root = tracer.start_span("request", kind="server")
    child = tracer.start_span("handle", kind="segment", parent=root.context)
    tracer.finish_span(child)
    tracer.finish_span(root)
    record = tracer.complete(root.trace_id, route="predict", status=200)
    assert record is not None
    assert {s.name for s in record.spans} == {"request", "handle"}
    assert record.root.name == "request"
    assert not orphan_spans(record.spans)
    assert tracer.pending_spans(root.trace_id) == []
    # Completing again finds nothing.
    assert tracer.complete(root.trace_id) is None
    assert tracer.store.get(root.trace_id) is record


def test_span_contextmanager_installs_ambient_context():
    tracer = Tracer()
    with tracer.span("outer", kind="server") as outer:
        assert tracing.current() == outer.context
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.span_id
    assert tracing.current() is None
    record = tracer.complete(outer.trace_id)
    assert tree_signature(record.spans) == tree_signature([outer, inner])


def test_buffers_are_bounded_and_evict_lru():
    tracer = Tracer(max_buffered_traces=2, max_spans_per_trace=3)
    ids = [f"{i:032x}" for i in range(3)]
    for trace_id in ids:
        for n in range(5):  # two spans over the per-trace cap
            tracer.emit(TraceSpan(
                trace_id=trace_id, span_id=f"{n:016x}", parent_id="",
                name=f"s{n}",
            ))
    # Oldest trace evicted, and each surviving buffer is capped.
    assert tracer.pending_spans(ids[0]) == []
    assert len(tracer.pending_spans(ids[1])) == 3
    assert len(tracer.pending_spans(ids[2])) == 3
    assert tracer.dropped > 0


# -- tail-biased retention ----------------------------------------------


def _record(trace_id: str, duration_s: float, status: int = 200,
            started: float = 0.0) -> TraceRecord:
    span = TraceSpan(trace_id=trace_id, span_id="ab" * 8, parent_id="",
                     name="request", kind="server", start_s=0.0, end_s=duration_s)
    return TraceRecord(trace_id=trace_id, route="predict", status=status,
                       duration_s=duration_s, started_unix=started, spans=(span,))


def test_store_keeps_slowest_and_errors_past_the_recent_ring():
    store = TraceStore(recent_cap=4, slow_cap=2, error_cap=2)
    store.add(_record("slow" + "0" * 28, duration_s=9.0, started=0.0))
    store.add(_record("err0" + "0" * 28, duration_s=0.001, status=500, started=1.0))
    for i in range(10):
        store.add(_record(f"{i:032x}", duration_s=0.01, started=2.0 + i))
    # Both outlived the ring through their dedicated holds.
    assert store.holds("slow" + "0" * 28) == ("slowest",)
    assert store.holds("err0" + "0" * 28) == ("error",)
    # Fresh traces sit in the ring (and the slowest-ever list as needed).
    newest = store.records()[0]
    assert "recent" in store.holds(newest.trace_id)
    # Ring-evicted, unremarkable traces are gone.
    assert store.get(f"{0:032x}") is None


def test_store_records_are_newest_first_and_clear_empties():
    store = TraceStore()
    store.add(_record("a" * 32, 0.1, started=1.0))
    store.add(_record("b" * 32, 0.1, started=2.0))
    assert [r.trace_id for r in store.records()] == ["b" * 32, "a" * 32]
    store.clear()
    assert len(store) == 0


# -- tree utilities -----------------------------------------------------


def _span(span_id: str, parent_id: str, name: str = "s",
          kind: str = "internal", start: float = 0.0, end: float = 1.0) -> TraceSpan:
    return TraceSpan(trace_id="t" * 32, span_id=span_id, parent_id=parent_id,
                     name=name, kind=kind, start_s=start, end_s=end)


def test_children_and_orphans():
    spans = [
        _span("r" * 16, ""),
        _span("c1" + "0" * 14, "r" * 16, start=0.0),
        _span("c2" + "0" * 14, "r" * 16, start=0.5),
        _span("g1" + "0" * 14, "c1" + "0" * 14),
    ]
    grouped = children_of(spans)
    assert [s.span_id for s in grouped["r" * 16]] == ["c1" + "0" * 14, "c2" + "0" * 14]
    assert not orphan_spans(spans)
    # External parent (inbound traceparent) is a root, not an orphan.
    assert not orphan_spans([_span("a" * 16, "f" * 16)])
    # A dangling chain under a self-parented span is orphaned.
    cyclic = [_span("a" * 16, "a" * 16), _span("b" * 16, "a" * 16)]
    assert {s.span_id for s in orphan_spans(cyclic)} == {"a" * 16, "b" * 16}


def test_segment_durations_union_merges_by_name():
    spans = [
        _span("r" * 16, "", name="request", kind="server", start=0.0, end=4.0),
        _span("a" * 16, "r" * 16, name="queue_wait", kind="segment", start=0.0, end=1.0),
        _span("b" * 16, "r" * 16, name="queue_wait", kind="segment", start=1.0, end=1.5),
        _span("c" * 16, "r" * 16, name="engine", kind="segment", start=1.5, end=4.0),
        # A second leg sharing the same engine window (coalesced batch)
        # charges the overlap once, not twice.
        _span("d" * 16, "r" * 16, name="engine", kind="segment", start=2.0, end=4.0),
    ]
    assert segment_durations(spans) == {"queue_wait": 1.5, "engine": 2.5}


def test_record_json_and_chrome_export():
    root = _span("r" * 16, "", name="request", kind="server", start=10.0, end=10.004)
    seg = _span("s" * 16, "r" * 16, name="engine", kind="segment",
                start=10.001, end=10.003)
    record = TraceRecord(trace_id="t" * 32, route="predict", status=200,
                         duration_s=0.004, started_unix=123.0, spans=(root, seg))
    doc = record.to_json()
    assert doc["trace_id"] == "t" * 32
    assert doc["segments_ms"] == {"engine": 2.0}
    # Span times are re-based to the root's origin.
    assert doc["spans"][0]["start_us"] == 0.0
    assert doc["spans"][1]["start_us"] == pytest.approx(1000.0)
    exported = chrome_trace(tracing.trace_timeline(record))
    names = {event["name"] for event in exported["traceEvents"]
             if event["ph"] == "X"}
    assert {"request", "engine"} <= names
