"""MetricsRegistry thread-safety: the serving layer mutates one
registry from the event loop, its backend worker thread, and pool
callbacks concurrently, so updates must never be lost and exports
must stay internally consistent while instruments are hammered."""

import pickle
import sys
import threading

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry, parse_prometheus


@pytest.fixture(autouse=True)
def aggressive_preemption():
    """Shrink the GIL switch interval so lost-update races would show."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def _hammer(n_threads, fn):
    threads = [threading.Thread(target=fn, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)


def test_counter_increments_are_never_lost():
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_total")
    per_thread, n_threads = 5_000, 8

    def work(_i):
        for _ in range(per_thread):
            counter.inc()

    _hammer(n_threads, work)
    assert counter.value == per_thread * n_threads


def test_histogram_observes_are_never_lost():
    registry = MetricsRegistry()
    hist = registry.histogram("repro_test_seconds")
    per_thread, n_threads = 2_000, 6

    def work(i):
        for j in range(per_thread):
            hist.observe(10.0 ** -(1 + (i + j) % 5))

    _hammer(n_threads, work)
    counts, total, count = hist.snapshot()
    assert count == per_thread * n_threads
    assert sum(counts) == count
    assert hist.cumulative()[-1][1] == count
    assert total > 0


def test_concurrent_instrument_creation_on_one_registry():
    registry = MetricsRegistry()
    per_thread, n_threads = 200, 8

    def work(i):
        for j in range(per_thread):
            registry.counter("repro_routes_total", route=f"r{j}").inc()
            registry.gauge("repro_depth", shard=str(i)).set(j)

    _hammer(n_threads, work)
    for j in range(per_thread):
        counter = registry.get("repro_routes_total", route=f"r{j}")
        assert counter is not None and counter.value == n_threads


def test_export_while_mutating_stays_consistent():
    registry = MetricsRegistry()
    stop = threading.Event()
    errors = []

    def mutate(i):
        n = 0
        while not stop.is_set():
            registry.counter("repro_m_total", t=str(i)).inc()
            registry.histogram("repro_m_seconds").observe(0.001 * (n % 7))
            n += 1

    def scrape(_i):
        try:
            for _ in range(50):
                parsed = parse_prometheus(registry.to_prometheus())
                if "repro_m_seconds_count" in parsed:
                    # bucket/count consistency: +Inf bucket == _count.
                    buckets = parsed["repro_m_seconds_bucket"]
                    inf = [v for labels, v in buckets if '+Inf' in labels]
                    count = parsed["repro_m_seconds_count"][0][1]
                    assert inf and inf[0] == count
                registry.to_json()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    writers = [threading.Thread(target=mutate, args=(i,)) for i in range(4)]
    scraper = threading.Thread(target=scrape, args=(0,))
    for t in writers:
        t.start()
    scraper.start()
    scraper.join(timeout=30.0)
    stop.set()
    for t in writers:
        t.join(timeout=30.0)
    assert not errors, errors


def test_registry_still_pickles_across_processes():
    registry = MetricsRegistry()
    registry.counter("repro_c_total", kind="x").inc(3)
    registry.histogram("repro_h_seconds").observe(0.5)
    clone = pickle.loads(pickle.dumps(registry))
    assert clone.get("repro_c_total", kind="x").value == 3
    clone.counter("repro_c_total", kind="x").inc()  # lock was recreated
    assert clone.get("repro_c_total", kind="x").value == 4
    merged = MetricsRegistry()
    merged.merge(clone)
    assert merged.get("repro_c_total", kind="x").value == 4


def test_standalone_histogram_pickles():
    hist = Histogram(buckets=(0.1, 1.0))
    hist.observe(0.05)
    clone = pickle.loads(pickle.dumps(hist))
    clone.observe(0.5)
    assert clone.snapshot()[2] == 2
