"""Unit tests of the structured-logging layer (ring, stream, levels)."""

import io
import json

import pytest

from repro.obs import logging as obs_logging
from repro.obs.logging import LogRing, StructuredLogger, get_logger


@pytest.fixture
def stream():
    """Capture the log stream at debug level for one test."""
    captured = io.StringIO()
    obs_logging.set_stream(captured)
    obs_logging.set_stream_level("debug")
    yield captured
    obs_logging.set_stream(None)
    obs_logging.set_stream_level("info")


def test_records_are_json_lines_with_standard_fields(stream):
    ring = LogRing(capacity=8)
    log = StructuredLogger("test", ring=ring)
    record = log.info("request", trace_id="ab" * 16, status=200, latency_ms=2.61)
    lines = stream.getvalue().strip().splitlines()
    assert len(lines) == 1
    parsed = json.loads(lines[0])
    assert parsed == record
    assert parsed["component"] == "test"
    assert parsed["event"] == "request"
    assert parsed["level"] == "info"
    assert parsed["status"] == 200
    assert "ts" in parsed
    assert ring.recent() == [record]


def test_stream_level_gates_stderr_but_not_the_ring(stream):
    ring = LogRing(capacity=8)
    log = StructuredLogger("test", ring=ring)
    obs_logging.set_stream_level("warning")
    log.debug("quiet")
    log.info("also-quiet")
    log.error("loud")
    assert stream.getvalue().count("\n") == 1
    assert json.loads(stream.getvalue())["event"] == "loud"
    # The ring sees everything regardless of the stream level.
    assert [r["event"] for r in ring.recent()] == ["quiet", "also-quiet", "loud"]


def test_off_level_silences_the_stream(stream):
    obs_logging.set_stream_level("off")
    StructuredLogger("test", ring=LogRing(4)).error("nope")
    assert stream.getvalue() == ""


def test_ring_is_bounded_and_recent_limits():
    ring = LogRing(capacity=3)
    log = StructuredLogger("test", ring=ring)
    for i in range(10):
        log.debug("e", i=i)
    assert len(ring) == 3
    assert [r["i"] for r in ring.recent()] == [7, 8, 9]
    assert [r["i"] for r in ring.recent(2)] == [8, 9]
    ring.clear()
    assert ring.recent() == []


def test_non_jsonable_fields_are_stringified(stream):
    log = StructuredLogger("test", ring=LogRing(4))
    record = log.info("event", path=object(), nested={"k": (1, 2)})
    json.dumps(record)  # must round-trip
    assert isinstance(record["path"], str)
    assert record["nested"] == {"k": [1, 2]}


def test_closed_stream_never_raises():
    closed = io.StringIO()
    closed.close()
    obs_logging.set_stream(closed)
    try:
        StructuredLogger("test", ring=LogRing(4)).error("boom")
    finally:
        obs_logging.set_stream(None)


def test_get_logger_is_cached_per_component():
    assert get_logger("serve") is get_logger("serve")
    assert get_logger("serve") is not get_logger("exec")
