"""OpenMetrics exemplars on histograms: observe, render, parse, merge."""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    parse_exemplars,
    parse_prometheus,
)

BUCKETS = (0.001, 0.01, 0.1)


def test_observe_keeps_the_latest_exemplar_per_bucket():
    histogram = Histogram(buckets=BUCKETS)
    histogram.observe(0.0005, exemplar={"trace_id": "a" * 32})
    histogram.observe(0.0007, exemplar={"trace_id": "b" * 32})
    histogram.observe(0.05, exemplar={"trace_id": "c" * 32})
    histogram.observe(5.0, exemplar={"trace_id": "d" * 32})  # +Inf bucket
    histogram.observe(0.002)  # no exemplar: bucket 1 stays bare
    snapshot = histogram.exemplar_snapshot()
    assert set(snapshot) == {0, 2, 3}
    labels, value, ts = snapshot[0]
    assert labels == (("trace_id", "b" * 32),)
    assert value == 0.0007
    assert ts > 0


def test_rendered_exposition_carries_exemplars_and_still_parses(monkeypatch):
    monkeypatch.setattr(obs_metrics, "_now", lambda: 123.456)
    registry = MetricsRegistry()
    registry.histogram(
        "repro_serve_latency_seconds", help="Latency.", buckets=BUCKETS,
        route="predict", status="200",
    ).observe(0.0005, exemplar={"trace_id": "ab" * 16})
    text = registry.to_prometheus()
    bucket_lines = [
        line for line in text.splitlines()
        if line.startswith("repro_serve_latency_seconds_bucket")
    ]
    with_exemplar = [line for line in bucket_lines if "#" in line]
    assert len(with_exemplar) == 1
    assert with_exemplar[0].endswith(f'# {{trace_id="{"ab" * 16}"}} 0.0005 123.456000')
    assert 'le="0.001"' in with_exemplar[0]
    # The strict parser (CI artifact check) accepts the suffix …
    samples = parse_prometheus(text)
    assert len(samples["repro_serve_latency_seconds_bucket"]) == 4
    # … and the exemplar helper recovers the trace id.
    exemplars = parse_exemplars(text, "repro_serve_latency_seconds")
    assert len(exemplars) == 1
    bucket_labels, exemplar_labels, value = exemplars[0]
    assert 'le="0.001"' in bucket_labels
    assert exemplar_labels == {"trace_id": "ab" * 16}
    assert value == 0.0005


def test_parse_exemplars_ignores_other_metrics_and_bare_buckets():
    text = "\n".join([
        'other_bucket{le="+Inf"} 1 # {trace_id="ff"} 1.0',
        'mine_bucket{le="+Inf"} 1',
    ])
    assert parse_exemplars(text, "mine") == []


def test_parse_prometheus_still_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_prometheus("metric{le=1} oops")


def test_merge_carries_exemplars_across_registries():
    a, b = Histogram(buckets=BUCKETS), Histogram(buckets=BUCKETS)
    a.observe(0.0005, exemplar={"trace_id": "a" * 32})
    b.observe(0.05, exemplar={"trace_id": "b" * 32})
    a.merge(b)
    snapshot = a.exemplar_snapshot()
    assert snapshot[0][0] == (("trace_id", "a" * 32),)
    assert snapshot[2][0] == (("trace_id", "b" * 32),)
