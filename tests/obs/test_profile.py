"""Integration: ``repro profile`` artifacts and result non-perturbation.

The acceptance bar for the telemetry layer: the profile command emits a
schema-valid Chrome trace with at least one track per device queue and
per executor worker plus a metrics file with kernel-time histograms and
memo hit ratios — and turning telemetry on leaves every study speedup
bit-identical.
"""

import json

import pytest

from repro.apps import ALL_APPS
from repro.cli import main
from repro.core import bench_configs, run_study
from repro.engine import memo
from repro.obs.metrics import parse_prometheus

from .test_export import check_trace_schema


@pytest.fixture(autouse=True)
def fresh_caches():
    memo.clear_caches()
    yield
    memo.clear_caches()


@pytest.fixture(scope="module")
def profile_artifacts(tmp_path_factory):
    """One bench-scale ``repro profile figure8`` run, shared by the
    schema assertions below."""
    out = tmp_path_factory.mktemp("profile")
    trace = out / "trace.json"
    metrics = out / "metrics.prom"
    memo.clear_caches()
    code = main(
        ["profile", "figure8", "--trace", str(trace), "--metrics", str(metrics)]
    )
    assert code == 0
    return trace, metrics


class TestProfileCommand:
    def test_trace_is_schema_valid(self, profile_artifacts):
        trace, _ = profile_artifacts
        doc = json.loads(trace.read_text())
        check_trace_schema(doc)

    def test_trace_has_device_queue_and_worker_tracks(self, profile_artifacts):
        trace, _ = profile_artifacts
        doc = json.loads(trace.read_text())
        tracks = set(doc["otherData"]["tracks"])
        # One track per simulated device queue, both platforms.
        assert {"apu/gpu", "apu/interconnect", "dgpu/gpu", "dgpu/interconnect"} <= tracks
        assert any(t.startswith("worker-") for t in tracks)

    def test_metrics_have_histograms_and_hit_ratios(self, profile_artifacts):
        _, metrics = profile_artifacts
        parsed = parse_prometheus(metrics.read_text())
        assert "repro_kernel_seconds_bucket" in parsed
        assert "repro_kernel_seconds_count" in parsed
        assert "repro_memo_hit_ratio" in parsed
        assert "repro_memo_lookups_total" in parsed
        # Histograms are labelled per app x model x device.
        labels = parsed["repro_kernel_seconds_count"][0][0]
        assert "app=" in labels and "model=" in labels and "device=" in labels

    def test_metrics_json_flavour(self, tmp_path):
        metrics = tmp_path / "metrics.json"
        memo.clear_caches()
        assert main(["profile", "figure8", "--metrics", str(metrics)]) == 0
        doc = json.loads(metrics.read_text())
        assert doc["repro_kernel_seconds"]["type"] == "histogram"


class TestNonPerturbation:
    def test_speedups_bit_identical_with_telemetry(self):
        apps = ALL_APPS[:2]
        configs = bench_configs()
        memo.clear_caches()
        plain = run_study(apps, configs=configs)
        memo.clear_caches()
        traced = run_study(apps, configs=configs, telemetry=True)
        assert plain.telemetry is None
        assert traced.telemetry is not None and traced.telemetry.spans
        assert len(plain.entries) == len(traced.entries)
        for a, b in zip(plain.entries, traced.entries):
            assert (a.app, a.model, a.platform, a.precision) == (
                b.app, b.model, b.platform, b.precision
            )
            assert a.seconds == b.seconds  # bitwise, no approx
            assert a.kernel_seconds == b.kernel_seconds
            assert a.speedup == b.speedup

    def test_telemetry_survives_warm_memo_caches(self):
        """Second run hits the memo caches; spans must still appear
        (pricing is memoized, charging is not)."""
        apps = ALL_APPS[:1]
        configs = bench_configs()
        memo.clear_caches()
        run_study(apps, configs=configs)
        warm = run_study(apps, configs=configs, telemetry=True)
        assert warm.telemetry is not None and warm.telemetry.spans
        hits = warm.telemetry.metrics.get(
            "repro_memo_lookups_total", cache="kernel", result="hit"
        )
        assert hits is not None and hits.value > 0
