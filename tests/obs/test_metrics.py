"""Metrics registry unit tests: instruments, export formats, merging."""

import math

import pytest

from repro.obs.metrics import (
    TIME_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)


class TestCounter:
    def test_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("repro_events_total").inc()
        reg.counter("repro_events_total").inc(4)
        assert reg.get("repro_events_total").value == 5

    def test_rejects_negative_increments(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("repro_events_total").inc(-1)

    def test_label_sets_are_independent(self):
        reg = MetricsRegistry()
        reg.counter("repro_lookups_total", cache="kernel").inc()
        reg.counter("repro_lookups_total", cache="setup").inc(2)
        assert reg.get("repro_lookups_total", cache="kernel").value == 1
        assert reg.get("repro_lookups_total", cache="setup").value == 2

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", a="1", b="2").inc()
        assert reg.get("repro_x_total", b="2", a="1").value == 1


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("repro_queue_depth")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3


class TestHistogram:
    def test_observe_places_values_in_buckets(self):
        hist = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3
        assert hist.sum == pytest.approx(55.5)
        assert hist.mean == pytest.approx(18.5)

    def test_cumulative_ends_at_inf_with_total(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(2.0)
        assert hist.cumulative() == [(1.0, 1), (math.inf, 2)]

    def test_default_buckets_cover_kernel_timescales(self):
        assert TIME_BUCKETS_S[0] == pytest.approx(1e-6)
        assert TIME_BUCKETS_S[-1] == pytest.approx(10.0)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))

    def test_merge_requires_matching_buckets(self):
        a, b = Histogram(buckets=(1.0,)), Histogram(buckets=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)


class TestRegistry:
    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_thing")
        with pytest.raises(ValueError):
            reg.gauge("repro_thing")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("0bad")
        with pytest.raises(ValueError):
            reg.counter("repro_ok", **{"bad-label": "x"})

    def test_get_returns_none_for_unknown(self):
        reg = MetricsRegistry()
        assert reg.get("repro_missing") is None
        reg.counter("repro_present", x="1")
        assert reg.get("repro_present", x="2") is None

    def test_merge_sums_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 1), (b, 2)):
            reg.counter("repro_runs_total").inc(n)
            reg.histogram("repro_kernel_seconds", app="CoMD").observe(0.01 * n)
            reg.gauge("repro_depth").set(n)
        a.merge(b)
        assert a.get("repro_runs_total").value == 3
        hist = a.get("repro_kernel_seconds", app="CoMD")
        assert hist.count == 2
        assert hist.sum == pytest.approx(0.03)
        # Gauges take the later value (submission order).
        assert a.get("repro_depth").value == 2

    def test_merge_into_empty_registry_copies_everything(self):
        src, dst = MetricsRegistry(), MetricsRegistry()
        src.counter("repro_a_total", k="v").inc(7)
        dst.merge(src)
        assert dst.get("repro_a_total", k="v").value == 7


class TestPrometheusExport:
    def build(self):
        reg = MetricsRegistry()
        reg.counter(
            "repro_memo_lookups_total", help="Memo lookups.", cache="kernel", result="hit"
        ).inc(3)
        reg.gauge("repro_memo_hit_ratio", cache="kernel").set(0.75)
        reg.histogram(
            "repro_kernel_seconds", app="LULESH", model="OpenCL", device="dgpu"
        ).observe(0.004)
        return reg

    def test_output_parses_as_exposition_format(self):
        text = self.build().to_prometheus()
        parsed = parse_prometheus(text)
        assert parsed["repro_memo_lookups_total"] == [
            ('{cache="kernel",result="hit"}', 3.0)
        ]
        # Histogram expands into _bucket/_sum/_count series.
        assert len(parsed["repro_kernel_seconds_bucket"]) == len(TIME_BUCKETS_S) + 1
        assert parsed["repro_kernel_seconds_count"][0][1] == 1.0

    def test_type_and_help_headers_present(self):
        text = self.build().to_prometheus()
        assert "# HELP repro_memo_lookups_total Memo lookups." in text
        assert "# TYPE repro_memo_lookups_total counter" in text
        assert "# TYPE repro_kernel_seconds histogram" in text

    def test_inf_bucket_rendered_as_plus_inf(self):
        text = self.build().to_prometheus()
        assert 'le="+Inf"' in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("repro_odd_total", what='say "hi"\nthere').inc()
        text = reg.to_prometheus()
        assert r"say \"hi\"\nthere" in text
        parse_prometheus(text)  # still a valid sample line

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not a metric\n")


class TestJsonExport:
    def test_document_shape(self):
        reg = MetricsRegistry()
        reg.counter("repro_runs_total", result="executed").inc(5)
        reg.histogram("repro_kernel_seconds", app="CoMD").observe(0.1)
        doc = reg.to_json()
        runs = doc["repro_runs_total"]
        assert runs["type"] == "counter"
        assert runs["samples"] == [
            {"labels": {"result": "executed"}, "value": 5.0}
        ]
        hist = doc["repro_kernel_seconds"]["samples"][0]
        assert hist["count"] == 1
        assert hist["buckets"][-1]["le"] == "+Inf"
        assert hist["buckets"][-1]["cumulative"] == 1
