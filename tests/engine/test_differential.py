"""Differential test: event scheduler vs closed-form timing model.

``test_validate.py`` cross-checks the two models over the real app
kernels; this file fuzzes them over a seeded random grid of kernel
specs and lowerings, so agreement is established across the whole
input space the models accept, not just the calibrated points.

The two models share the roofline (compute vs DRAM bandwidth, same
occupancy and traffic models), but diverge by design in two places:

* the analytic model applies a smooth ``latency_hiding_factor`` where
  the scheduler plays out overlap explicitly — worth a few x on
  low-occupancy or tail-dominated launches;
* the scheduler has **no scatter-latency term**: for the
  ``SCATTER_MLP`` kinds (``BINARY_SEARCH``, ``NEIGHBOR_LIST``) the
  analytic model adds a memory-latency bound the event loop does not
  model, so the analytic time can exceed the scheduled time by up to
  the latency/bandwidth ratio of the pattern.

The per-kind tolerances below document exactly that: tight-ish for the
bandwidth kinds, wide for the dependent-descent kinds.  The ceiling is
shared — the scheduler only *adds* tail and contention effects, so it
can never undercut physics by much more than the hiding factor, and it
exceeds the analytic time only through tail quantization.
"""

import random
import zlib

import pytest

from repro.engine.kernel import (
    AccessKind,
    AccessPattern,
    KernelSpec,
    LoweredKernel,
    OpCount,
    hand_tuned,
)
from repro.engine.scheduler import simulate_kernel
from repro.engine.timing import GPU_KERNEL_FLOOR_S, SCATTER_MLP, time_gpu_kernel
from repro.engine.validate import validate_kernel
from repro.hardware.device import make_apu_platform, make_dgpu_platform
from repro.hardware.specs import Precision

#: Documented scheduled/analytic agreement band per access kind:
#: ratio must lie in [1/tolerance, CEILING].  Bandwidth-limited kinds
#: track each other within a small factor; the scatter kinds carry the
#: analytic-only latency term (see module docstring), BINARY_SEARCH
#: worst of all because a dependent descent has MLP 1.
DIFFERENTIAL_TOLERANCE = {
    AccessKind.STREAMING: 4.0,
    AccessKind.STENCIL: 4.0,
    AccessKind.CSR_SPMV: 4.0,
    AccessKind.NEIGHBOR_LIST: 6.0,
    AccessKind.BINARY_SEARCH: 25.0,
}

#: The scheduler may exceed the analytic time only via tail effects
#: (partial last batch), never by a large factor.
CEILING = 1.5

N_CASES = 40  # per access kind


def random_spec(rng: random.Random, kind: AccessKind) -> KernelSpec:
    """One random-but-valid kernel spec of the given access kind."""
    work_items = 2 ** rng.randint(12, 20)
    flops = work_items * rng.uniform(2.0, 200.0)
    bytes_read = float(work_items * rng.choice([4, 8, 16, 32, 64]))
    bytes_written = bytes_read * rng.uniform(0.0, 0.5)
    access = AccessPattern(
        kind=kind,
        working_set_bytes=bytes_read + bytes_written,
        request_bytes=rng.choice([4, 8, 16]),
        reuse_fraction=rng.uniform(0.0, 0.9),
        row_buffer_efficiency=rng.uniform(0.4, 1.0),
        table_entries=2 ** rng.randint(10, 22) if kind is AccessKind.BINARY_SEARCH else 0,
    )
    return KernelSpec(
        name=f"rand-{kind.value}",
        work_items=work_items,
        ops=OpCount(
            flops=flops,
            int_ops=flops * rng.uniform(0.0, 1.0),
            bytes_read=bytes_read,
            bytes_written=bytes_written,
        ),
        access=access,
        workgroup_size=rng.choice([64, 128, 256]),
        registers_per_thread=rng.choice([16, 32, 64, 84]),
        lds_bytes_per_workgroup=rng.choice([0, 0, 4096, 16384]),
        lds_traffic_filter=rng.uniform(0.0, 0.7),
        divergence=rng.uniform(0.0, 0.5),
    )


def random_lowering(rng: random.Random, spec: KernelSpec) -> LoweredKernel:
    """A random compiler outcome, from hand-tuned to quite poor."""
    return LoweredKernel(
        spec=spec,
        vector_efficiency=rng.uniform(0.4, 1.0),
        uses_lds=spec.lds_bytes_per_workgroup > 0 and rng.random() < 0.5,
        instruction_scale=rng.uniform(1.0, 2.0),
        divergence=rng.uniform(0.0, 0.5),
        memory_efficiency=rng.uniform(0.4, 1.0),
    )


def random_device(rng: random.Random):
    return (make_apu_platform() if rng.random() < 0.5 else make_dgpu_platform()).gpu


@pytest.mark.parametrize("kind", list(AccessKind), ids=lambda k: k.value)
def test_models_agree_on_random_specs(kind):
    rng = random.Random(0xD1F + zlib.crc32(kind.value.encode()) % 1000)
    tolerance = DIFFERENTIAL_TOLERANCE[kind]
    for _ in range(N_CASES):
        spec = random_spec(rng, kind)
        lowered = random_lowering(rng, spec)
        gpu = random_device(rng)
        precision = rng.choice([Precision.SINGLE, Precision.DOUBLE])

        analytic = time_gpu_kernel(lowered, gpu, precision)
        scheduled = simulate_kernel(lowered, gpu, precision)

        # Structural invariants first: both are real times above the
        # shared launch floor.
        assert analytic.seconds >= GPU_KERNEL_FLOOR_S
        assert scheduled.seconds >= GPU_KERNEL_FLOOR_S
        assert scheduled.workgroups == -(-spec.work_items // spec.workgroup_size)

        ratio = scheduled.seconds / analytic.seconds
        label = f"{spec.name} wi={spec.work_items} ratio={ratio:.3f}"
        assert ratio > 1.0 / tolerance, label
        assert ratio < CEILING, label


@pytest.mark.parametrize("kind", list(AccessKind), ids=lambda k: k.value)
def test_hand_tuned_lowerings_agree(kind):
    """The expert lowering (what OpenCL generates) stays in band too."""
    rng = random.Random(0xBEEF + zlib.crc32(kind.value.encode()) % 1000)
    tolerance = DIFFERENTIAL_TOLERANCE[kind]
    for _ in range(N_CASES // 2):
        lowered = hand_tuned(random_spec(rng, kind))
        point = validate_kernel(lowered, random_device(rng))
        assert point.agrees(tolerance), (point.kernel, round(point.ratio, 3))


def test_bandwidth_kinds_use_identical_traffic_model():
    """Where neither model adds a latency term, the *memory side* is
    the same equation: a saturating streaming kernel lands within the
    hiding factor."""
    rng = random.Random(7)
    for _ in range(10):
        spec = random_spec(rng, AccessKind.STREAMING)
        lowered = hand_tuned(spec)
        gpu = make_dgpu_platform().gpu
        analytic = time_gpu_kernel(lowered, gpu, Precision.SINGLE)
        scheduled = simulate_kernel(lowered, gpu, Precision.SINGLE)
        assert analytic.dram_bytes == lowered.dram_traffic_bytes(
            gpu.spec.l2_cache.size_bytes
        )
        # Same traffic, same bandwidth: agreement within the analytic
        # hiding factor plus scheduler tail effects.
        assert scheduled.seconds / analytic.seconds > 1.0 / 3.0


def test_scatter_kinds_documented_as_analytic_only():
    """Guard the documented asymmetry: the latency term exists in the
    analytic model only.  If someone adds it to the scheduler, the
    wide BINARY_SEARCH tolerance above should be tightened."""
    assert set(SCATTER_MLP) == {AccessKind.BINARY_SEARCH, AccessKind.NEIGHBOR_LIST}
