"""The energy model: unit laws, result-level invariants, and the
scalar/vector differential for energy and EDP."""

import pytest

from repro.apps import ALL_APPS
from repro.core.configs import bench_configs
from repro.core.study import run_study
from repro.engine.energy import (
    IDLE_ACTIVITY_FLOOR,
    clock_power_scale,
    energy_delay_product,
    kernel_joules,
    static_joules,
    transfer_joules,
)
from repro.exec.plan import PLATFORMS
from repro.hardware.device import platform_for
from repro.hardware.specs import TESLA_V100, Precision

APP_NAMES = tuple(app.name for app in ALL_APPS)


# -- unit laws ----------------------------------------------------------


class TestKernelJoules:
    def test_zero_seconds_is_zero_energy(self):
        assert kernel_joules(TESLA_V100.power, 0.0, 0.0) == 0.0

    def test_full_utilisation_draws_peak_dynamic(self):
        joules = kernel_joules(TESLA_V100.power, 2.0, 2.0)
        assert joules == pytest.approx(TESLA_V100.power.peak_dynamic_w * 2.0)

    def test_idle_activity_floor(self):
        """A stalled kernel (zero busy time) still draws the activity
        floor — clock trees and schedulers don't gate off."""
        joules = kernel_joules(TESLA_V100.power, 1.0, 0.0)
        assert joules == pytest.approx(
            TESLA_V100.power.peak_dynamic_w * IDLE_ACTIVITY_FLOOR
        )

    def test_monotone_in_utilisation(self):
        lo = kernel_joules(TESLA_V100.power, 1.0, 0.2)
        hi = kernel_joules(TESLA_V100.power, 1.0, 0.8)
        assert lo < hi

    def test_utilisation_clamped(self):
        capped = kernel_joules(TESLA_V100.power, 1.0, 5.0)
        assert capped == pytest.approx(TESLA_V100.power.peak_dynamic_w)

    def test_monotone_in_clock_scale(self):
        """Dynamic power follows the f^2 proxy: downclocking saves
        energy per second, upclocking costs it."""
        scales = [clock_power_scale(mhz, 1530.0) for mhz in (500.0, 1000.0, 1530.0)]
        joules = [kernel_joules(TESLA_V100.power, 1.0, 1.0, s) for s in scales]
        assert joules == sorted(joules)
        assert scales[-1] == 1.0

    def test_share_scales_linearly(self):
        full = kernel_joules(TESLA_V100.power, 1.0, 1.0, share=1.0)
        half = kernel_joules(TESLA_V100.power, 1.0, 1.0, share=0.5)
        assert half == pytest.approx(full / 2.0)


class TestHelpers:
    def test_transfer_joules(self):
        assert transfer_joules(15.0, 2.0) == 30.0

    def test_static_joules(self):
        assert static_joules(95.0, 2.0) == 190.0

    def test_edp(self):
        assert energy_delay_product(10.0, 0.5) == 5.0

    def test_clock_power_scale_guards_zero_nominal(self):
        assert clock_power_scale(1000.0, 0.0) == 1.0


# -- result-level invariants --------------------------------------------


@pytest.fixture(scope="module")
def cross_vendor_study():
    """Every app x every GPU model x all three platforms (bench scale)."""
    return run_study(
        ALL_APPS,
        configs=bench_configs(),
        models=("OpenCL", "C++ AMP", "OpenACC", "OpenMP Offload"),
        platforms=PLATFORMS,
    )


def test_energy_at_least_static_draw(cross_vendor_study):
    """Whole-run energy can never drop below the platform's idle draw
    integrated over the run: dynamic terms only add."""
    for entry in cross_vendor_study.entries:
        idle_w = platform_for(entry.platform_key).idle_watts
        assert entry.joules >= static_joules(idle_w, entry.seconds)
        assert entry.edp == entry.joules * entry.seconds


def test_every_cell_has_positive_energy(cross_vendor_study):
    assert cross_vendor_study.complete
    for entry in cross_vendor_study.entries:
        assert entry.joules > 0.0
        assert entry.edp > 0.0


def test_matrix_covers_all_platforms(cross_vendor_study):
    seen = {e.platform_key for e in cross_vendor_study.entries}
    assert seen == set(PLATFORMS)
    apps = {e.app for e in cross_vendor_study.entries}
    assert apps == set(APP_NAMES)


def test_downclocking_saves_energy_per_second():
    """Figure 7's knob, energy view: halving the V100 core clock cuts
    dynamic power ~4x, so per-kernel joules per second must drop."""
    from repro.apps.readmem import ReadMemConfig
    from repro.exec.executor import execute
    from repro.exec.plan import RunSpec

    config = ReadMemConfig(size=1 << 18)
    nominal = RunSpec("read-benchmark", "OpenMP Offload", "v100",
                      Precision.SINGLE, config, projection=True)
    slow = RunSpec("read-benchmark", "OpenMP Offload", "v100",
                   Precision.SINGLE, config, projection=True,
                   core_mhz=765.0, memory_mhz=877.0)
    (a, b), _stats = execute([nominal, slow], use_cache=False)
    assert a.result.counters.kernel_joules / a.result.seconds > \
        b.result.counters.kernel_joules / b.result.seconds


# -- scalar/vector differential -----------------------------------------


def test_energy_bit_identical_between_engines(cross_vendor_study):
    """The tentpole acceptance bar: joules and EDP (not just seconds)
    agree bit-for-bit between the scalar oracle and the columnar
    engine, across every app, model and platform."""
    vector = run_study(
        ALL_APPS,
        configs=bench_configs(),
        models=("OpenCL", "C++ AMP", "OpenACC", "OpenMP Offload"),
        platforms=PLATFORMS,
        engine="vector",
    )
    assert [e.__dict__ for e in vector.entries] == \
        [e.__dict__ for e in cross_vendor_study.entries]
    for v, s in zip(vector.entries, cross_vendor_study.entries):
        assert v.joules == s.joules
        assert v.edp == s.edp
