"""SingleFlightCache: thread-safe get_or_compute with coalescing."""

import threading
import time

import pytest

from repro.engine.memo import RESULT_CACHE, SingleFlightCache, clear_caches


def test_get_or_compute_caches_and_counts():
    cache = SingleFlightCache()
    calls = []
    assert cache.get_or_compute(("k",), lambda: calls.append(1) or 41) == 41
    assert cache.get_or_compute(("k",), lambda: calls.append(1) or 99) == 41
    assert len(calls) == 1
    stats = cache.snapshot()
    assert (stats.hits, stats.misses) == (1, 1)
    assert cache.coalesced == 0


def test_peek_does_not_compute_or_count_misses():
    cache = SingleFlightCache()
    found, value = cache.peek(("absent",))
    assert (found, value) == (False, None)
    assert cache.snapshot().misses == 0
    cache.get_or_compute(("present",), lambda: "v")
    found, value = cache.peek(("present",))
    assert (found, value) == (True, "v")
    assert cache.snapshot().hits == 1


def test_disabled_cache_always_computes():
    cache = SingleFlightCache(enabled=False)
    calls = []
    for _ in range(3):
        cache.get_or_compute(("k",), lambda: calls.append(1) or 7)
    assert len(calls) == 3
    assert len(cache) == 0


def test_concurrent_identical_requests_cost_one_compute():
    cache = SingleFlightCache()
    computes = []
    release = threading.Event()
    results = []

    def compute():
        computes.append(threading.get_ident())
        release.wait(timeout=5.0)
        return "value"

    def worker():
        results.append(cache.get_or_compute(("shared",), compute))

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    # Let every follower reach the event wait before the leader finishes.
    deadline = time.monotonic() + 5.0
    while cache.coalesced < 7 and time.monotonic() < deadline:
        time.sleep(0.001)
    release.set()
    for t in threads:
        t.join(timeout=5.0)
    assert results == ["value"] * 8
    assert len(computes) == 1, "single-flight ran the compute more than once"
    assert cache.coalesced == 7
    stats = cache.snapshot()
    assert stats.misses == 1 and stats.hits >= 0


def test_failed_leader_does_not_cache_and_follower_retries():
    cache = SingleFlightCache()
    attempts = []

    def failing():
        attempts.append("fail")
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        cache.get_or_compute(("k",), failing)
    assert len(cache) == 0
    # The next caller recomputes (failures are never cached).
    assert cache.get_or_compute(("k",), lambda: "ok") == "ok"
    assert len(attempts) == 1


def test_follower_recovers_from_leader_failure_under_contention():
    cache = SingleFlightCache()
    barrier = threading.Barrier(2)
    outcomes = []

    def flaky():
        # First compute fails; the retrying follower's compute succeeds.
        if not outcomes:
            outcomes.append("failed")
            barrier.wait(timeout=5.0)
            time.sleep(0.01)
            raise RuntimeError("transient")
        return "recovered"

    def leader():
        try:
            cache.get_or_compute(("k",), flaky)
        except RuntimeError:
            pass

    def follower():
        barrier.wait(timeout=5.0)
        outcomes.append(cache.get_or_compute(("k",), flaky))

    t1 = threading.Thread(target=leader)
    t2 = threading.Thread(target=follower)
    t1.start()
    t2.start()
    t1.join(timeout=5.0)
    t2.join(timeout=5.0)
    assert outcomes[-1] == "recovered"


def test_record_coalesced_merges_external_joins():
    cache = SingleFlightCache()
    cache.record_coalesced()
    cache.record_coalesced(3)
    assert cache.coalesced == 4


def test_clear_resets_coalesced_and_global_cache_participates():
    RESULT_CACHE.get_or_compute(("t", "x"), lambda: 1)
    RESULT_CACHE.record_coalesced()
    assert len(RESULT_CACHE) >= 1
    clear_caches()
    assert len(RESULT_CACHE) == 0
    assert RESULT_CACHE.coalesced == 0
    assert RESULT_CACHE.snapshot().lookups == 0
