"""Property-based differential tests for the columnar study engine.

Hypothesis drives randomized spec lattices — ragged axes, single-cell
batches, duplicate descriptors, degenerate problem geometries, clock
overrides — and asserts the two engine invariants directly:

* columnar pricing equals the scalar oracle, computed fresh with every
  memo cache disabled (so a wrong columnar value cannot launder itself
  through the shared cache), and
* cell order is presentation only: permuting a batch permutes the
  results and changes no bit of any of them.
"""

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import memo
from repro.engine.study_vec import price_specs
from repro.exec.plan import APU, DGPU, RunSpec
from repro.exec.retry import RetryPolicy, run_with_retry
from repro.hardware.specs import Precision

from .test_study_vec import result_fingerprint

#: Valid problem geometries per app: the sweep size plus degenerate
#: minima (smallest legal mesh/lattice/grid) and a ragged odd size.
def _config_menu():
    from repro.apps.comd.reference import CoMDConfig
    from repro.apps.lulesh.physics import LuleshConfig
    from repro.apps.minife.reference import MiniFEConfig
    from repro.apps.readmem.reference import ReadMemConfig
    from repro.apps.xsbench.reference import XSBenchConfig

    return {
        "read-benchmark": (
            ReadMemConfig(size=64),  # one block: minimal legal input
            ReadMemConfig(size=4096),
            ReadMemConfig(size=1 << 22),
        ),
        "LULESH": (
            LuleshConfig(size=2, iterations=1),  # smallest legal mesh
            LuleshConfig(size=7, iterations=2),
            LuleshConfig(size=32, iterations=3),
        ),
        "CoMD": (
            CoMDConfig(nx=6, ny=6, nz=6, steps=1),  # smallest legal lattice
            CoMDConfig(nx=6, ny=8, nz=10, steps=2),  # anisotropic box
            CoMDConfig(nx=12, ny=12, nz=12, steps=2),
        ),
        "XSBench": (
            # Minima: 2 grid points, one lookup per port chunk (ports
            # split lookups 4 ways; an empty chunk is a zero-size
            # kernel, which both engines reject identically).
            XSBenchConfig(n_nuclides=34, n_gridpoints=2, n_lookups=4),
            XSBenchConfig(n_nuclides=34, n_gridpoints=100, n_lookups=1000),
            XSBenchConfig(n_nuclides=34, n_gridpoints=1000, n_lookups=500_000),
        ),
        "miniFE": (
            MiniFEConfig(nx=2, ny=2, nz=2, cg_iterations=1),  # smallest legal mesh
            MiniFEConfig(nx=3, ny=5, nz=2, cg_iterations=3),
            MiniFEConfig(nx=32, ny=32, nz=32, cg_iterations=20),
        ),
    }


CONFIG_MENU = _config_menu()

#: Columnar-eligible models only (the tails have their own tests).
MODELS = ("OpenMP", "Serial", "OpenCL", "C++ AMP", "OpenACC")

#: Clock overrides: device defaults plus sweep-style corner points.
CLOCKS = ((None, None), (300.0, 600.0), (1000.0, 1250.0), (200.0, None))


@st.composite
def run_specs(draw):
    app = draw(st.sampled_from(sorted(CONFIG_MENU)))
    config = draw(st.sampled_from(CONFIG_MENU[app]))
    model = draw(st.sampled_from(MODELS))
    platform = draw(st.sampled_from((APU, DGPU)))
    precision = draw(st.sampled_from((Precision.SINGLE, Precision.DOUBLE)))
    core_mhz, memory_mhz = (
        draw(st.sampled_from(CLOCKS)) if platform == DGPU else (None, None)
    )
    return RunSpec(
        app, model, platform, precision, config,
        projection=True, core_mhz=core_mhz, memory_mhz=memory_mhz,
    )


#: Ragged by construction: sizes 1..6, duplicates allowed.
spec_batches = st.lists(run_specs(), min_size=1, max_size=6)


def scalar_oracle(spec):
    """The scalar engine's answer, computed fresh with no memo cache
    in the loop: every kernel priced from first principles."""
    with memo.cache_disabled():
        payload = run_with_retry(spec, RetryPolicy(max_attempts=1))
    assert not hasattr(payload, "kind"), f"oracle run failed: {payload}"
    return payload.result


@given(specs=spec_batches)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_lattice_matches_scalar_oracle(specs):
    results = price_specs(specs)
    assert len(results) == len(specs)
    for spec, result in zip(specs, results):
        assert result_fingerprint(result) == result_fingerprint(
            scalar_oracle(spec)
        ), spec.label


@given(specs=spec_batches, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_lattice_is_order_invariant(specs, seed):
    canonical = {
        spec.content_key(): result_fingerprint(result)
        for spec, result in zip(specs, price_specs(specs))
    }
    shuffled = list(specs)
    random.Random(seed).shuffle(shuffled)
    for spec, result in zip(shuffled, price_specs(shuffled)):
        assert result_fingerprint(result) == canonical[spec.content_key()], spec.label


@given(spec=run_specs())
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_single_cell_lattice(spec):
    """The degenerate one-cell lattice: one capture, one priced cell."""
    (result,) = price_specs([spec])
    assert result.app == spec.app
    assert result.model == spec.model
    assert result.seconds > 0.0
