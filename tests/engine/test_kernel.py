"""Kernel IR tests: op counts, access patterns, lowering containers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.kernel import (
    AccessKind,
    AccessPattern,
    KernelSpec,
    LoweredKernel,
    OpCount,
    hand_tuned,
    with_spec,
)


def make_spec(**overrides):
    kwargs = dict(
        name="test.kernel",
        work_items=1 << 16,
        ops=OpCount(flops=1e6, int_ops=1e5, bytes_read=4e6, bytes_written=1e6),
        access=AccessPattern(kind=AccessKind.STREAMING, working_set_bytes=5e6),
    )
    kwargs.update(overrides)
    return KernelSpec(**kwargs)


class TestOpCount:
    def test_totals(self):
        ops = OpCount(flops=10, int_ops=5, bytes_read=100, bytes_written=50)
        assert ops.total_bytes == 150
        assert ops.total_ops == 15

    def test_scaled(self):
        ops = OpCount(flops=10, bytes_read=100).scaled(3)
        assert ops.flops == 30
        assert ops.bytes_read == 300

    def test_add(self):
        combined = OpCount(flops=1, bytes_read=2) + OpCount(flops=3, bytes_written=4)
        assert combined.flops == 4
        assert combined.bytes_read == 2
        assert combined.bytes_written == 4

    def test_arithmetic_intensity(self):
        assert OpCount(flops=100, bytes_read=50).arithmetic_intensity() == pytest.approx(2.0)

    def test_intensity_with_no_bytes_is_infinite(self):
        assert OpCount(flops=1).arithmetic_intensity() == math.inf


class TestAccessPatternValidation:
    def test_zero_working_set_rejected(self):
        with pytest.raises(ValueError):
            AccessPattern(kind=AccessKind.STREAMING, working_set_bytes=0)

    def test_reuse_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            AccessPattern(kind=AccessKind.STENCIL, working_set_bytes=1e6, reuse_fraction=1.0)

    def test_row_buffer_range(self):
        with pytest.raises(ValueError):
            AccessPattern(kind=AccessKind.STREAMING, working_set_bytes=1e6, row_buffer_efficiency=0.0)

    def test_binary_search_needs_table_entries(self):
        pattern = AccessPattern(kind=AccessKind.BINARY_SEARCH, working_set_bytes=1e8)
        with pytest.raises(ValueError):
            pattern.traffic_multiplier(cache_bytes=1 << 20)


class TestTrafficMultipliers:
    CACHE = 768 * 1024

    def test_streaming_moves_what_it_uses(self):
        pattern = AccessPattern(kind=AccessKind.STREAMING, working_set_bytes=1e9)
        assert pattern.traffic_multiplier(self.CACHE) == pytest.approx(1.0)

    def test_stencil_reuse_filters_traffic(self):
        pattern = AccessPattern(
            kind=AccessKind.STENCIL, working_set_bytes=1e9, reuse_fraction=0.8
        )
        assert pattern.traffic_multiplier(self.CACHE) < 0.5

    def test_gather_pads_to_lines(self):
        pattern = AccessPattern(
            kind=AccessKind.BINARY_SEARCH,
            working_set_bytes=240e6,
            request_bytes=8,
            table_entries=1 << 20,
        )
        assert pattern.traffic_multiplier(self.CACHE) > 1.0

    def test_bigger_cache_means_less_search_traffic(self):
        pattern = AccessPattern(
            kind=AccessKind.BINARY_SEARCH,
            working_set_bytes=240e6,
            request_bytes=8,
            table_entries=1 << 20,
        )
        small = pattern.traffic_multiplier(768 * 1024)
        large = pattern.traffic_multiplier(4 * 1024 * 1024)
        assert large < small

    def test_stencil_has_least_traffic(self):
        """High-locality stencils (LULESH) must generate less DRAM
        traffic per useful byte than gather-heavy patterns."""
        stencil = AccessPattern(kind=AccessKind.STENCIL, working_set_bytes=1e9, reuse_fraction=0.82)
        neighbor = AccessPattern(
            kind=AccessKind.NEIGHBOR_LIST, working_set_bytes=1e9, request_bytes=16, reuse_fraction=0.35
        )
        search = AccessPattern(
            kind=AccessKind.BINARY_SEARCH, working_set_bytes=240e6, request_bytes=16,
            table_entries=1 << 20,
        )
        stencil_traffic = stencil.traffic_multiplier(self.CACHE)
        assert stencil_traffic < neighbor.traffic_multiplier(self.CACHE)
        assert stencil_traffic < search.traffic_multiplier(self.CACHE)


class TestKernelSpec:
    def test_instructions_from_explicit_per_item(self):
        spec = make_spec(instructions_per_item=10.0)
        assert spec.instructions == 10.0 * spec.work_items

    def test_instructions_fallback_from_ops(self):
        spec = make_spec()
        assert spec.instructions > 0

    def test_zero_work_items_rejected(self):
        with pytest.raises(ValueError):
            make_spec(work_items=0)

    @pytest.mark.parametrize("field,value", [
        ("lds_traffic_filter", 1.0),
        ("divergence", 1.0),
        ("unroll_benefit", -0.1),
        ("cpu_simd_fraction", 0.0),
    ])
    def test_fraction_validation(self, field, value):
        with pytest.raises(ValueError):
            make_spec(**{field: value})


class TestLoweredKernel:
    def test_hand_tuned_uses_everything(self):
        spec = make_spec(lds_bytes_per_workgroup=1024, lds_traffic_filter=0.5)
        lowered = hand_tuned(spec)
        assert lowered.vector_efficiency == 1.0
        assert lowered.uses_lds
        assert lowered.instruction_scale == 1.0

    def test_lds_filter_reduces_traffic(self):
        spec = make_spec(lds_bytes_per_workgroup=1024, lds_traffic_filter=0.5)
        with_lds = hand_tuned(spec).dram_traffic_bytes(768 * 1024)
        without = LoweredKernel(
            spec=spec, vector_efficiency=1.0, uses_lds=False,
            instruction_scale=1.0, divergence=0.0,
        ).dram_traffic_bytes(768 * 1024)
        assert with_lds == pytest.approx(without * 0.5)

    def test_instruction_scale_inflates(self):
        spec = make_spec(instructions_per_item=10.0)
        lowered = LoweredKernel(
            spec=spec, vector_efficiency=0.7, uses_lds=False,
            instruction_scale=1.5, divergence=0.0,
        )
        assert lowered.instructions == pytest.approx(spec.instructions * 1.5)

    def test_validation(self):
        spec = make_spec()
        with pytest.raises(ValueError):
            LoweredKernel(spec=spec, vector_efficiency=0.0, uses_lds=False,
                          instruction_scale=1.0, divergence=0.0)
        with pytest.raises(ValueError):
            LoweredKernel(spec=spec, vector_efficiency=1.0, uses_lds=False,
                          instruction_scale=0.5, divergence=0.0)
        with pytest.raises(ValueError):
            LoweredKernel(spec=spec, vector_efficiency=1.0, uses_lds=False,
                          instruction_scale=1.0, divergence=0.0, memory_efficiency=1.5)

    def test_with_spec_rebinds(self):
        lowered = hand_tuned(make_spec())
        bigger = make_spec(work_items=1 << 20)
        rebound = with_spec(lowered, bigger)
        assert rebound.spec is bigger
        assert rebound.vector_efficiency == lowered.vector_efficiency


@given(
    flops=st.floats(min_value=0, max_value=1e12),
    factor=st.floats(min_value=0.01, max_value=1e3),
)
@settings(max_examples=50, deadline=None)
def test_property_opcount_scaling_linear(flops, factor):
    ops = OpCount(flops=flops, bytes_read=2 * flops)
    scaled = ops.scaled(factor)
    assert scaled.flops == pytest.approx(flops * factor, rel=1e-9)
    assert scaled.total_bytes == pytest.approx(ops.total_bytes * factor, rel=1e-9)
