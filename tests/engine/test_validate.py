"""Analytic-vs-scheduler cross-validation over the real app kernels."""

import pytest

from repro.apps.comd import CoMDConfig
from repro.apps.comd import kernel_specs as comd_specs
from repro.apps.lulesh import LuleshConfig
from repro.apps.lulesh import kernel_specs as lulesh_specs
from repro.apps.minife import MiniFEConfig
from repro.apps.minife import kernel_specs as minife_specs
from repro.engine.validate import disagreements, validate_specs
from repro.hardware.specs import Precision

#: Scheduler vs analytic agreement band.  Tiny kernels hit launch
#: floors and quantization the analytic model smooths over, so the
#: band is generous; the point is catching order-of-magnitude drift.
TOLERANCE = 3.0


class TestAppKernels:
    def test_lulesh_kernels_agree(self):
        specs = lulesh_specs(LuleshConfig(size=48, iterations=1), Precision.SINGLE)
        points = validate_specs(specs)
        bad = disagreements(points, TOLERANCE)
        assert not bad, [(p.kernel, round(p.ratio, 2)) for p in bad]

    def test_comd_kernels_agree(self):
        specs = comd_specs(CoMDConfig(nx=24, ny=24, nz=24, steps=1), Precision.SINGLE)
        points = validate_specs(specs)
        bad = disagreements(points, TOLERANCE)
        assert not bad, [(p.kernel, round(p.ratio, 2)) for p in bad]

    def test_minife_kernels_agree(self):
        specs = minife_specs(MiniFEConfig(nx=48, ny=48, nz=48), Precision.SINGLE)
        points = validate_specs(specs)
        bad = disagreements(points, TOLERANCE)
        assert not bad, [(p.kernel, round(p.ratio, 2)) for p in bad]

    def test_double_precision_also_agrees(self):
        specs = comd_specs(CoMDConfig(nx=24, ny=24, nz=24, steps=1), Precision.DOUBLE)
        points = validate_specs(specs, precision=Precision.DOUBLE)
        assert not disagreements(points, TOLERANCE)


class TestValidationPoint:
    def test_ratio_and_agreement(self):
        from repro.engine.validate import ValidationPoint

        good = ValidationPoint(kernel="k", analytic_seconds=1.0, scheduled_seconds=1.2)
        assert good.agrees()
        bad = ValidationPoint(kernel="k", analytic_seconds=1.0, scheduled_seconds=10.0)
        assert not bad.agrees()
