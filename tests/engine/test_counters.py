"""Performance-counter accounting tests."""

import pytest

from repro.engine.counters import KernelRecord, PerfCounters


def record(name="k", seconds=1e-3, cycles=1e6, instructions=5e5, dram=1e6):
    return KernelRecord(
        name=name, seconds=seconds, cycles=cycles, instructions=instructions,
        dram_bytes=dram, limited_by="compute", device="test",
    )


class TestRecording:
    def test_kernel_accumulation(self):
        counters = PerfCounters()
        counters.record_kernel(record())
        counters.record_kernel(record(seconds=2e-3))
        assert counters.kernel_launches == 2
        assert counters.kernel_seconds == pytest.approx(3e-3)
        assert len(counters.kernels) == 2

    def test_transfer_accumulation(self):
        counters = PerfCounters()
        counters.record_transfer(1000, 1e-4, "h2d")
        counters.record_transfer(500, 5e-5, "d2h")
        assert counters.bytes_to_device == 1000
        assert counters.bytes_to_host == 500
        assert counters.transfers == 2
        assert counters.transfer_seconds == pytest.approx(1.5e-4)

    def test_total_seconds_sums_components(self):
        counters = PerfCounters()
        counters.record_kernel(record())
        counters.record_transfer(1000, 1e-4, "h2d")
        counters.host_seconds = 2e-4
        counters.launch_overhead_seconds = 1e-5
        assert counters.total_seconds == pytest.approx(1e-3 + 1e-4 + 2e-4 + 1e-5)

    def test_ipc(self):
        counters = PerfCounters()
        counters.record_kernel(record(cycles=1e6, instructions=5e5))
        assert counters.ipc == pytest.approx(0.5)

    def test_ipc_empty_is_zero(self):
        assert PerfCounters().ipc == 0.0


class TestMerge:
    def test_merge_sums_everything(self):
        a = PerfCounters()
        a.record_kernel(record())
        b = PerfCounters()
        b.record_transfer(100, 1e-5, "h2d")
        merged = a.merge(b)
        assert merged.kernel_launches == 1
        assert merged.transfers == 1
        assert merged.total_seconds == pytest.approx(a.total_seconds + b.total_seconds)

    def test_merge_keeps_kernel_records(self):
        a = PerfCounters()
        a.record_kernel(record(name="x"))
        b = PerfCounters()
        b.record_kernel(record(name="y"))
        merged = a.merge(b)
        assert [k.name for k in merged.kernels] == ["x", "y"]
