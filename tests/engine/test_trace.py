"""Trace-generation and cache-replay tests."""

import numpy as np
import pytest

from repro.engine.kernel import AccessKind, AccessPattern
from repro.engine.trace import generate_trace, replay_pattern
from repro.hardware.specs import R9_280X, CacheSpec


def pattern(kind, **overrides):
    kwargs = dict(working_set_bytes=8 * 1024 * 1024, request_bytes=4)
    kwargs.update(overrides)
    return AccessPattern(kind=kind, **kwargs)


class TestGeneration:
    def test_deterministic(self):
        p = pattern(AccessKind.NEIGHBOR_LIST, reuse_fraction=0.3)
        a = generate_trace(p)
        b = generate_trace(p)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("kind", list(AccessKind))
    def test_every_kind_generates_addresses(self, kind):
        overrides = {"table_entries": 1 << 16} if kind is AccessKind.BINARY_SEARCH else {}
        p = pattern(kind, **overrides)
        trace = generate_trace(p)
        assert len(trace) > 1000
        assert (trace >= 0).all()

    def test_streaming_is_sequential(self):
        trace = generate_trace(pattern(AccessKind.STREAMING))
        deltas = np.diff(trace)
        assert (deltas == 4).mean() > 0.95

    def test_binary_search_shares_the_root(self):
        p = pattern(AccessKind.BINARY_SEARCH, table_entries=1 << 14)
        trace = generate_trace(p, budget=3000)
        # Every lookup probes the table midpoint first, so the root is
        # by far the most frequent address of the trace.
        values, counts = np.unique(trace, return_counts=True)
        root_share = counts.max() / len(trace)
        assert root_share > 0.02  # ~1/(levels + data rows)


class TestReplay:
    CACHE = CacheSpec(size_bytes=768 * 1024, line_bytes=64, ways=16)

    def test_streaming_misses_once_per_line(self):
        result = replay_pattern(pattern(AccessKind.STREAMING), self.CACHE)
        assert result.miss_rate == pytest.approx(4 / 64, rel=0.3)

    def test_stencil_mostly_hits(self):
        result = replay_pattern(pattern(AccessKind.STENCIL, reuse_fraction=0.8), self.CACHE)
        assert result.miss_rate < 0.2

    def test_search_misses_a_lot(self):
        p = pattern(
            AccessKind.BINARY_SEARCH, working_set_bytes=240e6,
            request_bytes=16, table_entries=700_000,
        )
        result = replay_pattern(p, self.CACHE)
        assert result.miss_rate > 0.25

    def test_table1_ordering(self):
        """Measured miss rates must reproduce Table I's ordering:
        LULESH < CoMD < miniFE <= XSBench."""
        lulesh = replay_pattern(
            pattern(AccessKind.STENCIL, working_set_bytes=160e6, reuse_fraction=0.82),
            self.CACHE,
        ).miss_rate
        comd = replay_pattern(
            pattern(AccessKind.NEIGHBOR_LIST, working_set_bytes=40e6,
                    request_bytes=16, reuse_fraction=0.35),
            self.CACHE,
        ).miss_rate
        minife = replay_pattern(
            pattern(AccessKind.CSR_SPMV, working_set_bytes=300e6,
                    request_bytes=8, reuse_fraction=0.6),
            self.CACHE,
        ).miss_rate
        xsbench = replay_pattern(
            pattern(AccessKind.BINARY_SEARCH, working_set_bytes=240e6,
                    request_bytes=16, table_entries=700_000),
            self.CACHE,
        ).miss_rate
        assert lulesh < comd
        assert comd < xsbench
        assert minife < xsbench
        assert comd < minife

    def test_large_working_set_scales_cache(self):
        p = pattern(AccessKind.STREAMING, working_set_bytes=1e9)
        result = replay_pattern(p, self.CACHE)
        assert result.scale < 1.0
        assert 0 < result.miss_rate <= 1.0

    def test_gpu_l2_spec_usable(self):
        result = replay_pattern(pattern(AccessKind.STREAMING), R9_280X.l2_cache)
        assert result.stats.accesses > 0
