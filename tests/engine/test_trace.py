"""Trace-generation and cache-replay tests."""

import numpy as np
import pytest

from repro.engine.kernel import AccessKind, AccessPattern
from repro.engine.trace import generate_trace, replay_pattern
from repro.hardware.specs import R9_280X, CacheSpec


def pattern(kind, **overrides):
    kwargs = dict(working_set_bytes=8 * 1024 * 1024, request_bytes=4)
    kwargs.update(overrides)
    return AccessPattern(kind=kind, **kwargs)


class TestGeneration:
    def test_deterministic(self):
        p = pattern(AccessKind.NEIGHBOR_LIST, reuse_fraction=0.3)
        a = generate_trace(p)
        b = generate_trace(p)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("kind", list(AccessKind))
    def test_every_kind_generates_addresses(self, kind):
        overrides = {"table_entries": 1 << 16} if kind is AccessKind.BINARY_SEARCH else {}
        p = pattern(kind, **overrides)
        trace = generate_trace(p)
        assert len(trace) > 1000
        assert (trace >= 0).all()

    def test_streaming_is_sequential(self):
        trace = generate_trace(pattern(AccessKind.STREAMING))
        deltas = np.diff(trace)
        assert (deltas == 4).mean() > 0.95

    def test_binary_search_shares_the_root(self):
        p = pattern(AccessKind.BINARY_SEARCH, table_entries=1 << 14)
        trace = generate_trace(p, budget=3000)
        # Every lookup probes the table midpoint first, so the root is
        # by far the most frequent address of the trace.
        values, counts = np.unique(trace, return_counts=True)
        root_share = counts.max() / len(trace)
        assert root_share > 0.02  # ~1/(levels + data rows)


class TestReplay:
    CACHE = CacheSpec(size_bytes=768 * 1024, line_bytes=64, ways=16)

    def test_streaming_misses_once_per_line(self):
        result = replay_pattern(pattern(AccessKind.STREAMING), self.CACHE)
        assert result.miss_rate == pytest.approx(4 / 64, rel=0.3)

    def test_stencil_mostly_hits(self):
        result = replay_pattern(pattern(AccessKind.STENCIL, reuse_fraction=0.8), self.CACHE)
        assert result.miss_rate < 0.2

    def test_search_misses_a_lot(self):
        p = pattern(
            AccessKind.BINARY_SEARCH, working_set_bytes=240e6,
            request_bytes=16, table_entries=700_000,
        )
        result = replay_pattern(p, self.CACHE)
        assert result.miss_rate > 0.25

    def test_table1_ordering(self):
        """Measured miss rates must reproduce Table I's ordering:
        LULESH < CoMD < miniFE <= XSBench."""
        lulesh = replay_pattern(
            pattern(AccessKind.STENCIL, working_set_bytes=160e6, reuse_fraction=0.82),
            self.CACHE,
        ).miss_rate
        comd = replay_pattern(
            pattern(AccessKind.NEIGHBOR_LIST, working_set_bytes=40e6,
                    request_bytes=16, reuse_fraction=0.35),
            self.CACHE,
        ).miss_rate
        minife = replay_pattern(
            pattern(AccessKind.CSR_SPMV, working_set_bytes=300e6,
                    request_bytes=8, reuse_fraction=0.6),
            self.CACHE,
        ).miss_rate
        xsbench = replay_pattern(
            pattern(AccessKind.BINARY_SEARCH, working_set_bytes=240e6,
                    request_bytes=16, table_entries=700_000),
            self.CACHE,
        ).miss_rate
        assert lulesh < comd
        assert comd < xsbench
        assert minife < xsbench
        assert comd < minife

    def test_large_working_set_scales_cache(self):
        p = pattern(AccessKind.STREAMING, working_set_bytes=1e9)
        result = replay_pattern(p, self.CACHE)
        assert result.scale < 1.0
        assert 0 < result.miss_rate <= 1.0

    def test_gpu_l2_spec_usable(self):
        result = replay_pattern(pattern(AccessKind.STREAMING), R9_280X.l2_cache)
        assert result.stats.accesses > 0


class TestEngines:
    CACHE = CacheSpec(size_bytes=768 * 1024, line_bytes=64, ways=16)

    @pytest.mark.parametrize("kind", list(AccessKind))
    def test_vector_and_scalar_bit_identical(self, kind):
        from repro.engine.memo import cache_disabled

        overrides = {"table_entries": 1 << 14} if kind is AccessKind.BINARY_SEARCH else {}
        p = pattern(kind, **overrides)
        with cache_disabled():
            vector = replay_pattern(p, self.CACHE, budget=20_000, engine="vector")
            scalar = replay_pattern(p, self.CACHE, budget=20_000, engine="scalar")
        assert vector.stats == scalar.stats
        assert vector.scale == scalar.scale

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="replay engine"):
            replay_pattern(pattern(AccessKind.STREAMING), self.CACHE, engine="quantum")


class TestTraceMemo:
    CACHE = CacheSpec(size_bytes=768 * 1024, line_bytes=64, ways=16)

    def test_repeat_replay_hits_the_memo(self):
        from repro.engine.memo import TRACE_CACHE

        p = pattern(AccessKind.STENCIL, working_set_bytes=1 << 20)
        TRACE_CACHE.clear()
        before = TRACE_CACHE.snapshot()
        first = replay_pattern(p, self.CACHE, budget=10_000)
        second = replay_pattern(p, self.CACHE, budget=10_000)
        delta = TRACE_CACHE.snapshot().since(before)
        assert (delta.hits, delta.misses) == (1, 1)
        assert second is first  # the memo returns the stored result

    def test_key_distinguishes_content(self):
        from repro.engine.memo import TRACE_CACHE

        p = pattern(AccessKind.STENCIL, working_set_bytes=1 << 20)
        TRACE_CACHE.clear()
        before = TRACE_CACHE.snapshot()
        replay_pattern(p, self.CACHE, budget=10_000)
        replay_pattern(p, self.CACHE, budget=12_000)  # different budget
        replay_pattern(pattern(AccessKind.STREAMING, working_set_bytes=1 << 20),
                       self.CACHE, budget=10_000)
        delta = TRACE_CACHE.snapshot().since(before)
        assert (delta.hits, delta.misses) == (0, 3)

    def test_cache_disabled_is_bit_identical(self):
        from repro.engine.memo import TRACE_CACHE, cache_disabled

        p = pattern(AccessKind.NEIGHBOR_LIST, reuse_fraction=0.3)
        memoized = replay_pattern(p, self.CACHE, budget=10_000)
        with cache_disabled():
            recomputed = replay_pattern(p, self.CACHE, budget=10_000)
            assert recomputed is not memoized
        assert recomputed.stats == memoized.stats

    def test_engine_not_part_of_key(self):
        """Either engine may serve the other's lookups — they are
        asserted bit-identical, so this can never change a result."""
        from repro.engine.memo import TRACE_CACHE

        p = pattern(AccessKind.STREAMING, working_set_bytes=1 << 20)
        TRACE_CACHE.clear()
        replay_pattern(p, self.CACHE, budget=10_000, engine="scalar")
        before = TRACE_CACHE.snapshot()
        replay_pattern(p, self.CACHE, budget=10_000, engine="vector")
        assert TRACE_CACHE.snapshot().since(before).hits == 1


class TestCrossProcessDeterminism:
    def test_trace_stable_across_hash_seeds(self):
        """Trace seeding must not depend on Python's salted ``hash()``:
        the same pattern generates the identical trace in subprocesses
        with different PYTHONHASHSEED values."""
        import os
        import subprocess
        import sys

        script = (
            "import zlib, numpy as np\n"
            "from repro.engine.kernel import AccessKind, AccessPattern\n"
            "from repro.engine.trace import generate_trace\n"
            "p = AccessPattern(kind=AccessKind.NEIGHBOR_LIST,"
            " working_set_bytes=1 << 20, request_bytes=4, reuse_fraction=0.3)\n"
            "t = generate_trace(p, budget=5000)\n"
            "print(zlib.crc32(t.tobytes()))\n"
        )
        digests = set()
        for seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
                + env.get("PYTHONPATH", "").split(os.pathsep)
            )
            out = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1
