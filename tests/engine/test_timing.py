"""Timing-model tests: roofline sides, clock scaling, precision."""

import pytest

from repro.engine.kernel import AccessKind, AccessPattern, KernelSpec, LoweredKernel, OpCount, hand_tuned
from repro.engine.timing import (
    cpu_stream_efficiency,
    cpu_vector_rate,
    time_cpu_kernel,
    time_gpu_kernel,
)
from repro.hardware.device import CPUDevice, GPUDevice
from repro.hardware.specs import A10_7850K_CPU, A10_7850K_GPU, R9_280X, Precision


def streaming_spec(n=1 << 22, flops_per_item=1.0, ebytes=4):
    return KernelSpec(
        name="t.streaming",
        work_items=n,
        ops=OpCount(flops=flops_per_item * n, bytes_read=float(ebytes * n), bytes_written=float(ebytes * n)),
        access=AccessPattern(kind=AccessKind.STREAMING, working_set_bytes=float(2 * ebytes * n)),
        instructions_per_item=4.0,
    )


def compute_spec(n=1 << 20, flops_per_item=2000.0):
    return KernelSpec(
        name="t.compute",
        work_items=n,
        ops=OpCount(flops=flops_per_item * n, bytes_read=float(4 * n), bytes_written=float(4 * n)),
        access=AccessPattern(kind=AccessKind.STREAMING, working_set_bytes=float(8 * n)),
        instructions_per_item=flops_per_item / 2,
    )


class TestGPURoofline:
    def test_streaming_kernel_is_memory_bound(self):
        timing = time_gpu_kernel(hand_tuned(streaming_spec()), GPUDevice(spec=R9_280X), Precision.SINGLE)
        assert timing.limited_by == "memory"

    def test_flop_heavy_kernel_is_compute_bound(self):
        timing = time_gpu_kernel(hand_tuned(compute_spec()), GPUDevice(spec=R9_280X), Precision.SINGLE)
        assert timing.limited_by == "compute"

    def test_memory_bound_time_matches_bandwidth(self):
        spec = streaming_spec()
        timing = time_gpu_kernel(hand_tuned(spec), GPUDevice(spec=R9_280X), Precision.SINGLE)
        ideal = spec.ops.total_bytes / (258e9 * 0.95)
        assert timing.seconds == pytest.approx(ideal, rel=0.2)

    def test_tiny_kernel_hits_floor(self):
        spec = streaming_spec(n=256)
        timing = time_gpu_kernel(hand_tuned(spec), GPUDevice(spec=R9_280X), Precision.SINGLE)
        assert timing.limited_by == "floor"


class TestClockScaling:
    def test_memory_bound_scales_with_memory_clock(self):
        gpu = GPUDevice(spec=R9_280X)
        spec = streaming_spec()
        base = time_gpu_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds
        gpu.memory_clock.set(625.0)
        slow = time_gpu_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds
        assert slow == pytest.approx(2 * base, rel=0.01)

    def test_memory_bound_ignores_core_clock(self):
        gpu = GPUDevice(spec=R9_280X)
        spec = streaming_spec()
        base = time_gpu_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds
        gpu.core_clock.set(500.0)
        assert time_gpu_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds == pytest.approx(base, rel=0.05)

    def test_compute_bound_scales_with_core_clock(self):
        gpu = GPUDevice(spec=R9_280X)
        spec = compute_spec()
        base = time_gpu_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds
        gpu.core_clock.set(462.5)
        slow = time_gpu_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds
        assert slow == pytest.approx(2 * base, rel=0.01)


class TestPrecision:
    def test_double_precision_slower_for_compute(self):
        gpu = GPUDevice(spec=R9_280X)
        spec = compute_spec()
        sp = time_gpu_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds
        dp = time_gpu_kernel(hand_tuned(spec), gpu, Precision.DOUBLE).seconds
        assert dp > 2.5 * sp  # Tahiti: 1/4 DP rate

    def test_dp_penalty_worse_on_apu(self):
        """Kaveri's 1/16 DP rate must hurt more than Tahiti's 1/4."""
        spec = compute_spec()
        tahiti = GPUDevice(spec=R9_280X)
        kaveri = GPUDevice(spec=A10_7850K_GPU)
        tahiti_ratio = (
            time_gpu_kernel(hand_tuned(spec), tahiti, Precision.DOUBLE).seconds
            / time_gpu_kernel(hand_tuned(spec), tahiti, Precision.SINGLE).seconds
        )
        kaveri_ratio = (
            time_gpu_kernel(hand_tuned(spec), kaveri, Precision.DOUBLE).seconds
            / time_gpu_kernel(hand_tuned(spec), kaveri, Precision.SINGLE).seconds
        )
        assert kaveri_ratio > 2 * tahiti_ratio


class TestLoweringEffects:
    def test_lower_vector_efficiency_slows_compute(self):
        gpu = GPUDevice(spec=R9_280X)
        spec = compute_spec()
        fast = time_gpu_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds
        slow = time_gpu_kernel(
            LoweredKernel(spec=spec, vector_efficiency=0.5, uses_lds=False,
                          instruction_scale=1.0, divergence=0.0),
            gpu, Precision.SINGLE,
        ).seconds
        assert slow == pytest.approx(2 * fast, rel=0.05)

    def test_lower_memory_efficiency_slows_streaming(self):
        gpu = GPUDevice(spec=R9_280X)
        spec = streaming_spec()
        fast = time_gpu_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds
        slow = time_gpu_kernel(
            LoweredKernel(spec=spec, vector_efficiency=1.0, uses_lds=False,
                          instruction_scale=1.0, divergence=0.0, memory_efficiency=0.5),
            gpu, Precision.SINGLE,
        ).seconds
        assert slow == pytest.approx(2 * fast, rel=0.05)

    def test_divergence_slows_compute(self):
        gpu = GPUDevice(spec=R9_280X)
        spec = compute_spec()
        fast = time_gpu_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds
        slow = time_gpu_kernel(
            LoweredKernel(spec=spec, vector_efficiency=1.0, uses_lds=False,
                          instruction_scale=1.0, divergence=0.5),
            gpu, Precision.SINGLE,
        ).seconds
        assert slow > 1.8 * fast


class TestScatterLatency:
    def scatter_spec(self):
        return KernelSpec(
            name="t.search",
            work_items=1 << 20,
            ops=OpCount(flops=100.0 * (1 << 20), bytes_read=1e9, bytes_written=4e6),
            access=AccessPattern(
                kind=AccessKind.BINARY_SEARCH, working_set_bytes=240e6,
                request_bytes=16, table_entries=1 << 20, row_buffer_efficiency=0.8,
            ),
            instructions_per_item=300.0,
        )

    def test_scatter_kernel_scales_with_core_clock(self):
        """The Figure 7d mechanism: latency-bound lookups speed up with
        the core clock because most of the latency is on-chip."""
        gpu = GPUDevice(spec=R9_280X)
        spec = self.scatter_spec()
        base = time_gpu_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds
        gpu.core_clock.set(200.0)
        slow = time_gpu_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds
        assert slow > 1.5 * base

    def test_scatter_kernel_nearly_flat_in_memory_clock(self):
        gpu = GPUDevice(spec=R9_280X)
        spec = self.scatter_spec()
        base = time_gpu_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds
        gpu.memory_clock.set(920.0)
        mid = time_gpu_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds
        assert mid < 1.35 * base


class TestCPUTiming:
    def test_threads_speed_up_compute(self):
        cpu = CPUDevice(spec=A10_7850K_CPU)
        spec = compute_spec(n=1 << 18)
        one = time_cpu_kernel(spec, cpu, Precision.SINGLE, threads=1).seconds
        four = time_cpu_kernel(spec, cpu, Precision.SINGLE, threads=4).seconds
        assert one / four == pytest.approx(4.0, rel=0.05)

    def test_memory_bound_thread_scaling_sublinear(self):
        cpu = CPUDevice(spec=A10_7850K_CPU)
        spec = streaming_spec()
        one = time_cpu_kernel(spec, cpu, Precision.SINGLE, threads=1).seconds
        four = time_cpu_kernel(spec, cpu, Precision.SINGLE, threads=4).seconds
        assert 1.5 < one / four < 4.0

    def test_threads_clamped_to_cores(self):
        cpu = CPUDevice(spec=A10_7850K_CPU)
        spec = compute_spec(n=1 << 18)
        four = time_cpu_kernel(spec, cpu, Precision.SINGLE, threads=4).seconds
        sixteen = time_cpu_kernel(spec, cpu, Precision.SINGLE, threads=16).seconds
        assert four == sixteen

    def test_invalid_threads_rejected(self):
        with pytest.raises(ValueError):
            time_cpu_kernel(compute_spec(), CPUDevice(spec=A10_7850K_CPU), Precision.SINGLE, threads=0)

    def test_poor_vectorization_slows_cpu(self):
        cpu = CPUDevice(spec=A10_7850K_CPU)
        good = compute_spec()
        bad = KernelSpec(
            name="t.scalar", work_items=good.work_items, ops=good.ops, access=good.access,
            instructions_per_item=good.instructions_per_item, cpu_simd_fraction=0.1,
        )
        assert (
            cpu_vector_rate(cpu, bad, Precision.SINGLE, 4)
            < 0.3 * cpu_vector_rate(cpu, good, Precision.SINGLE, 4)
        )

    def test_stream_efficiency_saturates(self):
        assert cpu_stream_efficiency(1) < cpu_stream_efficiency(2)
        assert cpu_stream_efficiency(4) == cpu_stream_efficiency(8)


class TestIPCBehaviour:
    def test_memory_bound_kernel_has_low_ipc(self):
        """Instructions per cycle collapses when the kernel stalls on
        DRAM — the Table I signature of XSBench."""
        gpu = GPUDevice(spec=R9_280X)
        lat = time_gpu_kernel(hand_tuned(TestScatterLatency().scatter_spec()), gpu, Precision.SINGLE)
        cmp = time_gpu_kernel(hand_tuned(compute_spec()), gpu, Precision.SINGLE)
        ipc_lat = lat.instructions / lat.cycles
        ipc_cmp = cmp.instructions / cmp.cycles
        assert ipc_lat < ipc_cmp
