"""Runtime-overhead constant tests."""

import pytest

from repro.engine.launch import (
    CPPAMP_APU,
    CPPAMP_DGPU,
    HC_APU,
    OPENACC_DGPU,
    OPENCL_APU,
    OPENCL_DGPU,
    RuntimeOverheads,
)


class TestLaunchCost:
    def test_components(self):
        overheads = RuntimeOverheads(kernel_launch_s=1e-5, per_buffer_s=1e-6, per_mapped_byte_s=1e-12)
        cost = overheads.launch_cost(n_buffers=3, mapped_bytes=1_000_000)
        assert cost == pytest.approx(1e-5 + 3e-6 + 1e-6)

    def test_no_buffers(self):
        overheads = RuntimeOverheads(kernel_launch_s=5e-6, per_buffer_s=1e-6)
        assert overheads.launch_cost(0) == pytest.approx(5e-6)


class TestStackOrdering:
    def test_hsa_dispatch_cheapest(self):
        """The HSA user-mode queues (CLAMP on APU, HC) dispatch faster
        than the Catalyst driver paths."""
        assert CPPAMP_APU.kernel_launch_s < CPPAMP_DGPU.kernel_launch_s
        assert HC_APU.kernel_launch_s <= CPPAMP_APU.kernel_launch_s

    def test_opencl_apu_pays_mapping_toll(self):
        """Catalyst's cl_mem path maps buffers even on unified memory."""
        assert OPENCL_APU.per_mapped_byte_s > 0
        assert OPENCL_DGPU.per_mapped_byte_s == 0

    def test_pgi_runtime_heaviest(self):
        assert OPENACC_DGPU.kernel_launch_s >= OPENCL_DGPU.kernel_launch_s
