"""Differential tests: the columnar study engine vs the scalar oracle.

The acceptance property of :mod:`repro.engine.study_vec` is *bit*
identity: the lowered spec-lattice pricing must reproduce the scalar
executor's results exactly — seconds, every counter, every kernel
record — with ``==``, no tolerance.  These tests run the full study
matrix (including the Serial and Heterogeneous Compute cells the
columnar engine must delegate) through both engines from cold caches
and compare everything observable, then probe the seams: quarantine
holes, clock-override sweeps, the batched pricers, capture memoization
and the projection-stub cache.
"""

import random

import numpy as np
import pytest

from repro.apps import ALL_APPS, APPS_BY_NAME
from repro.core.configs import sweep_configs
from repro.core.study import run_study
from repro.engine import memo
from repro.engine.study_vec import (
    VECTOR_MODELS,
    capture_program,
    execute_vector,
    price_specs,
    vector_eligible,
)
from repro.engine.timing import time_cpu_kernel, time_gpu_kernel
from repro.engine.timing_vec import time_cpu_kernel_batch, time_gpu_kernel_batch
from repro.exec.executor import execute, execute_with_engine
from repro.exec.plan import DGPU, RunSpec, study_runs, sweep_runs
from repro.exec.retry import RetryPolicy
from repro.hardware.device import make_platform
from repro.hardware.specs import Precision

#: Every model of the comparison, including the two columnar-ineligible
#: tails: Serial folds fine, Heterogeneous Compute is a two-queue
#: makespan and must be delegated to the scalar engine.
ALL_MODELS = ("Serial", "OpenCL", "C++ AMP", "OpenACC", "Heterogeneous Compute")

#: Every numeric field of :class:`repro.engine.counters.PerfCounters`.
COUNTER_FIELDS = (
    "kernel_seconds",
    "transfer_seconds",
    "host_seconds",
    "launch_overhead_seconds",
    "instructions",
    "cycles",
    "flops",
    "dram_bytes",
    "bytes_to_device",
    "bytes_to_host",
    "kernel_launches",
    "transfers",
)


def full_matrix():
    """The whole-study matrix at sweep sizes: 5 apps x 2 platforms x
    2 precisions x (OpenMP baseline + 5 models) = 120 cells."""
    return study_runs(
        app_names=[app.name for app in ALL_APPS],
        configs=dict(sweep_configs()),
        apu_values=(True, False),
        precisions=(Precision.SINGLE, Precision.DOUBLE),
        models=ALL_MODELS,
        baseline="OpenMP",
        projection=True,
    )


def result_fingerprint(result):
    """Every observable field of one run result, exactly."""
    return {
        "app": result.app,
        "model": result.model,
        "platform": result.platform,
        "precision": result.precision,
        "seconds": result.seconds,
        "kernel_seconds": result.kernel_seconds,
        "checksum": result.checksum,
        "counters": {
            name: getattr(result.counters, name) for name in COUNTER_FIELDS
        },
        "kernels": [vars(record) for record in result.counters.kernels],
    }


def outcome_fingerprint(outcome):
    fp = result_fingerprint(outcome.result)
    fp["label"] = outcome.spec.label
    return fp


@pytest.fixture(scope="module")
def matrix_pair():
    """The full matrix through both engines, each from cold caches."""
    runs = full_matrix()
    memo.clear_caches()
    scalar = execute(runs)
    memo.clear_caches()
    vector = execute_vector(runs)
    memo.clear_caches()
    return runs, scalar, vector


def test_full_matrix_bit_identical(matrix_pair):
    runs, (scalar_outcomes, scalar_stats), (vector_outcomes, vector_stats) = matrix_pair
    assert len(scalar_outcomes) == len(vector_outcomes) == len(runs)
    assert not scalar_stats.failures and not vector_stats.failures
    for spec, left, right in zip(runs, scalar_outcomes, vector_outcomes):
        assert outcome_fingerprint(left) == outcome_fingerprint(right), spec.label


def test_matrix_covers_both_engine_paths(matrix_pair):
    """The fixture matrix genuinely exercises the columnar fold *and*
    the scalar delegation tail."""
    runs, _scalar, _vector = matrix_pair
    assert any(vector_eligible(spec) for spec in runs)
    assert any(not vector_eligible(spec) for spec in runs)
    assert any(spec.model == "Heterogeneous Compute" for spec in runs)


def test_run_study_engines_agree_end_to_end():
    """Whole-pipeline check: entries, speedups and breakdown inputs of
    ``run_study`` match field-for-field across engines."""
    apps = (APPS_BY_NAME["read-benchmark"], APPS_BY_NAME["LULESH"])
    memo.clear_caches()
    scalar = run_study(apps, configs=dict(sweep_configs()), engine="scalar")
    memo.clear_caches()
    vector = run_study(apps, configs=dict(sweep_configs()), engine="vector")
    assert [entry.__dict__ for entry in vector.entries] == [
        entry.__dict__ for entry in scalar.entries
    ]
    for entry in scalar.entries:
        twin = vector.get(entry.app, entry.model, entry.apu, entry.precision)
        assert twin.speedup == entry.speedup
        assert twin.kernel_speedup == entry.kernel_speedup


def test_one_capture_per_schedule_signature():
    """An entire eligible matrix costs one port capture per distinct
    schedule signature — the lowering's whole point."""
    runs = [spec for spec in full_matrix() if vector_eligible(spec)]
    memo.clear_caches()
    execute_vector(runs)
    assert memo.PLAN_CACHE.snapshot().misses == len(
        {spec.schedule_key() for spec in runs}
    )


def test_scalar_engine_served_by_vector_cache():
    """Columnar pricing stores under the scalar keys: a scalar rerun
    over a vector-warmed cache misses nothing and agrees exactly."""
    runs = [spec for spec in full_matrix() if vector_eligible(spec)]
    memo.clear_caches()
    vector_outcomes, _ = execute_vector(runs)
    before = memo.KERNEL_CACHE.snapshot()
    scalar_outcomes, _ = execute(runs)
    delta = memo.KERNEL_CACHE.snapshot().since(before)
    assert delta.misses == 0
    assert delta.hits > 0
    for left, right in zip(vector_outcomes, scalar_outcomes):
        assert outcome_fingerprint(left) == outcome_fingerprint(right)
    memo.clear_caches()


def test_sweep_clock_overrides_share_one_capture():
    """Frequency-sweep cells differ only in clock overrides: the whole
    grid prices from one capture, bit-identical to scalar simulation."""
    config = sweep_configs()["XSBench"]
    runs = sweep_runs(
        "XSBench", config, Precision.SINGLE, (300.0, 547.0, 1000.0), (600.0, 1250.0), "OpenCL"
    )
    memo.clear_caches()
    scalar_outcomes, _ = execute(runs)
    memo.clear_caches()
    vector_outcomes, _ = execute_vector(runs)
    assert memo.PLAN_CACHE.snapshot().misses == 1
    for spec, left, right in zip(runs, scalar_outcomes, vector_outcomes):
        assert outcome_fingerprint(left) == outcome_fingerprint(right), spec.label
    # Distinct clock points must actually price differently (otherwise
    # the overrides were silently dropped somewhere).
    seconds = {o.result.seconds for o in vector_outcomes}
    assert len(seconds) == len(runs)
    memo.clear_caches()


def test_quarantine_holes_match_scalar(monkeypatch):
    """A port that dies leaves the same holes either way: capture
    failure falls back to the scalar ladder, the ladder fails too, and
    the study reassembles around the ``None`` slots without raising."""

    def boom(ctx, config):
        raise RuntimeError("injected port failure")

    monkeypatch.setitem(APPS_BY_NAME["XSBench"].ports, "OpenCL", boom)
    apps = (APPS_BY_NAME["read-benchmark"], APPS_BY_NAME["XSBench"])
    policy = RetryPolicy(max_attempts=1)
    results = {}
    for engine in ("scalar", "vector"):
        memo.clear_caches()
        results[engine] = run_study(
            apps,
            configs=dict(sweep_configs()),
            models=("OpenCL", "OpenACC"),
            policy=policy,
            engine=engine,
        )
    scalar, vector = results["scalar"], results["vector"]
    assert not scalar.complete and not vector.complete
    assert [entry.__dict__ for entry in vector.entries] == [
        entry.__dict__ for entry in scalar.entries
    ]
    # Every surviving XSBench entry is OpenACC; the OpenCL cells are holes.
    assert all(
        entry.model == "OpenACC" for entry in vector.entries if entry.app == "XSBench"
    )
    assert {(f.label, f.kind, f.message) for f in vector.failures} == {
        (f.label, f.kind, f.message) for f in scalar.failures
    }
    assert len(vector.failures) == 4  # 2 platforms x 2 precisions
    memo.clear_caches()


@pytest.mark.parametrize("app_name", ["read-benchmark", "LULESH", "CoMD", "XSBench", "miniFE"])
def test_batched_gpu_pricer_matches_scalar(app_name):
    """``time_gpu_kernel_batch`` equals per-atom ``time_gpu_kernel``
    exactly, for every captured atom of every app's OpenCL schedule."""
    spec = RunSpec(app_name, "OpenCL", DGPU, Precision.SINGLE, sweep_configs()[app_name])
    program = capture_program(spec)
    lowereds = [atom[1] for atom in program.atoms if atom[0] == "gpu"]
    assert lowereds
    gpu = make_platform(apu=False).gpu
    batch = time_gpu_kernel_batch(lowereds, gpu, Precision.SINGLE)
    assert batch == [
        time_gpu_kernel(lowered, gpu, Precision.SINGLE) for lowered in lowereds
    ]


@pytest.mark.parametrize("app_name", ["read-benchmark", "LULESH", "CoMD", "XSBench", "miniFE"])
def test_batched_cpu_pricer_matches_scalar(app_name):
    """``time_cpu_kernel_batch`` equals per-spec ``time_cpu_kernel``
    for every captured atom of the OpenMP baseline schedule."""
    spec = RunSpec(app_name, "OpenMP", DGPU, Precision.DOUBLE, sweep_configs()[app_name])
    program = capture_program(spec)
    by_threads = {}
    for atom in program.atoms:
        if atom[0] == "cpu":
            by_threads.setdefault(atom[2], []).append(atom[1])
    assert by_threads
    host = make_platform(apu=False).host
    for threads, specs in by_threads.items():
        batch = time_cpu_kernel_batch(specs, host, Precision.DOUBLE, threads=threads)
        assert batch == [
            time_cpu_kernel(s, host, Precision.DOUBLE, threads=threads) for s in specs
        ]


def test_price_specs_rejects_ineligible():
    config = sweep_configs()["LULESH"]
    hc = RunSpec("LULESH", "Heterogeneous Compute", DGPU, Precision.SINGLE, config)
    functional = RunSpec("LULESH", "OpenCL", DGPU, Precision.SINGLE, config, projection=False)
    for spec in (hc, functional):
        with pytest.raises(ValueError):
            price_specs([spec])


def test_price_specs_order_invariant():
    """Cell order is presentation, not semantics: a shuffled batch
    returns the permuted results, each bit-identical per spec."""
    specs = [
        spec
        for spec in full_matrix()
        if vector_eligible(spec) and spec.app in ("read-benchmark", "XSBench")
    ]
    canonical = {
        spec.content_key(): result_fingerprint(result)
        for spec, result in zip(specs, price_specs(specs))
    }
    shuffled = list(specs)
    random.Random(2015).shuffle(shuffled)
    for spec, result in zip(shuffled, price_specs(shuffled)):
        assert result_fingerprint(result) == canonical[spec.content_key()], spec.label


def test_functional_cells_delegate_to_scalar():
    """``projection=False`` cells run the numerics; the vector engine
    must hand them to the scalar executor untouched."""
    config = sweep_configs()["read-benchmark"]
    runs = [
        RunSpec("read-benchmark", model, DGPU, Precision.SINGLE, config, projection=False)
        for model in ("OpenMP", "OpenCL")
    ]
    memo.clear_caches()
    scalar_outcomes, _ = execute(runs)
    memo.clear_caches()
    vector_outcomes, _ = execute_vector(runs)
    for left, right in zip(scalar_outcomes, vector_outcomes):
        assert outcome_fingerprint(left) == outcome_fingerprint(right)
    memo.clear_caches()


def test_uncached_vector_run_identical(matrix_pair):
    """``use_cache=False`` changes wall time, never values."""
    runs, (scalar_outcomes, _), _vector = matrix_pair
    uncached_outcomes, uncached_stats = execute_vector(runs, use_cache=False)
    assert uncached_stats.cache_hits == 0
    for left, right in zip(scalar_outcomes, uncached_outcomes):
        assert outcome_fingerprint(left) == outcome_fingerprint(right)


def test_duplicate_specs_share_one_outcome():
    """Content-equal descriptors collapse to one priced cell, like the
    scalar executor's dedup."""
    spec = RunSpec("miniFE", "OpenCL", DGPU, Precision.SINGLE, sweep_configs()["miniFE"])
    memo.clear_caches()
    outcomes, stats = execute_vector([spec, spec, spec])
    assert stats.unique_runs == 1
    assert outcomes[0] is outcomes[1] is outcomes[2]
    memo.clear_caches()


def test_stub_cache_lifecycle():
    """The cross-capture stub cache fills only when the setup cache is
    enabled, and ``clear_caches`` empties it."""
    spec = RunSpec("CoMD", "OpenCL", DGPU, Precision.SINGLE, sweep_configs()["CoMD"])
    memo.clear_caches()
    assert not memo._STUB_CACHE
    with memo.cache_disabled():
        capture_program(spec)
        assert not memo._STUB_CACHE
    capture_program(spec)
    assert memo._STUB_CACHE
    memo.clear_caches()
    assert not memo._STUB_CACHE


def test_comd_rebin_early_out_is_bit_identical():
    """``bin_atoms`` on unmoved positions is a no-op that leaves the
    exact table a full rebuild would produce."""
    from repro.apps.comd.reference import bin_atoms, make_state

    config = sweep_configs()["CoMD"]
    state = make_state.__wrapped__(config, Precision.SINGLE)
    table = state.cell_atoms.copy()
    counts = state.cell_count.copy()
    bin_atoms(state)  # early-out: nothing moved since make_state's binning
    assert np.array_equal(state.cell_atoms, table)
    assert np.array_equal(state.cell_count, counts)
    # Force the full rebuild and check it reproduces the same table.
    state.rebin_positions = state.rebin_positions + 1.0
    bin_atoms(state)
    assert np.array_equal(state.cell_atoms, table)
    assert np.array_equal(state.cell_count, counts)


def test_execute_with_engine_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown engine"):
        execute_with_engine("warp", [])
