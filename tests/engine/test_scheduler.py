"""Event-driven scheduler tests and analytic cross-validation."""

import pytest

from repro.engine.kernel import AccessKind, AccessPattern, KernelSpec, OpCount, hand_tuned
from repro.engine.scheduler import simulate_kernel
from repro.engine.timing import time_gpu_kernel
from repro.hardware.device import GPUDevice
from repro.hardware.specs import R9_280X, Precision


def make_spec(n=1 << 20, flops_per_item=100.0, bytes_per_item=8.0, wg=256):
    return KernelSpec(
        name="sched.test",
        work_items=n,
        ops=OpCount(flops=flops_per_item * n, bytes_read=bytes_per_item * n,
                    bytes_written=bytes_per_item * n / 2),
        access=AccessPattern(kind=AccessKind.STREAMING, working_set_bytes=bytes_per_item * n),
        workgroup_size=wg,
        instructions_per_item=flops_per_item,
    )


class TestScheduler:
    def test_workgroup_count(self):
        result = simulate_kernel(hand_tuned(make_spec(n=1024, wg=256)), GPUDevice(spec=R9_280X), Precision.SINGLE)
        assert result.workgroups == 4

    def test_partial_workgroup_rounds_up(self):
        result = simulate_kernel(hand_tuned(make_spec(n=1000, wg=256)), GPUDevice(spec=R9_280X), Precision.SINGLE)
        assert result.workgroups == 4

    def test_utilization_bounds(self):
        result = simulate_kernel(hand_tuned(make_spec()), GPUDevice(spec=R9_280X), Precision.SINGLE)
        assert 0.0 < result.cu_busy_fraction <= 1.0
        assert 0.0 <= result.memory_busy_fraction <= 1.0

    def test_memory_bound_kernel_saturates_dram(self):
        spec = make_spec(flops_per_item=1.0, bytes_per_item=64.0)
        result = simulate_kernel(hand_tuned(spec), GPUDevice(spec=R9_280X), Precision.SINGLE)
        assert result.memory_busy_fraction > 0.8

    def test_more_work_takes_longer(self):
        gpu = GPUDevice(spec=R9_280X)
        small = simulate_kernel(hand_tuned(make_spec(n=1 << 18)), gpu, Precision.SINGLE)
        large = simulate_kernel(hand_tuned(make_spec(n=1 << 21)), gpu, Precision.SINGLE)
        assert large.seconds > 4 * small.seconds


class TestCrossValidation:
    """The event-driven scheduler and the closed-form model must agree
    on saturated kernels (they share demand parameters but not the
    execution machinery)."""

    @pytest.mark.parametrize("flops_per_item,bytes_per_item", [
        (1000.0, 4.0),   # compute bound
        (2.0, 64.0),     # memory bound
        (100.0, 16.0),   # mixed
    ])
    def test_agreement_within_factor(self, flops_per_item, bytes_per_item):
        gpu = GPUDevice(spec=R9_280X)
        spec = make_spec(n=1 << 21, flops_per_item=flops_per_item, bytes_per_item=bytes_per_item)
        lowered = hand_tuned(spec)
        analytic = time_gpu_kernel(lowered, gpu, Precision.SINGLE).seconds
        scheduled = simulate_kernel(lowered, gpu, Precision.SINGLE).seconds
        assert 0.4 < scheduled / analytic < 2.5

    def test_core_clock_scaling_matches(self):
        gpu = GPUDevice(spec=R9_280X)
        spec = make_spec(n=1 << 21, flops_per_item=1000.0, bytes_per_item=4.0)
        base = simulate_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds
        gpu.core_clock.set(462.5)
        slow = simulate_kernel(hand_tuned(spec), gpu, Precision.SINGLE).seconds
        assert slow == pytest.approx(2 * base, rel=0.1)
