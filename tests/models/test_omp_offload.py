"""OpenMP target offload: compiler spread, data-environment semantics,
runtime mapping behaviour, and name normalization."""

import numpy as np
import pytest

from repro.engine.kernel import AccessKind, AccessPattern, KernelSpec, OpCount
from repro.engine.timing import time_gpu_kernel
from repro.hardware.device import platform_for
from repro.hardware.specs import Precision
from repro.models.base import Capability, ExecutionContext, TransferPolicy
from repro.models.omp_offload import (
    DEFAULT_OMP_COMPILER,
    OMP_OFFLOAD_PROFILE,
    OMP_OFFLOAD_PROFILES,
    OmpTargetError,
    OpenMPOffload,
)
from repro.models.registry import normalize_model_name, omp_offload_rows, profile_for


def _spec(n: int = 1 << 16) -> KernelSpec:
    return KernelSpec(
        name="t.stream",
        work_items=n,
        ops=OpCount(flops=4 * n, int_ops=n, bytes_read=4 * n, bytes_written=4 * n),
        access=AccessPattern(kind=AccessKind.STREAMING, working_set_bytes=8 * n),
        workgroup_size=128,
    )


def _ctx(platform: str = "v100") -> ExecutionContext:
    return ExecutionContext(platform=platform_for(platform), precision=Precision.SINGLE)


# -- the compiler family ------------------------------------------------


class TestProfiles:
    def test_four_toolchains(self):
        assert set(OMP_OFFLOAD_PROFILES) == {"xl", "cray", "clang", "gcc"}

    def test_all_share_the_canonical_name(self):
        for profile in OMP_OFFLOAD_PROFILES.values():
            assert profile.name == "OpenMP Offload"

    def test_directive_surface_matches_openacc(self):
        """Same expressiveness class as OpenACC: vectorization only,
        data-region transfer policy — the Figure 11 row repeats."""
        for profile in OMP_OFFLOAD_PROFILES.values():
            assert profile.capabilities == Capability.VECTORIZE
            assert profile.transfer_policy == TransferPolicy.DATA_REGION

    def test_davis_spread_ordering(self):
        """Davis et al.'s V100 result: XL/Cray lead, Clang close behind,
        GCC far behind — on every efficiency axis."""
        by = OMP_OFFLOAD_PROFILES
        for attr in ("vector_efficiency_regular", "vector_efficiency_irregular",
                     "memory_efficiency"):
            xl, cray, clang, gcc = (
                getattr(by[c], attr) for c in ("xl", "cray", "clang", "gcc")
            )
            assert xl >= cray >= clang > gcc

    def test_gcc_is_materially_slower_on_hardware(self):
        """The spread is not cosmetic: the same kernel on the same V100
        prices at least 2x slower through the GCC profile."""
        gpu = platform_for("v100").gpu
        spec = _spec(1 << 26)  # large enough to clear the kernel floor
        best = time_gpu_kernel(OMP_OFFLOAD_PROFILES["xl"].lower(spec), gpu, Precision.SINGLE)
        worst = time_gpu_kernel(OMP_OFFLOAD_PROFILES["gcc"].lower(spec), gpu, Precision.SINGLE)
        assert worst.seconds / best.seconds >= 2.0

    def test_registry_serves_the_default_profile(self):
        assert profile_for("OpenMP Offload") is OMP_OFFLOAD_PROFILE
        assert OMP_OFFLOAD_PROFILE is OMP_OFFLOAD_PROFILES[DEFAULT_OMP_COMPILER]

    def test_omp_offload_rows_cover_every_toolchain(self):
        rows = omp_offload_rows()
        assert len(rows) == len(OMP_OFFLOAD_PROFILES)
        assert all(r.model.startswith("OpenMP Offload") for r in rows)


# -- alias normalization ------------------------------------------------


class TestNormalization:
    @pytest.mark.parametrize("alias", [
        "omp-offload", "OMP-Offload", "openmp-offload", "openmp offload",
        "omp_offload", "omp-target", "target",
    ])
    def test_aliases_resolve(self, alias):
        assert normalize_model_name(alias) == "OpenMP Offload"

    def test_canonical_names_pass_through(self):
        for name in ("OpenCL", "C++ AMP", "OpenACC", "OpenMP Offload", "Serial"):
            assert normalize_model_name(name) == name

    def test_unknown_names_pass_through_for_the_registry_to_reject(self):
        assert normalize_model_name("CUDA") == "CUDA"
        with pytest.raises(KeyError):
            profile_for(normalize_model_name("CUDA"))


# -- runtime semantics --------------------------------------------------


class TestRuntime:
    def test_unknown_compiler_rejected(self):
        with pytest.raises(OmpTargetError, match="unknown OpenMP offload compiler"):
            OpenMPOffload(_ctx(), compiler="nvhpc")

    def test_bad_clauses_rejected(self):
        omp = OpenMPOffload(_ctx())
        a = np.zeros(8, dtype=np.float32)
        with pytest.raises(OmpTargetError, match="num_teams"):
            omp.target_teams_loop(lambda *_: None, _spec(8), arrays=[a], num_teams=0)
        with pytest.raises(OmpTargetError, match="thread_limit"):
            omp.target_teams_loop(lambda *_: None, _spec(8), arrays=[a], thread_limit=-1)

    def test_update_of_unmapped_array_is_an_error(self):
        omp = OpenMPOffload(_ctx("dgpu"))
        host = np.zeros(8, dtype=np.float32)
        with pytest.raises(OmpTargetError, match="unmapped"):
            omp.update_from(host)
        with pytest.raises(OmpTargetError, match="unmapped"):
            omp.update_to(host)

    def test_data_region_hoists_transfers(self):
        """Inside target data, launches move nothing; the region itself
        pays exactly one h2d per map(to:) and one d2h per map(from:)."""
        ctx = _ctx("v100")
        omp = OpenMPOffload(ctx)
        n = 1 << 10
        a = np.ones(n, dtype=np.float32)
        out = np.zeros(n, dtype=np.float32)

        def copy(a_, out_):
            out_[:] = a_

        with omp.target_data(to=[a], from_=[out]):
            before = ctx.counters.transfers
            omp.target_teams_loop(copy, _spec(n), arrays=[a, out], writes=[out])
            assert ctx.counters.transfers == before  # mapped: no per-launch copies
        assert ctx.counters.transfers == 2  # region entry + exit
        assert out.sum() == n

    def test_unmapped_arrays_round_trip_per_launch(self):
        """Outside any data environment, every launch implicitly maps
        tofrom — the conservative behaviour that hurts discrete GPUs."""
        ctx = _ctx("v100")
        omp = OpenMPOffload(ctx)
        n = 1 << 10
        a = np.ones(n, dtype=np.float32)
        out = np.zeros(n, dtype=np.float32)
        omp.target_teams_loop(lambda a_, o_: None, _spec(n), arrays=[a, out], writes=[out])
        # two h2d (both arrays in) + one d2h (only the written array back)
        assert ctx.counters.transfers == 3

    def test_unified_memory_moves_nothing(self):
        ctx = _ctx("apu")
        omp = OpenMPOffload(ctx)
        n = 1 << 10
        a = np.ones(n, dtype=np.float32)
        with omp.target_data(tofrom=[a]):
            omp.target_teams_loop(lambda a_: None, _spec(n), arrays=[a])
        assert ctx.counters.transfers == 0

    def test_update_from_fetches_device_values(self):
        ctx = _ctx("v100")
        omp = OpenMPOffload(ctx)
        host = np.zeros(4, dtype=np.float32)

        def bump(x):
            x += 1.0

        with omp.target_data(tofrom=[host]):
            omp.target_teams_loop(bump, _spec(4), arrays=[host], writes=[host])
            omp.update_from(host)
            assert host.sum() == 4.0

    def test_charges_heavier_launch_overhead_than_openacc(self):
        """libomptarget's generic dispatch costs more per launch than
        the PGI OpenACC runtime."""
        from repro.engine.launch import OMP_OFFLOAD_DGPU, OPENACC_DGPU

        assert OMP_OFFLOAD_DGPU.launch_cost(4) > OPENACC_DGPU.launch_cost(4)
