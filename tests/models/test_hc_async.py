"""Heterogeneous Compute asynchronous-transfer model tests (Sec. VII).

"HC ... allows the programmer to explicitly manage data-transfers
including asynchronous kernel launches which help in overlapping
kernel execution with data-transfers, resulting in further speedup."
"""

import numpy as np
import pytest

from repro.engine.kernel import AccessKind, AccessPattern, KernelSpec, OpCount
from repro.hardware.device import make_apu_platform, make_dgpu_platform
from repro.hardware.specs import Precision
from repro.models.base import ExecutionContext
from repro.models.hc import HCRuntime


def make_ctx(apu=False):
    platform = make_apu_platform() if apu else make_dgpu_platform()
    return ExecutionContext(platform=platform, precision=Precision.SINGLE)


def chunk_spec(n):
    # Sized so one chunk's kernel time roughly matches its PCIe copy:
    # the regime where double buffering pays.
    return KernelSpec(
        name="hc.chunk", work_items=n,
        ops=OpCount(flops=900.0 * n, bytes_read=4.0 * n, bytes_written=4.0 * n),
        access=AccessPattern(kind=AccessKind.STREAMING, working_set_bytes=8.0 * n),
        instructions_per_item=900.0,
    )


def noop(*args):
    pass


class TestTimelines:
    def test_sync_copy_serializes(self):
        ctx = make_ctx()
        hc = HCRuntime(ctx)
        a = np.ones(1 << 20, dtype=np.float32)
        b = np.ones(1 << 20, dtype=np.float32)
        hc.copy_to_device(a)
        after_one = hc.simulated_seconds
        hc.copy_to_device(b)
        assert hc.simulated_seconds == pytest.approx(2 * after_one, rel=0.01)

    def test_async_copy_overlaps_compute(self):
        """Prefetch the next chunk while the current one computes: the
        makespan is close to max(copies, kernels), not their sum."""
        n = 1 << 20
        chunks = [np.ones(n, dtype=np.float32) for _ in range(8)]

        # Synchronous pipeline.
        sync = HCRuntime(make_ctx())
        for chunk in chunks:
            sync.copy_to_device(chunk)
            sync.launch(noop, chunk_spec(n), arrays=[chunk])
        sync_total = sync.finish()

        # Double-buffered: prefetch chunk i+1 during chunk i's kernel.
        overlap = HCRuntime(make_ctx())
        overlap.async_copy_to_device(chunks[0])
        for i, chunk in enumerate(chunks):
            if i + 1 < len(chunks):
                overlap.async_copy_to_device(chunks[i + 1])
            overlap.launch(noop, chunk_spec(n), arrays=[chunk])
        overlap_total = overlap.finish()

        assert overlap_total < 0.75 * sync_total

    def test_overlap_bounded_by_slower_stream(self):
        n = 1 << 20
        chunks = [np.ones(n, dtype=np.float32) for _ in range(8)]
        hc = HCRuntime(make_ctx())
        copy_seconds = 0.0
        for chunk in chunks:
            hc.async_copy_to_device(chunk)
        copy_seconds = hc.simulated_seconds
        for chunk in chunks:
            hc.launch(noop, chunk_spec(n), arrays=[chunk])
        assert hc.simulated_seconds >= copy_seconds

    def test_launch_waits_for_its_input(self):
        """A kernel cannot start before its own array lands."""
        n = 1 << 22
        hc = HCRuntime(make_ctx())
        data = np.ones(n, dtype=np.float32)
        hc.async_copy_to_device(data)
        copy_done = hc._copy_time
        hc.launch(noop, chunk_spec(n), arrays=[data])
        assert hc._compute_time >= copy_done

    def test_launch_requires_residency(self):
        hc = HCRuntime(make_ctx())
        with pytest.raises(RuntimeError):
            hc.launch(noop, chunk_spec(64), arrays=[np.ones(64, dtype=np.float32)])

    def test_finish_joins_streams(self):
        hc = HCRuntime(make_ctx())
        data = np.ones(1 << 20, dtype=np.float32)
        hc.async_copy_to_device(data)
        total = hc.finish()
        assert hc._compute_time == total
        assert hc._copy_time == total


class TestAPU:
    def test_async_free_on_unified_memory(self):
        hc = HCRuntime(make_ctx(apu=True))
        data = np.ones(1 << 20, dtype=np.float32)
        hc.async_copy_to_device(data)
        assert hc.simulated_seconds == 0.0
        hc.launch(noop, chunk_spec(1 << 20), arrays=[data])
        assert hc.simulated_seconds > 0

    def test_functional_results_still_correct(self):
        ctx = make_ctx(apu=False)
        hc = HCRuntime(ctx)
        data = np.ones(1 << 10, dtype=np.float32)

        def double(a):
            a *= 2

        hc.copy_to_device(data)
        hc.launch(double, chunk_spec(1 << 10), arrays=[data])
        hc.copy_to_host(data)
        assert (data == 2.0).all()
