"""OpenMP, serial and Heterogeneous Compute runtime tests."""

import numpy as np
import pytest

from repro.engine.kernel import AccessKind, AccessPattern, KernelSpec, OpCount
from repro.hardware.device import make_apu_platform, make_dgpu_platform
from repro.hardware.specs import Precision
from repro.models.base import ExecutionContext
from repro.models.hc import HCRuntime
from repro.models.openmp import OpenMP
from repro.models.serial import SerialCPU


def make_ctx(apu=False, execute=True):
    platform = make_apu_platform() if apu else make_dgpu_platform()
    return ExecutionContext(platform=platform, precision=Precision.SINGLE, execute_kernels=execute)


def make_spec(n=1 << 18):
    return KernelSpec(
        name="cpu.test", work_items=n,
        ops=OpCount(flops=50.0 * n, bytes_read=4.0 * n, bytes_written=4.0 * n),
        access=AccessPattern(kind=AccessKind.STREAMING, working_set_bytes=8.0 * n),
        instructions_per_item=50.0,
    )


def double_kernel(a):
    a *= 2


class TestOpenMP:
    def test_functional(self):
        ctx = make_ctx()
        omp = OpenMP(ctx, num_threads=4)
        data = np.ones(1 << 18, dtype=np.float32)
        omp.parallel_for(double_kernel, make_spec(), arrays=[data])
        assert (data == 2.0).all()
        assert omp.simulated_seconds > 0

    def test_more_threads_is_faster(self):
        results = {}
        for threads in (1, 4):
            ctx = make_ctx()
            omp = OpenMP(ctx, num_threads=threads)
            omp.parallel_for(double_kernel, make_spec(), arrays=[np.ones(1 << 18, dtype=np.float32)])
            results[threads] = omp.simulated_seconds
        assert results[4] < results[1]

    def test_region_overhead_charged(self):
        ctx = make_ctx()
        omp = OpenMP(ctx, num_threads=4)
        omp.parallel_for(double_kernel, make_spec(), arrays=[np.ones(16, dtype=np.float32)])
        assert ctx.counters.launch_overhead_seconds > 0

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            OpenMP(make_ctx(), num_threads=0)

    def test_threads_clamped_to_cores(self):
        omp = OpenMP(make_ctx(), num_threads=64)
        assert omp.num_threads == 4


class TestSerial:
    def test_serial_slower_than_openmp(self):
        spec = make_spec()
        ctx1 = make_ctx()
        serial = SerialCPU(ctx1)
        serial.run_loop(double_kernel, spec, arrays=[np.ones(1 << 18, dtype=np.float32)])
        ctx2 = make_ctx()
        omp = OpenMP(ctx2, num_threads=4)
        omp.parallel_for(double_kernel, spec, arrays=[np.ones(1 << 18, dtype=np.float32)])
        assert serial.simulated_seconds > 2 * omp.simulated_seconds


class TestHC:
    def test_explicit_staging_round_trip(self):
        ctx = make_ctx(apu=False)
        hc = HCRuntime(ctx)
        data = np.ones(1 << 18, dtype=np.float32)
        hc.copy_to_device(data)
        hc.launch(double_kernel, make_spec(), arrays=[data])
        hc.copy_to_host(data)
        assert (data == 2.0).all()
        assert ctx.counters.bytes_to_device == data.nbytes
        assert ctx.counters.bytes_to_host == data.nbytes

    def test_launch_requires_residency(self):
        hc = HCRuntime(make_ctx(apu=False))
        with pytest.raises(RuntimeError):
            hc.launch(double_kernel, make_spec(), arrays=[np.ones(16, dtype=np.float32)])

    def test_copy_to_host_requires_staging(self):
        hc = HCRuntime(make_ctx(apu=False))
        with pytest.raises(RuntimeError):
            hc.copy_to_host(np.ones(16, dtype=np.float32))

    def test_apu_raw_pointers(self):
        ctx = make_ctx(apu=True)
        hc = HCRuntime(ctx)
        data = np.ones(1 << 16, dtype=np.float32)
        hc.copy_to_device(data)
        hc.launch(double_kernel, make_spec(1 << 16), arrays=[data])
        assert (data == 2.0).all()
        assert ctx.counters.transfer_seconds == 0.0

    def test_hc_beats_cppamp_on_dgpu_transfers(self):
        """Sec. VII: HC's explicit transfers fix the emerging models'
        biggest dGPU weakness."""
        from repro.models import cppamp as amp

        spec = make_spec()
        data = np.ones(1 << 18, dtype=np.float32)

        ctx_hc = make_ctx(apu=False)
        hc = HCRuntime(ctx_hc)
        hc.copy_to_device(data)
        for _ in range(10):
            hc.launch(double_kernel, spec, arrays=[data])
        hc.copy_to_host(data)

        data2 = np.ones(1 << 18, dtype=np.float32)
        ctx_amp = make_ctx(apu=False)
        rt = amp.AmpRuntime(ctx_amp)
        view = amp.array_view(rt, data2)
        for _ in range(10):
            rt.parallel_for_each(amp.extent(1 << 18), double_kernel, spec, views=[view], writes=[view])
        assert hc.simulated_seconds < rt.simulated_seconds
