"""OpenACC runtime semantics tests."""

import numpy as np
import pytest

from repro.engine.kernel import AccessKind, AccessPattern, KernelSpec, OpCount
from repro.hardware.device import make_apu_platform, make_dgpu_platform
from repro.hardware.specs import Precision
from repro.models.base import ExecutionContext
from repro.models.openacc import AccError, OpenACC


def make_ctx(apu=False, execute=True):
    platform = make_apu_platform() if apu else make_dgpu_platform()
    return ExecutionContext(platform=platform, precision=Precision.SINGLE, execute_kernels=execute)


def make_spec(n=4096):
    return KernelSpec(
        name="acc.test", work_items=n,
        ops=OpCount(flops=float(n), bytes_read=4.0 * n, bytes_written=4.0 * n),
        access=AccessPattern(kind=AccessKind.STREAMING, working_set_bytes=8.0 * n),
    )


def double_kernel(a):
    a *= 2


class TestWithoutDataRegion:
    def test_launch_round_trips_every_time(self):
        """No data region: the compiler conservatively copies the
        arrays in and back for every launch — the Sec. VI-A failure
        mode."""
        ctx = make_ctx(apu=False)
        acc = OpenACC(ctx)
        data = np.ones(1 << 18, dtype=np.float32)
        spec = make_spec(1 << 18)
        acc.kernels_loop(double_kernel, spec, arrays=[data], writes=[data])
        acc.kernels_loop(double_kernel, spec, arrays=[data], writes=[data])
        assert ctx.counters.bytes_to_device == 2 * data.nbytes
        assert ctx.counters.bytes_to_host == 2 * data.nbytes
        assert (data == 4.0).all()


class TestDataRegion:
    def test_region_hoists_transfers(self):
        ctx = make_ctx(apu=False)
        acc = OpenACC(ctx)
        data = np.ones(1 << 18, dtype=np.float32)
        spec = make_spec(1 << 18)
        with acc.data(copy=[data]):
            acc.kernels_loop(double_kernel, spec, arrays=[data], writes=[data])
            acc.kernels_loop(double_kernel, spec, arrays=[data], writes=[data])
        # One copyin at entry, one copyout at exit — not per launch.
        assert ctx.counters.bytes_to_device == data.nbytes
        assert ctx.counters.bytes_to_host == data.nbytes
        assert (data == 4.0).all()

    def test_copyin_not_written_back(self):
        ctx = make_ctx(apu=False)
        acc = OpenACC(ctx)
        data = np.ones(1 << 16, dtype=np.float32)
        with acc.data(copyin=[data]):
            acc.kernels_loop(double_kernel, make_spec(1 << 16), arrays=[data], writes=[data])
        assert (data == 1.0).all()  # device result discarded, as written
        assert ctx.counters.bytes_to_host == 0

    def test_create_allocates_without_copy(self):
        ctx = make_ctx(apu=False)
        acc = OpenACC(ctx)
        scratch = np.zeros(1 << 16, dtype=np.float32)
        with acc.data(create=[scratch]):
            assert acc.is_present(scratch)
        assert ctx.counters.bytes_to_device == 0

    def test_update_host_fetches_region_array(self):
        ctx = make_ctx(apu=False)
        acc = OpenACC(ctx)
        data = np.ones(1 << 16, dtype=np.float32)
        with acc.data(copyin=[data]):
            acc.kernels_loop(double_kernel, make_spec(1 << 16), arrays=[data], writes=[data])
            acc.update_host(data)
            assert (data == 2.0).all()

    def test_update_host_outside_region_rejected(self):
        acc = OpenACC(make_ctx(apu=False))
        with pytest.raises(AccError):
            acc.update_host(np.zeros(4))

    def test_update_device_pushes_host_changes(self):
        ctx = make_ctx(apu=False)
        acc = OpenACC(ctx)
        data = np.ones(1 << 16, dtype=np.float32)
        with acc.data(copy=[data]):
            data[:] = 5.0
            acc.update_device(data)
        assert (data == 5.0).all()


class TestAPU:
    def test_no_transfers(self):
        ctx = make_ctx(apu=True)
        acc = OpenACC(ctx)
        data = np.ones(1 << 16, dtype=np.float32)
        with acc.data(copy=[data]):
            acc.kernels_loop(double_kernel, make_spec(1 << 16), arrays=[data], writes=[data])
        assert ctx.counters.transfer_seconds == 0.0
        assert (data == 2.0).all()


class TestClauses:
    def test_bad_vector_clause(self):
        acc = OpenACC(make_ctx())
        with pytest.raises(AccError):
            acc.kernels_loop(double_kernel, make_spec(), arrays=[np.zeros(4)], vector=0)

    def test_bad_gang_clause(self):
        acc = OpenACC(make_ctx())
        with pytest.raises(AccError):
            acc.kernels_loop(double_kernel, make_spec(), arrays=[np.zeros(4)], gang=-1)


class TestProjection:
    def test_charges_without_executing(self):
        calls = []
        ctx = make_ctx(apu=False, execute=False)
        acc = OpenACC(ctx)
        data = np.ones(1 << 16, dtype=np.float32)
        with acc.data(copy=[data]):
            acc.kernels_loop(lambda a: calls.append(1), make_spec(1 << 16), arrays=[data], writes=[data])
        assert not calls
        assert ctx.counters.kernel_launches == 1
        assert ctx.counters.bytes_to_device == data.nbytes
