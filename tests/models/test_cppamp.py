"""C++ AMP runtime semantics tests."""

import numpy as np
import pytest

from repro.engine.kernel import AccessKind, AccessPattern, KernelSpec, OpCount
from repro.hardware.device import make_apu_platform, make_dgpu_platform
from repro.hardware.specs import Precision
from repro.models import cppamp as amp
from repro.models.base import ExecutionContext


def make_ctx(apu=False, execute=True):
    platform = make_apu_platform() if apu else make_dgpu_platform()
    return ExecutionContext(platform=platform, precision=Precision.SINGLE, execute_kernels=execute)


def make_spec(n=4096, name="amp.test", lds=0):
    return KernelSpec(
        name=name, work_items=n,
        ops=OpCount(flops=float(n), bytes_read=4.0 * n, bytes_written=4.0 * n),
        access=AccessPattern(kind=AccessKind.STREAMING, working_set_bytes=8.0 * n),
        lds_bytes_per_workgroup=lds,
    )


def double_kernel(a):
    a *= 2


class TestExtents:
    def test_extent_positive(self):
        with pytest.raises(ValueError):
            amp.extent(0)

    def test_tile_must_divide(self):
        with pytest.raises(ValueError):
            amp.extent(100).tile(64)

    def test_tile_ok(self):
        tiled = amp.extent(256).tile(64)
        assert tiled.tile_size == 64


class TestArrayView:
    def test_functional_round_trip_dgpu(self):
        ctx = make_ctx(apu=False)
        rt = amp.AmpRuntime(ctx)
        data = np.ones(4096, dtype=np.float32)
        view = amp.array_view(rt, data)
        rt.parallel_for_each(amp.extent(4096), double_kernel, make_spec(), views=[view], writes=[view])
        # CLAMP writes back eagerly, so the host already sees results.
        assert (data == 2.0).all()

    def test_apu_operates_in_place(self):
        ctx = make_ctx(apu=True)
        rt = amp.AmpRuntime(ctx)
        data = np.ones(4096, dtype=np.float32)
        view = amp.array_view(rt, data)
        rt.parallel_for_each(amp.extent(4096), double_kernel, make_spec(), views=[view], writes=[view])
        assert (data == 2.0).all()
        assert ctx.counters.transfer_seconds == 0.0

    def test_dgpu_charges_upload_and_writeback(self):
        ctx = make_ctx(apu=False)
        rt = amp.AmpRuntime(ctx)
        data = np.ones(1 << 18, dtype=np.float32)
        view = amp.array_view(rt, data)
        rt.parallel_for_each(amp.extent(1 << 18), double_kernel, make_spec(1 << 18), views=[view], writes=[view])
        assert ctx.counters.bytes_to_device == data.nbytes
        assert ctx.counters.bytes_to_host == data.nbytes

    def test_unwritten_views_upload_once(self):
        ctx = make_ctx(apu=False)
        rt = amp.AmpRuntime(ctx)
        data = np.ones(1 << 18, dtype=np.float32)
        out = np.zeros(1 << 18, dtype=np.float32)
        in_view = amp.array_view(rt, data)
        out_view = amp.array_view(rt, out)
        out_view.discard_data()

        def copy(a, b):
            b[:] = a

        spec = make_spec(1 << 18)
        rt.parallel_for_each(amp.extent(1 << 18), copy, spec, views=[in_view, out_view], writes=[out_view])
        rt.parallel_for_each(amp.extent(1 << 18), copy, spec, views=[in_view, out_view], writes=[out_view])
        # Input uploaded once; output written back twice, never uploaded.
        assert ctx.counters.bytes_to_device == data.nbytes
        assert ctx.counters.bytes_to_host == 2 * out.nbytes

    def test_discard_data_skips_upload(self):
        ctx = make_ctx(apu=False)
        rt = amp.AmpRuntime(ctx)
        out = np.zeros(1 << 18, dtype=np.float32)
        view = amp.array_view(rt, out)
        view.discard_data()
        rt.parallel_for_each(amp.extent(1 << 18), double_kernel, make_spec(1 << 18), views=[view], writes=[view])
        assert ctx.counters.bytes_to_device == 0


class TestTiling:
    def test_tiled_launch_requires_tile_static(self):
        ctx = make_ctx()
        rt = amp.AmpRuntime(ctx)
        data = np.ones(4096, dtype=np.float32)
        view = amp.array_view(rt, data)
        with pytest.raises(ValueError):
            rt.parallel_for_each(
                amp.extent(4096).tile(64), double_kernel, make_spec(lds=0),
                views=[view], writes=[view],
            )

    def test_tiled_launch_with_lds(self):
        ctx = make_ctx()
        rt = amp.AmpRuntime(ctx)
        data = np.ones(4096, dtype=np.float32)
        view = amp.array_view(rt, data)
        rt.parallel_for_each(
            amp.extent(4096).tile(64), double_kernel, make_spec(lds=1024),
            views=[view], writes=[view],
        )
        assert (data == 2.0).all()


class TestCompilerBug:
    def test_broken_kernel_raises_on_dgpu(self):
        ctx = make_ctx(apu=False)
        rt = amp.AmpRuntime(ctx)
        data = np.ones(64, dtype=np.float32)
        view = amp.array_view(rt, data)
        spec = make_spec(64, name="lulesh.calc_kinematics")
        assert not rt.compiles("lulesh.calc_kinematics")
        with pytest.raises(amp.CompilerBug):
            rt.parallel_for_each(amp.extent(64), double_kernel, spec, views=[view])

    def test_same_kernel_compiles_on_apu(self):
        rt = amp.AmpRuntime(make_ctx(apu=True))
        assert rt.compiles("lulesh.calc_kinematics")

    def test_workaround_flag_fixes_dgpu(self):
        rt = amp.AmpRuntime(make_ctx(apu=False), workaround_known_bugs=True)
        assert rt.compiles("lulesh.calc_kinematics")

    def test_cpu_fallback_round_trips(self):
        ctx = make_ctx(apu=False)
        rt = amp.AmpRuntime(ctx)
        data = np.ones(1 << 16, dtype=np.float32)
        view = amp.array_view(rt, data)
        # Warm the device copy first.
        rt.parallel_for_each(amp.extent(1 << 16), double_kernel, make_spec(1 << 16), views=[view], writes=[view])
        before = ctx.counters.bytes_to_device
        rt.cpu_fallback_loop(double_kernel, make_spec(1 << 16), views=[view])
        assert (data == 4.0).all()
        # The fallback marks views stale: the next launch re-uploads.
        rt.parallel_for_each(amp.extent(1 << 16), double_kernel, make_spec(1 << 16), views=[view], writes=[view])
        assert ctx.counters.bytes_to_device > before


class TestProjection:
    def test_charges_without_executing(self):
        calls = []
        ctx = make_ctx(apu=False, execute=False)
        rt = amp.AmpRuntime(ctx)
        data = np.ones(1 << 16, dtype=np.float32)
        view = amp.array_view(rt, data)
        rt.parallel_for_each(
            amp.extent(1 << 16), lambda a: calls.append(1), make_spec(1 << 16),
            views=[view], writes=[view],
        )
        assert not calls
        assert ctx.counters.kernel_launches == 1
        assert ctx.counters.bytes_to_device == data.nbytes
        assert ctx.counters.bytes_to_host == data.nbytes
