"""OpenCL host-API semantics tests."""

import numpy as np
import pytest

from repro.engine.kernel import AccessKind, AccessPattern, KernelSpec, OpCount
from repro.hardware.device import make_apu_platform, make_dgpu_platform
from repro.hardware.specs import Precision
from repro.models import opencl as cl
from repro.models.base import ExecutionContext


def make_ctx(apu=False, precision=Precision.SINGLE, execute=True):
    platform = make_apu_platform() if apu else make_dgpu_platform()
    return ExecutionContext(platform=platform, precision=precision, execute_kernels=execute)


def make_spec(n=4096):
    return KernelSpec(
        name="cl.test", work_items=n,
        ops=OpCount(flops=float(n), bytes_read=4.0 * n, bytes_written=4.0 * n),
        access=AccessPattern(kind=AccessKind.STREAMING, working_set_bytes=8.0 * n),
    )


def setup_queue(ctx):
    platform = cl.get_platforms(ctx)[0]
    gpu = next(d for d in platform.get_devices() if d.is_gpu)
    context = cl.Context(ctx, [gpu])
    return context, cl.CommandQueue(context, gpu), cl.Program(context).build()


class TestDiscovery:
    def test_platform_lists_gpu_and_cpu(self):
        devices = cl.get_platforms(make_ctx())[0].get_devices()
        assert any(d.is_gpu for d in devices)
        assert any(not d.is_gpu for d in devices)

    def test_context_requires_devices(self):
        with pytest.raises(cl.CLError):
            cl.Context(make_ctx(), [])

    def test_cpu_queue_rejected(self):
        ctx = make_ctx()
        devices = cl.get_platforms(ctx)[0].get_devices()
        cpu = next(d for d in devices if not d.is_gpu)
        context = cl.Context(ctx, [cpu])
        with pytest.raises(cl.CLError):
            cl.CommandQueue(context, cpu)

    def test_released_context_rejected(self):
        ctx = make_ctx()
        context, _, _ = setup_queue(ctx)
        context.release()
        with pytest.raises(cl.CLError):
            cl.Buffer(context, cl.MemFlags.READ_ONLY, size=16)


class TestBuffers:
    def test_needs_size_or_hostbuf(self):
        ctx = make_ctx()
        context, _, _ = setup_queue(ctx)
        with pytest.raises(cl.CLError):
            cl.Buffer(context, cl.MemFlags.READ_ONLY)

    def test_oversized_allocation_rejected(self):
        ctx = make_ctx()
        context, _, _ = setup_queue(ctx)
        with pytest.raises(MemoryError):
            cl.Buffer(context, cl.MemFlags.READ_ONLY, size=5 * 1024**3)

    def test_copy_host_ptr_charges_transfer(self):
        ctx = make_ctx()
        context, _, _ = setup_queue(ctx)
        data = np.ones(1024, dtype=np.float32)
        cl.Buffer(context, cl.MemFlags.READ_ONLY | cl.MemFlags.COPY_HOST_PTR, hostbuf=data)
        assert ctx.counters.bytes_to_device == data.nbytes

    def test_unstaged_buffer_use_rejected(self):
        ctx = make_ctx()
        context, queue, program = setup_queue(ctx)
        buffer = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=1024)
        kernel = program.create_kernel("k", lambda a: None, make_spec())
        kernel.set_args(buffer)
        with pytest.raises(cl.CLError):
            queue.enqueue_nd_range_kernel(kernel, 256, 64)

    def test_device_copy_isolated_from_host(self):
        """dGPU buffers are copies: mutating the host after staging must
        not affect the device image."""
        ctx = make_ctx(apu=False)
        context, queue, program = setup_queue(ctx)
        data = np.ones(1024, dtype=np.float32)
        buffer = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=data.nbytes)
        queue.enqueue_write_buffer(buffer, data)
        data[:] = 7.0
        out = np.zeros(1024, dtype=np.float32)

        def copy_kernel(src, dst):
            dst[:] = src

        dst = cl.Buffer(context, cl.MemFlags.WRITE_ONLY, hostbuf=out)
        kernel = program.create_kernel("copy", copy_kernel, make_spec(1024))
        kernel.set_args(buffer, dst)
        queue.enqueue_nd_range_kernel(kernel, 1024, 64)
        queue.enqueue_read_buffer(dst, out)
        assert (out == 1.0).all()


class TestTransfersAndTiming:
    def test_dgpu_write_charges_pcie(self):
        ctx = make_ctx(apu=False)
        context, queue, _ = setup_queue(ctx)
        data = np.ones(1 << 20, dtype=np.float32)
        buffer = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=data.nbytes)
        queue.enqueue_write_buffer(buffer, data)
        assert ctx.counters.transfer_seconds > 0

    def test_apu_write_is_free(self):
        ctx = make_ctx(apu=True)
        context, queue, _ = setup_queue(ctx)
        data = np.ones(1 << 20, dtype=np.float32)
        buffer = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=data.nbytes)
        queue.enqueue_write_buffer(buffer, data)
        assert ctx.counters.transfer_seconds == 0.0

    def test_apu_launch_pays_mapping_toll(self):
        """The cl_mem mapping cost on the APU is what C++ AMP's HSA
        pointers avoid (Sec. VI-A)."""
        ctx = make_ctx(apu=True)
        context, queue, program = setup_queue(ctx)
        data = np.ones(1 << 20, dtype=np.float32)
        buffer = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=data.nbytes)
        queue.enqueue_write_buffer(buffer, data)
        kernel = program.create_kernel("k", lambda a: None, make_spec())
        kernel.set_args(buffer)
        queue.enqueue_nd_range_kernel(kernel, 4096, 256)
        assert ctx.counters.launch_overhead_seconds > 10e-6

    def test_kernel_charges_simulated_time(self):
        ctx = make_ctx()
        context, queue, program = setup_queue(ctx)
        data = np.ones(1 << 16, dtype=np.float32)
        buffer = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=data.nbytes)
        queue.enqueue_write_buffer(buffer, data)
        kernel = program.create_kernel("k", lambda a: None, make_spec(1 << 16))
        kernel.set_args(buffer)
        queue.enqueue_nd_range_kernel(kernel, 1 << 16, 256)
        assert ctx.counters.kernel_launches == 1
        assert queue.finish() > 0


class TestKernelValidation:
    def test_unset_args_rejected(self):
        ctx = make_ctx()
        _, queue, program = setup_queue(ctx)
        kernel = program.create_kernel("k", lambda: None, make_spec())
        with pytest.raises(cl.CLError):
            queue.enqueue_nd_range_kernel(kernel, 256, 64)

    def test_bad_global_size(self):
        ctx = make_ctx()
        _, queue, program = setup_queue(ctx)
        kernel = program.create_kernel("k", lambda: None, make_spec())
        kernel.set_args()
        with pytest.raises(cl.CLError):
            queue.enqueue_nd_range_kernel(kernel, 0, 64)

    def test_global_not_multiple_of_local(self):
        ctx = make_ctx()
        _, queue, program = setup_queue(ctx)
        kernel = program.create_kernel("k", lambda: None, make_spec())
        kernel.set_args()
        with pytest.raises(cl.CLError):
            queue.enqueue_nd_range_kernel(kernel, 100, 64)

    def test_kernel_before_build_rejected(self):
        ctx = make_ctx()
        context, _, _ = setup_queue(ctx)
        program = cl.Program(context)
        with pytest.raises(cl.CLError):
            program.create_kernel("k", lambda: None, make_spec())


class TestProjectionMode:
    def test_skips_execution_but_charges(self):
        calls = []
        ctx = make_ctx(execute=False)
        context, queue, program = setup_queue(ctx)
        data = np.ones(1 << 16, dtype=np.float32)
        buffer = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=data.nbytes)
        queue.enqueue_write_buffer(buffer, data)
        kernel = program.create_kernel("k", lambda a: calls.append(1), make_spec(1 << 16))
        kernel.set_args(buffer)
        queue.enqueue_nd_range_kernel(kernel, 1 << 16, 256)
        assert not calls
        assert ctx.counters.kernel_launches == 1
        assert ctx.counters.bytes_to_device == data.nbytes
