"""Compiler-profile and lowering tests (the Figure 11 semantics)."""

import pytest

from repro.engine.kernel import AccessKind, AccessPattern, KernelSpec, OpCount
from repro.engine.timing import time_gpu_kernel
from repro.hardware.device import GPUDevice
from repro.hardware.specs import R9_280X, Precision
from repro.models.base import Capability, TransferPolicy
from repro.models.cppamp.compiler import CPPAMP_PROFILE
from repro.models.hc import HC_PROFILE
from repro.models.openacc.compiler import OPENACC_PROFILE
from repro.models.opencl.compiler import OPENCL_PROFILE
from repro.models.registry import GPU_MODEL_NAMES, profile_for, table3_rows


def tiled_spec(**overrides):
    kwargs = dict(
        name="p.tiled",
        work_items=1 << 20,
        ops=OpCount(flops=1e8, bytes_read=4e7, bytes_written=1e7),
        access=AccessPattern(kind=AccessKind.STREAMING, working_set_bytes=5e7),
        lds_bytes_per_workgroup=4096,
        lds_traffic_filter=0.5,
        unroll_benefit=0.2,
    )
    kwargs.update(overrides)
    return KernelSpec(**kwargs)


class TestCapabilities:
    def test_opencl_has_everything(self):
        assert OPENCL_PROFILE.capabilities == Capability.all()

    def test_openacc_vectorize_only(self):
        assert OPENACC_PROFILE.capabilities == Capability.VECTORIZE

    def test_cppamp_has_lds_and_sync_but_no_unroll(self):
        caps = CPPAMP_PROFILE.capabilities
        assert Capability.LDS in caps
        assert Capability.FINE_SYNC in caps
        assert Capability.UNROLL not in caps
        assert Capability.CODE_MOTION not in caps

    def test_transfer_policies(self):
        assert OPENCL_PROFILE.transfer_policy is TransferPolicy.EXPLICIT
        assert CPPAMP_PROFILE.transfer_policy is TransferPolicy.COMPILER_PER_LAUNCH
        assert OPENACC_PROFILE.transfer_policy is TransferPolicy.DATA_REGION
        assert HC_PROFILE.transfer_policy is TransferPolicy.EXPLICIT


class TestLowering:
    def test_opencl_uses_lds(self):
        assert OPENCL_PROFILE.lower(tiled_spec()).uses_lds

    def test_openacc_cannot_use_lds(self):
        lowered = OPENACC_PROFILE.lower(tiled_spec())
        assert not lowered.uses_lds
        assert any("LDS" in note for note in lowered.notes)

    def test_cppamp_tiling_works(self):
        assert CPPAMP_PROFILE.lower(tiled_spec()).uses_lds

    def test_missing_unroll_inflates_instructions(self):
        assert OPENACC_PROFILE.lower(tiled_spec()).instruction_scale > 1.0
        assert CPPAMP_PROFILE.lower(tiled_spec()).instruction_scale > 1.0
        assert OPENCL_PROFILE.lower(tiled_spec()).instruction_scale == 1.0

    def test_hand_tuning_reduces_divergence(self):
        spec = tiled_spec(divergence=0.4)
        assert OPENCL_PROFILE.lower(spec).divergence == pytest.approx(0.2)
        assert OPENACC_PROFILE.lower(spec).divergence == pytest.approx(0.4)

    def test_irregular_kernels_get_worse_codegen(self):
        regular = tiled_spec()
        irregular = tiled_spec(divergence=0.3)
        for profile in (CPPAMP_PROFILE, OPENACC_PROFILE):
            assert (
                profile.lower(irregular).vector_efficiency
                < profile.lower(regular).vector_efficiency
            )


class TestRetargetPenalty:
    def test_opencl_pays_on_retarget(self):
        spec = tiled_spec(divergence=0.3)
        native = OPENCL_PROFILE.lower(spec)
        retargeted = OPENCL_PROFILE.lower(spec, retargeted=True)
        assert retargeted.vector_efficiency < native.vector_efficiency
        assert retargeted.memory_efficiency < native.memory_efficiency

    def test_regular_kernels_pay_less(self):
        regular = tiled_spec()
        irregular = tiled_spec(divergence=0.3)
        reg_loss = 1 - (
            OPENCL_PROFILE.lower(regular, retargeted=True).memory_efficiency
            / OPENCL_PROFILE.lower(regular).memory_efficiency
        )
        irr_loss = 1 - (
            OPENCL_PROFILE.lower(irregular, retargeted=True).memory_efficiency
            / OPENCL_PROFILE.lower(irregular).memory_efficiency
        )
        assert irr_loss > 2 * reg_loss

    def test_compiler_models_do_not_pay(self):
        spec = tiled_spec()
        assert CPPAMP_PROFILE.lower(spec, retargeted=True).vector_efficiency == pytest.approx(
            CPPAMP_PROFILE.lower(spec).vector_efficiency
        )


class TestReadmemCodegenRatios:
    """Sec. VI-A: on the read-memory kernel, OpenCL beats C++ AMP by
    1.3x and OpenACC by 2x — which calibrates memory_efficiency."""

    def test_ratios(self):
        assert OPENCL_PROFILE.memory_efficiency / CPPAMP_PROFILE.memory_efficiency == pytest.approx(1.3, abs=0.1)
        assert OPENCL_PROFILE.memory_efficiency / OPENACC_PROFILE.memory_efficiency == pytest.approx(2.0, abs=0.1)

    def test_end_to_end_kernel_times(self):
        gpu = GPUDevice(spec=R9_280X)
        n = 1 << 24
        spec = KernelSpec(
            name="readmem.like", work_items=n // 64,
            ops=OpCount(flops=float(n), bytes_read=4.0 * n, bytes_written=n / 16.0),
            access=AccessPattern(kind=AccessKind.STREAMING, working_set_bytes=4.0 * n),
            instructions_per_item=160.0,
        )
        times = {
            name: time_gpu_kernel(profile_for(name).lower(spec), gpu, Precision.SINGLE).seconds
            for name in GPU_MODEL_NAMES
        }
        assert times["C++ AMP"] / times["OpenCL"] == pytest.approx(1.3, abs=0.15)
        assert times["OpenACC"] / times["OpenCL"] == pytest.approx(2.0, abs=0.2)


class TestRegistry:
    def test_table3(self):
        rows = table3_rows()
        assert [r.model for r in rows] == ["OpenCL", "C++ AMP", "OpenACC"]
        assert "PGI v14.10" in rows[2].compiler
        assert "CLAMP v0.6.0" in rows[1].compiler

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            profile_for("CUDA")
