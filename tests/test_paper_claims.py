"""Capstone: the paper's Sec. VI-A "Observations" list, verbatim.

    * C++ AMP outperformed OpenACC in most cases.
    * OpenCL was best for compute-bound applications due to suboptimal
      vectorization by other compilers.
    * C++ AMP performed the best on the APU for applications which
      incurred large data-transfers cost.
    * The emerging programming models are slower than OpenCL on
      discrete GPUs because compiler-generated code for data-transfers
      performs worse than explicit programmer-written code.
    * OpenCL requires hand-tuned code for each architecture for
      performance portability.  Whereas, the emerging programming
      models do not require any modification to the code, as shown by
      the performance improvement in all cases when moved from APU to
      discrete GPU.

Each bullet becomes one test over a shared bench-scale study.
"""

import pytest

from repro import ALL_APPS, Precision, bench_configs, run_study

APP_NAMES = tuple(app.name for app in ALL_APPS)


@pytest.fixture(scope="module")
def study():
    return run_study(ALL_APPS, paper_scale=True, configs=bench_configs(),
                     precisions=(Precision.SINGLE,))


def speedup(study, app, model, apu, kernel_only=False):
    entry = study.get(app, model, apu, Precision.SINGLE)
    return entry.kernel_speedup if kernel_only else entry.speedup


def test_observation_1_cppamp_beats_openacc_in_most_cases(study):
    wins = 0
    cases = 0
    for app in APP_NAMES:
        for apu in (True, False):
            cases += 1
            if speedup(study, app, "C++ AMP", apu) > speedup(study, app, "OpenACC", apu):
                wins += 1
    assert wins / cases > 0.7


def test_observation_2_opencl_best_for_compute_bound_apps(study):
    """The vectorization-sensitive compute-bound app (CoMD) goes to
    OpenCL on both platforms; XSBench does too on the dGPU (on the APU
    it is the observation-3 exception the paper itself makes)."""
    for apu in (True, False):
        ocl = speedup(study, "CoMD", "OpenCL", apu, kernel_only=True)
        assert ocl >= speedup(study, "CoMD", "C++ AMP", apu, kernel_only=True) * 0.99, apu
        assert ocl > speedup(study, "CoMD", "OpenACC", apu, kernel_only=True), apu
    ocl = speedup(study, "XSBench", "OpenCL", apu=False, kernel_only=True)
    assert ocl > speedup(study, "XSBench", "C++ AMP", apu=False, kernel_only=True)
    assert ocl > speedup(study, "XSBench", "OpenACC", apu=False, kernel_only=True)


def test_observation_3_cppamp_best_on_apu_for_transfer_heavy_apps(study):
    """XSBench is the paper's transfer-dominated example (240 MB table)."""
    amp = speedup(study, "XSBench", "C++ AMP", apu=True)
    assert amp > speedup(study, "XSBench", "OpenCL", apu=True)
    assert amp > speedup(study, "XSBench", "OpenACC", apu=True)


def test_observation_4_emerging_models_lose_on_dgpu_because_of_transfers(study):
    """On the dGPU the emerging models trail OpenCL end-to-end, and the
    gap is wider than their kernel-only gap (i.e. transfers, not
    codegen, are the main cost)."""
    for app in APP_NAMES:
        for model in ("C++ AMP", "OpenACC"):
            ocl_total = speedup(study, app, "OpenCL", apu=False)
            other_total = speedup(study, app, model, apu=False)
            assert other_total < ocl_total, (app, model)
    # Transfer share of the gap, shown on the transfer-heavy apps:
    for app in ("LULESH", "XSBench"):
        total_gap = speedup(study, app, "OpenCL", apu=False) / speedup(study, app, "C++ AMP", apu=False)
        kernel_gap = (
            speedup(study, app, "OpenCL", apu=False, kernel_only=True)
            / speedup(study, app, "C++ AMP", apu=False, kernel_only=True)
        )
        assert total_gap > kernel_gap, app


def test_observation_5_emerging_models_port_without_modification(study):
    """The same emerging-model code speeds up when moved from the APU
    to the dGPU (kernel-level, as the codegen portability claim)."""
    for app in APP_NAMES:
        for model in ("C++ AMP", "OpenACC"):
            dgpu = speedup(study, app, model, apu=False, kernel_only=True)
            apu = speedup(study, app, model, apu=True, kernel_only=True)
            assert dgpu > apu, (app, model)


def test_paper_conclusion_cppamp_more_promising_than_openacc(study):
    """'Amongst the two emerging programming models, C++ AMP looks more
    promising than OpenACC in all three of our evaluation criteria.'"""
    from repro.core import compute_productivity, feature_matrix
    from repro.sloc import table4

    # (1) performance: observation 1 above; (2) productivity:
    full_study = run_study(ALL_APPS, paper_scale=True, configs=bench_configs(),
                           precisions=(Precision.DOUBLE,))
    for apu in (True, False):
        means = compute_productivity(full_study, ALL_APPS, apu=apu).harmonic_means()
        assert means["C++ AMP"] > means["OpenACC"] * 0.5  # at least comparable
    # (3) flexibility: strictly more optimization features.
    matrix = feature_matrix()
    assert sum(matrix["C++ AMP"].values()) > sum(matrix["OpenACC"].values())
