"""The example scripts must stay runnable (fast ones, end to end)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "porting_walkthrough.py",
    "sedov_blast.py",
    "hc_overlap.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced its report


def test_quickstart_reports_agreeing_energies(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    energies = {
        line.split()[-1]
        for line in out.splitlines()
        if line.strip().startswith(("APU", "dGPU"))
    }
    assert len(energies) == 1  # every model computed the same physics


def test_all_examples_exist():
    expected = {
        "quickstart.py", "porting_walkthrough.py", "frequency_characterization.py",
        "sedov_blast.py", "productivity_study.py", "hc_overlap.py",
    }
    assert expected <= {p.name for p in EXAMPLES.glob("*.py")}
