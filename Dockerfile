# The serve tier as a container: N shard processes behind the
# content-hash router, sharing one persistent result store on a
# volume so restarts (and fresh replicas) boot warm.
FROM python:3.12-slim

WORKDIR /app
COPY pyproject.toml setup.py ./
COPY src ./src
RUN pip install --no-cache-dir .

# Content-addressed result store; mount a volume to survive the
# container (docker-compose.yml does).
ENV REPRO_STORE=/data/store \
    REPRO_SHARDS=2 \
    REPRO_WARM=presets
VOLUME /data/store

EXPOSE 8351
HEALTHCHECK --interval=10s --timeout=5s --start-period=120s \
  CMD python -c "import urllib.request; urllib.request.urlopen('http://127.0.0.1:8351/readyz', timeout=4)"

CMD ["sh", "-c", "exec repro serve --host 0.0.0.0 --port 8351 \
  --shards ${REPRO_SHARDS} --store ${REPRO_STORE} --warm ${REPRO_WARM}"]
