"""Hardware models: devices, clocks, memories, caches and interconnects.

This subpackage is the simulated replacement for the paper's physical
testbed (Table II): an AMD Radeon R9 280X discrete GPU behind PCIe and
an AMD A10-7850K APU with unified memory, both hosted by the same
4-core CPU.
"""

from .cache import CacheStats, SetAssociativeCache, validate_geometry
from .cache_vec import VectorSetAssociativeCache
from .compute_unit import Occupancy, latency_hiding_factor, occupancy, wavefronts_for
from .device import (
    CPUDevice,
    GPUDevice,
    Platform,
    make_apu_platform,
    make_dgpu_platform,
    make_platform,
)
from .frequency import (
    PAPER_CORE_SWEEP_MHZ,
    PAPER_MEMORY_SWEEP_MHZ,
    ClockDomain,
    FrequencyError,
    FrequencyPlan,
    paper_sweep_grid,
)
from .interconnect import Interconnect, TransferRecord
from .memory import MemorySystem
from .specs import (
    A10_7850K_CPU,
    A10_7850K_GPU,
    HSA_UNIFIED,
    PCIE3_X16,
    R9_280X,
    CacheSpec,
    CPUSpec,
    GPUSpec,
    InterconnectSpec,
    MemoryTechnology,
    Precision,
    table2_rows,
)

__all__ = [
    "A10_7850K_CPU",
    "A10_7850K_GPU",
    "CacheSpec",
    "CacheStats",
    "ClockDomain",
    "CPUDevice",
    "CPUSpec",
    "FrequencyError",
    "FrequencyPlan",
    "GPUDevice",
    "GPUSpec",
    "HSA_UNIFIED",
    "Interconnect",
    "InterconnectSpec",
    "MemorySystem",
    "MemoryTechnology",
    "Occupancy",
    "PAPER_CORE_SWEEP_MHZ",
    "PAPER_MEMORY_SWEEP_MHZ",
    "PCIE3_X16",
    "Platform",
    "Precision",
    "R9_280X",
    "SetAssociativeCache",
    "TransferRecord",
    "VectorSetAssociativeCache",
    "validate_geometry",
    "latency_hiding_factor",
    "make_apu_platform",
    "make_dgpu_platform",
    "make_platform",
    "occupancy",
    "paper_sweep_grid",
    "table2_rows",
    "wavefronts_for",
]
