"""Devices and platforms.

A *platform* is what the paper calls an architecture: either the
CPU + discrete GPU pair across PCIe (Figure 1) or the APU with fused
CPU/GPU cores and unified memory (Figure 2).  Both platforms in the
paper use the same A10-7850K host CPU, which is also the OpenMP
baseline device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .frequency import ClockDomain
from .interconnect import Interconnect
from .memory import MemorySystem
from .specs import (
    A10_7850K_CPU,
    A10_7850K_GPU,
    HSA_UNIFIED,
    NVLINK2,
    PCIE3_X16,
    R9_280X,
    TESLA_V100,
    XEON_GOLD_HOST,
    CPUSpec,
    GPUSpec,
    Precision,
)


@dataclass
class CPUDevice:
    """The host CPU: OpenMP/serial baseline and fallback executor."""

    spec: CPUSpec

    @property
    def name(self) -> str:
        return self.spec.name

    def peak_flops(self, precision: Precision, threads: int | None = None) -> float:
        """Peak FLOP/s using ``threads`` cores (all cores by default)."""
        threads = self.spec.cores if threads is None else min(threads, self.spec.cores)
        per_core = (
            (self.spec.clock_mhz * 1e6)
            * self.spec.simd_width_sp
            * self.spec.flops_per_lane_per_cycle
        )
        rate = per_core * threads
        if precision is Precision.DOUBLE:
            rate *= self.spec.dp_rate_ratio
        return rate

    def memory_system(self) -> MemorySystem:
        """Host DRAM; the clock is fixed (the paper only sweeps the GPU)."""
        mhz = self.spec.memory_clock_mhz
        clock = ClockDomain(name="host-memory", default_mhz=mhz, min_mhz=mhz, max_mhz=mhz)
        return MemorySystem(
            technology=self.spec.memory_technology,
            peak_bandwidth_gbps=self.spec.peak_bandwidth_gbps,
            clock=clock,
            capacity_bytes=self.spec.system_memory_bytes,
        )


@dataclass
class GPUDevice:
    """A GCN GPU with independently programmable core and memory clocks."""

    spec: GPUSpec
    core_clock: ClockDomain = field(init=False)
    memory: MemorySystem = field(init=False)

    def __post_init__(self) -> None:
        self.core_clock = ClockDomain(
            name="core",
            default_mhz=self.spec.core_clock_mhz,
            min_mhz=self.spec.core_clock_range_mhz[0],
            max_mhz=self.spec.core_clock_range_mhz[1],
        )
        memory_clock = ClockDomain(
            name="memory",
            default_mhz=self.spec.memory_clock_mhz,
            min_mhz=self.spec.memory_clock_range_mhz[0],
            max_mhz=self.spec.memory_clock_range_mhz[1],
        )
        self.memory = MemorySystem(
            technology=self.spec.memory_technology,
            peak_bandwidth_gbps=self.spec.peak_bandwidth_gbps,
            clock=memory_clock,
            capacity_bytes=self.spec.device_memory_bytes,
        )

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def memory_clock(self) -> ClockDomain:
        return self.memory.clock

    def peak_flops(self, precision: Precision) -> float:
        """Peak FLOP/s at the currently programmed core clock."""
        rate = (
            self.spec.stream_processors
            * 2.0  # FMA: 2 FLOPs per lane per cycle
            * self.core_clock.hz
        )
        if precision is Precision.DOUBLE:
            rate *= self.spec.dp_rate_ratio
        return rate

    def reset_clocks(self) -> None:
        self.core_clock.reset()
        self.memory.clock.reset()


@dataclass
class Platform:
    """A host CPU plus one GPU accelerator and the link between them."""

    name: str
    host: CPUDevice
    gpu: GPUDevice
    interconnect: Interconnect
    #: Platform selector this instance was built from (``repro.exec.plan``
    #: constants: "apu" / "dgpu" / "v100").
    key: str = ""

    @property
    def is_apu(self) -> bool:
        """True when CPU and GPU share one coherent memory (no staging)."""
        return self.interconnect.is_unified

    @property
    def idle_watts(self) -> float:
        """Static draw of the whole platform (host + accelerator)."""
        return self.host.spec.power.idle_w + self.gpu.spec.power.idle_w

    def fresh(self) -> "Platform":
        """A new platform instance with default clocks and empty logs.

        Experiments mutate clocks and transfer logs; sweeps use this to
        start from a clean platform each time.
        """
        if self.key:
            return platform_for(self.key)
        return make_platform(apu=self.is_apu)


def make_dgpu_platform() -> Platform:
    """CPU + AMD Radeon R9 280X across PCIe (the paper's dGPU column)."""
    return Platform(
        name="dGPU (AMD Radeon R9 280X)",
        host=CPUDevice(spec=A10_7850K_CPU),
        gpu=GPUDevice(spec=R9_280X),
        interconnect=Interconnect(spec=PCIE3_X16),
        key="dgpu",
    )


def make_apu_platform() -> Platform:
    """AMD A10-7850K APU with HSA unified memory (the paper's APU column)."""
    return Platform(
        name="APU (AMD A10-7850K)",
        host=CPUDevice(spec=A10_7850K_CPU),
        gpu=GPUDevice(spec=A10_7850K_GPU),
        interconnect=Interconnect(spec=HSA_UNIFIED),
        key="apu",
    )


def make_v100_platform() -> Platform:
    """Xeon host + NVIDIA Tesla V100 over NVLink (the second vendor)."""
    return Platform(
        name="V100 (NVIDIA Tesla V100)",
        host=CPUDevice(spec=XEON_GOLD_HOST),
        gpu=GPUDevice(spec=TESLA_V100),
        interconnect=Interconnect(spec=NVLINK2),
        key="v100",
    )


#: Selector -> factory; keys match ``repro.exec.plan.APU/DGPU/V100``.
PLATFORM_FACTORIES = {
    "apu": make_apu_platform,
    "dgpu": make_dgpu_platform,
    "v100": make_v100_platform,
}


def platform_for(key: str) -> Platform:
    """Build a fresh platform from its plan selector string."""
    try:
        factory = PLATFORM_FACTORIES[key]
    except KeyError:
        raise ValueError(
            f"unknown platform {key!r}: expected one of {sorted(PLATFORM_FACTORIES)}"
        ) from None
    return factory()


def make_platform(apu: bool) -> Platform:
    """Factory used by sweeps: ``apu=False`` gives the discrete GPU."""
    return make_apu_platform() if apu else make_dgpu_platform()
