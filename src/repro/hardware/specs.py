"""Hardware specification catalog (Table II of the paper).

These dataclasses are the single source of truth for the platform
parameters used throughout the simulator.  The numbers come directly
from Table II, with a small number of micro-architectural facts
(wavefront size, SIMD organisation, caches) that Table II implies but
does not spell out, taken from the GCN 1.0 (Tahiti) and Kaveri
documentation the paper's Section II summarises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class MemoryTechnology(Enum):
    """DRAM technology of a device's attached memory (Table II)."""

    GDDR5 = "GDDR5"
    DDR3 = "DDR3"
    DDR4 = "DDR4"
    HBM2 = "HBM2"


class Precision(Enum):
    """Floating-point precision of a run (Figures 8 and 9 report both)."""

    SINGLE = "single"
    DOUBLE = "double"

    @property
    def bytes_per_element(self) -> int:
        return 4 if self is Precision.SINGLE else 8


@dataclass(frozen=True)
class PowerSpec:
    """Electrical envelope of one device, for the energy model.

    ``idle_w`` is the static (leakage + always-on) draw the device pays
    for every second it is powered, whatever it runs.  ``peak_dynamic_w``
    is the *additional* switching power at nominal clock under full
    utilisation; the energy model scales it quadratically with the core
    clock ratio and linearly with achieved utilisation
    (``repro.engine.energy``).  Idle + peak dynamic approximates the
    board TDP.
    """

    idle_w: float
    peak_dynamic_w: float

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.peak_dynamic_w < 0:
            raise ValueError("power draws must be non-negative")


@dataclass(frozen=True)
class CacheSpec:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int
    ways: int

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass(frozen=True)
class GPUSpec:
    """A GPU (or the GPU half of an APU) as described by Table II.

    ``stream_processors`` and clocks are verbatim Table II values; the
    SIMD organisation (4 lanes of 16 ALUs, 64-wide wavefronts) is from
    Section II-A of the paper.
    """

    name: str
    compute_units: int
    stream_processors: int
    core_clock_mhz: float
    core_clock_range_mhz: tuple[float, float]
    memory_clock_mhz: float
    memory_clock_range_mhz: tuple[float, float]
    memory_technology: MemoryTechnology
    device_memory_bytes: int
    local_memory_bytes: int  # LDS per CU
    peak_bandwidth_gbps: float  # GB/s at default memory clock
    peak_sp_gflops: float
    dp_rate_ratio: float  # DP throughput as a fraction of SP (1/4 or 1/16)
    wavefront_size: int = 64
    simd_per_cu: int = 4
    lanes_per_simd: int = 16
    vector_registers_per_simd: int = 256 * 64 * 4  # 64 KiB VGPR file per SIMD
    max_wavefronts_per_cu: int = 40
    l2_cache: CacheSpec = field(
        default_factory=lambda: CacheSpec(size_bytes=768 * 1024, line_bytes=64, ways=16)
    )
    power: PowerSpec = field(default_factory=lambda: PowerSpec(idle_w=0.0, peak_dynamic_w=0.0))

    def __post_init__(self) -> None:
        expected_sp = self.compute_units * self.simd_per_cu * self.lanes_per_simd
        if expected_sp != self.stream_processors:
            raise ValueError(
                f"{self.name}: {self.compute_units} CUs x {self.simd_per_cu} "
                f"SIMDs x {self.lanes_per_simd} lanes = {expected_sp}, but "
                f"stream_processors says {self.stream_processors}"
            )


@dataclass(frozen=True)
class CPUSpec:
    """The host CPU (both platforms use the A10-7850K's Steamroller cores)."""

    name: str
    cores: int
    clock_mhz: float
    simd_width_sp: int  # SP lanes per core (AVX = 8)
    flops_per_lane_per_cycle: float  # FMA issue per lane
    system_memory_bytes: int
    peak_bandwidth_gbps: float
    dp_rate_ratio: float = 0.5
    memory_technology: MemoryTechnology = MemoryTechnology.DDR3
    memory_clock_mhz: float = 1066.0
    llc: CacheSpec = field(
        default_factory=lambda: CacheSpec(size_bytes=4 * 1024 * 1024, line_bytes=64, ways=16)
    )
    power: PowerSpec = field(default_factory=lambda: PowerSpec(idle_w=0.0, peak_dynamic_w=0.0))

    @property
    def peak_sp_gflops(self) -> float:
        return (
            self.cores
            * (self.clock_mhz / 1e3)
            * self.simd_width_sp
            * self.flops_per_lane_per_cycle
        )


@dataclass(frozen=True)
class InterconnectSpec:
    """Link between host memory and device memory."""

    name: str
    bandwidth_gbps: float  # effective, not theoretical
    latency_s: float  # per-transfer fixed cost (driver + DMA setup)
    #: Power the link + DMA engines draw while a transfer is in flight
    #: (0 for unified memory: there is no staging copy to power).
    active_w: float = 0.0


#: AMD Radeon R9 280X (Tahiti, GCN 1.0) — Table II column 1.
R9_280X = GPUSpec(
    name="AMD Radeon R9 280X",
    compute_units=32,
    stream_processors=2048,
    core_clock_mhz=925.0,
    core_clock_range_mhz=(200.0, 1050.0),
    memory_clock_mhz=1250.0,
    memory_clock_range_mhz=(480.0, 1500.0),
    memory_technology=MemoryTechnology.GDDR5,
    device_memory_bytes=3 * 1024**3,
    local_memory_bytes=64 * 1024,
    peak_bandwidth_gbps=258.0,
    peak_sp_gflops=3800.0,
    dp_rate_ratio=0.25,
    power=PowerSpec(idle_w=45.0, peak_dynamic_w=205.0),  # 250 W board TDP
)

#: The 8-CU integrated GPU of the AMD A10-7850K (Kaveri) — Table II column 2.
#: Table II counts "12 compute units (4 CPU + 8 GPU)"; only the 8 GCN CUs
#: are vector units, i.e. 512 stream processors (the quoted 768 includes
#: CPU lanes).  738 GFLOPS = 512 x 2 x 0.72 GHz.
A10_7850K_GPU = GPUSpec(
    name="AMD A10-7850K (integrated GPU)",
    compute_units=8,
    stream_processors=512,
    core_clock_mhz=720.0,
    core_clock_range_mhz=(200.0, 720.0),
    memory_clock_mhz=1066.0,  # DDR3-2133
    memory_clock_range_mhz=(333.0, 1066.0),
    memory_technology=MemoryTechnology.DDR3,
    device_memory_bytes=2 * 1024**3,
    local_memory_bytes=64 * 1024,
    peak_bandwidth_gbps=33.0,
    peak_sp_gflops=738.0,
    dp_rate_ratio=1.0 / 16.0,
    l2_cache=CacheSpec(size_bytes=512 * 1024, line_bytes=64, ways=16),
    power=PowerSpec(idle_w=10.0, peak_dynamic_w=40.0),  # GPU share of the 95 W APU
)

#: Host processor for both platforms — 4 Steamroller cores at 3.7 GHz.
A10_7850K_CPU = CPUSpec(
    name="AMD A10-7850K (CPU cores)",
    cores=4,
    clock_mhz=3700.0,
    simd_width_sp=8,
    flops_per_lane_per_cycle=2.0,  # FMA
    system_memory_bytes=32 * 1024**3,
    peak_bandwidth_gbps=33.0,
    power=PowerSpec(idle_w=10.0, peak_dynamic_w=35.0),  # CPU share of the 95 W APU
)

#: NVIDIA Tesla V100 (Volta, SXM2) — the second-vendor device the 2015
#: paper could not include.  80 SMs; Volta pairs each SM's 64 FP32 cores
#: as 4 processing blocks of 16 lanes with 32-wide warps, which maps
#: onto the simulator's CU/SIMD/lane organisation directly.  15.7 SP
#: TFLOPS = 5120 x 2 x 1.53 GHz boost; HBM2 at 900 GB/s.  Per-compiler
#: behaviour on this device (Clang/XL/GCC/Cray OpenMP target offload)
#: lives in ``repro.models.omp_offload``.
TESLA_V100 = GPUSpec(
    name="NVIDIA Tesla V100 (SXM2 16GB)",
    compute_units=80,
    stream_processors=5120,
    core_clock_mhz=1530.0,
    core_clock_range_mhz=(500.0, 1530.0),
    memory_clock_mhz=877.0,  # HBM2
    memory_clock_range_mhz=(400.0, 877.0),
    memory_technology=MemoryTechnology.HBM2,
    device_memory_bytes=16 * 1024**3,
    local_memory_bytes=96 * 1024,  # unified shared mem/L1 carve-out per SM
    peak_bandwidth_gbps=900.0,
    peak_sp_gflops=15667.0,
    dp_rate_ratio=0.5,
    wavefront_size=32,
    max_wavefronts_per_cu=64,
    l2_cache=CacheSpec(size_bytes=6 * 1024 * 1024, line_bytes=64, ways=16),
    power=PowerSpec(idle_w=50.0, peak_dynamic_w=250.0),  # 300 W SXM2 TDP
)

#: Host processor of the V100 node — a Skylake-SP Xeon class part
#: (AVX-512: 16 SP lanes, 2 FMA pipes).
XEON_GOLD_HOST = CPUSpec(
    name="Intel Xeon Gold 6148 (host)",
    cores=20,
    clock_mhz=2400.0,
    simd_width_sp=16,
    flops_per_lane_per_cycle=2.0,  # FMA
    system_memory_bytes=192 * 1024**3,
    peak_bandwidth_gbps=128.0,
    memory_technology=MemoryTechnology.DDR4,
    memory_clock_mhz=1333.0,  # DDR4-2666
    llc=CacheSpec(size_bytes=27 * 1024 * 1024, line_bytes=64, ways=11),
    power=PowerSpec(idle_w=45.0, peak_dynamic_w=105.0),  # 150 W TDP
)

#: PCIe 3.0 x16 as achieved by the Catalyst v14.6 runtime (effective).
PCIE3_X16 = InterconnectSpec(
    name="PCIe 3.0 x16", bandwidth_gbps=8.0, latency_s=20e-6, active_w=10.0
)

#: Zero-copy unified memory of the APU (HSA): no staging transfers.
HSA_UNIFIED = InterconnectSpec(name="HSA unified memory", bandwidth_gbps=float("inf"), latency_s=0.0)

#: NVLink 2.0 host link of an SXM2 V100 node (effective host<->device
#: bandwidth over a single 3-brick link, CUDA runtime launch latency).
NVLINK2 = InterconnectSpec(
    name="NVLink 2.0", bandwidth_gbps=45.0, latency_s=10e-6, active_w=15.0
)


def table2_rows() -> list[dict[str, str]]:
    """Render the Table II comparison the paper prints, for reports."""
    rows = []
    for label, gpu in (("AMD Radeon R9 280X", R9_280X), ("AMD A10-7850K", A10_7850K_GPU)):
        rows.append(
            {
                "Name": label,
                "Stream Processors": str(gpu.stream_processors),
                "Compute Units": str(gpu.compute_units),
                "Core Clock Frequency": f"{gpu.core_clock_mhz:.0f} MHz",
                "Memory Bus type": gpu.memory_technology.value,
                "Device Memory": f"{gpu.device_memory_bytes // 1024**3} GB",
                "Local Memory": f"{gpu.local_memory_bytes // 1024} KB",
                "Peak Bandwidth": f"{gpu.peak_bandwidth_gbps:.0f} GB/s",
                "Peak Single Precision Perf.": f"{gpu.peak_sp_gflops:.0f} GFLOPS",
                "Host Processor": A10_7850K_CPU.name,
                "CPU frequency": f"{A10_7850K_CPU.clock_mhz / 1e3:.1f} GHz",
                "System memory": f"{A10_7850K_CPU.system_memory_bytes // 1024**3} GB",
            }
        )
    return rows
