"""Hardware specification catalog (Table II of the paper).

These dataclasses are the single source of truth for the platform
parameters used throughout the simulator.  The numbers come directly
from Table II, with a small number of micro-architectural facts
(wavefront size, SIMD organisation, caches) that Table II implies but
does not spell out, taken from the GCN 1.0 (Tahiti) and Kaveri
documentation the paper's Section II summarises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class MemoryTechnology(Enum):
    """DRAM technology of a device's attached memory (Table II)."""

    GDDR5 = "GDDR5"
    DDR3 = "DDR3"


class Precision(Enum):
    """Floating-point precision of a run (Figures 8 and 9 report both)."""

    SINGLE = "single"
    DOUBLE = "double"

    @property
    def bytes_per_element(self) -> int:
        return 4 if self is Precision.SINGLE else 8


@dataclass(frozen=True)
class CacheSpec:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int
    ways: int

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass(frozen=True)
class GPUSpec:
    """A GPU (or the GPU half of an APU) as described by Table II.

    ``stream_processors`` and clocks are verbatim Table II values; the
    SIMD organisation (4 lanes of 16 ALUs, 64-wide wavefronts) is from
    Section II-A of the paper.
    """

    name: str
    compute_units: int
    stream_processors: int
    core_clock_mhz: float
    core_clock_range_mhz: tuple[float, float]
    memory_clock_mhz: float
    memory_clock_range_mhz: tuple[float, float]
    memory_technology: MemoryTechnology
    device_memory_bytes: int
    local_memory_bytes: int  # LDS per CU
    peak_bandwidth_gbps: float  # GB/s at default memory clock
    peak_sp_gflops: float
    dp_rate_ratio: float  # DP throughput as a fraction of SP (1/4 or 1/16)
    wavefront_size: int = 64
    simd_per_cu: int = 4
    lanes_per_simd: int = 16
    vector_registers_per_simd: int = 256 * 64 * 4  # 64 KiB VGPR file per SIMD
    max_wavefronts_per_cu: int = 40
    l2_cache: CacheSpec = field(
        default_factory=lambda: CacheSpec(size_bytes=768 * 1024, line_bytes=64, ways=16)
    )

    def __post_init__(self) -> None:
        expected_sp = self.compute_units * self.simd_per_cu * self.lanes_per_simd
        if expected_sp != self.stream_processors:
            raise ValueError(
                f"{self.name}: {self.compute_units} CUs x {self.simd_per_cu} "
                f"SIMDs x {self.lanes_per_simd} lanes = {expected_sp}, but "
                f"stream_processors says {self.stream_processors}"
            )


@dataclass(frozen=True)
class CPUSpec:
    """The host CPU (both platforms use the A10-7850K's Steamroller cores)."""

    name: str
    cores: int
    clock_mhz: float
    simd_width_sp: int  # SP lanes per core (AVX = 8)
    flops_per_lane_per_cycle: float  # FMA issue per lane
    system_memory_bytes: int
    peak_bandwidth_gbps: float
    dp_rate_ratio: float = 0.5
    llc: CacheSpec = field(
        default_factory=lambda: CacheSpec(size_bytes=4 * 1024 * 1024, line_bytes=64, ways=16)
    )

    @property
    def peak_sp_gflops(self) -> float:
        return (
            self.cores
            * (self.clock_mhz / 1e3)
            * self.simd_width_sp
            * self.flops_per_lane_per_cycle
        )


@dataclass(frozen=True)
class InterconnectSpec:
    """Link between host memory and device memory."""

    name: str
    bandwidth_gbps: float  # effective, not theoretical
    latency_s: float  # per-transfer fixed cost (driver + DMA setup)


#: AMD Radeon R9 280X (Tahiti, GCN 1.0) — Table II column 1.
R9_280X = GPUSpec(
    name="AMD Radeon R9 280X",
    compute_units=32,
    stream_processors=2048,
    core_clock_mhz=925.0,
    core_clock_range_mhz=(200.0, 1050.0),
    memory_clock_mhz=1250.0,
    memory_clock_range_mhz=(480.0, 1500.0),
    memory_technology=MemoryTechnology.GDDR5,
    device_memory_bytes=3 * 1024**3,
    local_memory_bytes=64 * 1024,
    peak_bandwidth_gbps=258.0,
    peak_sp_gflops=3800.0,
    dp_rate_ratio=0.25,
)

#: The 8-CU integrated GPU of the AMD A10-7850K (Kaveri) — Table II column 2.
#: Table II counts "12 compute units (4 CPU + 8 GPU)"; only the 8 GCN CUs
#: are vector units, i.e. 512 stream processors (the quoted 768 includes
#: CPU lanes).  738 GFLOPS = 512 x 2 x 0.72 GHz.
A10_7850K_GPU = GPUSpec(
    name="AMD A10-7850K (integrated GPU)",
    compute_units=8,
    stream_processors=512,
    core_clock_mhz=720.0,
    core_clock_range_mhz=(200.0, 720.0),
    memory_clock_mhz=1066.0,  # DDR3-2133
    memory_clock_range_mhz=(333.0, 1066.0),
    memory_technology=MemoryTechnology.DDR3,
    device_memory_bytes=2 * 1024**3,
    local_memory_bytes=64 * 1024,
    peak_bandwidth_gbps=33.0,
    peak_sp_gflops=738.0,
    dp_rate_ratio=1.0 / 16.0,
    l2_cache=CacheSpec(size_bytes=512 * 1024, line_bytes=64, ways=16),
)

#: Host processor for both platforms — 4 Steamroller cores at 3.7 GHz.
A10_7850K_CPU = CPUSpec(
    name="AMD A10-7850K (CPU cores)",
    cores=4,
    clock_mhz=3700.0,
    simd_width_sp=8,
    flops_per_lane_per_cycle=2.0,  # FMA
    system_memory_bytes=32 * 1024**3,
    peak_bandwidth_gbps=33.0,
)

#: PCIe 3.0 x16 as achieved by the Catalyst v14.6 runtime (effective).
PCIE3_X16 = InterconnectSpec(name="PCIe 3.0 x16", bandwidth_gbps=8.0, latency_s=20e-6)

#: Zero-copy unified memory of the APU (HSA): no staging transfers.
HSA_UNIFIED = InterconnectSpec(name="HSA unified memory", bandwidth_gbps=float("inf"), latency_s=0.0)


def table2_rows() -> list[dict[str, str]]:
    """Render the Table II comparison the paper prints, for reports."""
    rows = []
    for label, gpu in (("AMD Radeon R9 280X", R9_280X), ("AMD A10-7850K", A10_7850K_GPU)):
        rows.append(
            {
                "Name": label,
                "Stream Processors": str(gpu.stream_processors),
                "Compute Units": str(gpu.compute_units),
                "Core Clock Frequency": f"{gpu.core_clock_mhz:.0f} MHz",
                "Memory Bus type": gpu.memory_technology.value,
                "Device Memory": f"{gpu.device_memory_bytes // 1024**3} GB",
                "Local Memory": f"{gpu.local_memory_bytes // 1024} KB",
                "Peak Bandwidth": f"{gpu.peak_bandwidth_gbps:.0f} GB/s",
                "Peak Single Precision Perf.": f"{gpu.peak_sp_gflops:.0f} GFLOPS",
                "Host Processor": A10_7850K_CPU.name,
                "CPU frequency": f"{A10_7850K_CPU.clock_mhz / 1e3:.1f} GHz",
                "System memory": f"{A10_7850K_CPU.system_memory_bytes // 1024**3} GB",
            }
        )
    return rows
