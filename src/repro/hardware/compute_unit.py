"""Compute-unit and occupancy model for GCN-style GPUs.

Section II-A: "Each CU consists of 4 lanes of 16 ALUs which results in
64 GPU threads being executed in a single-instruction-multiple-data
fashion.  CUs also consist of parallel resources like registers and a
highly-banked local data store which are shared among the threads
executing on that CU."

Occupancy (resident wavefronts per CU) determines how much memory
latency the CU can hide; it is limited by vector registers, LDS usage
per workgroup and the hardware wavefront slots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .specs import GPUSpec


@dataclass(frozen=True)
class Occupancy:
    """Occupancy outcome for one kernel on one GPU."""

    wavefronts_per_cu: int
    limited_by: str  # "registers" | "lds" | "slots" | "workitems"

    @property
    def fraction(self) -> float:
        """Occupancy relative to a nominal 40-slot CU (bounded to 1)."""
        return min(1.0, self.wavefronts_per_cu / 40.0)


def wavefronts_for(items: int, wavefront_size: int) -> int:
    """Number of wavefronts needed to cover ``items`` work-items."""
    if items <= 0:
        raise ValueError("work-item count must be positive")
    return math.ceil(items / wavefront_size)


def occupancy(
    gpu: GPUSpec,
    registers_per_thread: int,
    lds_bytes_per_workgroup: int,
    workgroup_size: int,
    total_work_items: int,
) -> Occupancy:
    """Compute resident wavefronts per CU for a kernel configuration.

    Follows the standard GCN occupancy calculation: the VGPR file per
    SIMD, the 64 KiB LDS per CU, and the hardware wavefront slots each
    impose a ceiling; the minimum wins.
    """
    if workgroup_size <= 0:
        raise ValueError("workgroup size must be positive")
    if workgroup_size > gpu.wavefront_size and workgroup_size % gpu.wavefront_size != 0:
        raise ValueError(
            f"workgroup size {workgroup_size} larger than a wavefront must be "
            f"a multiple of the wavefront size ({gpu.wavefront_size})"
        )
    registers_per_thread = max(1, registers_per_thread)

    # Register limit: VGPRs are allocated per SIMD in units of wavefronts.
    vgprs_per_simd = gpu.vector_registers_per_simd // 4  # 32-bit registers
    waves_by_regs = vgprs_per_simd // (registers_per_thread * gpu.wavefront_size)
    waves_by_regs *= gpu.simd_per_cu

    # LDS limit: workgroups per CU bounded by LDS capacity.
    waves_per_group = max(1, math.ceil(workgroup_size / gpu.wavefront_size))
    if lds_bytes_per_workgroup > 0:
        if lds_bytes_per_workgroup > gpu.local_memory_bytes:
            raise ValueError(
                f"workgroup requests {lds_bytes_per_workgroup} B of LDS, CU has "
                f"{gpu.local_memory_bytes} B"
            )
        groups_by_lds = gpu.local_memory_bytes // lds_bytes_per_workgroup
        waves_by_lds = groups_by_lds * waves_per_group
    else:
        # No LDS use: the LDS can never be the limiter.
        waves_by_lds = 10**9

    waves_by_slots = gpu.max_wavefronts_per_cu

    # A kernel that does not launch enough wavefronts cannot fill the CUs.
    total_waves = wavefronts_for(total_work_items, gpu.wavefront_size)
    waves_by_launch = max(1, total_waves // gpu.compute_units)

    candidates = {
        "registers": max(1, waves_by_regs),
        "lds": max(1, waves_by_lds),
        "slots": waves_by_slots,
        "workitems": waves_by_launch,
    }
    limiter = min(candidates, key=candidates.get)
    return Occupancy(wavefronts_per_cu=candidates[limiter], limited_by=limiter)


def latency_hiding_factor(occ: Occupancy, saturation_waves: int = 8) -> float:
    """How well resident wavefronts hide memory latency, in (0, 1].

    Empirically on GCN a handful of wavefronts per CU suffices to cover
    ALU latency and most DRAM latency for streaming kernels; we model a
    smooth saturating curve ``w / (w + k)`` normalised so that
    ``saturation_waves`` resident wavefronts reach ~0.9 efficiency.
    """
    w = occ.wavefronts_per_cu
    k = saturation_waves / 9.0  # w=saturation -> 0.9
    return w / (w + k)
