"""Clock domains and DVFS support.

The paper's Figure 7 sweeps the discrete GPU's core clock (200-1000 MHz)
and memory clock (480-1250 MHz) independently to classify each proxy
application as compute-bound, memory-bound or balanced.  This module
models those two frequency domains as independently adjustable clocks
with hardware-defined legal ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class FrequencyError(ValueError):
    """Raised when a clock is programmed outside its legal range."""


@dataclass
class ClockDomain:
    """One independently scalable clock domain (e.g. GPU core, GDDR5).

    Parameters
    ----------
    name:
        Human-readable domain name, e.g. ``"core"`` or ``"memory"``.
    default_mhz:
        The shipping frequency of the domain (Table II of the paper).
    min_mhz, max_mhz:
        Legal DVFS range.  The paper sweeps 200-1000 MHz core and
        480-1250 MHz memory on the R9 280X.
    """

    name: str
    default_mhz: float
    min_mhz: float
    max_mhz: float
    current_mhz: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.min_mhz <= 0 or self.max_mhz < self.min_mhz:
            raise FrequencyError(
                f"invalid range [{self.min_mhz}, {self.max_mhz}] for clock "
                f"domain {self.name!r}"
            )
        if not self.min_mhz <= self.default_mhz <= self.max_mhz:
            raise FrequencyError(
                f"default {self.default_mhz} MHz outside legal range of "
                f"clock domain {self.name!r}"
            )
        if not self.current_mhz:
            self.current_mhz = self.default_mhz

    @property
    def hz(self) -> float:
        """Current frequency in Hz."""
        return self.current_mhz * 1e6

    @property
    def ghz(self) -> float:
        """Current frequency in GHz."""
        return self.current_mhz / 1e3

    def set(self, mhz: float) -> None:
        """Program the domain to ``mhz``, validating the legal range."""
        if not self.min_mhz <= mhz <= self.max_mhz:
            raise FrequencyError(
                f"{mhz} MHz outside [{self.min_mhz}, {self.max_mhz}] for "
                f"clock domain {self.name!r}"
            )
        self.current_mhz = float(mhz)

    def reset(self) -> None:
        """Return the domain to its shipping frequency."""
        self.current_mhz = self.default_mhz

    def scale_vs_default(self) -> float:
        """Ratio of the current frequency to the shipping frequency."""
        return self.current_mhz / self.default_mhz


@dataclass
class FrequencyPlan:
    """A (core, memory) frequency pair used by sweep experiments."""

    core_mhz: float
    memory_mhz: float

    def apply(self, core: ClockDomain, memory: ClockDomain) -> None:
        core.set(self.core_mhz)
        memory.set(self.memory_mhz)


#: The exact sweep grid of Figure 7 (MHz).
PAPER_CORE_SWEEP_MHZ = (200, 300, 400, 500, 600, 700, 800, 900, 1000)
PAPER_MEMORY_SWEEP_MHZ = (480, 590, 700, 810, 920, 1030, 1140, 1250)


def paper_sweep_grid() -> list[FrequencyPlan]:
    """All (core, memory) combinations measured in Figure 7."""
    return [
        FrequencyPlan(core_mhz=c, memory_mhz=m)
        for m in PAPER_MEMORY_SWEEP_MHZ
        for c in PAPER_CORE_SWEEP_MHZ
    ]
