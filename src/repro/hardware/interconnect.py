"""Host<->device interconnect models.

The discrete GPU sits behind PCIe and pays an explicit staging cost per
transfer (Section II-A); the APU's unified memory eliminates transfers
entirely (Section II-B).  The paper's central dGPU-vs-APU result hinges
on who pays these costs and how often — the programmer (OpenCL, once
per phase) or the compiler (C++ AMP / OpenACC, conservatively per
launch).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .specs import InterconnectSpec


@dataclass
class TransferRecord:
    """One host<->device copy, for accounting and tests."""

    nbytes: int
    direction: str  # "h2d" | "d2h"
    seconds: float


@dataclass
class Interconnect:
    """A link with fixed per-transfer latency plus bandwidth-limited cost."""

    spec: InterconnectSpec
    log: list[TransferRecord] = field(default_factory=list)

    @property
    def is_unified(self) -> bool:
        """True when host and device share one coherent memory (APU)."""
        return self.spec.bandwidth_gbps == float("inf")

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` across the link (0 when unified)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.is_unified or nbytes == 0:
            return 0.0
        return self.spec.latency_s + nbytes / (self.spec.bandwidth_gbps * 1e9)

    def transfer(self, nbytes: int, direction: str) -> float:
        """Record a transfer and return its simulated duration."""
        if direction not in ("h2d", "d2h"):
            raise ValueError(f"direction must be 'h2d' or 'd2h', got {direction!r}")
        seconds = self.transfer_time(nbytes)
        self.log.append(TransferRecord(nbytes=nbytes, direction=direction, seconds=seconds))
        return seconds

    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.log)

    def total_bytes(self, direction: str | None = None) -> int:
        return sum(
            record.nbytes
            for record in self.log
            if direction is None or record.direction == direction
        )

    def reset(self) -> None:
        self.log.clear()
