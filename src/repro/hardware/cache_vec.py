"""Vectorized batch set-associative cache simulator.

The scalar reference model (:mod:`repro.hardware.cache`) replays one
Python dict operation per byte address — ~200k interpreter iterations
per (pattern, cache) characterization.  This engine consumes whole
int64 address arrays instead:

1. addresses are mapped to (set, tag) pairs vectorially;
2. accesses are bucketed per set with one composite-key sort
   (``set << 32 | position`` — unique keys, so a plain quicksort
   yields the stable per-set program order) plus a bincount;
3. adjacent same-line touches within a set are collapsed up front:
   a re-touch of the MRU line is a guaranteed hit that cannot change
   the LRU order, so whole runs (a 16-element unit-stride sweep of one
   line, a binary search re-probing the shared root) are counted
   without simulating them;
4. the surviving per-set LRU state machines advance in *rounds*:
   round ``r`` applies the ``r``-th access of every still-active set
   at once, as numpy ops over a compact ``(sets, ways)`` tag/timestamp
   matrix.

The Python-level loop count therefore drops from the number of
accesses to the *maximum per-set depth after collapsing* — tens to a
few hundred rounds for the traces the generators emit.  The handful
of sets hit far deeper than the rest (the set holding a binary
search's root, or a fully-associative ``sets == 1`` geometry) would
stretch the round loop out, so once fewer than ``tail_cutoff`` sets
remain active the stragglers finish through the exact scalar per-set
dict machine; sets are independent, which makes the split lossless.

Both paths implement the same LRU policy, so the engine produces
:class:`~repro.hardware.cache.CacheStats` **bit-identical** to the
scalar model on any trace (asserted by the differential suite in
``tests/hardware/test_cache_vec.py``).
"""

from __future__ import annotations

import numpy as np

from .cache import CacheStats, validate_geometry
from .specs import CacheSpec

#: Tag value marking an empty way (legal tags are non-negative).
EMPTY = -1

#: Cost-model constants picking where the round loop hands off to the
#: scalar tail: per-round numpy dispatch overhead, per-(element x way)
#: round work, and per-access scalar dict cost, all in arbitrary
#: consistent units (microseconds on the calibration machine).  Only
#: their ratios matter, and only for speed — any split is exact.
ROUND_CALL_COST = 15.0
ROUND_ELEM_COST = 0.0014
SCALAR_ACCESS_COST = 0.22


class VectorSetAssociativeCache:
    """An LRU set-associative cache replaying whole address arrays.

    State is two ``(sets, ways)`` int64 matrices: the resident tag per
    way (``EMPTY`` when invalid) and the logical timestamp of its last
    touch.  Timestamps only ever compare within one set row, so a
    per-replay round counter — identical for every set touched in the
    same round — orders ways exactly like the scalar model's dict
    refresh order.  State persists across :meth:`replay` calls, so the
    warm-up/measure protocol of ``repro.engine.trace`` works unchanged.

    ``tail_cutoff`` overrides where the round loop hands the deepest
    sets to the scalar per-set machine; the default (``None``) picks
    the split from a dispatch-vs-element cost model per replay.  A
    cutoff of 0 forces pure rounds, a huge cutoff forces pure scalar —
    the split affects speed only, never stats (the differential tests
    run both extremes).
    """

    def __init__(self, spec: CacheSpec, tail_cutoff: int | None = None) -> None:
        validate_geometry(spec)
        self.spec = spec
        self.n_sets = spec.sets
        self.tail_cutoff = tail_cutoff
        self._tags = np.full((self.n_sets, spec.ways), EMPTY, dtype=np.int64)
        self._times = np.full((self.n_sets, spec.ways), EMPTY, dtype=np.int64)
        # Starting the clock at `ways` leaves room to rank-compress a
        # row's resident timestamps into [clock - ways, clock) while
        # keeping them above the EMPTY sentinel.
        self._clock = spec.ways
        self.stats = CacheStats()

    def reset(self) -> None:
        """Flush contents and zero the counters."""
        self._tags.fill(EMPTY)
        self._times.fill(EMPTY)
        self._clock = self.spec.ways
        self.stats = CacheStats()

    @property
    def resident_lines(self) -> int:
        """Number of lines currently cached (for invariants in tests)."""
        return int((self._tags != EMPTY).sum())

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit (API parity with
        the scalar engine — batches should use :meth:`replay`)."""
        return self.replay(np.array([address], dtype=np.int64)).hits == 1

    def replay(self, addresses: np.ndarray) -> CacheStats:
        """Replay a byte-address array, returning the stats delta."""
        addrs = np.asarray(addresses, dtype=np.int64)
        before = self.stats.copy()
        if addrs.size:
            if addrs.min() < 0:
                raise ValueError("vector engine requires non-negative addresses")
            self._replay_array(addrs)
        return self.stats.since(before)

    # -- internals -----------------------------------------------------

    def _replay_array(self, addrs: np.ndarray) -> None:
        n = int(addrs.size)
        line_bytes = self.spec.line_bytes
        if line_bytes & (line_bytes - 1):
            lines = addrs // line_bytes
        else:
            lines = addrs >> (line_bytes.bit_length() - 1)

        # Collapse consecutive touches of the same line before doing
        # anything else: a re-touch of a set's MRU line is a hit that
        # leaves the LRU order unchanged, so the run's tail needs
        # counting, not simulating.  Unit-stride sweeps (16 touches per
        # 64-byte line) shrink ~16x here, before the sort.
        hits = 0
        if n > 1:
            same = lines[1:] == lines[:-1]
            runs = int(same.sum())
            if runs:
                hits += runs
                keep = np.empty(n, dtype=bool)
                keep[0] = True
                np.logical_not(same, out=keep[1:])
                lines = lines[keep]
        m = int(lines.size)
        set_idx = lines % self.n_sets

        # Bucket accesses per set.  Keys are unique (position in the
        # low bits), so the default sort is effectively stable and each
        # set's program order — the only order LRU depends on — is kept.
        key = (set_idx << 32) | np.arange(m, dtype=np.int64)
        key.sort()
        s_sets = key >> 32
        s_tags = lines[key & 0xFFFFFFFF]

        # Same collapse again, now per set: interleaved streams that
        # alternate sets in trace order become adjacent once bucketed.
        if m > 1:
            keep = np.empty(m, dtype=bool)
            keep[0] = True
            np.logical_or(
                s_sets[1:] != s_sets[:-1], s_tags[1:] != s_tags[:-1], out=keep[1:]
            )
            kept = int(keep.sum())
            if kept < m:
                hits += m - kept
                s_sets = s_sets[keep]
                s_tags = s_tags[keep]

        counts = np.bincount(s_sets, minlength=self.n_sets)
        starts = np.zeros(self.n_sets + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])

        # Compact the touched sets' state rows, shallowest first: the
        # rows active in round r are then always the suffix.
        touched = np.nonzero(counts)[0]
        asc = touched[np.argsort(counts[touched], kind="stable")]
        depths = counts[asc]
        row_start = starts[asc]
        ctags = self._tags[asc]
        ctimes = self._times[asc]
        n_rows = int(asc.size)

        # Every miss either fills an empty way or evicts, so evictions
        # fall out of the occupancy delta — no per-round bookkeeping.
        resident_before = int((ctags != EMPTY).sum())

        r_stop = self._pick_round_stop(depths)

        base = self._clock
        if r_stop:
            round_tags, round_bounds = self._round_major(
                s_tags, s_sets, starts, asc, depths, row_start, r_stop
            )
            lo_of = np.searchsorted(depths, np.arange(r_stop), side="right")
            tag_bits = int(s_tags.max()).bit_length() + 1
            time_bits = (self.spec.ways + r_stop).bit_length()
            if tag_bits + time_bits <= 62:
                hits += self._run_rounds_packed(
                    ctags, ctimes, round_tags, round_bounds, lo_of, tag_bits, r_stop, base
                )
            else:
                hits += self._run_rounds(
                    ctags, ctimes, round_tags, round_bounds, lo_of, r_stop, base
                )

        # Scalar tail: the deepest sets finish through the exact
        # per-set dict machine (identical policy, no round overhead).
        for row in range(
            int(np.searchsorted(depths, r_stop, side="right")), n_rows
        ):
            seq = s_tags[row_start[row] + r_stop : row_start[row] + depths[row]]
            hits += self._scalar_advance(ctags[row], ctimes[row], seq, int(depths[row]))

        resident_after = int((ctags != EMPTY).sum())
        self._tags[asc] = ctags
        self._times[asc] = ctimes
        self._clock = base + int(depths[-1])
        misses = n - hits
        self.stats.accesses += n
        self.stats.hits += hits
        self.stats.misses += misses
        self.stats.evictions += misses - (resident_after - resident_before)

    def _pick_round_stop(self, depths: np.ndarray) -> int:
        """How many rounds to run before the scalar tail takes over.

        The cost of stopping after ``r`` rounds is the dispatch and
        element work of those rounds plus the scalar dict cost of every
        access deeper than ``r``.  That function is piecewise linear in
        ``r`` with vertices at the distinct per-set depths, so the
        minimum is found by evaluating every vertex (plus r=0) at once.
        Uniformly deep sets keep the rounds running to the end; one
        monster set (a binary search's root, or ``sets == 1``) makes
        the rounds stop early and go scalar.  Any choice is exact —
        this only tunes speed.
        """
        if self.tail_cutoff is not None:
            n_rows = int(depths.size)
            if n_rows > self.tail_cutoff:
                return int(depths[n_rows - self.tail_cutoff - 1])
            return 0
        total = int(depths.sum())
        # Candidate stops: r=0 and each distinct depth.  At r=depths[j],
        # rounds have processed sum(min(d_i, r)) accesses.
        candidates = np.concatenate(([0], depths))
        prefix = np.concatenate(([0], np.cumsum(depths)))
        n_deeper = depths.size - np.searchsorted(depths, candidates, side="right")
        processed = prefix[depths.size - n_deeper] + n_deeper * candidates
        cost = (
            ROUND_CALL_COST * candidates
            + ROUND_ELEM_COST * self.spec.ways * processed
            + SCALAR_ACCESS_COST * (total - processed)
        )
        return int(candidates[int(np.argmin(cost))])

    def _run_rounds_packed(
        self,
        ctags: np.ndarray,
        ctimes: np.ndarray,
        round_tags: np.ndarray,
        round_bounds: np.ndarray,
        lo_of: np.ndarray,
        tag_bits: int,
        r_stop: int,
        base: int,
    ) -> int:
        """Round loop over a packed ``rank << tag_bits | tag`` state.

        Packing collapses the loop body to one comparison, one where,
        one argmin and one scatter per round: the row minimum of
        ``where(tag match, -2, packed)`` is the matched way on a hit
        (-2 underflows the EMPTY sentinel -1) and the empty-or-LRU
        victim on a miss, because rank-compressed timestamps occupy the
        high bits.  Hit counting is deferred: each round's row minima
        land in one buffer, summed once.  Returns the hit count.
        """
        ways = self.spec.ways
        n_rows = int(ctags.shape[0])
        row_ids = np.arange(n_rows)
        # Rank-compress resident timestamps to 0..ways-1 per row; round
        # r then writes time ways+r, strictly above every resident.
        order = np.argsort(ctimes, axis=1, kind="stable")
        ranks = np.empty_like(order)
        ranks[row_ids[:, None], order] = np.arange(ways, dtype=np.int64)[None, :]
        packed = (ranks << tag_bits) | ctags
        packed[ctags == EMPTY] = -1

        # Narrow state halves the memory traffic of the hot loop when
        # (rank, tag) fits 31 bits (the sentinels need the sign).
        if tag_bits + (ways + r_stop).bit_length() <= 31:
            dtype = np.int32
            packed = packed.astype(dtype)
            round_tags = round_tags.astype(dtype)
        else:
            dtype = np.int64
        tag_mask = (dtype(1) << tag_bits) - dtype(1)
        matched = dtype(-2)
        vmin = np.empty(int(round_bounds[-1]), dtype=dtype)
        for r in range(r_stop):
            lo = int(lo_of[r])
            t = round_tags[round_bounds[r] : round_bounds[r + 1]]
            prows = packed[lo:]
            val = np.where((prows & tag_mask) == t[:, None], matched, prows)
            way = val.argmin(axis=1)
            rows = row_ids[: n_rows - lo]
            vmin[round_bounds[r] : round_bounds[r + 1]] = val[rows, way]
            prows[rows, way] = ((ways + r) << tag_bits) | t

        # Unpack; packed time p maps to global time base - ways + p,
        # which keeps residents-by-rank just below base and the round
        # writes at exactly base + r (the clock started at `ways`, so
        # these stay above EMPTY).
        valid = packed != -1
        np.copyto(ctags, packed & tag_mask, where=valid)
        np.copyto(ctags, EMPTY, where=~valid)
        np.copyto(ctimes, (packed >> tag_bits) + (base - ways), where=valid)
        np.copyto(ctimes, EMPTY, where=~valid)
        return int((vmin == matched).sum())

    def _run_rounds(
        self,
        ctags: np.ndarray,
        ctimes: np.ndarray,
        round_tags: np.ndarray,
        round_bounds: np.ndarray,
        lo_of: np.ndarray,
        r_stop: int,
        base: int,
    ) -> int:
        """Round loop over the plain (tags, times) state — the fallback
        when tags are too wide to pack.  Returns the hit count."""
        n_rows = int(ctags.shape[0])
        row_ids = np.arange(n_rows)
        hits = 0
        for r in range(r_stop):
            lo = int(lo_of[r])
            t = round_tags[round_bounds[r] : round_bounds[r + 1]]
            tag_rows = ctags[lo:]
            time_rows = ctimes[lo:]
            rows = row_ids[: n_rows - lo]

            cmp = tag_rows == t[:, None]
            way = cmp.argmax(axis=1)
            hit = cmp[rows, way]
            hits += int(hit.sum())
            # Empty ways carry timestamp EMPTY (< any real time), so
            # argmin fills invalid ways before evicting the LRU one.
            way = np.where(hit, way, time_rows.argmin(axis=1))
            tag_rows[rows, way] = t
            time_rows[rows, way] = base + r
        return hits

    @staticmethod
    def _round_major(
        s_tags: np.ndarray,
        s_sets: np.ndarray,
        starts: np.ndarray,
        asc: np.ndarray,
        depths: np.ndarray,
        row_start: np.ndarray,
        r_stop: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Transpose set-major tags so each round is a contiguous slice.

        Returns ``(round_tags, round_bounds)``: round ``r``'s tags, in
        compact-row order matching the active suffix, live at
        ``round_tags[round_bounds[r]:round_bounds[r+1]]``.  One sort of
        a packed (rank, depth-order, tag) key replaces the two numpy
        calls per round a gather would cost; tags too wide to pack fall
        back to exactly that per-round gather.
        """
        n_rows = int(asc.size)
        rank = np.arange(s_tags.size, dtype=np.int64) - starts[s_sets]
        order_of_set = np.empty(int(asc.max()) + 1, dtype=np.int64)
        order_of_set[asc] = np.arange(n_rows)
        row_of_access = order_of_set[s_sets]

        row_bits = max(1, int(n_rows - 1).bit_length())
        tag_bits = max(1, int(s_tags.max()).bit_length())
        rank_bits = max(1, int(r_stop - 1).bit_length())
        round_bounds = np.zeros(r_stop + 1, dtype=np.int64)
        active = np.searchsorted(depths, np.arange(r_stop), side="right")
        np.cumsum(n_rows - active, out=round_bounds[1:])

        if rank_bits + row_bits + tag_bits <= 63:
            in_rounds = rank < r_stop
            packed = (
                (rank[in_rounds] << (row_bits + tag_bits))
                | (row_of_access[in_rounds] << tag_bits)
                | s_tags[in_rounds]
            )
            packed.sort()
            return packed & ((1 << tag_bits) - 1), round_bounds

        # Wide tags: per-round gather from the set-major layout.
        round_tags = np.empty(int(round_bounds[-1]), dtype=np.int64)
        for r in range(r_stop):
            lo = int(active[r])
            round_tags[round_bounds[r] : round_bounds[r + 1]] = s_tags[row_start[lo:] + r]
        return round_tags, round_bounds

    def _scalar_advance(
        self,
        row_tags: np.ndarray,
        row_times: np.ndarray,
        seq: np.ndarray,
        depth: int,
    ) -> int:
        """Advance one set's LRU machine over ``seq``, dict-style.

        The row's occupancy is lifted into an insertion-ordered dict
        (LRU first), advanced exactly like the scalar engine, and
        written back with fresh in-row timestamps that preserve the
        final LRU order and stay below this replay's clock ceiling.
        ``depth`` is the set's full per-replay access depth, which
        bounds the rebased timestamps under ``clock + depth``.
        """
        valid = np.nonzero(row_tags != EMPTY)[0]
        by_age = valid[np.argsort(row_times[valid], kind="stable")]
        lru: dict[int, None] = dict.fromkeys(int(t) for t in row_tags[by_age])

        ways = self.spec.ways
        hits = 0
        for tag in seq.tolist():
            if tag in lru:
                del lru[tag]
                lru[tag] = None
                hits += 1
                continue
            if len(lru) >= ways:
                del lru[next(iter(lru))]
            lru[tag] = None

        row_tags.fill(EMPTY)
        row_times.fill(EMPTY)
        # Occupancy can never exceed clock + depth (each resident line
        # was once a miss), so this rebase stays non-negative and the
        # row's final LRU order lands just under the clock ceiling.
        rebase = self._clock + depth - len(lru)
        for way, tag in enumerate(lru):
            row_tags[way] = tag
            row_times[way] = rebase + way
        return hits
