"""Set-associative cache simulator (scalar reference engine).

Table I of the paper characterises each proxy application by its
last-level-cache miss rate (11% LULESH ... 53% XSBench).  Rather than
hard-coding those numbers, the reproduction measures them: each
application's kernels generate synthetic address traces (see
``repro.engine.trace``) that are replayed through this LRU
set-associative model.

This scalar engine is the differential-testing reference; the
production path is the vectorized batch engine
(``repro.hardware.cache_vec``), which produces bit-identical
:class:`CacheStats` from whole numpy address arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .specs import CacheSpec


def validate_geometry(spec: CacheSpec) -> None:
    """Reject specs whose size is not a whole number of sets."""
    if spec.size_bytes % (spec.line_bytes * spec.ways) != 0:
        raise ValueError(
            f"cache size {spec.size_bytes} not divisible by "
            f"line_bytes*ways = {spec.line_bytes * spec.ways}"
        )


@dataclass
class CacheStats:
    """Hit/miss counters accumulated over a trace replay."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 when no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate if self.accesses else 0.0

    def copy(self) -> "CacheStats":
        """Snapshot of the counters at this point in time."""
        return CacheStats(
            accesses=self.accesses,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
        )

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter delta between two snapshots (shared by both replay
        engines to report per-replay stats from cumulative counters)."""
        return CacheStats(
            accesses=self.accesses - earlier.accesses,
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
        )

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Combine counters from two replays (e.g. per-kernel stats)."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )


class SetAssociativeCache:
    """An LRU set-associative cache replaying byte-address traces.

    The implementation keeps one ordered dict of tags per set; Python
    dict ordering gives O(1) LRU updates.
    """

    def __init__(self, spec: CacheSpec) -> None:
        validate_geometry(spec)
        self.spec = spec
        self.n_sets = spec.sets
        self._sets: list[dict[int, None]] = [{} for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def reset(self) -> None:
        """Flush contents and zero the counters."""
        self._sets = [{} for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.spec.line_bytes
        return line % self.n_sets, line

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        set_idx, tag = self._locate(address)
        ways = self._sets[set_idx]
        self.stats.accesses += 1
        if tag in ways:
            # Refresh LRU position.
            del ways[tag]
            ways[tag] = None
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self.spec.ways:
            oldest = next(iter(ways))
            del ways[oldest]
            self.stats.evictions += 1
        ways[tag] = None
        return False

    def replay(self, addresses: Iterable[int]) -> CacheStats:
        """Replay a trace, returning the stats delta for this trace.

        Accepts any iterable of byte addresses, including numpy int
        arrays (converted once, not element by element).
        """
        if hasattr(addresses, "tolist"):  # numpy array: one bulk conversion
            addresses = addresses.tolist()  # type: ignore[union-attr]
        before = self.stats.copy()
        for address in addresses:
            self.access(address)
        return self.stats.since(before)

    @property
    def resident_lines(self) -> int:
        """Number of lines currently cached (for invariants in tests)."""
        return sum(len(ways) for ways in self._sets)
