"""Checkpoint journal: completed run outcomes, content-addressed, JSONL.

A paper-scale study that dies at 95% — crash, OOM, Ctrl-C — should
not re-price 95% of its matrix.  The executor journals every
completed :class:`~repro.exec.executor.RunOutcome` to an append-only
JSONL file keyed by the spec's content digest
(:meth:`~repro.exec.plan.RunSpec.content_key`); resuming a study
against the same journal restores those outcomes and executes only
what is missing.  Because specs are content-addressed, the journal is
robust to plan edits: only cells whose content actually matches are
skipped, anything changed re-runs.

The format is one JSON object per line — a header line first, then
``{"key", "label", "outcome"}`` records where ``outcome`` is the
pickled, base64-wrapped outcome (results hold nested frozen
dataclasses; pickle round-trips them exactly, which is what the
bit-identity guarantee needs).  Each record is flushed and fsynced as
it is written, and a truncated final line — the signature of dying
mid-write — is ignored on load.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from pathlib import Path
from typing import TYPE_CHECKING, IO

if TYPE_CHECKING:
    from .executor import RunOutcome

#: Header ``format`` value; bump on incompatible layout changes.
CHECKPOINT_FORMAT = "repro-checkpoint/1"


class CheckpointError(ValueError):
    """The file exists but is not a usable checkpoint journal."""


class CheckpointJournal:
    """Append-only journal of completed outcomes, keyed by spec content.

    Use :meth:`open` to load-or-create; :meth:`record` appends one
    outcome durably; :meth:`restore` answers the executor's "has this
    spec already run?" question.  The journal keeps outcomes for specs
    that are not in the current plan — resuming a narrowed study is
    fine — and ignores duplicate records (first write wins, matching
    the executor's dedup rule).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._outcomes: dict[str, "RunOutcome"] = {}
        self._handle: IO[str] | None = None

    # -- loading -------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path) -> "CheckpointJournal":
        """Open a journal, loading any outcomes it already holds."""
        journal = cls(path)
        if journal.path.exists() and journal.path.stat().st_size > 0:
            journal._load()
        return journal

    def _load(self) -> None:
        lines = self.path.read_text().splitlines()
        try:
            header = json.loads(lines[0])
            if header.get("format") != CHECKPOINT_FORMAT:
                raise CheckpointError(
                    f"{self.path}: not a checkpoint journal "
                    f"(format {header.get('format')!r}, expected {CHECKPOINT_FORMAT!r})"
                )
        except (json.JSONDecodeError, AttributeError, IndexError) as exc:
            raise CheckpointError(f"{self.path}: unreadable checkpoint header") from exc
        for line in lines[1:]:
            try:
                record = json.loads(line)
                key = record["key"]
                outcome = pickle.loads(base64.b64decode(record["outcome"]))
            except Exception:
                # A torn tail from dying mid-write: everything before
                # it is intact, so stop here and keep what we have.
                break
            self._outcomes.setdefault(key, outcome)

    # -- querying ------------------------------------------------------

    @property
    def outcomes(self) -> dict[str, "RunOutcome"]:
        return dict(self._outcomes)

    def restore(self, key: str) -> "RunOutcome | None":
        return self._outcomes.get(key)

    def __len__(self) -> int:
        return len(self._outcomes)

    def __contains__(self, key: str) -> bool:
        return key in self._outcomes

    # -- writing -------------------------------------------------------

    def _ensure_handle(self) -> IO[str]:
        if self._handle is None:
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
            if fresh:
                self._handle.write(json.dumps({"format": CHECKPOINT_FORMAT}) + "\n")
                self._handle.flush()
        return self._handle

    def record(self, outcome: "RunOutcome") -> None:
        """Durably append one completed outcome (idempotent per key)."""
        key = outcome.spec.content_key()
        if key in self._outcomes:
            return
        handle = self._ensure_handle()
        payload = base64.b64encode(pickle.dumps(outcome)).decode("ascii")
        handle.write(
            json.dumps({"key": key, "label": outcome.spec.label, "outcome": payload}) + "\n"
        )
        handle.flush()
        os.fsync(handle.fileno())
        self._outcomes[key] = outcome

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
