"""Work-sharding executor for study/sweep/ablation matrices.

Takes a flat list of :class:`~repro.exec.plan.RunSpec` descriptors,
deduplicates them by content, and executes each unique run exactly
once — either in-process (``max_workers=1``, the deterministic
reference path) or fanned out over a
:class:`concurrent.futures.ProcessPoolExecutor`.  Results are
reassembled in *submission* order, never completion order, so the
output is bit-identical for every worker count: each run is an
independent, deterministic simulation on a fresh platform, and the
kernel memo cache (:mod:`repro.engine.memo`) only short-circuits
recomputation of pure functions.

Every outcome carries per-run wall time and the cache hit/miss delta
its execution produced, aggregated into an :class:`ExecStats` that the
CLI reports — the speedup of the executor itself is observable.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Sequence

from ..apps.base import RunResult
from ..engine import memo
from .plan import RunSpec


@dataclass(frozen=True)
class RunOutcome:
    """One executed descriptor with its observability counters.

    ``wall_seconds`` and the cache counters describe the run that
    actually computed the result; deduplicated descriptors share the
    outcome of the first occurrence.
    """

    spec: RunSpec
    result: RunResult
    wall_seconds: float
    cache_hits: int
    cache_misses: int
    setup_hits: int = 0
    setup_misses: int = 0


@dataclass
class ExecStats:
    """Aggregate observability of one ``execute`` call."""

    requested_runs: int = 0
    unique_runs: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    #: Sum of per-run wall times — what a fully serial, cache-cold
    #: schedule would roughly cost; ``wall_seconds`` is what this
    #: schedule actually cost.
    run_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    setup_hits: int = 0
    setup_misses: int = 0
    per_run: list[tuple[str, float, int, int]] = field(default_factory=list)

    @property
    def deduplicated_runs(self) -> int:
        """Descriptors served by another descriptor's result."""
        return self.requested_runs - self.unique_runs

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def parallel_speedup(self) -> float:
        """run_seconds / wall_seconds — the observable executor gain."""
        return self.run_seconds / self.wall_seconds if self.wall_seconds else 0.0

    def summary(self) -> str:
        """Human-readable report block for the CLI."""
        lines = [
            f"runs: {self.requested_runs} requested, {self.unique_runs} executed "
            f"({self.deduplicated_runs} deduplicated), workers: {self.workers}",
            f"wall time: {self.wall_seconds:.2f} s "
            f"(sum of per-run times: {self.run_seconds:.2f} s, "
            f"executor speedup: {self.parallel_speedup:.2f}x)",
            f"kernel memo cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.cache_hit_rate:.1%} hit rate)",
            f"setup memo cache: {self.setup_hits} hits / {self.setup_misses} misses",
        ]
        return "\n".join(lines)

    def merge(self, other: "ExecStats") -> "ExecStats":
        """Combine stats of two executor calls (e.g. study + sweeps)."""
        return ExecStats(
            requested_runs=self.requested_runs + other.requested_runs,
            unique_runs=self.unique_runs + other.unique_runs,
            workers=max(self.workers, other.workers),
            wall_seconds=self.wall_seconds + other.wall_seconds,
            run_seconds=self.run_seconds + other.run_seconds,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            setup_hits=self.setup_hits + other.setup_hits,
            setup_misses=self.setup_misses + other.setup_misses,
            per_run=self.per_run + other.per_run,
        )


def execute_run(spec: RunSpec) -> RunOutcome:
    """Execute one descriptor in this process.

    Builds a fresh platform (with the spec's clock overrides), runs
    the port, and measures wall time plus the memo-cache delta.
    """
    # Lazy imports keep the exec package importable from low layers
    # and let pool workers pay the heavy app imports exactly once.
    from ..apps import APPS_BY_NAME
    from ..hardware.device import make_platform
    from ..models.base import ExecutionContext

    before = memo.KERNEL_CACHE.snapshot()
    setup_before = memo.SETUP_CACHE.snapshot()
    started = time.perf_counter()
    app = APPS_BY_NAME[spec.app]
    platform = make_platform(apu=spec.apu)
    if spec.core_mhz is not None:
        platform.gpu.core_clock.set(spec.core_mhz)
    if spec.memory_mhz is not None:
        platform.gpu.memory_clock.set(spec.memory_mhz)
    ctx = ExecutionContext(
        platform=platform,
        precision=spec.precision,
        execute_kernels=not spec.projection,
    )
    result = app.ports[spec.model](ctx, spec.config)
    wall = time.perf_counter() - started
    delta = memo.KERNEL_CACHE.snapshot().since(before)
    setup_delta = memo.SETUP_CACHE.snapshot().since(setup_before)
    return RunOutcome(
        spec=spec,
        result=result,
        wall_seconds=wall,
        cache_hits=delta.hits,
        cache_misses=delta.misses,
        setup_hits=setup_delta.hits,
        setup_misses=setup_delta.misses,
    )


def _init_worker(use_cache: bool) -> None:
    """Pool initializer: fresh per-worker memo caches."""
    memo.clear_caches()
    memo.set_cache_enabled(use_cache)


def _shard_task(shard: list[tuple[int, RunSpec]]) -> list[tuple[int, RunOutcome]]:
    """Execute one contiguous shard of the plan in a pool worker.

    Contiguity matters: the plan groups one app's cells together, so a
    worker's setup cache is hot for most of its shard.
    """
    return [(index, execute_run(spec)) for index, spec in shard]


def _setup_affinity(spec: RunSpec) -> tuple:
    """Runs with equal keys share problem setups (the builders behind
    :class:`~repro.engine.memo.SetupMemoCache` are keyed on
    ``(config, precision)``, never on model or platform).  Precision is
    deliberately *not* part of the key: one app's cells interleave
    precisions platform by platform, so cutting between them would
    strand the second platform's setups in another worker."""
    return (spec.app, repr(spec.config))


def _shard_by_affinity(
    indexed: list[tuple[int, RunSpec]], workers: int
) -> list[list[tuple[int, RunSpec]]]:
    """Split the plan into at most ``workers`` contiguous shards,
    cutting at setup-affinity boundaries when there are enough blocks.

    A shard boundary inside an affinity block makes two workers build
    the identical problem setup — at paper scale that is the dominant
    per-run cost, so boundaries snap to the block grid.  When the plan
    has fewer blocks than workers (a frequency sweep is one block),
    parallelism wins instead: fall back to an even item split and let
    each worker rebuild the (small, in that regime) setup once.
    """
    blocks: list[list[tuple[int, RunSpec]]] = []
    for index, spec in indexed:
        if blocks and _setup_affinity(blocks[-1][-1][1]) == _setup_affinity(spec):
            blocks[-1].append((index, spec))
        else:
            blocks.append([(index, spec)])

    if len(blocks) < workers:
        bound = -(-len(indexed) // workers)
        return [indexed[i : i + bound] for i in range(0, len(indexed), bound)]

    # Greedy contiguous packing: close a shard once it holds its even
    # share of the remaining items over the remaining shards.
    shards: list[list[tuple[int, RunSpec]]] = []
    current: list[tuple[int, RunSpec]] = []
    remaining_items = len(indexed)
    for position, block in enumerate(blocks):
        current.extend(block)
        remaining_blocks = len(blocks) - position - 1
        open_slots = workers - len(shards)
        share = remaining_items / open_slots
        if (len(current) >= share and open_slots > 1) or remaining_blocks < open_slots - 1:
            shards.append(current)
            remaining_items -= len(current)
            current = []
    if current:
        shards.append(current)
    return shards


def default_workers() -> int:
    """A safe default worker count: the CPU count, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def execute(
    runs: Sequence[RunSpec],
    max_workers: int = 1,
    use_cache: bool = True,
) -> tuple[list[RunOutcome], ExecStats]:
    """Execute descriptors, returning outcomes in submission order.

    ``outcomes[i]`` always corresponds to ``runs[i]``; content-equal
    descriptors share one outcome.  ``max_workers=1`` runs in-process
    (no pool, no pickling); larger values shard the unique runs over a
    process pool.  Results are bit-identical across worker counts.
    """
    started = time.perf_counter()

    # Content-address the descriptors: first occurrence wins the slot.
    unique: list[RunSpec] = []
    slot_of: dict[str, int] = {}
    placement: list[int] = []
    for spec in runs:
        key = spec.content_key()
        if key not in slot_of:
            slot_of[key] = len(unique)
            unique.append(spec)
        placement.append(slot_of[key])

    executed: list[RunOutcome | None] = [None] * len(unique)
    if max_workers <= 1 or len(unique) <= 1:
        workers = 1
        previous = (memo.KERNEL_CACHE.enabled, memo.SETUP_CACHE.enabled)
        memo.set_cache_enabled(use_cache)
        try:
            for index, spec in enumerate(unique):
                executed[index] = execute_run(spec)
        finally:
            memo.KERNEL_CACHE.enabled, memo.SETUP_CACHE.enabled = previous
    else:
        workers = min(max_workers, len(unique))
        # Contiguous shards, one per worker, snapped to setup-affinity
        # boundaries: each app's runs stay together, so per-worker
        # setup caches stay hot and no setup is built twice.
        indexed = list(enumerate(unique))
        shards = _shard_by_affinity(indexed, workers)
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker, initargs=(use_cache,)
        ) as pool:
            futures = [pool.submit(_shard_task, shard) for shard in shards]
            wait(futures, return_when=FIRST_EXCEPTION)
            for future in futures:
                for index, outcome in future.result():
                    executed[index] = outcome

    outcomes = [executed[slot] for slot in placement]  # type: ignore[misc]
    stats = ExecStats(
        requested_runs=len(runs),
        unique_runs=len(unique),
        workers=workers,
        wall_seconds=time.perf_counter() - started,
        run_seconds=sum(o.wall_seconds for o in executed if o is not None),
        cache_hits=sum(o.cache_hits for o in executed if o is not None),
        cache_misses=sum(o.cache_misses for o in executed if o is not None),
        setup_hits=sum(o.setup_hits for o in executed if o is not None),
        setup_misses=sum(o.setup_misses for o in executed if o is not None),
        per_run=[
            (o.spec.label, o.wall_seconds, o.cache_hits, o.cache_misses)
            for o in executed
            if o is not None
        ],
    )
    return outcomes, stats
