"""Work-sharding executor for study/sweep/ablation matrices.

Takes a flat list of :class:`~repro.exec.plan.RunSpec` descriptors,
deduplicates them by content, and executes each unique run exactly
once — either in-process (``max_workers=1``, the deterministic
reference path) or fanned out over a
:class:`concurrent.futures.ProcessPoolExecutor`.  Results are
reassembled in *submission* order, never completion order, so the
output is bit-identical for every worker count: each run is an
independent, deterministic simulation on a fresh platform, and the
kernel memo cache (:mod:`repro.engine.memo`) only short-circuits
recomputation of pure functions.

Every outcome carries per-run wall time and the cache hit/miss delta
its execution produced, aggregated into an :class:`ExecStats` that the
CLI reports — the speedup of the executor itself is observable.

Execution is fault tolerant.  Each run goes through the retry ladder
of :mod:`repro.exec.retry` (classification, deterministic backoff,
watchdog, quarantine); a broken or hung pool is respawned with only
the in-flight specs requeued, and after repeated breakage the executor
degrades to the in-process path instead of giving up.  Failures never
raise out of :func:`execute` — they come back as ``None`` slots plus
:class:`~repro.exec.faults.RunError` records in ``ExecStats.failures``,
so a study keeps every result it managed to compute.  With a
checkpoint journal (:mod:`repro.exec.checkpoint`) completed outcomes
also survive a crash or Ctrl-C and are skipped on resume.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Sequence

from ..apps.base import RunResult
from ..engine import memo
from ..obs import spans as obs_spans
from ..obs import tracing as obs_tracing
from ..obs.export import Timeline, merge_run_telemetry
from ..obs.logging import get_logger
from ..obs.metrics import MetricsRegistry
from ..obs.spans import InstantEvent, RunTelemetry, Span, SpanRecorder
from .checkpoint import CheckpointJournal
from .faults import ErrorKind, FaultAttempt, FaultPlan, RunError, fault_plan_from_env
from .plan import RunSpec
from .retry import RetryPolicy, run_with_retry

#: True inside a pool worker process (set by :func:`_init_worker`);
#: gates the fault injections that would take the whole process down.
_POOL_WORKER = False

_LOG = get_logger("exec")


@dataclass(frozen=True)
class RunOutcome:
    """One executed descriptor with its observability counters.

    ``wall_seconds`` and the cache counters describe the run that
    actually computed the result; deduplicated descriptors share the
    outcome of the first occurrence.
    """

    spec: RunSpec
    result: RunResult
    wall_seconds: float
    cache_hits: int
    cache_misses: int
    setup_hits: int = 0
    setup_misses: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    #: Full span/metric recording of the run; ``None`` unless the
    #: executor ran with telemetry enabled.
    telemetry: RunTelemetry | None = None
    #: Total attempts this run took (1 = first try succeeded).
    attempts: int = 1
    #: The failed attempts that preceded success, oldest first.
    retry_history: tuple[FaultAttempt, ...] = ()


@dataclass
class ExecStats:
    """Aggregate observability of one ``execute`` call."""

    requested_runs: int = 0
    unique_runs: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    #: Sum of per-run wall times — what a fully serial, cache-cold
    #: schedule would roughly cost; ``wall_seconds`` is what this
    #: schedule actually cost.
    run_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    setup_hits: int = 0
    setup_misses: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    #: Per-run (label, wall seconds, kernel hits, kernel misses,
    #: setup hits, setup misses, trace hits, trace misses) — one row
    #: per executed unique run.
    per_run: list[tuple[str, float, int, int, int, int, int, int]] = field(default_factory=list)
    #: Kernel launches by dominant limiter ("compute" / "memory" /
    #: "floor"), summed over the executed runs — Table I's
    #: boundedness claim, visible per study run.
    limited_by: dict[str, int] = field(default_factory=dict)
    #: Merged study-wide telemetry; ``None`` unless requested.
    timeline: Timeline | None = None
    #: Attempts beyond the first, summed over every run (worker-side
    #: retries plus pool-level requeues).
    retries: int = 0
    #: Runs that exhausted their attempt budget, with full histories.
    #: The study proceeds without them (their outcome slots are None).
    failures: list[RunError] = field(default_factory=list)
    #: Times a broken or hung worker pool was torn down and rebuilt.
    pool_respawns: int = 0
    #: Runs restored from a checkpoint journal instead of executed.
    resumed_runs: int = 0

    @property
    def deduplicated_runs(self) -> int:
        """Descriptors served by another descriptor's result."""
        return self.requested_runs - self.unique_runs

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def setup_hit_rate(self) -> float:
        lookups = self.setup_hits + self.setup_misses
        return self.setup_hits / lookups if lookups else 0.0

    @property
    def trace_hit_rate(self) -> float:
        lookups = self.trace_hits + self.trace_misses
        return self.trace_hits / lookups if lookups else 0.0

    @property
    def parallel_speedup(self) -> float:
        """run_seconds / wall_seconds — the observable executor gain."""
        return self.run_seconds / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def quarantined(self) -> int:
        """Runs abandoned after exhausting their attempt budget."""
        return len(self.failures)

    @property
    def attempts(self) -> int:
        """Total run attempts made (executed runs + all retries)."""
        return self.unique_runs + self.retries

    def failure_kinds(self) -> dict[str, int]:
        """Quarantined runs tallied by error kind."""
        kinds: dict[str, int] = {}
        for failure in self.failures:
            kinds[failure.kind.value] = kinds.get(failure.kind.value, 0) + 1
        return kinds

    def summary(self) -> str:
        """Human-readable report block for the CLI."""
        lines = [
            f"runs: {self.requested_runs} requested, {self.unique_runs} executed "
            f"({self.deduplicated_runs} deduplicated), workers: {self.workers}",
            f"wall time: {self.wall_seconds:.2f} s "
            f"(sum of per-run times: {self.run_seconds:.2f} s, "
            f"executor speedup: {self.parallel_speedup:.2f}x)",
            f"kernel-pricing memo cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.cache_hit_rate:.1%} hit rate)",
            f"setup memo cache: {self.setup_hits} hits / {self.setup_misses} misses "
            f"({self.setup_hit_rate:.1%} hit rate)",
        ]
        if self.trace_hits or self.trace_misses:
            lines.append(
                f"trace-replay memo cache: {self.trace_hits} hits / "
                f"{self.trace_misses} misses ({self.trace_hit_rate:.1%} hit rate)"
            )
        if self.limited_by:
            tally = ", ".join(
                f"{name} {self.limited_by[name]}"
                for name in sorted(self.limited_by, key=self.limited_by.get, reverse=True)
            )
            lines.append(f"kernel launches limited by: {tally}")
        if self.retries or self.failures or self.pool_respawns:
            lines.append(
                f"fault tolerance: {self.attempts} attempts over {self.unique_runs} runs "
                f"({self.retries} retries), {self.quarantined} quarantined, "
                f"{self.pool_respawns} pool respawns"
            )
            kinds = self.failure_kinds()
            if kinds:
                tally = ", ".join(f"{kind} {kinds[kind]}" for kind in sorted(kinds))
                lines.append(f"failures by kind: {tally}")
        if self.resumed_runs:
            lines.append(
                f"resumed from checkpoint: {self.resumed_runs} runs restored, "
                f"{self.unique_runs - self.resumed_runs} executed"
            )
        return "\n".join(lines)

    def merge(self, other: "ExecStats") -> "ExecStats":
        """Combine stats of two executor calls (e.g. study + sweeps).

        Timelines are not re-merged (their clocks already start at
        zero); the first non-``None`` one is kept.
        """
        tallies = dict(self.limited_by)
        for name, count in other.limited_by.items():
            tallies[name] = tallies.get(name, 0) + count
        return ExecStats(
            requested_runs=self.requested_runs + other.requested_runs,
            unique_runs=self.unique_runs + other.unique_runs,
            workers=max(self.workers, other.workers),
            wall_seconds=self.wall_seconds + other.wall_seconds,
            run_seconds=self.run_seconds + other.run_seconds,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            setup_hits=self.setup_hits + other.setup_hits,
            setup_misses=self.setup_misses + other.setup_misses,
            trace_hits=self.trace_hits + other.trace_hits,
            trace_misses=self.trace_misses + other.trace_misses,
            per_run=self.per_run + other.per_run,
            limited_by=tallies,
            timeline=self.timeline if self.timeline is not None else other.timeline,
            retries=self.retries + other.retries,
            failures=self.failures + other.failures,
            pool_respawns=self.pool_respawns + other.pool_respawns,
            resumed_runs=self.resumed_runs + other.resumed_runs,
        )


def execute_run(
    spec: RunSpec,
    telemetry: bool = False,
    faults: FaultPlan | None = None,
    attempt: int = 0,
) -> RunOutcome:
    """Execute one descriptor in this process.

    Builds a fresh platform (with the spec's clock overrides), runs
    the port, and measures wall time plus the memo-cache delta.  With
    ``telemetry`` a fresh :class:`~repro.obs.spans.SpanRecorder` is
    active for the duration of the run; recording is observational
    only, so the result is bit-identical either way.

    ``faults``/``attempt`` drive the deterministic chaos harness: a
    drawn fault fires on the run's early attempts, after which the run
    proceeds normally — the computed result never depends on the
    attempt number, which is what keeps injected campaigns
    bit-identical to fault-free runs.
    """
    # Lazy imports keep the exec package importable from low layers
    # and let pool workers pay the heavy app imports exactly once.
    from ..apps import APPS_BY_NAME
    from ..hardware.device import platform_for
    from ..models.base import ExecutionContext

    if faults is not None and faults.active:
        faults.apply(spec.content_key(), spec.label, attempt, in_pool_worker=_POOL_WORKER)

    before = memo.KERNEL_CACHE.snapshot()
    setup_before = memo.SETUP_CACHE.snapshot()
    trace_before = memo.TRACE_CACHE.snapshot()
    started = time.perf_counter()
    app = APPS_BY_NAME[spec.app]
    platform = platform_for(spec.platform)
    if spec.core_mhz is not None:
        platform.gpu.core_clock.set(spec.core_mhz)
    if spec.memory_mhz is not None:
        platform.gpu.memory_clock.set(spec.memory_mhz)
    ctx = ExecutionContext(
        platform=platform,
        precision=spec.precision,
        execute_kernels=not spec.projection,
    )
    recorded: RunTelemetry | None = None
    if telemetry:
        recorder = SpanRecorder(meta=spec.telemetry_meta())
        with obs_spans.recording(recorder):
            result = app.ports[spec.model](ctx, spec.config)
        recorded = recorder.finish(spec.label)
    else:
        result = app.ports[spec.model](ctx, spec.config)
    wall = time.perf_counter() - started
    delta = memo.KERNEL_CACHE.snapshot().since(before)
    setup_delta = memo.SETUP_CACHE.snapshot().since(setup_before)
    trace_delta = memo.TRACE_CACHE.snapshot().since(trace_before)
    trace_ctx = obs_tracing.current()
    if trace_ctx is not None:
        # This run is part of a distributed trace (a serve request's
        # engine segment or a traced study).  The span id is derived
        # from content, so the same plan yields an identical span tree
        # at any worker count.  With a recorder the span ships home
        # re-based in the telemetry envelope (pool workers can't reach
        # the parent's tracer); otherwise we're in the owning process
        # and emit directly on its clock.
        run_span = obs_tracing.TraceSpan(
            trace_id=trace_ctx.trace_id,
            span_id=obs_tracing.derived_span_id(
                trace_ctx.trace_id, trace_ctx.span_id,
                f"run:{spec.label}", spec.content_key(),
            ),
            parent_id=trace_ctx.span_id,
            name=f"run:{spec.label}",
            kind="worker",
            start_s=started,
            end_s=started + wall,
            attrs={**spec.telemetry_meta(), "attempt": attempt},
        )
        if recorded is not None:
            recorded.trace_spans.append(run_span.rebased(started))
        else:
            obs_tracing.TRACER.emit(run_span)
    if faults is not None and faults.injects("corrupt", spec.content_key(), attempt):
        # Injected result corruption: mangle the checksum so the
        # validation step of the retry ladder has something to catch.
        result = replace(result, checksum=math.nan)
    return RunOutcome(
        spec=spec,
        result=result,
        wall_seconds=wall,
        cache_hits=delta.hits,
        cache_misses=delta.misses,
        setup_hits=setup_delta.hits,
        setup_misses=setup_delta.misses,
        trace_hits=trace_delta.hits,
        trace_misses=trace_delta.misses,
        telemetry=recorded,
    )


def _init_worker(use_cache: bool) -> None:
    """Pool initializer: fresh per-worker memo caches."""
    global _POOL_WORKER
    _POOL_WORKER = True
    memo.clear_caches()
    memo.set_cache_enabled(use_cache)


def _shard_task(
    shard: list[tuple[int, RunSpec]],
    telemetry: bool = False,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    base_attempts: dict[int, int] | None = None,
    traceparent: str | None = None,
) -> list[tuple[int, "RunOutcome | RunError"]]:
    """Execute one contiguous shard of the plan in a pool worker.

    Contiguity matters: the plan groups one app's cells together, so a
    worker's setup cache is hot for most of its shard.  Each run goes
    through the retry ladder locally; a spec that exhausts its budget
    comes back as a :class:`~repro.exec.faults.RunError` row rather
    than poisoning the whole shard.

    ``traceparent`` carries the caller's distributed-trace context
    across the process boundary as its serialized header form; each
    run's trace span rides home inside the telemetry envelope.
    """
    policy = policy if policy is not None else RetryPolicy()
    base_attempts = base_attempts or {}
    token = None
    ctx = obs_tracing.parse_traceparent(traceparent)
    if ctx is not None:
        token = obs_tracing.push(ctx)
    try:
        return [
            (
                index,
                run_with_retry(
                    spec,
                    policy,
                    faults=faults,
                    telemetry=telemetry,
                    base_attempt=base_attempts.get(index, 0),
                ),
            )
            for index, spec in shard
        ]
    finally:
        if token is not None:
            obs_tracing.reset(token)


def _setup_affinity(spec: RunSpec) -> tuple:
    """Runs with equal keys share problem setups (the builders behind
    :class:`~repro.engine.memo.SetupMemoCache` are keyed on
    ``(config, precision)``, never on model or platform).  Precision is
    deliberately *not* part of the key: one app's cells interleave
    precisions platform by platform, so cutting between them would
    strand the second platform's setups in another worker."""
    return (spec.app, repr(spec.config))


def _affinity_blocks(
    indexed: list[tuple[int, RunSpec]],
) -> list[list[tuple[int, RunSpec]]]:
    """Group the plan into whole setup-affinity blocks.

    Blocks are keyed by :func:`_setup_affinity` and ordered by each
    key's first appearance, with items in input order within a block.
    Grouping — rather than cutting at consecutive-run boundaries — is
    what makes execution order (and therefore the setup LRU's hit
    pattern and the shard layout) invariant to how the caller shuffled
    its specs: a permuted plan yields the same blocks, merely permuted.
    """
    by_key: dict[tuple, list[tuple[int, RunSpec]]] = {}
    blocks: list[list[tuple[int, RunSpec]]] = []
    for index, spec in indexed:
        key = _setup_affinity(spec)
        block = by_key.get(key)
        if block is None:
            block = by_key[key] = []
            blocks.append(block)
        block.append((index, spec))
    return blocks


def _shard_by_affinity(
    indexed: list[tuple[int, RunSpec]], workers: int
) -> list[list[tuple[int, RunSpec]]]:
    """Split the plan into at most ``workers`` shards of whole
    setup-affinity blocks when there are enough blocks.

    A shard boundary inside an affinity block makes two workers build
    the identical problem setup — at paper scale that is the dominant
    per-run cost, so boundaries snap to the block grid.  When the plan
    has fewer blocks than workers (a frequency sweep is one block),
    parallelism wins instead: fall back to an even item split and let
    each worker rebuild the (small, in that regime) setup once.
    """
    blocks = _affinity_blocks(indexed)
    if len(blocks) < workers:
        flat = [item for block in blocks for item in block]
        bound = -(-len(flat) // workers)
        return [flat[i : i + bound] for i in range(0, len(flat), bound)]

    # Greedy contiguous packing: close a shard once it holds its even
    # share of the remaining items over the remaining shards.
    shards: list[list[tuple[int, RunSpec]]] = []
    current: list[tuple[int, RunSpec]] = []
    remaining_items = len(indexed)
    for position, block in enumerate(blocks):
        current.extend(block)
        remaining_blocks = len(blocks) - position - 1
        open_slots = workers - len(shards)
        share = remaining_items / open_slots
        if (len(current) >= share and open_slots > 1) or remaining_blocks < open_slots - 1:
            shards.append(current)
            remaining_items -= len(current)
            current = []
    if current:
        shards.append(current)
    return shards


def default_workers() -> int:
    """A safe default worker count: the CPU count, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def _limited_by_tallies(executed: list[RunOutcome | None]) -> dict[str, int]:
    """Kernel launches by dominant limiter, over the executed runs."""
    tallies: dict[str, int] = {}
    for outcome in executed:
        if outcome is None:
            continue
        for record in outcome.result.counters.kernels:
            tallies[record.limited_by] = tallies.get(record.limited_by, 0) + 1
    return tallies


def _executor_metrics(stats: ExecStats, worker_busy: dict[int, float]) -> MetricsRegistry:
    """Executor-level gauges/counters folded into the merged timeline."""
    registry = MetricsRegistry()
    registry.counter(
        "repro_executor_runs_total", help="Run descriptors handled.", result="requested"
    ).inc(stats.requested_runs)
    registry.counter(
        "repro_executor_runs_total", help="Run descriptors handled.", result="executed"
    ).inc(stats.unique_runs)
    registry.counter(
        "repro_executor_runs_total", help="Run descriptors handled.", result="deduplicated"
    ).inc(stats.deduplicated_runs)
    registry.gauge(
        "repro_memo_hit_ratio", help="Memo hit ratio by cache layer.", cache="kernel"
    ).set(stats.cache_hit_rate)
    registry.gauge(
        "repro_memo_hit_ratio", help="Memo hit ratio by cache layer.", cache="setup"
    ).set(stats.setup_hit_rate)
    registry.gauge(
        "repro_memo_hit_ratio", help="Memo hit ratio by cache layer.", cache="trace"
    ).set(stats.trace_hit_rate)
    for name, count in sorted(stats.limited_by.items()):
        registry.counter(
            "repro_limited_by_total",
            help="Kernel launches by dominant limiter, study-wide.",
            limited_by=name,
        ).inc(count)
    registry.counter(
        "repro_run_retries_total", help="Run attempts beyond the first."
    ).inc(stats.retries)
    registry.counter(
        "repro_pool_respawns_total", help="Worker pools rebuilt after breakage or hang."
    ).inc(stats.pool_respawns)
    registry.counter(
        "repro_runs_resumed_total", help="Runs restored from a checkpoint journal."
    ).inc(stats.resumed_runs)
    kinds = stats.failure_kinds()
    for kind in ErrorKind:
        registry.counter(
            "repro_run_failures_total",
            help="Quarantined runs by error kind.",
            kind=kind.value,
        ).inc(kinds.get(kind.value, 0))
    for worker in sorted(worker_busy):
        busy = worker_busy[worker]
        registry.counter(
            "repro_worker_busy_seconds_total",
            help="Wall seconds each worker spent executing runs.",
            worker=str(worker),
        ).inc(busy)
        registry.gauge(
            "repro_worker_utilization",
            help="Worker busy time over executor wall time.",
            worker=str(worker),
        ).set(busy / stats.wall_seconds if stats.wall_seconds else 0.0)
    return registry


def _build_timeline(
    pairs: list[tuple[RunOutcome, int]],
    shards: list[list[tuple[int, RunSpec]]],
    stats: ExecStats,
) -> Timeline:
    """Merge per-run recordings, in unique-run (submission) order, and
    decorate the worker tracks with dispatch/start/stop events plus
    the retry/backoff/quarantine record of the run."""
    items = [
        (o.telemetry if o.telemetry is not None else RunTelemetry(label=o.spec.label), w)
        for o, w in pairs
    ]
    worker_busy: dict[int, float] = {}
    for outcome, worker in pairs:
        worker_busy[worker] = worker_busy.get(worker, 0.0) + outcome.wall_seconds
    timeline = merge_run_telemetry(items, extra_metrics=_executor_metrics(stats, worker_busy))

    for outcome, worker in pairs:
        track = f"worker-{worker}"
        for record in outcome.retry_history:
            timeline.events.append(
                InstantEvent(
                    name="run-retry", category="fault", track=track,
                    sim_ts=0.0, wall_ts=0.0,
                    args=(
                        ("run", outcome.spec.label),
                        ("attempt", record.attempt),
                        ("kind", record.kind.value),
                        ("error", record.error),
                    ),
                )
            )
            if record.backoff_seconds > 0:
                timeline.spans.append(
                    Span(
                        name="retry-backoff", category="fault", track=track,
                        sim_start=0.0, sim_end=0.0,
                        wall_start=0.0, wall_end=record.backoff_seconds,
                        args=(("run", outcome.spec.label), ("attempt", record.attempt)),
                    )
                )
    for failure in stats.failures:
        timeline.events.append(
            InstantEvent(
                name="run-quarantined", category="fault", track="worker-0",
                sim_ts=0.0, wall_ts=0.0,
                args=(
                    ("run", failure.label),
                    ("kind", failure.kind.value),
                    ("attempts", failure.n_attempts),
                    ("error", failure.message),
                ),
            )
        )

    depth = len(pairs)
    for worker, shard in enumerate(shards):
        track = f"worker-{worker}"
        timeline.events.append(
            InstantEvent(
                name="worker-start", category="executor", track=track,
                sim_ts=0.0, wall_ts=0.0,
            )
        )
        timeline.events.append(
            InstantEvent(
                name="shard-dispatch", category="executor", track=track,
                sim_ts=0.0, wall_ts=0.0,
                args=(("queue_depth", depth), ("shard_runs", len(shard))),
            )
        )
        depth -= len(shard)
        timeline.events.append(
            InstantEvent(
                name="worker-stop", category="executor", track=track,
                sim_ts=0.0, wall_ts=worker_busy.get(worker, 0.0),
            )
        )
        timeline.metrics.gauge(
            "repro_executor_queue_depth",
            help="Undispatched unique runs after each shard dispatch.",
        ).set(depth)
    return timeline


class ExecutionInterrupted(KeyboardInterrupt):
    """Ctrl-C (or an injected interrupt) stopped a study cleanly.

    Raised instead of a bare ``KeyboardInterrupt`` after the executor
    has flushed every completed outcome to the checkpoint journal, so
    the interrupted study's partial stats survive and the CLI can tell
    the user how to resume.  Subclasses ``KeyboardInterrupt`` so
    callers that do not care still see the interrupt semantics.
    """

    def __init__(
        self,
        stats: ExecStats,
        completed: int,
        checkpoint: Path | None = None,
    ) -> None:
        super().__init__("study execution interrupted")
        self.stats = stats
        self.completed = completed
        self.checkpoint = checkpoint


@contextmanager
def _cache_setting(use_cache: bool):
    """Apply the cache toggle in-process, restoring the prior state."""
    previous = (
        memo.KERNEL_CACHE.enabled, memo.SETUP_CACHE.enabled, memo.TRACE_CACHE.enabled,
        memo.PLAN_CACHE.enabled,
    )
    memo.set_cache_enabled(use_cache)
    try:
        yield
    finally:
        (memo.KERNEL_CACHE.enabled, memo.SETUP_CACHE.enabled,
         memo.TRACE_CACHE.enabled, memo.PLAN_CACHE.enabled) = previous


def _quarantine_error(spec: RunSpec, attempts: int, reason: str) -> RunError:
    """A parent-side quarantine record (no worker traceback exists)."""
    return RunError(
        label=spec.label,
        key=spec.content_key(),
        kind=ErrorKind.POISONED,
        message=reason,
        attempts=tuple(
            FaultAttempt(attempt=i, kind=ErrorKind.POISONED, error=reason)
            for i in range(attempts)
        ),
    )


def execute(
    runs: Sequence[RunSpec],
    max_workers: int = 1,
    use_cache: bool = True,
    telemetry: bool = False,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    checkpoint: str | Path | CheckpointJournal | None = None,
) -> tuple[list[RunOutcome | None], ExecStats]:
    """Execute descriptors, returning outcomes in submission order.

    ``outcomes[i]`` always corresponds to ``runs[i]``; content-equal
    descriptors share one outcome.  ``max_workers=1`` runs in-process
    (no pool, no pickling); larger values shard the unique runs over a
    process pool.  Results are bit-identical across worker counts.

    ``telemetry`` records every run through a span recorder and merges
    the per-worker recordings into ``stats.timeline`` — deterministic
    across worker counts because the merge follows submission order,
    never completion order.  Recording is purely observational: with
    or without it, results stay bit-identical.

    Fault tolerance: each run goes through the retry ladder of
    ``policy`` (default :class:`~repro.exec.retry.RetryPolicy`), and a
    run that exhausts its budget becomes a ``None`` outcome slot plus
    a :class:`~repro.exec.faults.RunError` in ``stats.failures`` —
    :func:`execute` does not raise for run failures.  A broken or hung
    pool is respawned with only the unfinished specs requeued; after
    ``policy.max_pool_respawns`` rebuilds the remainder runs
    in-process.  ``faults`` injects deterministic chaos (defaults to
    the ``REPRO_INJECT_FAULTS`` environment); results stay
    bit-identical under any transient injection.  ``checkpoint``
    names a journal file (or an open
    :class:`~repro.exec.checkpoint.CheckpointJournal`): completed
    outcomes are journaled as they land and restored — not re-executed
    — on the next call, and ``KeyboardInterrupt`` flushes the journal
    before surfacing as :class:`ExecutionInterrupted`.
    """
    started = time.perf_counter()
    policy = policy if policy is not None else RetryPolicy()
    if faults is None:
        faults = fault_plan_from_env()
    journal: CheckpointJournal | None = None
    if checkpoint is not None:
        journal = (
            checkpoint
            if isinstance(checkpoint, CheckpointJournal)
            else CheckpointJournal.open(checkpoint)
        )

    # Content-address the descriptors: first occurrence wins the slot.
    unique: list[RunSpec] = []
    slot_of: dict[str, int] = {}
    placement: list[int] = []
    for spec in runs:
        key = spec.content_key()
        if key not in slot_of:
            slot_of[key] = len(unique)
            unique.append(spec)
        placement.append(slot_of[key])

    # Distributed tracing: when the caller established a trace context,
    # this whole call is one "execute" span and every unique run hangs
    # under it.  The span id derives from the plan's content keys, so
    # the tree is identical at any worker count.  Observation only —
    # results never depend on it.
    parent_ctx = obs_tracing.current()
    exec_span: obs_tracing.TraceSpan | None = None
    exec_token = None
    if parent_ctx is not None:
        exec_span = obs_tracing.TRACER.start_span(
            "execute",
            kind="executor",
            parent=parent_ctx,
            span_id=obs_tracing.derived_span_id(
                parent_ctx.trace_id, parent_ctx.span_id, "execute",
                *sorted(slot_of),
            ),
            attrs={"requested": len(runs), "unique": len(unique)},
        )
        exec_token = obs_tracing.push(exec_span.context)

    executed: list[RunOutcome | None] = [None] * len(unique)
    errors: dict[int, RunError] = {}
    worker_of: list[int] = [0] * len(unique)
    resumed = 0
    pool_respawns = 0

    # Restore checkpointed outcomes; only the remainder executes.
    pending: dict[int, RunSpec] = {}
    for index, spec in enumerate(unique):
        restored = journal.restore(spec.content_key()) if journal is not None else None
        if restored is not None:
            executed[index] = restored
            resumed += 1
        else:
            pending[index] = spec
    if resumed:
        _LOG.info("checkpoint-restored", runs=resumed, remaining=len(pending))

    def settle(index: int, payload: "RunOutcome | RunError") -> None:
        if isinstance(payload, RunError):
            errors[index] = payload
        else:
            executed[index] = payload
            if journal is not None:
                journal.record(payload)

    def run_serially(specs: dict[int, RunSpec], base_attempts: dict[int, int]) -> None:
        # Affinity-block order (not raw index order) keeps one app's
        # cells together under the bounded setup LRU even when the
        # caller shuffled its plan; for a canonically ordered plan the
        # two orders coincide.
        with _cache_setting(use_cache):
            for block in _affinity_blocks(sorted(specs.items())):
                for index, spec in block:
                    settle(
                        index,
                        run_with_retry(
                            spec,
                            policy,
                            faults=faults,
                            telemetry=telemetry,
                            base_attempt=base_attempts.get(index, 0),
                        ),
                    )

    shards: list[list[tuple[int, RunSpec]]] = [sorted(pending.items())]
    workers = 1
    interrupted = False
    try:
        if max_workers <= 1 or len(pending) <= 1:
            workers = 1
            run_serially(pending, {})
            pending = {}
        else:
            workers = min(max_workers, len(pending))
            base_attempt = {index: 0 for index in pending}
            while pending:
                if pool_respawns > policy.max_pool_respawns:
                    # Graceful degradation: the pool keeps dying, so
                    # finish the remainder in-process and keep going.
                    _LOG.warning(
                        "serial-degradation",
                        respawns=pool_respawns,
                        remaining=len(pending),
                    )
                    run_serially(pending, base_attempt)
                    pending = {}
                    break
                # Contiguous shards, one per worker, snapped to
                # setup-affinity boundaries: each app's runs stay
                # together, so per-worker setup caches stay hot and no
                # setup is built twice.
                shards = _shard_by_affinity(sorted(pending.items()), workers)
                for shard_index, shard in enumerate(shards):
                    for index, _spec in shard:
                        worker_of[index] = shard_index
                hung = False
                pool = ProcessPoolExecutor(
                    max_workers=len(shards), initializer=_init_worker, initargs=(use_cache,)
                )
                try:
                    future_shard = {
                        pool.submit(
                            _shard_task,
                            shard,
                            telemetry,
                            policy,
                            faults,
                            {index: base_attempt[index] for index, _ in shard},
                            exec_span.context.to_traceparent()
                            if exec_span is not None
                            else None,
                        ): shard
                        for shard in shards
                    }
                    # Parent-side watchdog: a shard retries each spec up
                    # to max_attempts times, so its budget is the sum of
                    # per-attempt watchdogs (plus one slot of grace).
                    budget = None
                    if policy.run_timeout is not None:
                        largest = max(len(shard) for shard in shards)
                        budget = policy.run_timeout * (largest * policy.max_attempts + 1)
                    try:
                        for future in as_completed(future_shard, timeout=budget):
                            try:
                                rows = future.result()
                            except BrokenProcessPool:
                                continue  # this shard's specs get requeued
                            for index, payload in rows:
                                settle(index, payload)
                                pending.pop(index, None)
                    except FuturesTimeout:
                        # A worker is hung past any retry budget: kill
                        # the pool and requeue whatever never landed.
                        hung = True
                        for process in pool._processes.values():
                            process.terminate()
                finally:
                    pool.shutdown(wait=True, cancel_futures=True)
                if not pending:
                    break
                # The pool broke or hung under this round's survivors:
                # charge each a requeue attempt and quarantine specs
                # that keep taking their pool down.
                pool_respawns += 1
                _LOG.warning(
                    "pool-respawn",
                    respawns=pool_respawns,
                    hung=hung,
                    requeued=len(pending),
                )
                for index in sorted(pending):
                    base_attempt[index] += 1
                    if base_attempt[index] >= policy.max_attempts:
                        spec = pending.pop(index)
                        reason = (
                            "worker pool "
                            + ("hung" if hung else "broke")
                            + f" on every attempt ({base_attempt[index]} requeues)"
                        )
                        errors[index] = _quarantine_error(spec, base_attempt[index], reason)
                        _LOG.warning("run-quarantined", run=spec.label, reason=reason)
    except KeyboardInterrupt:
        interrupted = True
    finally:
        if exec_token is not None:
            obs_tracing.reset(exec_token)
        if journal is not None:
            journal.close()

    worker_retries = sum(o.attempts - 1 for o in executed if o is not None)
    failed_retries = sum(
        max(error.attempts[-1].attempt, len(error.attempts) - 1) if error.attempts else 0
        for error in errors.values()
    )
    stats = ExecStats(
        requested_runs=len(runs),
        unique_runs=len(unique),
        workers=workers,
        wall_seconds=time.perf_counter() - started,
        run_seconds=sum(o.wall_seconds for o in executed if o is not None),
        cache_hits=sum(o.cache_hits for o in executed if o is not None),
        cache_misses=sum(o.cache_misses for o in executed if o is not None),
        setup_hits=sum(o.setup_hits for o in executed if o is not None),
        setup_misses=sum(o.setup_misses for o in executed if o is not None),
        trace_hits=sum(o.trace_hits for o in executed if o is not None),
        trace_misses=sum(o.trace_misses for o in executed if o is not None),
        per_run=[
            (o.spec.label, o.wall_seconds, o.cache_hits, o.cache_misses,
             o.setup_hits, o.setup_misses, o.trace_hits, o.trace_misses)
            for o in executed
            if o is not None
        ],
        limited_by=_limited_by_tallies(executed),
        retries=worker_retries + failed_retries,
        failures=[errors[index] for index in sorted(errors)],
        pool_respawns=pool_respawns,
        resumed_runs=resumed,
    )
    if telemetry:
        pairs = [(o, w) for o, w in zip(executed, worker_of) if o is not None]
        stats.timeline = _build_timeline(pairs, shards, stats)
    if exec_span is not None:
        if telemetry:
            # Re-parent the run spans that rode home in the telemetry
            # envelopes: each worker's spans were re-based to run-start
            # 0, so lay them end to end on per-worker wall cursors (the
            # same placement the merged timeline uses) inside this
            # span's own clock.
            cursors: dict[int, float] = {}
            for outcome, worker in zip(executed, worker_of):
                if outcome is None or outcome.telemetry is None:
                    continue
                base = exec_span.start_s + cursors.get(worker, 0.0)
                for span in outcome.telemetry.trace_spans:
                    obs_tracing.TRACER.emit(span.shifted(base))
                cursors[worker] = (
                    cursors.get(worker, 0.0) + outcome.telemetry.wall_seconds
                )
        exec_span.attrs["workers"] = workers
        exec_span.attrs["failures"] = len(errors)
        obs_tracing.TRACER.finish_span(
            exec_span, "ok" if not errors else "error"
        )
    if interrupted:
        raise ExecutionInterrupted(
            stats=stats,
            completed=sum(1 for o in executed if o is not None),
            checkpoint=journal.path if journal is not None else None,
        )
    outcomes = [executed[slot] for slot in placement]
    return outcomes, stats


#: Engine names accepted by :func:`execute_with_engine`.
ENGINES = ("scalar", "vector")


def execute_with_engine(
    engine: str,
    runs: Sequence[RunSpec],
    max_workers: int = 1,
    use_cache: bool = True,
    telemetry: bool = False,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    checkpoint: str | Path | CheckpointJournal | None = None,
) -> tuple[list[RunOutcome | None], ExecStats]:
    """Dispatch a run matrix to the scalar or the columnar engine.

    ``"scalar"`` is :func:`execute` (one port simulation per cell — the
    differential oracle); ``"vector"`` is
    :func:`repro.engine.study_vec.execute_vector` (one schedule capture
    per lattice group, all cells priced as batched array ops).  Both
    return bit-identical outcomes; the engine choice only changes how
    fast they are produced.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}: expected one of {ENGINES}")
    if engine == "vector":
        # Imported lazily: study_vec itself builds on this module.
        from ..engine.study_vec import execute_vector

        return execute_vector(
            runs,
            max_workers=max_workers,
            use_cache=use_cache,
            telemetry=telemetry,
            policy=policy,
            faults=faults,
            checkpoint=checkpoint,
        )
    return execute(
        runs,
        max_workers=max_workers,
        use_cache=use_cache,
        telemetry=telemetry,
        policy=policy,
        faults=faults,
        checkpoint=checkpoint,
    )
