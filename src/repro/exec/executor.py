"""Work-sharding executor for study/sweep/ablation matrices.

Takes a flat list of :class:`~repro.exec.plan.RunSpec` descriptors,
deduplicates them by content, and executes each unique run exactly
once — either in-process (``max_workers=1``, the deterministic
reference path) or fanned out over a
:class:`concurrent.futures.ProcessPoolExecutor`.  Results are
reassembled in *submission* order, never completion order, so the
output is bit-identical for every worker count: each run is an
independent, deterministic simulation on a fresh platform, and the
kernel memo cache (:mod:`repro.engine.memo`) only short-circuits
recomputation of pure functions.

Every outcome carries per-run wall time and the cache hit/miss delta
its execution produced, aggregated into an :class:`ExecStats` that the
CLI reports — the speedup of the executor itself is observable.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Sequence

from ..apps.base import RunResult
from ..engine import memo
from ..obs import spans as obs_spans
from ..obs.export import Timeline, merge_run_telemetry
from ..obs.metrics import MetricsRegistry
from ..obs.spans import InstantEvent, RunTelemetry, SpanRecorder
from .plan import RunSpec


@dataclass(frozen=True)
class RunOutcome:
    """One executed descriptor with its observability counters.

    ``wall_seconds`` and the cache counters describe the run that
    actually computed the result; deduplicated descriptors share the
    outcome of the first occurrence.
    """

    spec: RunSpec
    result: RunResult
    wall_seconds: float
    cache_hits: int
    cache_misses: int
    setup_hits: int = 0
    setup_misses: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    #: Full span/metric recording of the run; ``None`` unless the
    #: executor ran with telemetry enabled.
    telemetry: RunTelemetry | None = None


@dataclass
class ExecStats:
    """Aggregate observability of one ``execute`` call."""

    requested_runs: int = 0
    unique_runs: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    #: Sum of per-run wall times — what a fully serial, cache-cold
    #: schedule would roughly cost; ``wall_seconds`` is what this
    #: schedule actually cost.
    run_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    setup_hits: int = 0
    setup_misses: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    #: Per-run (label, wall seconds, kernel hits, kernel misses,
    #: setup hits, setup misses, trace hits, trace misses) — one row
    #: per executed unique run.
    per_run: list[tuple[str, float, int, int, int, int, int, int]] = field(default_factory=list)
    #: Kernel launches by dominant limiter ("compute" / "memory" /
    #: "floor"), summed over the executed runs — Table I's
    #: boundedness claim, visible per study run.
    limited_by: dict[str, int] = field(default_factory=dict)
    #: Merged study-wide telemetry; ``None`` unless requested.
    timeline: Timeline | None = None

    @property
    def deduplicated_runs(self) -> int:
        """Descriptors served by another descriptor's result."""
        return self.requested_runs - self.unique_runs

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def setup_hit_rate(self) -> float:
        lookups = self.setup_hits + self.setup_misses
        return self.setup_hits / lookups if lookups else 0.0

    @property
    def trace_hit_rate(self) -> float:
        lookups = self.trace_hits + self.trace_misses
        return self.trace_hits / lookups if lookups else 0.0

    @property
    def parallel_speedup(self) -> float:
        """run_seconds / wall_seconds — the observable executor gain."""
        return self.run_seconds / self.wall_seconds if self.wall_seconds else 0.0

    def summary(self) -> str:
        """Human-readable report block for the CLI."""
        lines = [
            f"runs: {self.requested_runs} requested, {self.unique_runs} executed "
            f"({self.deduplicated_runs} deduplicated), workers: {self.workers}",
            f"wall time: {self.wall_seconds:.2f} s "
            f"(sum of per-run times: {self.run_seconds:.2f} s, "
            f"executor speedup: {self.parallel_speedup:.2f}x)",
            f"kernel-pricing memo cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.cache_hit_rate:.1%} hit rate)",
            f"setup memo cache: {self.setup_hits} hits / {self.setup_misses} misses "
            f"({self.setup_hit_rate:.1%} hit rate)",
        ]
        if self.trace_hits or self.trace_misses:
            lines.append(
                f"trace-replay memo cache: {self.trace_hits} hits / "
                f"{self.trace_misses} misses ({self.trace_hit_rate:.1%} hit rate)"
            )
        if self.limited_by:
            tally = ", ".join(
                f"{name} {self.limited_by[name]}"
                for name in sorted(self.limited_by, key=self.limited_by.get, reverse=True)
            )
            lines.append(f"kernel launches limited by: {tally}")
        return "\n".join(lines)

    def merge(self, other: "ExecStats") -> "ExecStats":
        """Combine stats of two executor calls (e.g. study + sweeps).

        Timelines are not re-merged (their clocks already start at
        zero); the first non-``None`` one is kept.
        """
        tallies = dict(self.limited_by)
        for name, count in other.limited_by.items():
            tallies[name] = tallies.get(name, 0) + count
        return ExecStats(
            requested_runs=self.requested_runs + other.requested_runs,
            unique_runs=self.unique_runs + other.unique_runs,
            workers=max(self.workers, other.workers),
            wall_seconds=self.wall_seconds + other.wall_seconds,
            run_seconds=self.run_seconds + other.run_seconds,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            setup_hits=self.setup_hits + other.setup_hits,
            setup_misses=self.setup_misses + other.setup_misses,
            trace_hits=self.trace_hits + other.trace_hits,
            trace_misses=self.trace_misses + other.trace_misses,
            per_run=self.per_run + other.per_run,
            limited_by=tallies,
            timeline=self.timeline if self.timeline is not None else other.timeline,
        )


def execute_run(spec: RunSpec, telemetry: bool = False) -> RunOutcome:
    """Execute one descriptor in this process.

    Builds a fresh platform (with the spec's clock overrides), runs
    the port, and measures wall time plus the memo-cache delta.  With
    ``telemetry`` a fresh :class:`~repro.obs.spans.SpanRecorder` is
    active for the duration of the run; recording is observational
    only, so the result is bit-identical either way.
    """
    # Lazy imports keep the exec package importable from low layers
    # and let pool workers pay the heavy app imports exactly once.
    from ..apps import APPS_BY_NAME
    from ..hardware.device import make_platform
    from ..models.base import ExecutionContext

    before = memo.KERNEL_CACHE.snapshot()
    setup_before = memo.SETUP_CACHE.snapshot()
    trace_before = memo.TRACE_CACHE.snapshot()
    started = time.perf_counter()
    app = APPS_BY_NAME[spec.app]
    platform = make_platform(apu=spec.apu)
    if spec.core_mhz is not None:
        platform.gpu.core_clock.set(spec.core_mhz)
    if spec.memory_mhz is not None:
        platform.gpu.memory_clock.set(spec.memory_mhz)
    ctx = ExecutionContext(
        platform=platform,
        precision=spec.precision,
        execute_kernels=not spec.projection,
    )
    recorded: RunTelemetry | None = None
    if telemetry:
        recorder = SpanRecorder(meta=spec.telemetry_meta())
        with obs_spans.recording(recorder):
            result = app.ports[spec.model](ctx, spec.config)
        recorded = recorder.finish(spec.label)
    else:
        result = app.ports[spec.model](ctx, spec.config)
    wall = time.perf_counter() - started
    delta = memo.KERNEL_CACHE.snapshot().since(before)
    setup_delta = memo.SETUP_CACHE.snapshot().since(setup_before)
    trace_delta = memo.TRACE_CACHE.snapshot().since(trace_before)
    return RunOutcome(
        spec=spec,
        result=result,
        wall_seconds=wall,
        cache_hits=delta.hits,
        cache_misses=delta.misses,
        setup_hits=setup_delta.hits,
        setup_misses=setup_delta.misses,
        trace_hits=trace_delta.hits,
        trace_misses=trace_delta.misses,
        telemetry=recorded,
    )


def _init_worker(use_cache: bool) -> None:
    """Pool initializer: fresh per-worker memo caches."""
    memo.clear_caches()
    memo.set_cache_enabled(use_cache)


def _shard_task(
    shard: list[tuple[int, RunSpec]], telemetry: bool = False
) -> list[tuple[int, RunOutcome]]:
    """Execute one contiguous shard of the plan in a pool worker.

    Contiguity matters: the plan groups one app's cells together, so a
    worker's setup cache is hot for most of its shard.
    """
    return [(index, execute_run(spec, telemetry=telemetry)) for index, spec in shard]


def _setup_affinity(spec: RunSpec) -> tuple:
    """Runs with equal keys share problem setups (the builders behind
    :class:`~repro.engine.memo.SetupMemoCache` are keyed on
    ``(config, precision)``, never on model or platform).  Precision is
    deliberately *not* part of the key: one app's cells interleave
    precisions platform by platform, so cutting between them would
    strand the second platform's setups in another worker."""
    return (spec.app, repr(spec.config))


def _shard_by_affinity(
    indexed: list[tuple[int, RunSpec]], workers: int
) -> list[list[tuple[int, RunSpec]]]:
    """Split the plan into at most ``workers`` contiguous shards,
    cutting at setup-affinity boundaries when there are enough blocks.

    A shard boundary inside an affinity block makes two workers build
    the identical problem setup — at paper scale that is the dominant
    per-run cost, so boundaries snap to the block grid.  When the plan
    has fewer blocks than workers (a frequency sweep is one block),
    parallelism wins instead: fall back to an even item split and let
    each worker rebuild the (small, in that regime) setup once.
    """
    blocks: list[list[tuple[int, RunSpec]]] = []
    for index, spec in indexed:
        if blocks and _setup_affinity(blocks[-1][-1][1]) == _setup_affinity(spec):
            blocks[-1].append((index, spec))
        else:
            blocks.append([(index, spec)])

    if len(blocks) < workers:
        bound = -(-len(indexed) // workers)
        return [indexed[i : i + bound] for i in range(0, len(indexed), bound)]

    # Greedy contiguous packing: close a shard once it holds its even
    # share of the remaining items over the remaining shards.
    shards: list[list[tuple[int, RunSpec]]] = []
    current: list[tuple[int, RunSpec]] = []
    remaining_items = len(indexed)
    for position, block in enumerate(blocks):
        current.extend(block)
        remaining_blocks = len(blocks) - position - 1
        open_slots = workers - len(shards)
        share = remaining_items / open_slots
        if (len(current) >= share and open_slots > 1) or remaining_blocks < open_slots - 1:
            shards.append(current)
            remaining_items -= len(current)
            current = []
    if current:
        shards.append(current)
    return shards


def default_workers() -> int:
    """A safe default worker count: the CPU count, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def _limited_by_tallies(executed: list[RunOutcome | None]) -> dict[str, int]:
    """Kernel launches by dominant limiter, over the executed runs."""
    tallies: dict[str, int] = {}
    for outcome in executed:
        if outcome is None:
            continue
        for record in outcome.result.counters.kernels:
            tallies[record.limited_by] = tallies.get(record.limited_by, 0) + 1
    return tallies


def _executor_metrics(stats: ExecStats, worker_busy: dict[int, float]) -> MetricsRegistry:
    """Executor-level gauges/counters folded into the merged timeline."""
    registry = MetricsRegistry()
    registry.counter(
        "repro_executor_runs_total", help="Run descriptors handled.", result="requested"
    ).inc(stats.requested_runs)
    registry.counter(
        "repro_executor_runs_total", help="Run descriptors handled.", result="executed"
    ).inc(stats.unique_runs)
    registry.counter(
        "repro_executor_runs_total", help="Run descriptors handled.", result="deduplicated"
    ).inc(stats.deduplicated_runs)
    registry.gauge(
        "repro_memo_hit_ratio", help="Memo hit ratio by cache layer.", cache="kernel"
    ).set(stats.cache_hit_rate)
    registry.gauge(
        "repro_memo_hit_ratio", help="Memo hit ratio by cache layer.", cache="setup"
    ).set(stats.setup_hit_rate)
    registry.gauge(
        "repro_memo_hit_ratio", help="Memo hit ratio by cache layer.", cache="trace"
    ).set(stats.trace_hit_rate)
    for name, count in sorted(stats.limited_by.items()):
        registry.counter(
            "repro_limited_by_total",
            help="Kernel launches by dominant limiter, study-wide.",
            limited_by=name,
        ).inc(count)
    for worker in sorted(worker_busy):
        busy = worker_busy[worker]
        registry.counter(
            "repro_worker_busy_seconds_total",
            help="Wall seconds each worker spent executing runs.",
            worker=str(worker),
        ).inc(busy)
        registry.gauge(
            "repro_worker_utilization",
            help="Worker busy time over executor wall time.",
            worker=str(worker),
        ).set(busy / stats.wall_seconds if stats.wall_seconds else 0.0)
    return registry


def _build_timeline(
    executed: list[RunOutcome],
    worker_of: list[int],
    shards: list[list[tuple[int, RunSpec]]],
    stats: ExecStats,
) -> Timeline:
    """Merge per-run recordings, in unique-run (submission) order, and
    decorate the worker tracks with dispatch/start/stop events."""
    items = [
        (o.telemetry if o.telemetry is not None else RunTelemetry(label=o.spec.label), w)
        for o, w in zip(executed, worker_of)
    ]
    worker_busy: dict[int, float] = {}
    for outcome, worker in zip(executed, worker_of):
        worker_busy[worker] = worker_busy.get(worker, 0.0) + outcome.wall_seconds
    timeline = merge_run_telemetry(items, extra_metrics=_executor_metrics(stats, worker_busy))

    depth = len(executed)
    for worker, shard in enumerate(shards):
        track = f"worker-{worker}"
        timeline.events.append(
            InstantEvent(
                name="worker-start", category="executor", track=track,
                sim_ts=0.0, wall_ts=0.0,
            )
        )
        timeline.events.append(
            InstantEvent(
                name="shard-dispatch", category="executor", track=track,
                sim_ts=0.0, wall_ts=0.0,
                args=(("queue_depth", depth), ("shard_runs", len(shard))),
            )
        )
        depth -= len(shard)
        timeline.events.append(
            InstantEvent(
                name="worker-stop", category="executor", track=track,
                sim_ts=0.0, wall_ts=worker_busy.get(worker, 0.0),
            )
        )
        timeline.metrics.gauge(
            "repro_executor_queue_depth",
            help="Undispatched unique runs after each shard dispatch.",
        ).set(depth)
    return timeline


def execute(
    runs: Sequence[RunSpec],
    max_workers: int = 1,
    use_cache: bool = True,
    telemetry: bool = False,
) -> tuple[list[RunOutcome], ExecStats]:
    """Execute descriptors, returning outcomes in submission order.

    ``outcomes[i]`` always corresponds to ``runs[i]``; content-equal
    descriptors share one outcome.  ``max_workers=1`` runs in-process
    (no pool, no pickling); larger values shard the unique runs over a
    process pool.  Results are bit-identical across worker counts.

    ``telemetry`` records every run through a span recorder and merges
    the per-worker recordings into ``stats.timeline`` — deterministic
    across worker counts because the merge follows submission order,
    never completion order.  Recording is purely observational: with
    or without it, results stay bit-identical.
    """
    started = time.perf_counter()

    # Content-address the descriptors: first occurrence wins the slot.
    unique: list[RunSpec] = []
    slot_of: dict[str, int] = {}
    placement: list[int] = []
    for spec in runs:
        key = spec.content_key()
        if key not in slot_of:
            slot_of[key] = len(unique)
            unique.append(spec)
        placement.append(slot_of[key])

    executed: list[RunOutcome | None] = [None] * len(unique)
    worker_of: list[int] = [0] * len(unique)
    if max_workers <= 1 or len(unique) <= 1:
        workers = 1
        shards = [list(enumerate(unique))]
        previous = (
            memo.KERNEL_CACHE.enabled, memo.SETUP_CACHE.enabled, memo.TRACE_CACHE.enabled,
        )
        memo.set_cache_enabled(use_cache)
        try:
            for index, spec in enumerate(unique):
                executed[index] = execute_run(spec, telemetry=telemetry)
        finally:
            (memo.KERNEL_CACHE.enabled, memo.SETUP_CACHE.enabled,
             memo.TRACE_CACHE.enabled) = previous
    else:
        workers = min(max_workers, len(unique))
        # Contiguous shards, one per worker, snapped to setup-affinity
        # boundaries: each app's runs stay together, so per-worker
        # setup caches stay hot and no setup is built twice.
        indexed = list(enumerate(unique))
        shards = _shard_by_affinity(indexed, workers)
        for shard_index, shard in enumerate(shards):
            for index, _spec in shard:
                worker_of[index] = shard_index
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker, initargs=(use_cache,)
        ) as pool:
            futures = [pool.submit(_shard_task, shard, telemetry) for shard in shards]
            wait(futures, return_when=FIRST_EXCEPTION)
            for future in futures:
                for index, outcome in future.result():
                    executed[index] = outcome

    outcomes = [executed[slot] for slot in placement]  # type: ignore[misc]
    stats = ExecStats(
        requested_runs=len(runs),
        unique_runs=len(unique),
        workers=workers,
        wall_seconds=time.perf_counter() - started,
        run_seconds=sum(o.wall_seconds for o in executed if o is not None),
        cache_hits=sum(o.cache_hits for o in executed if o is not None),
        cache_misses=sum(o.cache_misses for o in executed if o is not None),
        setup_hits=sum(o.setup_hits for o in executed if o is not None),
        setup_misses=sum(o.setup_misses for o in executed if o is not None),
        trace_hits=sum(o.trace_hits for o in executed if o is not None),
        trace_misses=sum(o.trace_misses for o in executed if o is not None),
        per_run=[
            (o.spec.label, o.wall_seconds, o.cache_hits, o.cache_misses,
             o.setup_hits, o.setup_misses, o.trace_hits, o.trace_misses)
            for o in executed
            if o is not None
        ],
        limited_by=_limited_by_tallies(executed),
    )
    if telemetry:
        done = [o for o in executed if o is not None]
        stats.timeline = _build_timeline(done, worker_of, shards, stats)
    return outcomes, stats
