"""Error taxonomy and deterministic fault injection for study runs.

A paper-scale study is hundreds of independent simulations fanned over
a process pool; at that scale *something* eventually goes wrong — a
worker gets OOM-killed, a run hangs, a result comes back mangled.
This module gives the executor a vocabulary for those events and a way
to rehearse them:

* :class:`ErrorKind` / :class:`RunError` — the classification the
  retry layer (:mod:`repro.exec.retry`) acts on.  ``TRANSIENT`` errors
  are retried with backoff, ``PERMANENT`` errors fail fast, and
  ``POISONED`` runs (bad output, or specs that keep killing their
  worker pool) are quarantined so one bad cell cannot abort the study.
* :class:`FaultPlan` — a seeded chaos harness.  Faults are drawn per
  run from a content-addressed hash of ``(seed, kind, spec key)``, so
  an injection campaign is reproducible bit-for-bit: same seed, same
  faults, on every machine and worker count.  Injected faults fire on
  the first :attr:`FaultPlan.attempts` attempts of a drawn spec and
  then stand down, which is what makes the core invariant testable —
  a study under transient injection must produce results bit-identical
  to a fault-free run.

Plans come from the CLI (``--inject-faults crash:0.2,timeout:0.1``) or
the ``REPRO_INJECT_FAULTS`` / ``REPRO_FAULT_SEED`` environment
variables (which reach pool workers of any entry point).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from enum import Enum
from typing import Mapping


class ErrorKind(str, Enum):
    """What a run failure means for the rest of the study."""

    #: Environment-induced and worth retrying: crashed/OOM-killed
    #: worker, watchdog timeout, broken pool.
    TRANSIENT = "transient"
    #: Deterministic — the same spec will fail the same way again, so
    #: retrying only wastes the budget.  Fails fast.
    PERMANENT = "permanent"
    #: The run produced output that fails validation, or the spec
    #: keeps taking its worker pool down with it.  Retried cautiously,
    #: then quarantined.
    POISONED = "poisoned"


class RunTimeout(TimeoutError):
    """A run exceeded the per-run watchdog budget."""


class ResultValidationError(RuntimeError):
    """A run completed but its result fails sanity validation."""


class InjectedFault(RuntimeError):
    """Base class for faults raised by a :class:`FaultPlan`."""


class InjectedCrash(InjectedFault):
    """Injected transient crash (a worker dying mid-run)."""


class InjectedPoison(InjectedFault):
    """Injected permanent failure (a run that can never succeed)."""


@dataclass(frozen=True)
class FaultAttempt:
    """One failed attempt in a run's retry history."""

    attempt: int
    kind: ErrorKind
    error: str
    backoff_seconds: float = 0.0


@dataclass(frozen=True)
class RunError:
    """A run that exhausted its attempts, with its full history.

    Carried in ``ExecStats.failures`` (and the ``failures`` field of
    study/sweep results) instead of being raised: the study keeps its
    completed work and reports what it lost.
    """

    label: str
    key: str
    kind: ErrorKind
    message: str
    traceback: str = ""
    attempts: tuple[FaultAttempt, ...] = ()

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    def summary_row(self) -> tuple[str, str, str, str]:
        """(label, kind, attempts, message) for the CLI failure table."""
        return (self.label, self.kind.value, str(self.n_attempts), self.message)


#: Injectable fault kinds and what each rehearses:
#:
#: ``crash``     — the attempt raises (a worker segfault/OOM-kill seen
#:                 from inside); transient, retried.
#: ``timeout``   — the attempt trips the watchdog; transient, retried.
#: ``corrupt``   — the attempt returns a result with a non-finite
#:                 checksum; caught by validation, retried.
#: ``poison``    — every attempt raises a poisoned-output error; the
#:                 spec exhausts its retry budget and is quarantined.
#: ``abort``     — the worker process exits hard (``os._exit``),
#:                 breaking the pool; exercises pool respawn.  In the
#:                 in-process path it degrades to ``crash``.
#: ``hang``      — the worker sleeps past any watchdog; exercises the
#:                 parent-side hung-pool recovery.  In the in-process
#:                 path it degrades to ``timeout``.
#: ``interrupt`` — the attempt raises ``KeyboardInterrupt``; exercises
#:                 the Ctrl-C checkpoint-flush path deterministically.
FAULT_KINDS = ("crash", "timeout", "corrupt", "poison", "abort", "hang", "interrupt")

#: How long an injected ``hang`` sleeps in a pool worker — far past
#: any sane watchdog, short enough that an unconfigured test suite
#: would still terminate.
HANG_SECONDS = 3600.0

ENV_FAULTS = "REPRO_INJECT_FAULTS"
ENV_SEED = "REPRO_FAULT_SEED"


def _hash01(token: str) -> float:
    """Map a token to [0, 1) through a stable content hash.

    ``hashlib`` rather than ``hash()``: Python string hashing is
    salted per process, and fault draws must agree across pool workers
    and across runs.
    """
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, per-spec fault injections (reproducible chaos).

    ``rates`` maps fault kind -> probability that the kind is drawn
    for a given run spec (stored as a sorted tuple of pairs so plans
    are hashable and picklable into pool workers).  A drawn fault
    fires on the first ``attempts`` attempts of that spec and then
    stands down, so a retry budget larger than ``attempts`` always
    recovers; raise ``attempts`` past the retry budget to rehearse
    quarantine instead.
    """

    seed: int = 0
    rates: tuple[tuple[str, float], ...] = ()
    attempts: int = 1

    def __post_init__(self) -> None:
        for kind, rate in self.rates:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}: known kinds are {', '.join(FAULT_KINDS)}"
                )
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate for {kind!r} must be in [0, 1], got {rate}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    @property
    def active(self) -> bool:
        return any(rate > 0 for _, rate in self.rates)

    def rate(self, kind: str) -> float:
        return dict(self.rates).get(kind, 0.0)

    def drawn(self, kind: str, key: str) -> bool:
        """Whether ``kind`` is drawn for the spec with content ``key``."""
        rate = self.rate(kind)
        if rate <= 0.0:
            return False
        return _hash01(f"{self.seed}:{kind}:{key}") < rate

    def injects(self, kind: str, key: str, attempt: int) -> bool:
        """Whether ``kind`` fires on this attempt of this spec."""
        return attempt < self.attempts and self.drawn(kind, key)

    def faults_for(self, key: str) -> tuple[str, ...]:
        """All fault kinds drawn for one spec, in canonical order."""
        return tuple(kind for kind in FAULT_KINDS if self.drawn(kind, key))

    def spec_string(self) -> str:
        """Round-trippable ``kind:rate,...`` form (see :func:`parse_fault_plan`)."""
        parts = [f"{kind}:{rate:g}" for kind, rate in self.rates]
        if self.attempts != 1:
            parts.append(f"attempts:{self.attempts}")
        return ",".join(parts)

    def apply(self, key: str, label: str, attempt: int, in_pool_worker: bool) -> None:
        """Raise (or hard-exit) for every process fault drawn on this attempt.

        Result corruption is not raised here — it mangles the produced
        outcome instead; the executor asks :meth:`injects` for
        ``"corrupt"`` after the run.
        """
        # Poison fires on *every* attempt: it rehearses a run that can
        # never succeed, so standing down after ``attempts`` would just
        # let the retry ladder paper over it.
        if self.drawn("poison", key):
            raise InjectedPoison(f"injected permanent failure: {label}")
        if self.injects("interrupt", key, attempt):
            raise KeyboardInterrupt(f"injected interrupt: {label}")
        if self.injects("abort", key, attempt):
            if in_pool_worker:
                os._exit(17)  # hard worker death: the pool breaks
            raise InjectedCrash(f"injected abort (in-process, degraded to crash): {label}")
        if self.injects("hang", key, attempt):
            if in_pool_worker:
                time.sleep(HANG_SECONDS)
            raise RunTimeout(f"injected hang (in-process, degraded to timeout): {label}")
        if self.injects("crash", key, attempt):
            raise InjectedCrash(f"injected crash: {label} (attempt {attempt})")
        if self.injects("timeout", key, attempt):
            raise RunTimeout(f"injected timeout: {label} (attempt {attempt})")


def parse_fault_plan(spec: str, seed: int = 0) -> FaultPlan:
    """Parse ``crash:0.2,timeout:0.1[,attempts:2]`` into a plan.

    Each token is ``kind:value``; kinds are the injectable
    :data:`FAULT_KINDS` plus the pseudo-keys ``attempts`` (faulted
    attempts per drawn spec) and ``seed``.
    """
    rates: dict[str, float] = {}
    attempts = 1
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        name, sep, value = token.partition(":")
        name = name.strip()
        if not sep:
            raise ValueError(f"malformed fault token {token!r}: expected kind:rate")
        try:
            number = float(value)
        except ValueError:
            raise ValueError(f"malformed fault rate in {token!r}") from None
        if name == "attempts":
            attempts = int(number)
        elif name == "seed":
            seed = int(number)
        else:
            rates[name] = number
    return FaultPlan(seed=seed, rates=tuple(sorted(rates.items())), attempts=attempts)


def fault_plan_from_env(environ: Mapping[str, str] = os.environ) -> FaultPlan | None:
    """The ambient fault plan, if chaos was requested via environment.

    This is how an injection campaign reaches pool workers and entry
    points that do not thread a plan through explicitly.
    """
    spec = environ.get(ENV_FAULTS)
    if not spec:
        return None
    seed = int(environ.get(ENV_SEED, "0"))
    return parse_fault_plan(spec, seed=seed)
