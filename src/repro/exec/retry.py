"""Retry policy: attempts, deterministic backoff, per-run watchdog.

The executor's unit of recovery is one :class:`~repro.exec.plan.RunSpec`
attempt.  :func:`run_with_retry` wraps :func:`~repro.exec.executor.execute_run`
with the full ladder:

1. classify the failure (:func:`classify`) into the
   :class:`~repro.exec.faults.ErrorKind` taxonomy;
2. retry ``TRANSIENT``/``POISONED`` failures up to
   :attr:`RetryPolicy.max_attempts`, sleeping a *deterministically*
   jittered exponential backoff between attempts — the jitter comes
   from a content hash of ``(spec key, attempt)``, not from a shared
   RNG, so retry schedules are reproducible and independent of worker
   interleaving;
3. enforce the per-run watchdog (:attr:`RetryPolicy.run_timeout`): an
   attempt that comes back over budget is treated as a timeout and
   retried (its result is suspect by definition of the budget);
4. validate the result (:func:`validate_result`) so corrupted output
   is caught at the attempt boundary, not in a figure three layers up;
5. give up with a :class:`~repro.exec.faults.RunError` carrying the
   whole attempt history — the caller quarantines the spec and keeps
   the rest of the study.

Everything here is picklable and runs identically in pool workers and
in the in-process path.  Sleeping is injectable (``sleep=``) so tests
can run a thousand simulated backoffs in microseconds.
"""

from __future__ import annotations

import math
import time
import traceback as traceback_module
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from .faults import (
    ErrorKind,
    FaultAttempt,
    FaultPlan,
    InjectedCrash,
    InjectedPoison,
    ResultValidationError,
    RunError,
    RunTimeout,
    _hash01,
)
from .plan import RunSpec

if TYPE_CHECKING:  # circular at runtime: executor imports this module
    from .executor import RunOutcome


def backoff_delay(
    key: str,
    attempt: int,
    base: float = 0.02,
    factor: float = 2.0,
    cap: float = 1.0,
) -> float:
    """Deterministically jittered exponential backoff (seconds).

    The jitter multiplier lies in [0.5, 1.0) and is a pure function of
    ``(key, attempt)`` — two workers retrying the same key sleep the
    same schedule, and a re-run reproduces its backoffs exactly.
    Shared by the exec retry ladder and the shard supervisor's respawn
    schedule, so every backoff in the system obeys one discipline.
    """
    if base <= 0:
        return 0.0
    step = min(cap, base * factor**attempt)
    return step * (0.5 + 0.5 * _hash01(f"backoff:{key}:{attempt}"))


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the executor fights for each run.

    ``max_attempts`` counts *total* attempts (1 disables retries).
    ``run_timeout`` is the per-run watchdog in wall seconds (``None``
    disables it); in the pool path the same budget also bounds how
    long the parent waits on a shard before declaring its worker hung.
    ``max_pool_respawns`` caps how many times a broken/hung pool is
    rebuilt before the executor degrades to in-process execution.
    """

    max_attempts: int = 3
    run_timeout: float | None = None
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    backoff_cap: float = 1.0
    max_pool_respawns: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.run_timeout is not None and self.run_timeout <= 0:
            raise ValueError(f"run_timeout must be positive, got {self.run_timeout}")
        if self.backoff_base < 0 or self.backoff_cap < 0 or self.backoff_factor < 1:
            raise ValueError("backoff parameters must be non-negative (factor >= 1)")
        if self.max_pool_respawns < 0:
            raise ValueError(f"max_pool_respawns must be >= 0, got {self.max_pool_respawns}")

    def backoff(self, key: str, attempt: int) -> float:
        """Deterministically jittered exponential backoff (seconds).

        The jitter multiplier lies in [0.5, 1.0) and is a pure
        function of ``(key, attempt)`` — two workers retrying the same
        spec would sleep the same schedule, and a re-run of the same
        study reproduces its backoffs exactly.
        """
        return backoff_delay(
            key, attempt, base=self.backoff_base,
            factor=self.backoff_factor, cap=self.backoff_cap,
        )


def classify(exc: BaseException) -> ErrorKind:
    """Map an exception to the retry taxonomy.

    The default is ``PERMANENT``: an unrecognized error is assumed
    deterministic (a bug in a port or config), where retrying only
    triples the time to the failure table.  Environment-shaped errors
    are listed explicitly as transient.
    """
    if isinstance(exc, (InjectedPoison, ResultValidationError)):
        return ErrorKind.POISONED
    if isinstance(exc, (InjectedCrash, RunTimeout, TimeoutError)):
        return ErrorKind.TRANSIENT
    if isinstance(exc, (MemoryError, ConnectionError, BrokenPipeError, OSError)):
        return ErrorKind.TRANSIENT
    return ErrorKind.PERMANENT


def validate_result(result: object) -> None:
    """Sanity-check a run result before it is accepted.

    Catches corrupted output (injected or real) at the attempt
    boundary: simulated times must be finite and non-negative and the
    checksum finite, or the attempt is treated as ``POISONED`` and
    retried.
    """
    seconds = getattr(result, "seconds", None)
    kernel_seconds = getattr(result, "kernel_seconds", None)
    checksum = getattr(result, "checksum", None)
    for name, value in (("seconds", seconds), ("kernel_seconds", kernel_seconds)):
        if value is None or not math.isfinite(value) or value < 0:
            raise ResultValidationError(f"result field {name}={value!r} is not a valid time")
    if checksum is None or not math.isfinite(checksum):
        raise ResultValidationError(f"result checksum {checksum!r} is not finite")


def run_with_retry(
    spec: RunSpec,
    policy: RetryPolicy,
    faults: FaultPlan | None = None,
    telemetry: bool = False,
    base_attempt: int = 0,
    sleep: Callable[[float], None] = time.sleep,
) -> "RunOutcome | RunError":
    """Execute one spec under the retry ladder.

    ``base_attempt`` is the number of attempts already spent on this
    spec elsewhere (pool-level requeues after a broken pool); the
    local budget shrinks accordingly and injected faults see the
    global attempt index, so a requeued spec does not re-draw the
    faults it already survived.

    Returns the successful :class:`~repro.exec.executor.RunOutcome`
    (with ``attempts``/``retry_history`` filled in) or a
    :class:`~repro.exec.faults.RunError`.  ``KeyboardInterrupt`` is
    never swallowed — checkpoint flushing on Ctrl-C happens above.
    """
    from .executor import execute_run

    key = spec.content_key()
    history: list[FaultAttempt] = []
    attempt = base_attempt
    while True:
        started = time.perf_counter()
        try:
            outcome = execute_run(spec, telemetry=telemetry, faults=faults, attempt=attempt)
            elapsed = time.perf_counter() - started
            if policy.run_timeout is not None and elapsed > policy.run_timeout:
                raise RunTimeout(
                    f"{spec.label}: attempt {attempt} took {elapsed:.3f} s "
                    f"(watchdog budget {policy.run_timeout:g} s)"
                )
            validate_result(outcome.result)
            return replace(outcome, attempts=attempt + 1, retry_history=tuple(history))
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            kind = classify(exc)
            retryable = kind is not ErrorKind.PERMANENT and attempt + 1 < policy.max_attempts
            delay = policy.backoff(key, attempt) if retryable else 0.0
            history.append(
                FaultAttempt(
                    attempt=attempt,
                    kind=kind,
                    error=f"{type(exc).__name__}: {exc}",
                    backoff_seconds=delay,
                )
            )
            if not retryable:
                return RunError(
                    label=spec.label,
                    key=key,
                    kind=kind,
                    message=str(exc) or type(exc).__name__,
                    traceback=traceback_module.format_exc(),
                    attempts=tuple(history),
                )
            if delay > 0:
                sleep(delay)
            attempt += 1
