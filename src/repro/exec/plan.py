"""Run descriptors: the study/sweep matrices, flattened.

The paper's experiments are all dense cross-products — apps x models x
platforms x precisions (Figures 8/9), or one app across a (core,
memory) frequency grid (Figure 7).  Each cell of those products is an
independent simulation, so the executor (:mod:`repro.exec.executor`)
works on a flat list of :class:`RunSpec` descriptors rather than on
nested loops.  Descriptors are *content-addressed*: two specs with the
same content are the same run, which is how shared work (every model's
OpenMP baseline for one cell) is priced exactly once.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..hardware.specs import Precision

#: Platform selector values for :attr:`RunSpec.platform`.
APU = "apu"
DGPU = "dgpu"
V100 = "v100"
PLATFORMS = (APU, DGPU, V100)

#: Report label per selector ("APU"/"dGPU"/"V100"); the serve tier and
#: the study assembler must agree on these for bit-identical entries.
PLATFORM_LABELS = {APU: "APU", DGPU: "dGPU", V100: "V100"}


def platform_label(platform: str) -> str:
    """Human-readable study label for a platform selector."""
    return PLATFORM_LABELS[platform]

#: Count-like config fields that must be positive when present.  The
#: app config dataclasses validate themselves; this net also catches
#: duck-typed configs handed straight to :class:`RunSpec`.
_COUNT_FIELDS = (
    "size", "reps", "iterations", "steps", "block_size",
    "nx", "ny", "nz", "cg_iterations",
    "n_nuclides", "n_gridpoints", "n_lookups",
)


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation: a port on a configured platform.

    ``config`` must be a picklable value object (the apps' frozen
    config dataclasses) so descriptors can cross process boundaries.
    ``core_mhz``/``memory_mhz`` override the GPU clock domains for
    frequency-sweep points; ``None`` keeps the device defaults.
    """

    app: str
    model: str
    platform: str  # APU or DGPU
    precision: Precision
    config: object
    #: Projection mode: price the launch/transfer schedule, skip the
    #: NumPy kernel bodies (paper-scale problems).
    projection: bool = True
    core_mhz: float | None = None
    memory_mhz: float | None = None

    def __post_init__(self) -> None:
        if self.platform not in PLATFORMS:
            raise ValueError(
                f"platform must be one of {', '.join(map(repr, PLATFORMS))}, "
                f"got {self.platform!r}"
            )
        # Fail at construction with a nameable message, not as a
        # KeyError three layers deep inside a pool worker.
        from ..apps import APPS_BY_NAME  # lazy: keeps the plan layer light

        app = APPS_BY_NAME.get(self.app)
        if app is None:
            raise ValueError(
                f"unknown app {self.app!r}: known apps are {', '.join(sorted(APPS_BY_NAME))}"
            )
        if self.model not in app.ports:
            raise ValueError(
                f"{self.app} has no {self.model!r} port: "
                f"known models are {', '.join(sorted(app.ports))}"
            )
        for name in _COUNT_FIELDS:
            value = getattr(self.config, name, None)
            if isinstance(value, (int, float)) and not isinstance(value, bool) and value <= 0:
                raise ValueError(
                    f"{self.app} config field {name}={value!r} must be positive"
                )
        for name in ("core_mhz", "memory_mhz"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be a positive frequency, got {value!r}")

    @property
    def apu(self) -> bool:
        return self.platform == APU

    @property
    def label(self) -> str:
        """Short human-readable identity for stats and logs."""
        clocks = ""
        if self.core_mhz is not None or self.memory_mhz is not None:
            clocks = f"@{self.core_mhz:g}/{self.memory_mhz:g}MHz"
        return f"{self.app}/{self.model}/{self.platform}{clocks}/{self.precision.value}"

    def telemetry_meta(self) -> dict[str, str]:
        """Labels seeding this run's span recorder and metrics: the
        identity every span/metric of the run is attributed to."""
        return {
            "app": self.app,
            "model": self.model,
            "platform": self.platform,
            "precision": self.precision.value,
        }

    def content_key(self) -> str:
        """Content digest identifying this run for deduplication.

        Built from the repr of every field (config dataclasses repr
        all their parameters), so equal-content descriptors collide by
        construction and object identity never matters.  Memoized per
        instance (every field is frozen, so the digest cannot change):
        the serve tier keys routing, caching, and the persistent store
        off this digest, several times per cell.
        """
        cached = self.__dict__.get("_content_key")
        if cached is not None:
            return cached
        canonical = repr((
            self.app,
            self.model,
            self.platform,
            self.precision.value,
            self.config,
            self.projection,
            self.core_mhz,
            self.memory_mhz,
        ))
        key = hashlib.sha256(canonical.encode()).hexdigest()
        object.__setattr__(self, "_content_key", key)
        return key

    def schedule_key(self) -> tuple:
        """Everything that shapes the launch/transfer schedule.

        The content key minus the clock overrides: GPU clocks change
        what each kernel *costs*, never which kernels launch or what
        moves over the interconnect.  Cells sharing this key (e.g. an
        entire frequency sweep) share one captured charge schedule in
        the columnar engine.
        """
        return (
            self.app,
            self.model,
            self.platform,
            self.precision.value,
            repr(self.config),
            self.projection,
        )


@dataclass(frozen=True)
class SpecLattice:
    """A run matrix lowered to a table, grouped by schedule signature.

    ``rows`` preserves the caller's cell order (reassembly indexes into
    it); ``groups`` partitions the row indices by
    :meth:`RunSpec.schedule_key`, in first-appearance order.  Each
    group is one schedule capture in the columnar engine — its rows
    differ at most in clock overrides.
    """

    rows: tuple[RunSpec, ...]
    groups: tuple[tuple[tuple, tuple[int, ...]], ...]

    @classmethod
    def from_specs(cls, specs: Sequence[RunSpec]) -> "SpecLattice":
        grouped: dict[tuple, list[int]] = {}
        for index, spec in enumerate(specs):
            grouped.setdefault(spec.schedule_key(), []).append(index)
        return cls(
            rows=tuple(specs),
            groups=tuple((key, tuple(rows)) for key, rows in grouped.items()),
        )

    def axes(self) -> dict[str, tuple]:
        """Distinct values per lattice axis, in first-appearance order."""
        seen: dict[str, dict] = {
            "app": {}, "model": {}, "platform": {}, "precision": {}, "clock": {},
        }
        for spec in self.rows:
            seen["app"].setdefault(spec.app)
            seen["model"].setdefault(spec.model)
            seen["platform"].setdefault(spec.platform)
            seen["precision"].setdefault(spec.precision.value)
            seen["clock"].setdefault((spec.core_mhz, spec.memory_mhz))
        return {axis: tuple(values) for axis, values in seen.items()}


def study_runs(
    app_names: Sequence[str],
    configs: dict[str, object],
    apu_values: Iterable[bool] | None,
    precisions: Iterable[Precision],
    models: Sequence[str],
    baseline: str,
    projection: bool,
    platforms: Sequence[str] | None = None,
) -> list[RunSpec]:
    """Flatten one comparison study into descriptors.

    The order is the study's canonical nested-loop order — app, then
    platform, then precision, with the baseline preceding the models of
    each cell — so callers can zip the outcomes back into entries.

    ``platforms`` names selectors directly (the general form, required
    for V100); ``apu_values`` is the legacy two-platform spelling and is
    ignored when ``platforms`` is given.
    """
    if platforms is None:
        platforms = tuple(APU if apu else DGPU for apu in (apu_values or ()))
    runs: list[RunSpec] = []
    for name in app_names:
        config = configs[name]
        for platform in platforms:
            for precision in precisions:
                runs.append(RunSpec(name, baseline, platform, precision, config, projection))
                for model in models:
                    runs.append(RunSpec(name, model, platform, precision, config, projection))
    return runs


def sweep_runs(
    app_name: str,
    config: object,
    precision: Precision,
    core_grid: Sequence[float],
    memory_grid: Sequence[float],
    model: str,
) -> list[RunSpec]:
    """Flatten one frequency sweep (memory-major, like Figure 7)."""
    return [
        RunSpec(
            app_name,
            model,
            DGPU,
            precision,
            config,
            projection=True,
            core_mhz=core_mhz,
            memory_mhz=memory_mhz,
        )
        for memory_mhz in memory_grid
        for core_mhz in core_grid
    ]
