"""Parallel study execution with result memoization.

The paper's artifacts are dense run matrices (Figures 7-10).  This
package turns those matrices into flat lists of independent
:class:`~repro.exec.plan.RunSpec` descriptors, deduplicates them by
content, shards them over a process pool, and backs all kernel pricing
with the content-addressed memo cache of :mod:`repro.engine.memo` —
so shared baselines and repeated kernels are priced exactly once and
results stay bit-identical to the serial path.
"""

from ..engine.memo import (
    KERNEL_CACHE,
    SETUP_CACHE,
    KernelMemoCache,
    MemoStats,
    SetupMemoCache,
    cache_disabled,
    cached_simulate_kernel,
    cached_time_cpu_kernel,
    cached_time_gpu_kernel,
    clear_caches,
    memoized_setup,
    set_cache_enabled,
)
from .checkpoint import CheckpointJournal
from .executor import (
    ExecStats,
    ExecutionInterrupted,
    RunOutcome,
    default_workers,
    execute,
    execute_run,
)
from .faults import (
    ErrorKind,
    FaultAttempt,
    FaultPlan,
    RunError,
    fault_plan_from_env,
    parse_fault_plan,
)
from .plan import APU, DGPU, RunSpec, study_runs, sweep_runs
from .retry import RetryPolicy, classify, run_with_retry, validate_result

__all__ = [
    "APU",
    "CheckpointJournal",
    "DGPU",
    "ErrorKind",
    "ExecStats",
    "ExecutionInterrupted",
    "FaultAttempt",
    "FaultPlan",
    "RetryPolicy",
    "RunError",
    "classify",
    "fault_plan_from_env",
    "parse_fault_plan",
    "run_with_retry",
    "validate_result",
    "KERNEL_CACHE",
    "KernelMemoCache",
    "MemoStats",
    "RunOutcome",
    "RunSpec",
    "SETUP_CACHE",
    "SetupMemoCache",
    "cache_disabled",
    "cached_simulate_kernel",
    "cached_time_cpu_kernel",
    "cached_time_gpu_kernel",
    "clear_caches",
    "default_workers",
    "execute",
    "execute_run",
    "memoized_setup",
    "set_cache_enabled",
    "study_runs",
    "sweep_runs",
]
