"""The asyncio HTTP server: admission control, deadlines, drain.

A deliberately small HTTP/1.1 implementation over ``asyncio`` streams
(stdlib only — no framework): request line + headers + Content-Length
body in, ``Content-Length``-framed JSON out, keep-alive connections.
Three concerns live here, layered over the :class:`~repro.serve.batcher.Batcher`:

* **Admission control** — at most ``max_queue`` prediction requests
  are in the house at once; the rest are shed immediately with a 429
  and a ``Retry-After`` hint, so overload degrades into fast, honest
  rejections instead of collapse.
* **Deadlines** — every prediction carries a wall-clock budget
  (``deadline_s``); a request that cannot be answered in time gets a
  504 while its engine run, if any, completes and warms the cache for
  the retry.  The backend's own watchdog is the retry ladder of
  :mod:`repro.exec.retry`.
* **Graceful drain** — on SIGTERM/SIGINT the listener closes first,
  in-flight requests finish (bounded by ``drain_timeout_s``), and
  ``/readyz`` flips to 503 so an orchestrator stops routing here.

Instrumentation: ``repro_serve_requests_total{route,status}``, a
queue-depth gauge, a latency histogram per route *and status* (shed
429s and deadline 504s are real latency samples too), and the memo
single-flight counter — all scraped from ``GET /metrics``.  Every
prediction request additionally yields a distributed trace
(:mod:`repro.obs.tracing`): a span tree with ``handle``/``serialize``
segments here and ``queue_wait``/``batch_wait``/``coalesced_wait``/
``engine`` segments from the batcher, linked from the latency
histogram by OpenMetrics exemplars and retained tail-biased behind
``/v1/debug/traces``.  Tracing is observation-only: responses are
bit-identical with it on or off (``ServeConfig.tracing``).
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import threading
import time
from dataclasses import dataclass

from .. import __version__
from ..core.metrics import speedup
from ..engine import memo
from ..exec.plan import RunSpec, platform_label
from ..exec.retry import RetryPolicy
from ..obs import logging as obs_logging
from ..obs import tracing
from ..obs.export import chrome_trace
from ..obs.metrics import MetricsRegistry
from . import faults as serve_faults
from . import protocol, warmup
from .batcher import BackendRunError, Batcher
from .store import PersistentResultCache, ResultStore

#: Latency buckets for serving (seconds): log-1/2-decade from a 100 µs
#: floor to a 10 s tail.  Warm predict p99 is ~2.6 ms; decade spacing
#: put the whole warm distribution in one bucket, useless for SLO math.
SERVE_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for per-segment histograms: segments (a queue wait, one
#: serialize) run far shorter than whole requests, so extend the floor
#: down to 10 µs.
SEGMENT_BUCKETS: tuple[float, ...] = (
    0.00001, 0.000025, 0.00005,
) + SERVE_LATENCY_BUCKETS

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 429: "Too Many Requests", 500: "Internal Server Error",
    502: "Bad Gateway", 503: "Service Unavailable", 504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServeConfig:
    """Everything the prediction service can be tuned with."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is on Server.port
    window_s: float = 0.002
    max_batch: int = 32
    #: Admission bound: predictions in flight before shedding begins.
    max_queue: int = 64
    #: Seconds a shed client is told to wait (the Retry-After header).
    retry_after_s: int = 1
    #: Per-request wall-clock budget; over it the client gets a 504.
    deadline_s: float = 30.0
    #: Attempts per engine run (the exec retry ladder).
    retries: int = 2
    #: Per-engine-run watchdog; ``None`` leaves only the HTTP deadline.
    run_timeout_s: float | None = None
    #: How long a drain waits for in-flight requests before giving up.
    drain_timeout_s: float = 10.0
    #: Cold-batch pricing engine: ``"vector"`` prices each micro-batch
    #: window's eligible specs as one columnar call, ``"scalar"`` runs
    #: them through the retry ladder one by one (bit-identical).
    engine: str = "vector"
    #: Record a distributed trace per prediction request.  Purely
    #: observational — responses are bit-identical either way.
    tracing: bool = True
    #: Root of the persistent content-addressed result store shared by
    #: every process pointed at it; ``None`` keeps results in-memory
    #: only (the pre-PR-8 behaviour).
    store_path: str | None = None
    #: Boot-time warm-up: ``"none"``, ``"load"`` (seed memory from the
    #: store), or ``"presets"`` (load, then pre-price the reachable
    #: preset lattice through the columnar engine).
    warm: str = "load"
    #: Scale presets the ``"presets"`` warm-up prices.
    warm_scales: tuple[str, ...] = ("bench",)
    #: This process's index within a sharded tier (``None`` standalone).
    shard_id: int | None = None
    #: Per-request caps; ``None`` defers to the protocol defaults and
    #: their ``REPRO_SERVE_MAX_STUDY_RUNS`` / ``_MAX_BATCH_CELLS``
    #: environment overrides.
    max_study_runs: int | None = None
    max_batch_cells: int | None = None

    def policy(self) -> RetryPolicy:
        return RetryPolicy(max_attempts=self.retries, run_timeout=self.run_timeout_s)


@dataclass
class _HttpRequest:
    method: str
    path: str
    headers: dict[str, str]
    body: bytes
    keep_alive: bool = True


class _BadRequest(Exception):
    """Malformed HTTP; answered with a 400 and a closed connection."""


async def _read_request(reader: asyncio.StreamReader) -> _HttpRequest | None:
    """Parse one HTTP/1.1 request; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise _BadRequest("truncated request head")
    except asyncio.LimitOverrunError:
        raise _BadRequest("request head too large")
    if len(head) > _MAX_HEADER_BYTES:
        raise _BadRequest("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _BadRequest(f"malformed request line {lines[0]!r}")
    method, target, version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _BadRequest(f"bad Content-Length {length_text!r}")
    if length < 0 or length > _MAX_BODY_BYTES:
        raise _BadRequest(f"Content-Length {length} out of range")
    body = await reader.readexactly(length) if length else b""
    connection = headers.get("connection", "").lower()
    keep_alive = connection != "close" and version != "HTTP/1.0"
    return _HttpRequest(
        method=method, path=target, headers=headers, body=body, keep_alive=keep_alive
    )


def _encode_response(
    status: int,
    payload: dict | str,
    keep_alive: bool,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    if isinstance(payload, str):
        body = payload.encode()
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = (json.dumps(payload) + "\n").encode()
        content_type = "application/json"
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


class Server:
    """The prediction service: routes, admission, deadlines, drain."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.metrics = MetricsRegistry()
        if self.config.warm not in warmup.WARM_MODES:
            raise ValueError(
                f"warm must be one of {warmup.WARM_MODES}, got {self.config.warm!r}"
            )
        self.store: ResultStore | None = None
        cache = None
        if self.config.store_path is not None:
            self.store = ResultStore(self.config.store_path)
            cache = PersistentResultCache(self.store)
        self.warm_report: warmup.WarmReport | None = None
        self.batcher = Batcher(
            window_s=self.config.window_s,
            max_batch=self.config.max_batch,
            policy=self.config.policy(),
            metrics=self.metrics,
            cache=cache,
            engine=self.config.engine,
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        self._active = 0
        self._shed = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        self.started_at: float | None = None
        self.tracer = tracing.TRACER
        self.log = obs_logging.get_logger("serve")
        #: Seeded serve-layer chaos (inert unless armed via the
        #: environment or ``POST /v1/admin/chaos``).
        self.chaos = serve_faults.ServeChaos(
            serve_faults.serve_fault_plan_from_env(), self.config.shard_id
        )
        self._hung = False
        self._corrupt_pending = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def start(self) -> None:
        # Warm up BEFORE binding: /readyz cannot answer 200 until the
        # cache state the tier promises ("restarts serve warm") exists.
        self._warm_up()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=_MAX_HEADER_BYTES,
        )
        self.started_at = time.time()
        self.log.info(
            "server-started",
            url=self.url,
            engine=self.config.engine,
            window_ms=self.config.window_s * 1e3,
            max_batch=self.config.max_batch,
            max_queue=self.config.max_queue,
            tracing=self.config.tracing,
            shard=self.config.shard_id,
            store=self.config.store_path,
            warm=self.warm_report.summary() if self.warm_report else self.config.warm,
        )

    def _warm_up(self) -> None:
        """Boot-time cache priming per ``ServeConfig.warm``."""
        if self.config.warm == "none":
            return
        if self.config.warm == "load":
            if self.store is None:
                return
            started = time.perf_counter()
            loaded = warmup.load_store(self.batcher.cache, self.store)
            self.warm_report = warmup.WarmReport(
                total=loaded, loaded=loaded, priced=0, deferred=0,
                wall_s=time.perf_counter() - started,
            )
            return
        if self.store is not None:
            # Pick up everything resident (clock-override sweeps etc.),
            # then fill the preset lattice.
            warmup.load_store(self.batcher.cache, self.store)
        self.warm_report = warmup.warm_presets(
            self.batcher.cache, self.store, scales=self.config.warm_scales,
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, close."""
        self._draining = True
        self.log.info("server-draining", in_flight=self._active)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_timeout_s
            )
        except asyncio.TimeoutError:
            pass
        await self.batcher.drain()
        # Idle keep-alive connections never see another request: close
        # them and wait for their handlers, so nothing dies cancelled
        # when the loop shuts down.
        for writer in list(self._connections):
            writer.close()
        if self._handlers:
            await asyncio.wait(set(self._handlers), timeout=1.0)
        self.log.info("server-stopped", shed=self._shed)

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as exc:
                    started = time.perf_counter()
                    writer.write(_encode_response(
                        400, protocol.error_response(400, str(exc)), keep_alive=False
                    ))
                    await writer.drain()
                    self._count_request("other", 400)
                    self._observe_latency(
                        "other", 400, time.perf_counter() - started, None
                    )
                    break
                if request is None:
                    break
                if self._hung:
                    # An injected hang wedges the whole process —
                    # /healthz included — exactly like a stuck event
                    # loop would; only the supervisor's probe timeout
                    # can see it.
                    await asyncio.sleep(serve_faults.HANG_SECONDS)
                    break
                keep_alive = request.keep_alive and not self._draining
                started = time.perf_counter()
                path = request.path.split("?", 1)[0]
                if path in ("/v1/predict", "/v1/study", "/v1/batch"):
                    fault = self.chaos.next_fault()
                    if fault is not None and not await self._inject_fault(
                        fault, writer
                    ):
                        break
                root: tracing.TraceSpan | None = None
                if self.config.tracing and path in (
                    "/v1/predict", "/v1/study", "/v1/batch"
                ):
                    root = self.tracer.start_span(
                        "request",
                        kind="server",
                        parent=tracing.parse_traceparent(
                            request.headers.get("traceparent")
                        ),
                    )
                token = None
                try:
                    if root is not None:
                        handle = self.tracer.start_span(
                            "handle", kind="segment", parent=root.context
                        )
                        # Ambient context is the handle span, so wait and
                        # engine segments recorded deeper in the stack nest
                        # under it rather than widening the root's tiling.
                        token = tracing.push(handle.context)
                    route, status, payload, extra = await self._dispatch(request)
                    if root is not None:
                        self.tracer.finish_span(handle)
                    serialize_start = time.perf_counter()
                    writer.write(_encode_response(status, payload, keep_alive, extra))
                    await writer.drain()
                    if root is not None:
                        self.tracer.record(
                            "serialize", serialize_start, time.perf_counter(),
                            parent=root.context,
                        )
                finally:
                    if token is not None:
                        tracing.reset(token)
                if root is not None:
                    root.attrs["route"] = route
                    root.attrs["status"] = status
                    self.tracer.finish_span(
                        root, "ok" if status < 500 else "error"
                    )
                    latency = root.duration_s
                else:
                    latency = time.perf_counter() - started
                self._count_request(route, status)
                self._observe_latency(
                    route, status, latency, root.trace_id if root is not None else None
                )
                if root is not None:
                    self._finish_trace(root, route, status)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            if task is not None:
                self._handlers.discard(task)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- chaos injection -----------------------------------------------

    async def _inject_fault(
        self, kind: str, writer: asyncio.StreamWriter
    ) -> bool:
        """Perform one drawn fault; ``False`` ends the connection
        without a response (reset/hang), ``True`` lets the request
        proceed (slow/corrupt add their damage and carry on)."""
        self.metrics.counter(
            "repro_serve_faults_injected_total",
            help="Serve-layer chaos faults injected, by kind.",
            kind=kind,
        ).inc()
        self.log.warning(
            "fault-injected", kind=kind, shard=self.config.shard_id,
            ordinal=self.chaos.to_json()["ordinal"],
        )
        if kind == "crash":
            # A hard process death mid-request: no drain, no goodbye —
            # what an OOM kill looks like from outside.
            os._exit(23)
        if kind == "hang":
            self._hung = True
            await asyncio.sleep(serve_faults.HANG_SECONDS)
            return False
        if kind == "reset":
            writer.close()
            return False
        if kind == "slow":
            await asyncio.sleep(self.chaos.plan.slow_s)
            return True
        if kind == "corrupt":
            # Damage is applied to the *requested* cell once its spec
            # is parsed (the handlers call _consume_corrupt), so the
            # same request immediately exercises detection + repair.
            self._corrupt_pending += 1
        return True

    def _consume_corrupt(self, spec: RunSpec) -> None:
        """Scribble over one store entry and evict its memory copy.

        The next lookup (usually this very request) must detect the
        damage via the store's sha256 check, treat it as a miss,
        recompute, and durably repair the file — so an injected
        corruption never changes an answer, only its provenance.
        """
        if self._corrupt_pending <= 0:
            return
        self._corrupt_pending -= 1
        key = spec.content_key()
        if self.store is not None:
            path = self.store.path_for(key)
            try:
                if path.exists():
                    path.write_bytes(b"\x00chaos-corrupt" + path.read_bytes()[:64])
            except OSError:
                pass
        self.batcher.cache.discard(key)
        self.log.warning(
            "store-entry-corrupted", key=key[:16], shard=self.config.shard_id,
        )

    def _admin_chaos(
        self, request: _HttpRequest
    ) -> tuple[str, int, dict | str, tuple[tuple[str, str], ...]]:
        """Arm or disarm the chaos plan at runtime.

        Body ``{"plan": "crash:0.01,...", "seed": 42}`` arms a fresh
        injector (ordinals restart at 0); ``{"plan": null}`` (or an
        empty body) disarms.  The chaos drill uses this to stand the
        storm down on surviving shards once its fault phase ends.
        """
        try:
            doc = json.loads(request.body.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return "admin", 400, protocol.error_response(
                400, f"request body is not valid JSON: {exc}"
            ), ()
        if doc is None:
            doc = {}
        if not isinstance(doc, dict):
            return "admin", 400, protocol.error_response(
                400, "body must be {\"plan\": <spec or null>[, \"seed\": n]}"
            ), ()
        spec = doc.get("plan")
        plan = None
        if spec:
            if not isinstance(spec, str):
                return "admin", 400, protocol.error_response(
                    400, "field 'plan' must be a fault spec string or null"
                ), ()
            try:
                plan = serve_faults.parse_serve_fault_plan(
                    spec, seed=int(doc.get("seed", 0))
                )
            except (ValueError, TypeError) as exc:
                return "admin", 400, protocol.error_response(400, str(exc)), ()
        previous = self.chaos.to_json()
        self.chaos = serve_faults.ServeChaos(plan, self.config.shard_id)
        self.log.info(
            "chaos-plan-swapped",
            plan=self.chaos.plan.spec_string() or None,
            armed=self.chaos.armed,
            shard=self.config.shard_id,
        )
        return "admin", 200, {
            "version": protocol.PROTOCOL_VERSION,
            "previous": previous,
            **self.chaos.to_json(),
        }, ()

    def _count_request(self, route: str, status: int) -> None:
        self.metrics.counter(
            "repro_serve_requests_total",
            help="Requests served, by route and status.",
            route=route,
            status=str(status),
        ).inc()

    def _observe_latency(
        self, route: str, status: int, latency_s: float, trace_id: str | None
    ) -> None:
        """One latency sample — every response, sheds and deadline
        misses included, with the trace id attached as an exemplar."""
        self.metrics.histogram(
            "repro_serve_latency_seconds",
            help="Request latency by route and status.",
            buckets=SERVE_LATENCY_BUCKETS,
            route=route,
            status=str(status),
        ).observe(
            latency_s,
            exemplar={"trace_id": trace_id} if trace_id is not None else None,
        )

    def _finish_trace(self, root: tracing.TraceSpan, route: str, status: int) -> None:
        """Seal the request's trace, feed the segment histograms, and
        emit the structured access record."""
        record = self.tracer.complete(
            root.trace_id,
            route=route,
            status=status,
            duration_s=root.duration_s,
        )
        if record is None:
            return
        segments = tracing.segment_durations(record.spans)
        for segment, seconds in segments.items():
            self.metrics.histogram(
                "repro_serve_segment_seconds",
                help="Per-request latency attributed to one segment.",
                buckets=SEGMENT_BUCKETS,
                segment=segment,
            ).observe(seconds)
        self.log.log(
            "warning" if status >= 500 else "debug",
            "request",
            trace_id=root.trace_id,
            route=route,
            status=status,
            latency_ms=round(root.duration_s * 1e3, 4),
            segments_ms={
                name: round(seconds * 1e3, 4)
                for name, seconds in sorted(segments.items())
            },
        )

    # -- routing -------------------------------------------------------

    async def _dispatch(
        self, request: _HttpRequest
    ) -> tuple[str, int, dict | str, tuple[tuple[str, str], ...]]:
        """Return ``(route, status, payload, extra headers)``."""
        path = request.path.split("?", 1)[0]
        if path == "/healthz":
            return "healthz", 200, {"status": "ok"}, ()
        if path == "/readyz":
            if self._draining or self._server is None:
                return "readyz", 503, {"status": "draining"}, ()
            return "readyz", 200, {"status": "ready"}, ()
        if path == "/metrics":
            return "metrics", 200, self._metrics_exposition(), ()
        if path == "/v1/debug/traces":
            return "debug", 200, self._trace_index(), ()
        if path.startswith("/v1/debug/traces/"):
            return self._trace_detail(request, path)
        if path == "/v1/debug/logs":
            return "debug", 200, {
                "version": protocol.PROTOCOL_VERSION,
                "records": obs_logging.RING.recent(200),
            }, ()
        if path == "/v1/admin/chaos":
            if request.method == "GET":
                return "admin", 200, {
                    "version": protocol.PROTOCOL_VERSION,
                    **self.chaos.to_json(),
                }, ()
            if request.method != "POST":
                return "admin", 405, protocol.error_response(
                    405, "/v1/admin/chaos accepts GET and POST"
                ), ()
            return self._admin_chaos(request)
        if path in ("/v1/predict", "/v1/study", "/v1/batch"):
            route = path.rsplit("/", 1)[1]
            if request.method != "POST":
                return route, 405, protocol.error_response(
                    405, f"{path} only accepts POST"
                ), ()
            return await self._admitted(route, request)
        return "other", 404, protocol.error_response(
            404, f"no route {path!r}; try /v1/predict, /v1/study, /v1/batch, "
            "/v1/debug/traces, /v1/debug/logs, /healthz, /readyz or /metrics"
        ), ()

    async def _admitted(
        self, route: str, request: _HttpRequest
    ) -> tuple[str, int, dict | str, tuple[tuple[str, str], ...]]:
        """Admission control + deadline around the prediction routes."""
        if self._draining:
            return route, 503, protocol.error_response(503, "server is draining"), ()
        if self._active >= self.config.max_queue:
            self._shed += 1
            self.metrics.counter(
                "repro_serve_shed_total",
                help="Requests shed by admission control.",
                route=route,
            ).inc()
            return route, 429, protocol.error_response(
                429,
                f"admission queue full ({self.config.max_queue} in flight); "
                "retry shortly",
            ), (("Retry-After", str(self.config.retry_after_s)),)
        self._active += 1
        self._idle.clear()
        self.metrics.gauge(
            "repro_serve_queue_depth", help="Admitted requests in flight."
        ).set(self._active)
        try:
            try:
                doc = json.loads(request.body.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return route, 400, protocol.error_response(
                    400, f"request body is not valid JSON: {exc}"
                ), ()
            handler = {
                "predict": self._predict, "study": self._study,
                "batch": self._batch,
            }[route]
            try:
                payload = await asyncio.wait_for(
                    handler(doc), timeout=self.config.deadline_s
                )
            except protocol.LimitExceeded as exc:
                return route, 413, protocol.error_response(413, str(exc)), ()
            except protocol.ProtocolError as exc:
                return route, 400, protocol.error_response(400, str(exc)), ()
            except asyncio.TimeoutError:
                return route, 504, protocol.error_response(
                    504,
                    f"deadline of {self.config.deadline_s:g}s exceeded; the "
                    "engine run continues and will serve a retry from cache",
                ), ()
            except BackendRunError as exc:
                return route, 500, protocol.error_response(500, str(exc)), ()
            return route, 200, payload, ()
        finally:
            self._active -= 1
            self.metrics.gauge(
                "repro_serve_queue_depth", help="Admitted requests in flight."
            ).set(self._active)
            if self._active == 0:
                self._idle.set()

    # -- handlers ------------------------------------------------------

    async def _predict(self, doc: object) -> dict:
        request = protocol.PredictRequest.from_json(doc)
        baseline_spec, model_spec = request.specs()
        self._consume_corrupt(model_spec)
        (baseline, baseline_prov), (model, model_prov) = await self.batcher.submit_many(
            [baseline_spec, model_spec]
        )
        return protocol.predict_response(
            request,
            baseline_seconds=baseline.seconds,
            model_result=model,
            provenance={"baseline": baseline_prov, "model": model_prov},
            key=model_spec.content_key()[:16],
        )

    async def _batch(self, doc: object) -> dict:
        request = protocol.BatchRequest.from_json(
            doc, max_cells=self.config.max_batch_cells
        )
        specs = request.specs()
        if specs:
            self._consume_corrupt(specs[0])
        served = await self.batcher.submit_batch(specs)
        return protocol.batch_response(request, served)

    async def _study(self, doc: object) -> dict:
        request = protocol.StudyRequest.from_json(
            doc, max_runs=self.config.max_study_runs
        )
        runs = request.runs()
        if runs:
            self._consume_corrupt(runs[0])
        served = await self.batcher.submit_many(runs)
        provenance_tally: dict[str, int] = {}
        for _result, label in served:
            provenance_tally[label] = provenance_tally.get(label, 0) + 1

        # Reassemble exactly like run_study: baseline first, then one
        # outcome per compared model for each (app, platform, precision).
        entries: list[dict] = []
        cursor = iter(served)
        models = request.compared_models
        for app in request.apps:
            for platform in request.platforms:
                for precision in request.precisions:
                    baseline, _ = next(cursor)
                    for model in models:
                        result, _ = next(cursor)
                        entries.append({
                            "app": app,
                            "model": model,
                            "platform": platform_label(platform),
                            "precision": precision.value,
                            "seconds": result.seconds,
                            "kernel_seconds": result.kernel_seconds,
                            "baseline_seconds": baseline.seconds,
                            "speedup": speedup(baseline.seconds, result.seconds),
                            "kernel_speedup": speedup(
                                baseline.seconds, result.kernel_seconds
                            ),
                            "joules": getattr(result, "joules", 0.0),
                            "edp": getattr(result, "joules", 0.0) * result.seconds,
                        })
        return protocol.study_response(request, entries, provenance_tally)

    # -- debug: retained traces ----------------------------------------

    def _trace_index(self) -> dict:
        store = self.tracer.store
        summaries = []
        for record in store.records():
            summary = record.summary()
            summary["retained_by"] = list(store.holds(record.trace_id))
            summary["href"] = f"/v1/debug/traces/{record.trace_id}"
            summaries.append(summary)
        return {
            "version": protocol.PROTOCOL_VERSION,
            "tracing": self.config.tracing,
            "retained": len(summaries),
            "traces": summaries,
        }

    def _trace_detail(
        self, request: _HttpRequest, path: str
    ) -> tuple[str, int, dict | str, tuple[tuple[str, str], ...]]:
        trace_id = path.rsplit("/", 1)[1]
        record = self.tracer.store.get(trace_id)
        if record is None:
            return "debug", 404, protocol.error_response(
                404, f"no retained trace {trace_id!r}; see /v1/debug/traces"
            ), ()
        query = request.path.partition("?")[2]
        if "format=chrome" in query:
            return "debug", 200, chrome_trace(tracing.trace_timeline(record)), ()
        doc = record.to_json()
        doc["version"] = protocol.PROTOCOL_VERSION
        doc["retained_by"] = list(self.tracer.store.holds(trace_id))
        return "debug", 200, doc, ()

    # -- metrics -------------------------------------------------------

    def _metrics_exposition(self) -> str:
        """Server registry plus process-wide memo counters, one scrape."""
        snapshot = MetricsRegistry()
        snapshot.merge(self.metrics)
        snapshot.counter(
            "repro_memo_singleflight_coalesced_total",
            help="Requests coalesced onto an identical in-flight engine run.",
        ).inc(self.batcher.cache.coalesced)
        stats = self.batcher.cache.snapshot()
        snapshot.counter(
            "repro_serve_result_cache_lookups_total",
            help="Whole-run result cache lookups.", outcome="hit",
        ).inc(stats.hits)
        snapshot.counter(
            "repro_serve_result_cache_lookups_total",
            help="Whole-run result cache lookups.", outcome="miss",
        ).inc(stats.misses)
        for layer, cache in (
            ("kernel", memo.KERNEL_CACHE),
            ("setup", memo.SETUP_CACHE),
            ("trace", memo.TRACE_CACHE),
            ("result", self.batcher.cache),
        ):
            snapshot.gauge(
                "repro_memo_hit_ratio", help="Memo hit ratio by cache layer.",
                cache=layer,
            ).set(cache.snapshot().hit_rate)
        snapshot.gauge(
            "repro_serve_shed_requests", help="Requests shed since start."
        ).set(self._shed)
        if self.store is not None:
            stats = self.store.snapshot()
            for outcome, count in (("hit", stats.hits), ("miss", stats.misses)):
                snapshot.counter(
                    "repro_store_lookups_total",
                    help="Persistent result-store lookups.", outcome=outcome,
                ).inc(count)
            snapshot.counter(
                "repro_store_writes_total",
                help="Results durably written to the persistent store.",
            ).inc(stats.writes)
            snapshot.counter(
                "repro_store_corrupt_total",
                help="Torn or corrupt store entries tolerated on read.",
            ).inc(stats.corrupt)
            snapshot.counter(
                "repro_store_lock_waits_total",
                help="Cross-process single-flight waits on another "
                "process's in-flight computation.",
            ).inc(stats.lock_waits)
        if self.warm_report is not None:
            for field_name, value in (
                ("loaded", self.warm_report.loaded),
                ("priced", self.warm_report.priced),
                ("deferred", self.warm_report.deferred),
            ):
                snapshot.gauge(
                    "repro_serve_warm_results",
                    help="Warm-up outcome by kind (loaded from store, "
                    "priced at boot, deferred to a concurrent shard).",
                    kind=field_name,
                ).set(value)
        if self.config.shard_id is not None:
            snapshot.gauge(
                "repro_serve_shard_id",
                help="This process's index within the sharded tier.",
            ).set(self.config.shard_id)
        snapshot.gauge(
            "repro_build_info",
            help="Build identity; always 1 with the details as labels.",
            version=__version__,
            python=f"{sys.version_info.major}.{sys.version_info.minor}."
            f"{sys.version_info.micro}",
            engine=self.config.engine,
        ).set(1)
        snapshot.gauge(
            "repro_serve_uptime_seconds",
            help="Seconds since the server started accepting connections.",
        ).set(time.time() - self.started_at if self.started_at is not None else 0.0)
        return snapshot.to_prometheus()


# -- embedding helpers -------------------------------------------------


async def _run_until_stopped(server: Server, stop: asyncio.Event) -> None:
    await server.start()
    await stop.wait()
    await server.shutdown()


class ServerThread:
    """Run a :class:`Server` on a background thread with its own loop.

    The load generator's ``--spawn`` mode and the test suite both need
    a live loopback server without blocking the caller; this wraps the
    lifecycle (start, bound-port discovery, graceful stop) behind a
    context manager.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.server = Server(config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self, timeout: float = 60.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=timeout):
            raise RuntimeError("server thread failed to start in time")
        if self._failure is not None:
            raise RuntimeError("server thread failed to start") from self._failure
        return self

    def _main(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as exc:
                self._failure = exc
                self._ready.set()
                raise
            self._ready.set()
            await self._stop.wait()
            await self.server.shutdown()

        try:
            asyncio.run(main())
        except BaseException as exc:  # pragma: no cover - surfaced via start()
            if not self._ready.is_set():
                self._failure = exc
                self._ready.set()

    @property
    def url(self) -> str:
        return self.server.url

    def stop(self, timeout: float = 15.0) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
