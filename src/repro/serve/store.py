"""Disk-backed content-addressed result store shared across processes.

The serve tier's in-memory :data:`~repro.engine.memo.RESULT_CACHE`
dies with its process: every restart re-prices the whole working set,
and N shard processes each pay their own cold start.  This module
makes run results *durable and shared*:

* :class:`ResultStore` — one file per result under
  ``<root>/objects/<k[:2]>/<key>.json``, where ``key`` is the spec's
  content digest (:meth:`~repro.exec.plan.RunSpec.content_key`).  The
  value is the pickled :class:`~repro.apps.base.RunResult` — pickle
  round-trips the nested frozen dataclasses exactly, which is what the
  bit-identity guarantee needs (the same discipline as the checkpoint
  journal of :mod:`repro.exec.checkpoint`).
* **Atomic, durable writes** — each entry is written to a temp file in
  the same directory, flushed, fsynced, then :func:`os.replace`'d into
  place, so readers only ever see whole entries and a crash mid-write
  leaves at worst an ignorable temp file.
* **Torn/corrupt tolerance on read** — every entry carries a sha256 of
  its payload; a truncated, garbled, or wrong-format file reads as a
  miss (and is unlinked best-effort), never as an exception or a wrong
  answer.
* **Cross-process single-flight** — :meth:`ResultStore.fetch_or_compute`
  elects one leader per key across *processes* via an ``O_EXCL`` lock
  file; followers poll for the leader's result instead of recomputing,
  so N shards warming the same lattice price each spec once.  Stale
  locks (a leader that died) are broken after ``lock_stale_s``.

:class:`PersistentResultCache` stacks the store under the in-memory
:class:`~repro.engine.memo.SingleFlightCache`: memory first, then
disk (loading hits into memory), then compute-and-persist.  A restart
therefore serves its first request from disk — zero cold misses.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, TypeVar

from ..engine.memo import SingleFlightCache
from ..obs import tracing

if TYPE_CHECKING:
    from ..apps.base import RunResult

T = TypeVar("T")

#: Entry ``format`` value; bump on incompatible layout changes.
STORE_FORMAT = "repro-result-store/1"

#: Provenance label for results served from the persistent store.
STORED = "store"


@dataclass(frozen=True)
class StoreStats:
    """Counters of one store at one point in time."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    lock_waits: int = 0

    def since(self, earlier: "StoreStats") -> "StoreStats":
        return StoreStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            writes=self.writes - earlier.writes,
            corrupt=self.corrupt - earlier.corrupt,
            lock_waits=self.lock_waits - earlier.lock_waits,
        )


class ResultStore:
    """Content-addressed run results on disk, safe for N processes.

    Keys are hex content digests (file-name safe by construction).
    All methods are thread-safe; cross-process safety comes from
    atomic replaces (readers) and ``O_EXCL`` lock files (writers who
    want single-flight).
    """

    def __init__(
        self,
        root: str | Path,
        lock_timeout_s: float = 60.0,
        lock_stale_s: float = 120.0,
    ) -> None:
        self.root = Path(root)
        self.lock_timeout_s = lock_timeout_s
        self.lock_stale_s = lock_stale_s
        self._objects = self.root / "objects"
        self._locks = self.root / "locks"
        self._mutex = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._corrupt = 0
        self._lock_waits = 0

    # -- layout --------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self._objects / key[:2] / f"{key}.json"

    def _lock_path(self, key: str) -> Path:
        return self._locks / f"{key}.lock"

    def keys(self) -> Iterator[str]:
        """Every key currently resident (a directory scan)."""
        if not self._objects.is_dir():
            return
        for bucket in sorted(self._objects.iterdir()):
            if not bucket.is_dir():
                continue
            for entry in sorted(bucket.iterdir()):
                if entry.suffix == ".json":
                    yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    # -- reading -------------------------------------------------------

    def get(self, key: str) -> "RunResult | None":
        """The stored result for ``key``, or ``None``.

        Any defect — missing file, truncated JSON, format or key
        mismatch, checksum failure, unpicklable payload — reads as a
        miss; a defective file is additionally unlinked (best-effort)
        so the next write repairs it.
        """
        path = self.path_for(key)
        started = time.perf_counter()
        try:
            raw = path.read_bytes()
        except OSError:
            with self._mutex:
                self._misses += 1
            return None
        value = self._decode(key, raw)
        with self._mutex:
            if value is None:
                self._corrupt += 1
                self._misses += 1
            else:
                self._hits += 1
        if value is None:
            try:
                path.unlink()
            except OSError:
                pass
            return None
        ctx = tracing.current()
        if ctx is not None:
            tracing.TRACER.record(
                "store_read", started, time.perf_counter(),
                parent=ctx, attrs={"key": key[:16]},
            )
        return value

    @staticmethod
    def _decode(key: str, raw: bytes) -> "RunResult | None":
        import pickle

        try:
            doc = json.loads(raw.decode())
            if doc.get("format") != STORE_FORMAT or doc.get("key") != key:
                return None
            payload = base64.b64decode(doc["payload"])
            if hashlib.sha256(payload).hexdigest() != doc["sha256"]:
                return None
            return pickle.loads(payload)
        except Exception:
            return None

    # -- writing -------------------------------------------------------

    def put(self, key: str, result: "RunResult", label: str = "") -> bool:
        """Durably store one result; ``False`` if the key already held
        a valid entry (first write wins, like the checkpoint journal)."""
        import pickle

        path = self.path_for(key)
        if path.exists() and self._decode(key, self._read_quiet(path)) is not None:
            return False
        payload = pickle.dumps(result)
        doc = {
            "format": STORE_FORMAT,
            "key": key,
            "label": label,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": base64.b64encode(payload).decode("ascii"),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        with tmp.open("w") as handle:
            json.dump(doc, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        with self._mutex:
            self._writes += 1
        return True

    @staticmethod
    def _read_quiet(path: Path) -> bytes:
        try:
            return path.read_bytes()
        except OSError:
            return b""

    # -- cross-process single-flight -----------------------------------

    def _try_lock(self, key: str) -> bool:
        self._locks.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(
                self._lock_path(key), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        try:
            os.write(fd, f"{os.getpid()} {time.time()}\n".encode())
        finally:
            os.close(fd)
        return True

    def _unlock(self, key: str) -> None:
        try:
            self._lock_path(key).unlink()
        except OSError:
            pass

    def _lock_is_stale(self, key: str) -> bool:
        try:
            age = time.time() - self._lock_path(key).stat().st_mtime
        except OSError:
            return False  # lock vanished: the leader finished
        return age > self.lock_stale_s

    def fetch_or_compute(
        self, key: str, compute: Callable[[], "RunResult"], label: str = ""
    ) -> tuple["RunResult", str]:
        """Return ``(result, source)`` computing at most once across
        all processes sharing this store.

        ``source`` is ``"store"`` for a disk hit or ``"computed"``
        when this process was the leader.  A follower that waits past
        ``lock_timeout_s`` computes anyway — progress beats strict
        dedup when a leader hangs.
        """
        value = self.get(key)
        if value is not None:
            return value, STORED
        deadline = time.monotonic() + self.lock_timeout_s
        while True:
            if self._try_lock(key):
                try:
                    # The winner re-checks: another process may have
                    # published between our miss and our lock.
                    value = self.get(key)
                    if value is not None:
                        return value, STORED
                    value = compute()
                    self.put(key, value, label=label)
                    return value, "computed"
                finally:
                    self._unlock(key)
            with self._mutex:
                self._lock_waits += 1
            while time.monotonic() < deadline:
                time.sleep(0.005)
                value = self.get(key)
                if value is not None:
                    return value, STORED
                if not self._lock_path(key).exists():
                    break  # leader released without publishing: re-elect
                if self._lock_is_stale(key):
                    self._unlock(key)  # break a dead leader's lock
                    break
            else:
                # Timed out: compute without the lock rather than hang.
                value = compute()
                self.put(key, value, label=label)
                return value, "computed"

    # -- accounting ----------------------------------------------------

    def snapshot(self) -> StoreStats:
        with self._mutex:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                writes=self._writes,
                corrupt=self._corrupt,
                lock_waits=self._lock_waits,
            )


class PersistentResultCache(SingleFlightCache):
    """The in-memory single-flight result memo backed by a
    :class:`ResultStore`.

    Lookup tiers: process memory, then disk (a hit is seeded into
    memory for next time), then compute — in-process single-flight via
    the base class, cross-process via the store's lock files.  Every
    computed value is persisted before it is returned, so anything this
    process ever served survives its restart.
    """

    def __init__(self, store: ResultStore, enabled: bool = True) -> None:
        super().__init__(enabled)
        self.store = store

    def peek_tiered(self, key: str) -> tuple[object | None, str | None]:
        """Non-computing lookup across both tiers: ``(value, source)``
        with source ``"memory"``, ``"store"``, or ``(None, None)``."""
        found, value = self.peek(key)
        if found:
            return value, "memory"
        value = self.store.get(key)
        if value is not None:
            self.seed(key, value)
            return value, STORED
        return None, None

    def get_or_compute(self, key: str, compute: Callable[[], T]) -> T:
        return super().get_or_compute(
            key, lambda: self.store.fetch_or_compute(key, compute)[0]
        )
