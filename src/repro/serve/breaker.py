"""Circuit breakers and a retry budget for the shard router.

Pure state machines on an injected clock, separated from the router so
they can be unit-tested in microseconds:

* :class:`CircuitBreaker` — one per downstream shard.  ``closed``
  passes traffic; ``breaker_failures`` *consecutive* transport
  failures flip it ``open`` (calls fail fast, the router serves the
  shard's key range degraded instead of queueing on a corpse); after
  ``reset_s`` one half-open probe is admitted, and its outcome decides
  between re-closing and re-opening.  At most one probe is in flight
  at a time, so a recovering shard is not greeted with a thundering
  herd.
* :class:`RetryBudget` — a token bucket shared by all shards: every
  successful downstream call earns ``ratio`` tokens, every retry
  spends one.  When the whole tier is failing, the budget drains and
  retries stop, so the router's retry traffic cannot amplify an
  outage (the classic retry-storm failure mode).

Both run on the router's single event loop, so neither needs locks.
"""

from __future__ import annotations

import time
from enum import Enum
from typing import Callable


class BreakerState(str, Enum):
    """Where one shard's breaker sits."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Gauge encoding of breaker states (``repro_router_breaker_state``).
BREAKER_STATE_VALUES = {
    BreakerState.CLOSED: 0.0,
    BreakerState.HALF_OPEN: 1.0,
    BreakerState.OPEN: 2.0,
}


class CircuitBreaker:
    """Per-shard failure-fast gate (single event loop; no locks).

    ``on_transition(old, new)`` fires on every state change — the
    router hangs metrics, logs and trace annotations off it.
    """

    def __init__(
        self,
        failures: int = 3,
        reset_s: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[BreakerState, BreakerState], None] | None = None,
    ) -> None:
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        if reset_s < 0:
            raise ValueError(f"reset_s must be >= 0, got {reset_s}")
        self.failures = failures
        self.reset_s = reset_s
        self._clock = clock
        self.on_transition = on_transition
        self.state = BreakerState.CLOSED
        self._consecutive = 0
        self._opened_at = 0.0
        self._probing = False
        #: Times the breaker has opened, ever.
        self.opens = 0

    def allow(self) -> bool:
        """May a call to this shard proceed right now?

        Open breakers admit nothing until ``reset_s`` has elapsed,
        then exactly one half-open probe at a time.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self._clock() - self._opened_at < self.reset_s:
                return False
            self._transition(BreakerState.HALF_OPEN)
            self._probing = True
            return True
        # Half-open: a single probe in flight at a time.
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        self._probing = False
        self._consecutive = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        self._probing = False
        if self.state is BreakerState.HALF_OPEN:
            self._open()
            return
        self._consecutive += 1
        if self.state is BreakerState.CLOSED and self._consecutive >= self.failures:
            self._open()

    def _open(self) -> None:
        self._opened_at = self._clock()
        self.opens += 1
        self._transition(BreakerState.OPEN)

    def _transition(self, to: BreakerState) -> None:
        old, self.state = self.state, to
        if self.on_transition is not None:
            self.on_transition(old, to)

    def to_json(self) -> dict:
        return {
            "state": self.state.value,
            "opens": self.opens,
            "consecutive_failures": self._consecutive,
        }


class RetryBudget:
    """Global token bucket bounding the router's retry amplification.

    Starts full (``cap`` tokens) so isolated blips retry freely;
    sustained failure drains it and the tier fails fast into the
    degraded path instead of doubling its own load.
    """

    def __init__(self, ratio: float = 0.1, cap: float = 10.0) -> None:
        if ratio < 0:
            raise ValueError(f"ratio must be >= 0, got {ratio}")
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.ratio = ratio
        self.cap = cap
        self._tokens = float(cap)
        #: Retries declined because the bucket was empty, ever.
        self.exhausted = 0

    @property
    def tokens(self) -> float:
        return self._tokens

    def earn(self) -> None:
        """One successful downstream call refills ``ratio`` tokens."""
        self._tokens = min(self.cap, self._tokens + self.ratio)

    def spend(self) -> bool:
        """Take one retry token; ``False`` means do not retry."""
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        self.exhausted += 1
        return False
