"""Seeded, deterministic fault injection for the serve tier.

The offline executor rehearses worker failure through
:mod:`repro.exec.faults`; this module is the online counterpart.  A
:class:`ServeFaultPlan` arms a shard process with a seeded schedule of
service-level faults, drawn per admitted prediction request from a
content hash of ``(seed, kind, shard, ordinal)`` — no RNG state, so
the same seed injects the same fault at the same request ordinal on
every run.  The chaos drill (:mod:`repro.serve.chaos`) relies on this:
it can assert recovery properties of a *specific* storm, not a lucky
one.

Injectable kinds, and the failure each rehearses:

* ``crash``   — the shard process hard-exits mid-request (an OOM kill,
  a segfault): the supervisor must notice and respawn, the router's
  in-flight calls fail and trip the breaker.
* ``hang``    — the shard stops answering *everything*, ``/healthz``
  included (an event loop wedged on a lock): liveness probing must
  catch what process ``poll()`` cannot.
* ``slow``    — one response is delayed by ``slow_s`` (GC pause, CPU
  contention): latency tails, no errors.
* ``reset``   — the connection is closed without a response (kernel
  RST, LB idle reap): the router's pooled-connection retry path.
* ``corrupt`` — the requested cell's persistent store entry is
  scribbled over and its in-memory copy evicted, forcing the read path
  to detect the damage (sha256), treat it as a miss, recompute, and
  repair the file — the torn-write tolerance, exercised end to end.

Plans arm a process via ``REPRO_SERVE_INJECT_FAULTS`` /
``REPRO_SERVE_FAULT_SEED`` (inherited by spawned shard processes, so a
respawned shard re-arms — that is how a crash *loop* is rehearsed) or
at runtime through ``POST /v1/admin/chaos``.  The pseudo-key
``shard:N`` confines a plan to one shard id; ``slow_s``, ``limit``
and ``seed`` tune the rest.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Mapping

from ..exec.faults import _hash01

#: Injectable serve-layer fault kinds, in draw order (one request
#: suffers at most one fault; earlier kinds win ties).
SERVE_FAULT_KINDS = ("crash", "hang", "slow", "reset", "corrupt")

#: How long a hung shard sleeps per request — far past any probe or
#: call deadline, short enough that a wedged test still terminates.
HANG_SECONDS = 3600.0

ENV_SERVE_FAULTS = "REPRO_SERVE_INJECT_FAULTS"
ENV_SERVE_SEED = "REPRO_SERVE_FAULT_SEED"


@dataclass(frozen=True)
class ServeFaultPlan:
    """Seeded per-request fault draws for one serve process.

    ``rates`` maps fault kind -> probability per admitted prediction
    request (a sorted tuple of pairs, so plans are hashable and
    round-trippable).  ``only_shard`` confines injection to one shard
    id; ``limit`` caps total injections per process so a drill's storm
    is bounded by construction.
    """

    seed: int = 0
    rates: tuple[tuple[str, float], ...] = ()
    slow_s: float = 0.05
    limit: int = 1_000_000
    only_shard: int | None = None

    def __post_init__(self) -> None:
        for kind, rate in self.rates:
            if kind not in SERVE_FAULT_KINDS:
                raise ValueError(
                    f"unknown serve fault kind {kind!r}: known kinds are "
                    f"{', '.join(SERVE_FAULT_KINDS)}"
                )
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"fault rate for {kind!r} must be in [0, 1], got {rate}"
                )
        if self.slow_s < 0:
            raise ValueError(f"slow_s must be >= 0, got {self.slow_s}")
        if self.limit < 0:
            raise ValueError(f"limit must be >= 0, got {self.limit}")

    @property
    def active(self) -> bool:
        return self.limit > 0 and any(rate > 0 for _, rate in self.rates)

    def rate(self, kind: str) -> float:
        return dict(self.rates).get(kind, 0.0)

    def applies_to(self, shard: int | None) -> bool:
        return self.only_shard is None or self.only_shard == shard

    def draw(self, shard: int | None, ordinal: int) -> str | None:
        """The fault (if any) for one request: the ``ordinal``-th
        admitted prediction request of shard ``shard``'s process.

        A pure function of ``(seed, kind, shard, ordinal)`` — the draw
        schedule is identical on every run with the same seed.  (The
        *interleaving* of concurrent requests is still the OS's; what
        is deterministic is which arrival ordinals are doomed.)
        """
        if not self.applies_to(shard):
            return None
        for kind in SERVE_FAULT_KINDS:
            rate = self.rate(kind)
            if rate <= 0.0:
                continue
            if _hash01(f"{self.seed}:{kind}:{shard}:{ordinal}") < rate:
                return kind
        return None

    def spec_string(self) -> str:
        """Round-trippable ``kind:rate,...`` form (see
        :func:`parse_serve_fault_plan`)."""
        parts = [f"{kind}:{rate:g}" for kind, rate in self.rates]
        if self.slow_s != ServeFaultPlan.slow_s:
            parts.append(f"slow_s:{self.slow_s:g}")
        if self.limit != ServeFaultPlan.limit:
            parts.append(f"limit:{self.limit}")
        if self.only_shard is not None:
            parts.append(f"shard:{self.only_shard}")
        return ",".join(parts)


def parse_serve_fault_plan(spec: str, seed: int = 0) -> ServeFaultPlan:
    """Parse ``crash:0.002,reset:0.01[,slow_s:0.05][,shard:0]`` into a
    plan.

    Tokens are ``kind:value`` with kinds from :data:`SERVE_FAULT_KINDS`
    plus the pseudo-keys ``seed``, ``slow_s``, ``limit`` and ``shard``
    (confine the plan to one shard id).
    """
    rates: dict[str, float] = {}
    slow_s = ServeFaultPlan.slow_s
    limit = ServeFaultPlan.limit
    only_shard: int | None = None
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        name, sep, value = token.partition(":")
        name = name.strip()
        if not sep:
            raise ValueError(
                f"malformed serve fault token {token!r}: expected kind:rate"
            )
        try:
            number = float(value)
        except ValueError:
            raise ValueError(f"malformed serve fault rate in {token!r}") from None
        if name == "seed":
            seed = int(number)
        elif name == "slow_s":
            slow_s = number
        elif name == "limit":
            limit = int(number)
        elif name == "shard":
            only_shard = int(number)
        else:
            rates[name] = number
    return ServeFaultPlan(
        seed=seed, rates=tuple(sorted(rates.items())),
        slow_s=slow_s, limit=limit, only_shard=only_shard,
    )


def serve_fault_plan_from_env(
    environ: Mapping[str, str] = os.environ,
) -> ServeFaultPlan | None:
    """The ambient serve fault plan, if chaos was requested via the
    environment.

    Shard processes inherit the parent's environment at spawn time, so
    an armed tier re-arms every *respawned* shard too — which is what
    lets the drill rehearse a crash loop rather than a single crash.
    """
    spec = environ.get(ENV_SERVE_FAULTS)
    if not spec:
        return None
    seed = int(environ.get(ENV_SERVE_SEED, "0"))
    return parse_serve_fault_plan(spec, seed=seed)


class ServeChaos:
    """Per-process injection state: the ordinal counter and tally.

    One instance lives on each :class:`~repro.serve.server.Server`.
    ``next_fault()`` advances the process-local request ordinal and
    returns the drawn fault kind (or ``None``); the *server* performs
    the fault.  Thread-safe, so admin swaps and the event loop can
    race without losing ordinals.
    """

    def __init__(
        self, plan: ServeFaultPlan | None, shard: int | None = None
    ) -> None:
        self.plan = plan if plan is not None else ServeFaultPlan()
        self.shard = shard
        self._lock = threading.Lock()
        self._ordinal = 0
        self._injected: dict[str, int] = {}

    @property
    def armed(self) -> bool:
        return self.plan.active and self.plan.applies_to(self.shard)

    @property
    def counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._injected)

    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self._injected.values())

    def next_fault(self) -> str | None:
        """Draw for the next admitted prediction request."""
        with self._lock:
            ordinal = self._ordinal
            self._ordinal += 1
            if not self.plan.active:
                return None
            if sum(self._injected.values()) >= self.plan.limit:
                return None
            kind = self.plan.draw(self.shard, ordinal)
            if kind is not None:
                self._injected[kind] = self._injected.get(kind, 0) + 1
            return kind

    def to_json(self) -> dict:
        return {
            "plan": self.plan.spec_string() or None,
            "seed": self.plan.seed,
            "armed": self.armed,
            "ordinal": self._ordinal,
            "injected": self.counts,
        }
