"""Closed- and open-loop load generation for the prediction service.

The serving-perf baseline lives in ``BENCH_serve.json``, next to the
cache-replay baseline in ``BENCH_cache.json``: ``repro loadtest``
drives a live server with raw keep-alive HTTP/1.1 over asyncio
streams (no client library, so the generator is never the bottleneck)
and records throughput plus p50/p95/p99 latency.

Two arrival disciplines, because they answer different questions:

* **closed loop** — ``concurrency`` connections issue requests
  back-to-back.  Measures capacity: the sustained req/s the service
  reaches when clients wait for answers.
* **open loop** — arrivals fire on a fixed ``rate`` schedule whether
  or not earlier requests finished, the way independent users behave.
  Latency is measured from the *scheduled* arrival, so queueing delay
  (and coordinated-omission bias) is included.

A warmup pass issues every distinct query once before timing starts,
so the measured numbers describe the steady warm-cache state — the
regime the ROADMAP's "heavy traffic" north star cares about.

``--breakdown`` closes the attribution loop: the harness scrapes the
server's ``/metrics`` before and after the run and reports per-segment
percentiles (queue wait vs engine time vs serialize) from the delta of
the ``repro_serve_segment_seconds`` histograms — the *server's* own
trace-segment accounting of exactly the requests this run issued,
unbiased by which traces the debug ring happened to retain.
"""

from __future__ import annotations

import asyncio
import json
import math
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from urllib.parse import urlsplit

from ..exec.faults import _hash01
from ..obs.metrics import parse_prometheus

#: Latency percentiles reported by the harness.
PERCENTILES = (50.0, 95.0, 99.0)

#: Backstop pause when a 429 carries no (or an unparsable) Retry-After.
DEFAULT_RETRY_AFTER_S = 0.05
#: Longest a closed-loop worker will honor a single Retry-After for.
MAX_RETRY_AFTER_S = 5.0


def percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted samples (0 when empty)."""
    if not sorted_samples:
        return 0.0
    if q <= 0:
        return sorted_samples[0]
    rank = max(1, -(-len(sorted_samples) * q // 100))  # ceil without floats
    return sorted_samples[int(rank) - 1]


@dataclass
class LoadResult:
    """Everything one load run measured."""

    mode: str
    duration_s: float
    concurrency: int
    rate: float | None
    requests: int = 0
    errors: int = 0
    #: Cells priced by 2xx responses.  One ``/v1/predict`` is one
    #: prediction; one ``/v1/batch`` of 48 cells is 48 — the unit that
    #: makes bulk and per-request throughput comparable.
    predictions: int = 0
    #: Distinct target URLs the run round-robined over.
    targets: int = 1
    status_counts: dict[str, int] = field(default_factory=dict)
    latencies_s: list[float] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.duration_s if self.duration_s else 0.0

    @property
    def cells_rps(self) -> float:
        """Priced cells per second — aggregate pricing throughput."""
        return self.predictions / self.duration_s if self.duration_s else 0.0

    def latency_ms(self) -> dict[str, float]:
        samples = sorted(self.latencies_s)
        doc = {
            "mean": (sum(samples) / len(samples) * 1e3) if samples else 0.0,
            "max": samples[-1] * 1e3 if samples else 0.0,
        }
        for q in PERCENTILES:
            doc[f"p{q:g}"] = percentile(samples, q) * 1e3
        return doc

    def to_json(self) -> dict:
        return {
            "protocol": "v1",
            "mode": self.mode,
            "duration_s": self.duration_s,
            "concurrency": self.concurrency,
            "rate_rps": self.rate,
            "requests": self.requests,
            "errors": self.errors,
            "predictions": self.predictions,
            "targets": self.targets,
            "throughput_rps": self.throughput_rps,
            "cells_rps": self.cells_rps,
            "latency_ms": self.latency_ms(),
            "status_counts": dict(sorted(self.status_counts.items())),
        }

    def summary(self) -> str:
        latency = self.latency_ms()
        statuses = ", ".join(
            f"{status}: {count}" for status, count in sorted(self.status_counts.items())
        )
        throughput = f"{self.throughput_rps:.0f} req/s"
        if self.predictions != self.requests:
            throughput += f", {self.cells_rps:.0f} cells/s"
        return "\n".join([
            f"mode: {self.mode}, concurrency: {self.concurrency}, "
            f"targets: {self.targets}"
            + (f", offered rate: {self.rate:g} req/s" if self.rate else ""),
            f"requests: {self.requests} in {self.duration_s:.2f} s "
            f"({throughput}), errors: {self.errors}",
            f"latency: p50 {latency['p50']:.2f} ms, p95 {latency['p95']:.2f} ms, "
            f"p99 {latency['p99']:.2f} ms, max {latency['max']:.2f} ms",
            f"statuses: {statuses or 'none'}",
        ])


def encode_request(host: str, path: str, body: dict) -> bytes:
    payload = json.dumps(body).encode()
    return (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: keep-alive\r\n\r\n"
    ).encode() + payload


async def _read_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    """Read one Content-Length-framed HTTP response.

    Returns ``(status, headers, body)`` with header names lowercased —
    the closed-loop worker needs ``retry-after`` back-pressure, not
    just the status line.
    """
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or 0)
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


def retry_after_delay(
    headers: dict[str, str], token: str, fallback: float = DEFAULT_RETRY_AFTER_S
) -> float:
    """How long to back off after a 429, from its ``Retry-After``.

    The server's hint is taken as a *minimum*, stretched by a
    deterministic 0-50% jitter keyed on ``token`` so a fleet of
    rejected workers does not re-dogpile the server on the same tick
    (the retry ladder's jitter trick, anchored at 1.0x instead of
    0.5x so no worker returns earlier than asked).  Capped at
    :data:`MAX_RETRY_AFTER_S`; an absent or unparsable header (e.g.
    an HTTP-date, which this harness does not speak) falls back to a
    short fixed pause.
    """
    value = headers.get("retry-after")
    try:
        hint = float(value) if value is not None else fallback
    except ValueError:
        hint = fallback
    hint = max(0.0, hint)
    return min(MAX_RETRY_AFTER_S, hint * (1.0 + 0.5 * _hash01(token)))


class _Recorder:
    def __init__(self) -> None:
        self.samples: list[tuple[int, float, int]] = []
        self.errors = 0

    def fold(self, result: LoadResult) -> None:
        for status, latency, weight in self.samples:
            result.requests += 1
            result.status_counts[str(status)] = (
                result.status_counts.get(str(status), 0) + 1
            )
            if 200 <= status < 300:
                result.predictions += weight
            result.latencies_s.append(latency)
        result.errors += self.errors


async def _closed_worker(
    host: str, port: int, requests: list[tuple[bytes, int]], offset: int,
    deadline: float, recorder: _Recorder,
) -> None:
    reader = writer = None
    i = offset
    try:
        while time.perf_counter() < deadline:
            if writer is None:
                reader, writer = await asyncio.open_connection(host, port)
            data, weight = requests[i % len(requests)]
            i += 1
            started = time.perf_counter()
            try:
                writer.write(data)
                await writer.drain()
                status, headers, _body = await _read_response(reader)
            except (ConnectionError, asyncio.IncompleteReadError):
                recorder.errors += 1
                writer.close()
                reader = writer = None
                continue
            recorder.samples.append((status, time.perf_counter() - started, weight))
            if status == 429:
                # Honor the server's back-pressure instead of hammering
                # a full queue; jittered so workers desynchronize, and
                # never slept past the run deadline.
                delay = retry_after_delay(headers, f"retry-after:{offset}:{i}")
                remaining = deadline - time.perf_counter()
                if remaining > 0:
                    await asyncio.sleep(min(delay, remaining))
    finally:
        if writer is not None:
            writer.close()


async def _open_worker(
    host: str, port: int,
    arrivals: "asyncio.Queue[tuple[bytes, int, float] | None]",
    recorder: _Recorder,
) -> None:
    reader = writer = None
    try:
        while True:
            item = await arrivals.get()
            if item is None:
                return
            data, weight, scheduled = item
            try:
                if writer is None:
                    reader, writer = await asyncio.open_connection(host, port)
                writer.write(data)
                await writer.drain()
                status, _headers, _body = await _read_response(reader)
            except (ConnectionError, asyncio.IncompleteReadError):
                recorder.errors += 1
                if writer is not None:
                    writer.close()
                reader = writer = None
                continue
            # Latency from the scheduled arrival: includes queue wait.
            recorder.samples.append((status, time.perf_counter() - scheduled, weight))
    finally:
        if writer is not None:
            writer.close()


async def _warmup(host: str, port: int, requests: list[tuple[bytes, int]]) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for data, _weight in requests:
            writer.write(data)
            await writer.drain()
            await _read_response(reader)  # response discarded: cache priming
    finally:
        writer.close()


def _body_weight(body: dict) -> int:
    """Cells one request prices: batch bodies weigh their cell count."""
    cells = body.get("cells")
    if isinstance(cells, (list, tuple)):
        return max(1, len(cells))
    return 1


async def run_load(
    url: "str | list[str]",
    bodies: list[dict],
    mode: str = "closed",
    concurrency: int = 8,
    duration_s: float = 3.0,
    rate: float | None = None,
    warmup: bool = True,
    path: str = "/v1/predict",
) -> LoadResult:
    """Drive one or more targets with the query bodies and measure.

    ``bodies`` rotate round-robin across requests; with ``warmup``
    each is issued once *per target* before the clock starts, so the
    measured window sees only warm-cache queries.  A list of URLs
    (e.g. a sharded tier's members) spreads the worker connections
    round-robin across targets and reports aggregate numbers.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if mode == "open" and not rate:
        raise ValueError("open-loop mode needs a positive --rate")
    urls = [url] if isinstance(url, str) else list(url)
    if not urls:
        raise ValueError("need at least one target URL")
    endpoints: list[tuple[str, int]] = []
    for target in urls:
        split = urlsplit(target)
        endpoints.append((split.hostname or "127.0.0.1", split.port or 80))
    requests_by_target = [
        [
            (encode_request(f"{host}:{port}", path, body), _body_weight(body))
            for body in bodies
        ]
        for host, port in endpoints
    ]
    if warmup:
        await asyncio.gather(*(
            _warmup(host, port, requests)
            for (host, port), requests in zip(endpoints, requests_by_target)
        ))

    recorders = [_Recorder() for _ in range(concurrency)]
    started = time.perf_counter()
    if mode == "closed":
        deadline = started + duration_s
        await asyncio.gather(*(
            _closed_worker(
                *endpoints[i % len(endpoints)],
                requests_by_target[i % len(endpoints)],
                i, deadline, recorders[i],
            )
            for i in range(concurrency)
        ))
    else:
        queues: list[asyncio.Queue] = [asyncio.Queue() for _ in endpoints]
        workers = [
            asyncio.ensure_future(_open_worker(
                *endpoints[i % len(endpoints)],
                queues[i % len(endpoints)], recorders[i],
            ))
            for i in range(concurrency)
        ]
        interval = 1.0 / float(rate)
        n = 0
        while True:
            scheduled = started + n * interval
            now = time.perf_counter()
            if scheduled >= started + duration_s:
                break
            if scheduled > now:
                await asyncio.sleep(scheduled - now)
            data, weight = requests_by_target[n % len(endpoints)][n % len(bodies)]
            queues[n % len(endpoints)].put_nowait((data, weight, scheduled))
            n += 1
        for i, _worker in enumerate(workers):
            queues[i % len(endpoints)].put_nowait(None)
        await asyncio.gather(*workers)
    elapsed = time.perf_counter() - started

    result = LoadResult(
        mode=mode, duration_s=elapsed, concurrency=concurrency, rate=rate,
        targets=len(urls),
    )
    for recorder in recorders:
        recorder.fold(result)
    return result


def write_bench(result: LoadResult, target: str | Path) -> None:
    """Write the serving-perf baseline document."""
    Path(target).write_text(json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n")


def write_tier_bench(
    legacy: LoadResult,
    sharded: LoadResult,
    restart: dict,
    shards: int,
    target: str | Path,
) -> None:
    """Write the sharded-tier serving baseline.

    Top-level fields keep the historical single-row layout (the
    ``benchdiff`` contract reads ``throughput_rps``/``latency_ms``
    there), extended with the tier rows: ``sharded`` (aggregate bulk
    pricing throughput over the shard set, in cells/s) and ``restart``
    (the kill-one-shard drill — ``cold_misses`` must stay 0).
    """
    doc = legacy.to_json()
    doc["sharded"] = {"shards": shards, **sharded.to_json()}
    doc["restart"] = dict(restart)
    Path(target).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


async def post_json(url: str, path: str, doc: dict) -> tuple[int, dict]:
    """POST one JSON document over a one-shot connection."""
    split = urlsplit(url)
    host, port = split.hostname or "127.0.0.1", split.port or 80
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(encode_request(f"{host}:{port}", path, doc))
        await writer.drain()
        status, _headers, body = await _read_response(reader)
    finally:
        writer.close()
    return status, json.loads(body.decode() or "null")


# --------------------------------------------------------------------------
# --breakdown: queue wait vs service time, from the server's own segments
# --------------------------------------------------------------------------

#: The segment histogram the breakdown reads (emitted per completed trace).
SEGMENT_METRIC = "repro_serve_segment_seconds"

_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


async def fetch_text(url: str, path: str = "/metrics") -> str:
    """GET a text endpoint on the server over a one-shot connection."""
    split = urlsplit(url)
    host, port = split.hostname or "127.0.0.1", split.port or 80
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Connection: close\r\n\r\n"
        ).encode())
        await writer.drain()
        status, _headers, body = await _read_response(reader)
    finally:
        writer.close()
    if status != 200:
        raise RuntimeError(f"GET {path} returned {status}")
    return body.decode()


async def fetch_json(url: str, path: str) -> dict:
    """GET a JSON endpoint (e.g. ``/v1/shards``) over a one-shot
    connection; raises on non-200 like :func:`fetch_text`."""
    return json.loads(await fetch_text(url, path))


def _parse_labels(block: str) -> dict[str, str]:
    return {k: v for k, v in _LABEL_PAIR_RE.findall(block)}


def segment_series(text: str) -> dict[str, dict[str, float]]:
    """Per-segment cumulative state from one exposition snapshot.

    Returns ``{segment: {le_string: cumulative_count, "_sum": s,
    "_count": n}}`` — the raw material two snapshots of which make a
    windowed histogram.
    """
    samples = parse_prometheus(text)
    out: dict[str, dict[str, float]] = {}
    for labels, value in samples.get(f"{SEGMENT_METRIC}_bucket", []):
        parsed = _parse_labels(labels)
        segment, le = parsed.get("segment"), parsed.get("le")
        if segment is None or le is None:
            continue
        out.setdefault(segment, {})[le] = value
    for suffix in ("_sum", "_count"):
        for labels, value in samples.get(f"{SEGMENT_METRIC}{suffix}", []):
            segment = _parse_labels(labels).get("segment")
            if segment is None:
                continue
            out.setdefault(segment, {})[suffix] = value
    return out


@dataclass(frozen=True)
class SegmentStats:
    """One segment's windowed (after - before) distribution estimate."""

    segment: str
    count: int
    mean_ms: float
    quantiles_ms: dict[str, float]

    def row(self) -> list[str]:
        cells = [self.segment, str(self.count), f"{self.mean_ms:.3f}"]
        for q in PERCENTILES:
            bound = self.quantiles_ms[f"p{q:g}"]
            cells.append("> last bucket" if math.isinf(bound) else f"<= {bound:.3f}")
        return cells


def _bucket_quantile(buckets: list[tuple[float, float]], total: float, q: float) -> float:
    """Nearest-rank quantile upper bound from cumulative bucket deltas.

    Histograms only know which bucket an observation fell in, so the
    estimate is the upper bound of the bucket holding the q-th
    observation — an "at most" figure, honest about its resolution.
    """
    if total <= 0:
        return 0.0
    rank = math.ceil(total * q / 100.0)
    for le, cum in buckets:
        if cum >= rank:
            return le
    return math.inf


def segment_breakdown(before: str, after: str) -> list[SegmentStats]:
    """Windowed per-segment latency stats between two /metrics scrapes."""
    start, end = segment_series(before), segment_series(after)
    stats: list[SegmentStats] = []
    for segment in sorted(end):
        series = end[segment]
        base = start.get(segment, {})
        buckets = sorted(
            (
                (float(le), value - base.get(le, 0.0))
                for le, value in series.items()
                if le not in ("_sum", "_count")
            ),
        )
        count = series.get("_count", 0.0) - base.get("_count", 0.0)
        delta_sum = series.get("_sum", 0.0) - base.get("_sum", 0.0)
        if count <= 0:
            continue
        quantiles = {
            f"p{q:g}": _bucket_quantile(buckets, count, q) * 1e3
            for q in PERCENTILES
        }
        stats.append(SegmentStats(
            segment=segment,
            count=int(count),
            mean_ms=delta_sum / count * 1e3,
            quantiles_ms=quantiles,
        ))
    # Queue-type waits first, then the service-time segments: the
    # contrast the breakdown exists to show.
    order = {name: i for i, name in enumerate((
        "queue_wait", "batch_wait", "coalesced_wait", "singleflight_wait",
        "engine", "handle", "serialize",
    ))}
    stats.sort(key=lambda s: (order.get(s.segment, len(order)), s.segment))
    return stats


def render_breakdown(stats: list[SegmentStats]) -> str:
    """Tabulate the breakdown (plain text, aligned columns)."""
    if not stats:
        return "no segment observations in the measured window (is tracing enabled?)"
    header = ["segment", "count", "mean ms"] + [f"p{q:g} ms" for q in PERCENTILES]
    rows = [header] + [s.row() for s in stats]
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
             for row in rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    note = ("percentiles are bucket upper bounds from the server's "
            f"{SEGMENT_METRIC} histogram delta over the run window")
    return "\n".join(lines + [note])


def render_shard_health(listing: dict) -> str:
    """Tabulate a router's ``/v1/shards`` health detail.

    Shown by ``repro loadtest --breakdown`` against a sharded tier:
    supervision state, respawn/quarantine counts, and breaker state per
    shard member — the self-healing tier's one-glance dashboard.
    """
    members = listing.get("shards", [])
    if not members:
        return "no shard members reported by /v1/shards"
    header = ["shard", "alive", "state", "respawns", "quarantines",
              "breaker", "opens", "reason"]
    rows = [header]
    for member in members:
        breaker = member.get("breaker", {})
        rows.append([
            str(member.get("shard", "?")),
            "yes" if member.get("alive") else "NO",
            str(member.get("state", "serving")),
            str(member.get("respawns", 0)),
            str(member.get("quarantines", 0)),
            str(breaker.get("state", "closed")),
            str(breaker.get("opens", 0)),
            str(member.get("reason") or "-"),
        ])
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
             for row in rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)
