"""Horizontally sharded serve tier: hash router over shard processes.

One serve process tops out at one backend engine thread.  To scale the
tier horizontally this module runs N :class:`~repro.serve.server.Server`
processes ("shards") over one shared persistent
:class:`~repro.serve.store.ResultStore`, fronted by a thin asyncio
router that speaks the same protocol on the same routes:

* ``POST /v1/predict`` is forwarded whole to the shard that owns the
  queried cell's content key (:func:`shard_for_key`), so repeat
  queries for one spec always land on the same warm memory.
* ``POST /v1/study`` and ``POST /v1/batch`` are *fanned out*: the
  router expands the matrix exactly like a single server would, groups
  the cells by owning shard, prices each group through that shard's
  ``/v1/batch``, and reassembles the response in canonical order —
  bit-identical to a single server's answer (and to ``run_study``),
  because the cells, their canonical order, and the speedup arithmetic
  are shared code, and JSON round-trips floats exactly.
* ``GET /readyz`` aggregates: the tier is ready only when every shard
  is.  ``GET /v1/shards`` lists the members; ``POST /v1/admin/restart``
  gracefully bounces one (drain, then a fresh process that boots warm
  from the store — the restart drill CI exercises).

Graceful drain is preserved at both levels: the router stops
accepting, finishes in-flight fan-outs, then SIGTERMs the shards,
which each run their own drain.

Work is partitioned by ``sha256(content) mod N``: stateless,
deterministic across processes (no coordination), and stable under
identical restarts.  The shared store makes ownership a *performance*
hint rather than a correctness requirement — any shard can price any
spec, and the first durable write wins.
"""

from __future__ import annotations

import asyncio
import dataclasses
import http.client
import json
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from urllib.parse import urlsplit

from ..core.metrics import speedup
from ..engine import memo
from ..exec.faults import RunError
from ..exec.plan import RunSpec, platform_label
from ..exec.retry import RetryPolicy, run_with_retry
from ..obs import logging as obs_logging
from ..obs import tracing
from ..obs.metrics import MetricsRegistry
from . import protocol
from .batcher import CACHED, BackendRunError
from .breaker import BREAKER_STATE_VALUES, BreakerState, CircuitBreaker, RetryBudget
from .store import STORED, PersistentResultCache, ResultStore
from .supervise import ShardHealth, ShardState, SupervisionPolicy
from .server import (
    SERVE_LATENCY_BUCKETS,
    ServeConfig,
    Server,
    _encode_response,
    _HttpRequest,
    _BadRequest,
    _read_request,
)


def shard_for_key(key: str, shards: int) -> int:
    """The shard index owning one content key.

    The key is already a uniform sha256 hex digest, so a prefix modulo
    is an even, deterministic partition — every process (router,
    shard, client) computes the same owner with no coordination.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return int(key[:16], 16) % shards


#: Provenance label for cells the router priced locally because their
#: owner shard was open/quarantined (correct by content-addressing).
DEGRADED = "degraded"


# -- shard worker processes --------------------------------------------


def _shard_main(config: ServeConfig, conn) -> None:
    """Entry point of one shard process (spawn-safe, top-level).

    Boots a :class:`Server`, reports the bound port (or the boot
    failure) through ``conn``, then serves until SIGTERM/SIGINT and
    drains.
    """

    async def main() -> None:
        server = Server(config)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                signal.signal(sig, lambda *_: stop.set())
        try:
            await server.start()
        except BaseException as exc:
            conn.send({"error": f"{type(exc).__name__}: {exc}"})
            conn.close()
            raise
        conn.send({"port": server.port})
        conn.close()
        await stop.wait()
        await server.shutdown()

    asyncio.run(main())


@dataclass
class _Shard:
    """One live member of the tier, as the supervisor tracks it."""

    index: int
    process: multiprocessing.process.BaseProcess
    port: int
    generation: int = 0

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"


#: Gauge encoding of supervision states (``repro_shard_state``).
_SHARD_STATE_VALUES = {
    ShardState.SERVING: 0.0,
    ShardState.RESPAWNING: 1.0,
    ShardState.QUARANTINED: 2.0,
}


class ShardSupervisor:
    """Spawns, supervises, restarts, and stops the shard processes.

    Every shard gets the same :class:`ServeConfig` with its own
    ``shard_id`` and an ephemeral port; the bound port travels back
    over a pipe once the shard is warm and listening (so "started"
    means "ready to serve warm", never "about to warm up").

    After :meth:`start`, a supervision thread runs the liveness loop of
    :class:`~repro.serve.supervise.SupervisionPolicy`: every
    ``probe_interval_s`` it polls each shard process *and* probes its
    ``/healthz`` (a wedged event loop passes ``poll()`` but misses the
    probe).  A dead or hung shard is respawned after a deterministic
    exponential backoff; a shard that burns ``quarantine_after``
    respawns inside ``quarantine_window_s`` is quarantined — the
    supervisor stops feeding it spawns, the router serves its key
    range degraded, and after ``quarantine_cooldown_s`` one probation
    respawn decides whether it rejoins.
    """

    def __init__(
        self,
        config: ServeConfig,
        shards: int,
        start_timeout_s: float = 300.0,
        policy: SupervisionPolicy | None = None,
        supervise: bool = True,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.config = config
        self.n_shards = shards
        self.start_timeout_s = start_timeout_s
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.supervise = supervise
        self.metrics = MetricsRegistry()
        self._ctx = multiprocessing.get_context("spawn")
        self._shards: dict[int, _Shard] = {}
        self._health: dict[int, ShardHealth] = {
            index: ShardHealth(index, self.policy) for index in range(shards)
        }
        #: Shards an admin restart currently holds; supervision ticks
        #: skip them so the two paths never race a double-spawn.
        self._busy: set[int] = set()
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self.restarts = 0
        self.log = obs_logging.get_logger("shard")

    def start(self) -> None:
        for index in range(self.n_shards):
            self._shards[index] = self._spawn(index)
            self._export_state(index)
        if self.supervise:
            self._thread = threading.Thread(
                target=self._supervise_loop, name="repro-supervise", daemon=True
            )
            self._thread.start()
        self.log.info(
            "tier-started", shards=self.n_shards,
            urls=[shard.url for shard in self.shards()],
            supervised=self.supervise,
        )

    def _spawn(self, index: int, generation: int = 0) -> _Shard:
        config = dataclasses.replace(
            self.config, host="127.0.0.1", port=0, shard_id=index
        )
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_shard_main, args=(config, child),
            name=f"repro-shard-{index}", daemon=True,
        )
        process.start()
        child.close()
        deadline = time.monotonic() + self.start_timeout_s
        while not parent.poll(0.05):
            if time.monotonic() > deadline:
                process.terminate()
                raise RuntimeError(
                    f"shard {index} did not report a port within "
                    f"{self.start_timeout_s:g}s"
                )
            if not process.is_alive():
                raise RuntimeError(
                    f"shard {index} died during startup "
                    f"(exit code {process.exitcode})"
                )
        try:
            message = parent.recv()
        except EOFError:
            process.join(timeout=5.0)
            raise RuntimeError(
                f"shard {index} died during startup "
                f"(exit code {process.exitcode})"
            )
        parent.close()
        if "error" in message:
            process.join(timeout=5.0)
            raise RuntimeError(f"shard {index} failed to start: {message['error']}")
        return _Shard(
            index=index, process=process, port=message["port"],
            generation=generation,
        )

    def shards(self) -> list[_Shard]:
        with self._lock:
            return [self._shards[i] for i in sorted(self._shards)]

    @property
    def urls(self) -> list[str]:
        return [shard.url for shard in self.shards()]

    def url_for(self, index: int) -> str:
        with self._lock:
            return self._shards[index].url

    # -- supervision ---------------------------------------------------

    def serving(self, index: int) -> bool:
        """Does the supervisor believe this shard can take traffic?"""
        health = self._health.get(index)
        return health is None or health.state is ShardState.SERVING

    def health_json(self, index: int) -> dict:
        health = self._health.get(index)
        return health.to_json() if health is not None else {}

    def _export_state(self, index: int) -> None:
        health = self._health[index]
        self.metrics.gauge(
            "repro_shard_state",
            help="Supervision state per shard "
            "(0 serving, 1 respawning, 2 quarantined).",
            shard=str(index),
        ).set(_SHARD_STATE_VALUES[health.state])

    def _supervise_loop(self) -> None:
        while not self._stop_event.wait(self.policy.probe_interval_s):
            for index in range(self.n_shards):
                if self._stop_event.is_set():
                    return
                try:
                    self._tick(index)
                except Exception as exc:  # pragma: no cover - must not die
                    self.log.info(
                        "supervise-tick-error", shard=index,
                        error=f"{type(exc).__name__}: {exc}",
                    )

    def _tick(self, index: int) -> None:
        now = time.monotonic()
        with self._lock:
            if index in self._busy:
                return
            health = self._health[index]
            shard = self._shards.get(index)
        if health.state is ShardState.QUARANTINED:
            if health.probation_due(now):
                health.leave_quarantine(now)
                self._export_state(index)
                self.log.info("shard-probation", shard=index)
            return
        if health.state is ShardState.RESPAWNING:
            if health.respawn_due(now):
                self._attempt_respawn(index, health)
            return
        if shard is None:
            return
        if not shard.process.is_alive():
            self._plan_respawn(index, health, "died")
            return
        if self._probe(shard):
            health.probe_ok()
        elif health.probe_missed():
            self._plan_respawn(index, health, "hung")

    def _probe(self, shard: _Shard) -> bool:
        """One blocking ``/healthz`` probe (supervision thread only)."""
        try:
            conn = http.client.HTTPConnection(
                "127.0.0.1", shard.port, timeout=self.policy.probe_timeout_s
            )
            try:
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                response.read()
                return response.status == 200
            finally:
                conn.close()
        except (OSError, http.client.HTTPException):
            return False

    def _plan_respawn(self, index: int, health: ShardHealth, reason: str) -> None:
        delay = health.plan_respawn(time.monotonic(), reason)
        self._export_state(index)
        self.log.info(
            "shard-unhealthy", shard=index, reason=reason,
            respawn_in_s=round(delay, 3),
            attempts_in_window=health.attempts_in_window(time.monotonic()),
        )

    def _attempt_respawn(self, index: int, health: ShardHealth) -> None:
        now = time.monotonic()
        if health.should_quarantine(now):
            health.enter_quarantine(now)
            self._export_state(index)
            self.metrics.counter(
                "repro_shard_quarantines_total",
                help="Shards quarantined for crash-looping.",
                shard=str(index),
            ).inc()
            self.log.info(
                "shard-quarantined", shard=index,
                attempts_in_window=health.attempts_in_window(now),
                cooldown_s=self.policy.quarantine_cooldown_s,
                reason=health.last_reason,
            )
            return
        span = tracing.TRACER.start_span(
            "shard_respawn", kind="internal",
            attrs={"shard": index, "reason": health.last_reason or ""},
        )
        with self._lock:
            old = self._shards.get(index)
        if old is not None:
            self._kill_process(old.process)
        try:
            replacement = self._spawn(
                index, generation=old.generation + 1 if old is not None else 0
            )
        except RuntimeError as exc:
            health.record_attempt(now, ok=False)
            delay = health.plan_respawn(time.monotonic(), "boot-failed")
            tracing.TRACER.finish_span(span, status="error")
            tracing.TRACER.complete(span.trace_id, route="supervise", status=500)
            self.metrics.counter(
                "repro_shard_respawns_total",
                help="Automatic shard respawns by the supervisor.",
                shard=str(index), reason="boot-failed",
            ).inc()
            self.log.info(
                "shard-respawn-failed", shard=index,
                error=str(exc), retry_in_s=round(delay, 3),
            )
            return
        with self._lock:
            if index in self._busy:
                # An admin restart raced us; theirs wins, ours retires.
                self._kill_process(replacement.process)
                return
            self._shards[index] = replacement
        health.record_attempt(now, ok=True)
        self._export_state(index)
        self.metrics.counter(
            "repro_shard_respawns_total",
            help="Automatic shard respawns by the supervisor.",
            shard=str(index), reason=health.last_reason or "unknown",
        ).inc()
        tracing.TRACER.finish_span(span)
        tracing.TRACER.complete(span.trace_id, route="supervise", status=200)
        self.log.info(
            "shard-respawned", shard=index, url=replacement.url,
            generation=replacement.generation, respawns=health.respawns,
            reason=health.last_reason,
        )

    def _kill_process(self, process: multiprocessing.process.BaseProcess) -> None:
        """Hard stop: the process is dead or hung, draining is moot."""
        if process.is_alive():
            process.kill()
        process.join(timeout=5.0)

    def restart(self, index: int) -> str:
        """Gracefully bounce one shard; returns the replacement's URL.

        The old process gets SIGTERM (its own drain), then a fresh
        process boots against the same store — warm, if the tier runs
        one.  Blocking; callers on an event loop run it in an executor.
        """
        with self._lock:
            if index not in self._shards:
                raise KeyError(f"no shard {index}; tier has {self.n_shards}")
            old = self._shards[index]
            self._busy.add(index)
        try:
            self._stop_process(old.process)
            replacement = self._spawn(index, generation=old.generation + 1)
            with self._lock:
                self._shards[index] = replacement
                self.restarts += 1
            health = self._health.get(index)
            if health is not None:
                health.reset()
                self._export_state(index)
        finally:
            with self._lock:
                self._busy.discard(index)
        self.log.info(
            "shard-restarted", shard=index, url=replacement.url,
            generation=replacement.generation,
        )
        return replacement.url

    def _stop_process(self, process: multiprocessing.process.BaseProcess) -> None:
        if process.is_alive() and process.pid is not None:
            os.kill(process.pid, signal.SIGTERM)
        process.join(timeout=self.config.drain_timeout_s + 10.0)
        if process.is_alive():  # pragma: no cover - drain overran its budget
            process.terminate()
            process.join(timeout=5.0)

    def stop(self) -> None:
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(
                timeout=self.policy.probe_interval_s * 4
                + self.policy.probe_timeout_s + 5.0
            )
            self._thread = None
        for shard in self.shards():
            self._stop_process(shard.process)
        with self._lock:
            self._shards.clear()


# -- the router's HTTP client ------------------------------------------


class _ShardClient:
    """A keep-alive JSON client for one shard URL (single event loop).

    Connections are pooled on a free list; a request that hits a stale
    pooled connection retries once on a fresh one.
    """

    def __init__(self, url: str) -> None:
        parts = urlsplit(url)
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self._free: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, bytes]:
        fresh = not self._free
        reader, writer = await self._acquire()
        try:
            return await self._roundtrip(reader, writer, method, path, body)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            writer.close()
            if fresh:
                raise
            # The pooled connection went stale (its shard restarted, or
            # an idle timeout): one retry on a brand-new connection.
            reader, writer = await self._open()
            try:
                return await self._roundtrip(reader, writer, method, path, body)
            except BaseException:
                writer.close()
                raise

    async def _acquire(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        while self._free:
            reader, writer = self._free.pop()
            if not writer.is_closing():
                return reader, writer
            writer.close()
        return await self._open()

    async def _open(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.open_connection(self.host, self.port)

    async def _roundtrip(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes | None,
    ) -> tuple[int, bytes]:
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: keep-alive\r\n\r\n"
        )
        writer.write(head.encode() + payload)
        await writer.drain()
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionResetError("shard closed the connection")
        status = int(status_line.split()[1])
        length = 0
        keep_alive = True
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
            if name.strip().lower() == "connection" and "close" in value.lower():
                keep_alive = False
        response = await reader.readexactly(length) if length else b""
        if keep_alive:
            self._free.append((reader, writer))
        else:
            writer.close()
        return status, response

    def close(self) -> None:
        for _reader, writer in self._free:
            writer.close()
        self._free.clear()


class ShardUnavailable(Exception):
    """A shard could not answer (connect failure or malformed reply)."""


class _LocalPricer:
    """Prices cells in the router process when their owner shard cannot.

    Degraded routing leans on the tier's core invariant: results are
    pure functions of the spec's content key, so a cell the router
    prices locally (through the same scalar retry ladder a shard runs)
    is bit-identical to the shard's answer.  When the tier has a
    persistent store, the pricer shares it — warm cells are served from
    disk instead of recomputed, and degraded computes land durably, so
    the shard that returns from quarantine boots warm and the tier
    converges with zero cold misses.
    """

    def __init__(
        self, store_path: str | None, retries: int = 2, threads: int = 2
    ) -> None:
        self.policy = RetryPolicy(max_attempts=max(1, retries))
        if store_path:
            self.cache: memo.SingleFlightCache = PersistentResultCache(
                ResultStore(store_path)
            )
        else:
            self.cache = memo.SingleFlightCache()
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, threads), thread_name_prefix="repro-degraded"
        )

    async def price(self, spec: RunSpec) -> tuple[object, str]:
        """``(RunResult, provenance)`` — tier labels on a warm hit,
        :data:`DEGRADED` for a local compute."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, self._price_sync, spec)

    def _price_sync(self, spec: RunSpec) -> tuple[object, str]:
        key = spec.content_key()
        peek_tiered = getattr(self.cache, "peek_tiered", None)
        if peek_tiered is not None:
            value, source = peek_tiered(key)
            if source is not None:
                return value, CACHED if source == "memory" else STORED
        else:
            found, value = self.cache.peek(key)
            if found:
                return value, CACHED
        return self.cache.get_or_compute(key, lambda: self._compute(spec)), DEGRADED

    def _compute(self, spec: RunSpec) -> object:
        payload = run_with_retry(spec, self.policy)
        if isinstance(payload, RunError):
            raise BackendRunError(payload)
        return payload.result

    def close(self) -> None:
        self._pool.shutdown(wait=False)


# -- the router --------------------------------------------------------


@dataclass(frozen=True)
class RouterConfig:
    """Tuning of the sharding front itself."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Budget for one downstream shard call inside a fan-out.
    deadline_s: float = 60.0
    drain_timeout_s: float = 10.0
    #: Per-shard ``/readyz`` probe budget for the aggregate.
    probe_timeout_s: float = 5.0
    #: Per-request caps, enforced at the edge before any fan-out;
    #: ``None`` defers to the protocol defaults / env overrides.
    max_study_runs: int | None = None
    max_batch_cells: int | None = None
    #: Consecutive transport failures that open a shard's breaker.
    breaker_failures: int = 3
    #: Seconds an open breaker waits before its half-open probe.
    breaker_reset_s: float = 2.0
    #: Retry budget: tokens earned per successful downstream call
    #: (each retry spends one), and the bucket's cap.
    retry_budget_ratio: float = 0.1
    retry_budget_cap: float = 10.0
    #: Serve an unavailable owner's key range by pricing locally
    #: (``False`` restores fail-fast 502s).
    degraded: bool = True
    #: Store for the degraded pricer; ``None`` defaults to the
    #: supervised tier's own store (static-URL routers stay in-memory).
    store_path: str | None = None
    #: Retry ladder and thread pool of the degraded local pricer.
    degraded_retries: int = 2
    degraded_threads: int = 2


class ShardRouter:
    """The tier's front: one listener, N shards, same protocol.

    Owns either a :class:`ShardSupervisor` (it can then restart
    members via ``/v1/admin/restart``) or a static URL list (routing
    over externally managed shards).
    """

    def __init__(
        self,
        supervisor: ShardSupervisor | None = None,
        urls: list[str] | None = None,
        config: RouterConfig | None = None,
    ) -> None:
        if (supervisor is None) == (urls is None):
            raise ValueError("pass exactly one of supervisor= or urls=")
        self.supervisor = supervisor
        self._static_urls = list(urls) if urls is not None else None
        self.config = config if config is not None else RouterConfig()
        self.metrics = MetricsRegistry()
        self._breakers: dict[int, CircuitBreaker] = {}
        self._budget = RetryBudget(
            ratio=self.config.retry_budget_ratio,
            cap=self.config.retry_budget_cap,
        )
        self._pricer: _LocalPricer | None = None
        #: Shards currently (or last known) served degraded; cleared —
        #: and counted as a re-home — on their next direct success.
        self._degraded_marked: set[int] = set()
        self._clients: dict[str, _ShardClient] = {}
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self.started_at: float | None = None
        self.log = obs_logging.get_logger("router")

    # -- membership ----------------------------------------------------

    @property
    def shard_urls(self) -> list[str]:
        if self.supervisor is not None:
            return self.supervisor.urls
        return list(self._static_urls or [])

    @property
    def n_shards(self) -> int:
        return len(self.shard_urls)

    def _client(self, url: str) -> _ShardClient:
        client = self._clients.get(url)
        if client is None:
            client = self._clients[url] = _ShardClient(url)
        return client

    async def _call_shard(
        self, url: str, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, bytes]:
        try:
            return await asyncio.wait_for(
                self._client(url).request(method, path, body),
                timeout=self.config.deadline_s,
            )
        except (ConnectionError, OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError) as exc:
            raise ShardUnavailable(f"shard at {url}: {type(exc).__name__}: {exc}")

    async def _call_shard_json(
        self, url: str, method: str, path: str, doc: dict | None = None
    ) -> tuple[int, dict]:
        body = json.dumps(doc).encode() if doc is not None else None
        status, payload = await self._call_shard(url, method, path, body)
        try:
            return status, json.loads(payload.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ShardUnavailable(f"shard at {url} sent non-JSON: {exc}")

    # -- resilience ----------------------------------------------------

    def _url_for(self, owner: int) -> str:
        if self.supervisor is not None:
            return self.supervisor.url_for(owner)
        return (self._static_urls or [])[owner]

    def _breaker(self, owner: int) -> CircuitBreaker:
        breaker = self._breakers.get(owner)
        if breaker is None:
            def on_transition(
                old: BreakerState, new: BreakerState, owner: int = owner
            ) -> None:
                self.metrics.counter(
                    "repro_router_breaker_transitions_total",
                    help="Breaker transitions, by shard and new state.",
                    shard=str(owner), to=new.value,
                ).inc()
                self.metrics.gauge(
                    "repro_router_breaker_state",
                    help="Breaker state per shard "
                    "(0 closed, 1 half-open, 2 open).",
                    shard=str(owner),
                ).set(BREAKER_STATE_VALUES[new])
                self.log.info(
                    "breaker-transition", shard=owner,
                    previous=old.value, state=new.value,
                )
                ctx = tracing.current()
                if ctx is not None:
                    now = time.perf_counter()
                    tracing.TRACER.record(
                        "breaker_transition", now, now, parent=ctx,
                        attrs={"shard": owner, "to": new.value},
                    )
            breaker = self._breakers[owner] = CircuitBreaker(
                failures=self.config.breaker_failures,
                reset_s=self.config.breaker_reset_s,
                on_transition=on_transition,
            )
        return breaker

    def _owner_available(self, owner: int) -> bool:
        """Is the owner worth calling at all (supervision says so)?"""
        return self.supervisor is None or self.supervisor.serving(owner)

    async def _resilient_call(
        self, owner: int, method: str, path: str, doc: dict | None = None
    ) -> tuple[int, dict]:
        """One shard call behind the owner's breaker and the global
        retry budget: at most one budget-gated retry, fail fast when
        the breaker is open."""
        last_exc: ShardUnavailable | None = None
        for attempt in range(2):
            breaker = self._breaker(owner)
            if not breaker.allow():
                raise ShardUnavailable(
                    f"shard {owner}: circuit breaker is {breaker.state.value}"
                )
            try:
                result = await self._call_shard_json(
                    self._url_for(owner), method, path, doc
                )
            except ShardUnavailable as exc:
                breaker.record_failure()
                last_exc = exc
                if attempt == 0 and self._budget.spend():
                    self.metrics.counter(
                        "repro_router_retries_total",
                        help="Downstream retries spent from the retry budget.",
                        shard=str(owner),
                    ).inc()
                    continue
                raise
            breaker.record_success()
            self._budget.earn()
            if owner in self._degraded_marked:
                self._degraded_marked.discard(owner)
                self.metrics.counter(
                    "repro_router_rehomed_total",
                    help="Times routing returned to a shard after a "
                    "spell of degraded service.",
                    shard=str(owner),
                ).inc()
                self.log.info("shard-rehomed", shard=owner)
            return result
        raise last_exc  # pragma: no cover - loop always raises/returns

    # -- degraded routing ----------------------------------------------

    def _local(self) -> _LocalPricer:
        if self._pricer is None:
            store_path = self.config.store_path
            if store_path is None and self.supervisor is not None:
                store_path = self.supervisor.config.store_path
            self._pricer = _LocalPricer(
                store_path,
                retries=self.config.degraded_retries,
                threads=self.config.degraded_threads,
            )
        return self._pricer

    def _count_degraded(self, route: str, owner: int) -> None:
        self.metrics.counter(
            "repro_router_degraded_total",
            help="Requests served by the router's degraded local "
            "pricing path, by route.",
            route=route,
        ).inc()
        self._degraded_marked.add(owner)
        self.log.info("degraded-serve", route=route, shard=owner)
        ctx = tracing.current()
        if ctx is not None:
            now = time.perf_counter()
            tracing.TRACER.record(
                "degraded_serve", now, now, parent=ctx,
                attrs={"route": route, "shard": owner},
            )

    async def _degraded_predict(
        self, request: protocol.PredictRequest, owner: int
    ) -> tuple[int, dict]:
        self._count_degraded("predict", owner)
        pricer = self._local()
        baseline_spec, model_spec = request.specs()
        (baseline, baseline_prov), (model, model_prov) = await asyncio.gather(
            pricer.price(baseline_spec), pricer.price(model_spec)
        )
        return 200, protocol.predict_response(
            request,
            baseline_seconds=baseline.seconds,
            model_result=model,
            provenance={"baseline": baseline_prov, "model": model_prov},
            key=model_spec.content_key()[:16],
        )

    async def _degraded_group(
        self, owner: int, members: list[tuple[int, protocol.PredictRequest]]
    ) -> list[tuple[int, dict]]:
        """Price one fan-out group locally, shaped exactly like the
        shard's ``/v1/batch`` results so reassembly does not care."""
        self._count_degraded("batch", owner)
        pricer = self._local()
        priced = await asyncio.gather(
            *(pricer.price(cell.spec()) for _pos, cell in members)
        )
        out: list[tuple[int, dict]] = []
        for (position, cell), (result, provenance) in zip(members, priced):
            doc = cell.to_json()
            doc.update({
                "seconds": result.seconds,
                "kernel_seconds": result.kernel_seconds,
                "key": cell.spec().content_key()[:16],
                "provenance": provenance,
            })
            out.append((position, doc))
        return out

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None, "router not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port,
        )
        self.started_at = time.time()
        self.log.info(
            "router-started", url=self.url, shards=self.shard_urls,
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Drain the router, then stop the shards it supervises."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_timeout_s
            )
        except asyncio.TimeoutError:  # pragma: no cover - drain overran
            pass
        for writer in list(self._connections):
            writer.close()
        if self._handlers:
            await asyncio.wait(set(self._handlers), timeout=1.0)
        for client in self._clients.values():
            client.close()
        if self._pricer is not None:
            self._pricer.close()
        if self.supervisor is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.supervisor.stop
            )
        self.log.info("router-stopped")

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as exc:
                    writer.write(_encode_response(
                        400, protocol.error_response(400, str(exc)), keep_alive=False
                    ))
                    await writer.drain()
                    self._observe("other", 400, 0.0)
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive and not self._draining
                started = time.perf_counter()
                route, status, payload = await self._dispatch(request)
                writer.write(_encode_response(status, payload, keep_alive))
                await writer.drain()
                self._observe(route, status, time.perf_counter() - started)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            if task is not None:
                self._handlers.discard(task)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _observe(self, route: str, status: int, latency_s: float) -> None:
        self.metrics.counter(
            "repro_router_requests_total",
            help="Requests through the shard router, by route and status.",
            route=route, status=str(status),
        ).inc()
        self.metrics.histogram(
            "repro_router_latency_seconds",
            help="Router-side request latency (fan-out included).",
            buckets=SERVE_LATENCY_BUCKETS,
            route=route,
        ).observe(latency_s)

    # -- routing -------------------------------------------------------

    async def _dispatch(
        self, request: _HttpRequest
    ) -> tuple[str, int, dict | str]:
        path = request.path.split("?", 1)[0]
        if path == "/healthz":
            return "healthz", 200, {
                "status": "ok", "role": "router", "shards": self.n_shards,
            }
        if path == "/readyz":
            return await self._readyz()
        if path == "/metrics":
            return "metrics", 200, self._metrics_exposition()
        if path == "/v1/shards":
            return await self._shard_listing()
        if path == "/v1/admin/restart":
            if request.method != "POST":
                return "admin", 405, protocol.error_response(
                    405, "/v1/admin/restart only accepts POST"
                )
            return await self._admin_restart(request)
        if path == "/v1/admin/chaos":
            if request.method != "POST":
                return "admin", 405, protocol.error_response(
                    405, "/v1/admin/chaos only accepts POST"
                )
            return await self._admin_chaos(request)
        if path in ("/v1/predict", "/v1/study", "/v1/batch"):
            route = path.rsplit("/", 1)[1]
            if request.method != "POST":
                return route, 405, protocol.error_response(
                    405, f"{path} only accepts POST"
                )
            if self._draining:
                return route, 503, protocol.error_response(
                    503, "router is draining"
                )
            return await self._forwarded(route, request)
        return "other", 404, protocol.error_response(
            404, f"no route {path!r}; the router serves /v1/predict, /v1/study, "
            "/v1/batch, /v1/shards, /v1/admin/restart, /v1/admin/chaos, "
            "/healthz, /readyz and /metrics"
        )

    async def _forwarded(
        self, route: str, request: _HttpRequest
    ) -> tuple[str, int, dict | str]:
        self._active += 1
        self._idle.clear()
        try:
            try:
                doc = json.loads(request.body.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return route, 400, protocol.error_response(
                    400, f"request body is not valid JSON: {exc}"
                )
            handler = {
                "predict": self._predict, "study": self._study,
                "batch": self._batch,
            }[route]
            try:
                status, payload = await handler(doc)
            except protocol.LimitExceeded as exc:
                return route, 413, protocol.error_response(413, str(exc))
            except protocol.ProtocolError as exc:
                return route, 400, protocol.error_response(400, str(exc))
            except ShardUnavailable as exc:
                return route, 502, protocol.error_response(502, str(exc))
            except BackendRunError as exc:
                # The degraded local pricer exhausted its retry ladder.
                return route, 500, protocol.error_response(500, str(exc))
            return route, status, payload
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()

    # -- prediction routes ---------------------------------------------

    async def _predict(self, doc: object) -> tuple[int, dict]:
        """Forward the whole request to the cell's owning shard.

        The shard prices baseline + model itself (both hit the shared
        store after first touch), so the response — speedups, keys,
        everything — is byte-for-byte what a single server would say.
        """
        request = protocol.PredictRequest.from_json(doc)
        owner = shard_for_key(request.spec().content_key(), self.n_shards)
        if not self._owner_available(owner):
            if self.config.degraded:
                return await self._degraded_predict(request, owner)
            raise ShardUnavailable(f"shard {owner} is not serving")
        self._count_shard_call(owner)
        try:
            status, payload = await self._resilient_call(
                owner, "POST", "/v1/predict", request.to_json()
            )
        except ShardUnavailable:
            if not self.config.degraded:
                raise
            return await self._degraded_predict(request, owner)
        return status, payload

    async def _batch(self, doc: object) -> tuple[int, dict]:
        request = protocol.BatchRequest.from_json(
            doc, max_cells=self.config.max_batch_cells
        )
        priced = await self._fan_out(request.cells)
        results = []
        tally: dict[str, int] = {}
        for cell_doc in priced:
            provenance = cell_doc.get("provenance", "unknown")
            tally[provenance] = tally.get(provenance, 0) + 1
            results.append(cell_doc)
        return 200, {
            "version": protocol.PROTOCOL_VERSION,
            "count": len(results),
            "results": results,
            "served": tally,
        }

    async def _study(self, doc: object) -> tuple[int, dict]:
        """Expand the matrix, price it across shards, reassemble.

        The cells and their canonical order come from the same
        :meth:`StudyRequest.runs` a single server uses; the entry
        arithmetic below is line-for-line :meth:`Server._study`.  JSON
        serializes floats by shortest round-trip repr, so the seconds
        that come back equal the shard's floats bit for bit, and the
        derived speedups match a single server (and ``run_study``).
        """
        request = protocol.StudyRequest.from_json(
            doc, max_runs=self.config.max_study_runs
        )
        runs = request.runs()
        cells = tuple(
            protocol.PredictRequest(
                app=spec.app, model=spec.model, platform=spec.platform,
                precision=spec.precision, scale=request.scale,
            )
            for spec in runs
        )
        priced = await self._fan_out(cells)
        tally: dict[str, int] = {}
        for cell_doc in priced:
            provenance = cell_doc.get("provenance", "unknown")
            tally[provenance] = tally.get(provenance, 0) + 1

        entries: list[dict] = []
        cursor = iter(priced)
        models = request.compared_models
        for app in request.apps:
            for platform in request.platforms:
                for precision in request.precisions:
                    baseline = next(cursor)
                    for model in models:
                        result = next(cursor)
                        entries.append({
                            "app": app,
                            "model": model,
                            "platform": platform_label(platform),
                            "precision": precision.value,
                            "seconds": result["seconds"],
                            "kernel_seconds": result["kernel_seconds"],
                            "baseline_seconds": baseline["seconds"],
                            "speedup": speedup(
                                baseline["seconds"], result["seconds"]
                            ),
                            "kernel_speedup": speedup(
                                baseline["seconds"], result["kernel_seconds"]
                            ),
                            # getattr-equivalent: a pre-energy shard may
                            # omit the field from its batch response.
                            "joules": result.get("joules", 0.0),
                            "edp": result.get("joules", 0.0) * result["seconds"],
                        })
        return 200, protocol.study_response(request, entries, tally)

    async def _fan_out(
        self, cells: tuple[protocol.PredictRequest, ...]
    ) -> list[dict]:
        """Price cells on their owning shards; results in cell order."""
        urls = self.shard_urls
        groups: dict[int, list[tuple[int, protocol.PredictRequest]]] = {}
        for position, cell in enumerate(cells):
            owner = shard_for_key(cell.spec().content_key(), len(urls))
            groups.setdefault(owner, []).append((position, cell))

        async def price_group(
            owner: int, members: list[tuple[int, protocol.PredictRequest]]
        ) -> list[tuple[int, dict]]:
            if not self._owner_available(owner):
                if self.config.degraded:
                    return await self._degraded_group(owner, members)
                raise ShardUnavailable(f"shard {owner} is not serving")
            self._count_shard_call(owner)
            body = {"cells": [cell.to_json() for _pos, cell in members]}
            try:
                status, payload = await self._resilient_call(
                    owner, "POST", "/v1/batch", body
                )
            except ShardUnavailable:
                if not self.config.degraded:
                    raise
                return await self._degraded_group(owner, members)
            if status != 200 or not isinstance(payload, dict):
                message = "unexpected response"
                if isinstance(payload, dict) and "error" in payload:
                    message = payload["error"].get("message", message)
                if self.config.degraded:
                    self.log.info(
                        "degraded-after-shard-error", shard=owner,
                        status=status, message=message,
                    )
                    return await self._degraded_group(owner, members)
                raise ShardUnavailable(
                    f"shard {owner} answered {status} pricing "
                    f"{len(members)} cells: {message}"
                )
            results = payload["results"]
            return [
                (position, result)
                for (position, _cell), result in zip(members, results)
            ]
        self.metrics.histogram(
            "repro_router_fanout_shards",
            help="Shards touched per fanned-out request.",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
        ).observe(len(groups))
        placed = await asyncio.gather(*(
            price_group(owner, members) for owner, members in groups.items()
        ))
        ordered: list[dict | None] = [None] * len(cells)
        for group in placed:
            for position, result in group:
                ordered[position] = result
        return ordered  # type: ignore[return-value]

    def _count_shard_call(self, owner: int) -> None:
        self.metrics.counter(
            "repro_router_shard_requests_total",
            help="Downstream calls per shard.",
            shard=str(owner),
        ).inc()

    # -- operations ----------------------------------------------------

    async def _readyz(self) -> tuple[str, int, dict]:
        """Aggregate readiness: ready only when every shard is."""
        if self._draining:
            return "readyz", 503, {"status": "draining"}

        async def probe(url: str) -> dict:
            try:
                status, _payload = await asyncio.wait_for(
                    self._client(url).request("GET", "/readyz"),
                    timeout=self.config.probe_timeout_s,
                )
                return {"url": url, "status": status}
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError) as exc:
                return {"url": url, "status": 0, "error": type(exc).__name__}

        probes = await asyncio.gather(*(probe(url) for url in self.shard_urls))
        ready = all(p["status"] == 200 for p in probes)
        return "readyz", 200 if ready else 503, {
            "status": "ready" if ready else "degraded",
            "shards": probes,
        }

    async def _shard_listing(self) -> tuple[str, int, dict]:
        shards = []
        if self.supervisor is not None:
            for shard in self.supervisor.shards():
                breaker = self._breakers.get(shard.index)
                shards.append({
                    "shard": shard.index,
                    "url": shard.url,
                    "pid": shard.process.pid,
                    "alive": shard.process.is_alive(),
                    "generation": shard.generation,
                    **self.supervisor.health_json(shard.index),
                    "breaker": breaker.to_json() if breaker is not None
                    else {"state": BreakerState.CLOSED.value, "opens": 0,
                          "consecutive_failures": 0},
                })
        else:
            for index, url in enumerate(self.shard_urls):
                breaker = self._breakers.get(index)
                shards.append({
                    "shard": index, "url": url,
                    "breaker": breaker.to_json() if breaker is not None
                    else {"state": BreakerState.CLOSED.value, "opens": 0,
                          "consecutive_failures": 0},
                })
        return "shards", 200, {
            "version": protocol.PROTOCOL_VERSION,
            "count": len(shards),
            "restarts": self.supervisor.restarts if self.supervisor else 0,
            "shards": shards,
        }

    async def _admin_restart(
        self, request: _HttpRequest
    ) -> tuple[str, int, dict]:
        """Gracefully bounce one shard (drain old, boot warm new)."""
        if self.supervisor is None:
            return "admin", 400, protocol.error_response(
                400, "this router does not supervise its shards; "
                "restart them externally"
            )
        try:
            doc = json.loads(request.body.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return "admin", 400, protocol.error_response(
                400, f"request body is not valid JSON: {exc}"
            )
        if not isinstance(doc, dict) or not isinstance(doc.get("shard"), int):
            return "admin", 400, protocol.error_response(
                400, "body must be {\"shard\": <index>}"
            )
        index = doc["shard"]
        if not 0 <= index < self.supervisor.n_shards:
            return "admin", 400, protocol.error_response(
                400, f"no shard {index}; tier has {self.supervisor.n_shards}"
            )
        old_url = self.supervisor.url_for(index)
        started = time.perf_counter()
        new_url = await asyncio.get_running_loop().run_in_executor(
            None, self.supervisor.restart, index
        )
        client = self._clients.pop(old_url, None)
        if client is not None:
            client.close()
        # A manual restart is a clean slate: the fresh process deserves
        # a closed breaker and a cleared degraded mark.
        self._breakers.pop(index, None)
        self._degraded_marked.discard(index)
        self.metrics.counter(
            "repro_router_restarts_total",
            help="Shard restarts performed through /v1/admin/restart.",
        ).inc()
        return "admin", 200, {
            "version": protocol.PROTOCOL_VERSION,
            "shard": index,
            "url": new_url,
            "restart_s": round(time.perf_counter() - started, 3),
        }

    async def _admin_chaos(
        self, request: _HttpRequest
    ) -> tuple[str, int, dict]:
        """Broadcast a chaos plan (or the ``null`` disarm) to every
        serving shard — the drill's arm/disarm switch."""
        try:
            doc = json.loads(request.body.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return "admin", 400, protocol.error_response(
                400, f"request body is not valid JSON: {exc}"
            )
        if doc is not None and not isinstance(doc, dict):
            return "admin", 400, protocol.error_response(
                400, "body must be a JSON object (or empty to disarm)"
            )
        results = []
        for index in range(self.n_shards):
            if not self._owner_available(index):
                results.append({"shard": index, "status": 0,
                                "skipped": "not serving"})
                continue
            try:
                status, payload = await self._call_shard_json(
                    self._url_for(index), "POST", "/v1/admin/chaos",
                    doc if doc is not None else {},
                )
                entry = {"shard": index, "status": status}
                if isinstance(payload, dict):
                    entry["armed"] = payload.get("armed")
                results.append(entry)
            except ShardUnavailable as exc:
                results.append({"shard": index, "status": 0,
                                "error": str(exc)})
        return "admin", 200, {
            "version": protocol.PROTOCOL_VERSION,
            "shards": results,
        }

    def _metrics_exposition(self) -> str:
        snapshot = MetricsRegistry()
        snapshot.merge(self.metrics)
        if self.supervisor is not None:
            snapshot.merge(self.supervisor.metrics)
        snapshot.gauge(
            "repro_router_shards", help="Shards this router fronts."
        ).set(self.n_shards)
        snapshot.gauge(
            "repro_router_uptime_seconds",
            help="Seconds since the router started accepting connections.",
        ).set(time.time() - self.started_at if self.started_at is not None else 0.0)
        return snapshot.to_prometheus()


# -- embedding helper --------------------------------------------------


class ShardedTier:
    """Supervisor + router on a background thread, as one handle.

    The sharded counterpart of :class:`~repro.serve.server.ServerThread`:
    ``repro loadtest --shards N`` and the test suite use it to stand a
    whole warm tier up (and tear it down) around a measurement.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        shards: int = 2,
        router: RouterConfig | None = None,
        policy: SupervisionPolicy | None = None,
    ) -> None:
        self.supervisor = ShardSupervisor(
            config if config is not None else ServeConfig(), shards,
            policy=policy,
        )
        self.router = ShardRouter(supervisor=self.supervisor, config=router)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None

    def __enter__(self) -> "ShardedTier":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self, timeout: float = 330.0) -> "ShardedTier":
        # Shards first (synchronously: their boot includes the warm-up),
        # then the router thread.
        self.supervisor.start()
        self._thread = threading.Thread(
            target=self._main, name="repro-router", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=timeout):
            raise RuntimeError("router thread failed to start in time")
        if self._failure is not None:
            self.supervisor.stop()
            raise RuntimeError("router thread failed to start") from self._failure
        return self

    def _main(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await self.router.start()
            except BaseException as exc:
                self._failure = exc
                self._ready.set()
                raise
            self._ready.set()
            await self._stop.wait()
            await self.router.shutdown()

        try:
            asyncio.run(main())
        except BaseException as exc:  # pragma: no cover - surfaced via start()
            if not self._ready.is_set():
                self._failure = exc
                self._ready.set()

    @property
    def url(self) -> str:
        return self.router.url

    @property
    def shard_urls(self) -> list[str]:
        return self.supervisor.urls

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        self.supervisor.stop()
