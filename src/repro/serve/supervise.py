"""Liveness supervision policy for the sharded tier.

Pure decision logic, separated from the process plumbing in
:mod:`repro.serve.shard` so it can be unit-tested with a fake clock:

* :class:`SupervisionPolicy` — the tuning: probe cadence and budget,
  how many consecutive probe misses mean "hung", the respawn backoff
  curve, and the crash-loop quarantine window.
* :class:`ShardHealth` — one shard's mutable supervision record: its
  :class:`ShardState`, consecutive probe misses, the respawn-attempt
  timestamps inside the quarantine window, and the deterministic
  next-respawn time (:func:`~repro.exec.retry.backoff_delay`, the same
  jittered curve the exec retry ladder sleeps).

The state machine per shard::

    SERVING --(process died / N probes missed)--> RESPAWNING
    RESPAWNING --(backoff elapsed, spawn ok)-----> SERVING
    RESPAWNING --(>= quarantine_after attempts
                  in quarantine_window_s)--------> QUARANTINED
    QUARANTINED --(cooldown elapsed: probation)--> RESPAWNING

Quarantine is deliberately *not* terminal: after
``quarantine_cooldown_s`` the supervisor grants one probation respawn
(with a cleared attempt window).  A still-crashing shard runs the loop
again and lands back in quarantine; a recovered one (the fault plan
disarmed, the bad deploy rolled back) rejoins and the router re-homes
its key range.  While quarantined, the range is served degraded by the
router — correctness is never parked on the supervisor's optimism.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..exec.retry import backoff_delay


class ShardState(str, Enum):
    """Where one shard sits in the supervision state machine."""

    SERVING = "serving"
    RESPAWNING = "respawning"
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class SupervisionPolicy:
    """Tuning of the liveness/respawn/quarantine loop."""

    #: Seconds between supervision ticks (process poll + HTTP probe).
    probe_interval_s: float = 0.5
    #: Budget for one ``/healthz`` probe; a hung shard accepts the
    #: connection and never answers, so this must be finite.
    probe_timeout_s: float = 2.0
    #: Consecutive missed probes before a live process is declared
    #: hung and respawned (one miss may be a slow GC pause).
    probe_failures: int = 2
    #: Respawn backoff curve (deterministically jittered, shared with
    #: the exec retry ladder).
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 2.0
    #: Respawn attempts within ``quarantine_window_s`` that flip the
    #: shard to QUARANTINED instead of burning more spawns.
    quarantine_after: int = 3
    quarantine_window_s: float = 30.0
    #: Seconds a quarantined shard rests before one probation respawn.
    quarantine_cooldown_s: float = 30.0

    def __post_init__(self) -> None:
        if self.probe_interval_s <= 0 or self.probe_timeout_s <= 0:
            raise ValueError("probe interval and timeout must be positive")
        if self.probe_failures < 1:
            raise ValueError(
                f"probe_failures must be >= 1, got {self.probe_failures}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0 or self.backoff_factor < 1:
            raise ValueError("backoff parameters must be non-negative (factor >= 1)")
        if self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )
        if self.quarantine_window_s <= 0 or self.quarantine_cooldown_s < 0:
            raise ValueError("quarantine window must be positive, cooldown >= 0")

    def respawn_delay(self, shard: int, attempt: int) -> float:
        """Backoff before respawn ``attempt`` (0-based) of one shard."""
        return backoff_delay(
            f"shard:{shard}", attempt,
            base=self.backoff_base_s, factor=self.backoff_factor,
            cap=self.backoff_cap_s,
        )


class ShardHealth:
    """One shard's supervision record (clock injected by the caller).

    Not thread-safe by itself: the supervisor mutates it only from its
    supervision thread and snapshots it under the supervisor's lock.
    """

    def __init__(self, index: int, policy: SupervisionPolicy) -> None:
        self.index = index
        self.policy = policy
        self.state = ShardState.SERVING
        #: Total respawns performed (successful spawns), ever.
        self.respawns = 0
        #: Times the shard entered quarantine, ever.
        self.quarantines = 0
        self.last_reason: str | None = None
        self._misses = 0
        #: Respawn-attempt timestamps inside the rolling window.
        self._attempts: list[float] = []
        #: When the next respawn attempt may run (backoff gate).
        self.next_attempt_at = 0.0
        self.quarantined_at: float | None = None

    # -- probing -------------------------------------------------------

    def probe_ok(self) -> None:
        self._misses = 0

    def probe_missed(self) -> bool:
        """Record one missed probe; True when the miss budget is spent."""
        self._misses += 1
        return self._misses >= self.policy.probe_failures

    # -- respawn accounting --------------------------------------------

    def _prune(self, now: float) -> None:
        horizon = now - self.policy.quarantine_window_s
        self._attempts = [t for t in self._attempts if t > horizon]

    def attempts_in_window(self, now: float) -> int:
        self._prune(now)
        return len(self._attempts)

    def plan_respawn(self, now: float, reason: str) -> float:
        """Move to RESPAWNING; returns the deterministic backoff delay.

        The delay index is the number of recent attempts, so a shard
        that keeps dying backs off 2x per attempt (up to the cap) and a
        shard that was healthy for a full window restarts immediately.
        """
        attempt = self.attempts_in_window(now)
        delay = self.policy.respawn_delay(self.index, attempt)
        self.state = ShardState.RESPAWNING
        self.last_reason = reason
        self._misses = 0
        self.next_attempt_at = now + delay
        return delay

    def respawn_due(self, now: float) -> bool:
        return self.state is ShardState.RESPAWNING and now >= self.next_attempt_at

    def record_attempt(self, now: float, ok: bool) -> None:
        """Account one respawn attempt (spawn tried, success or not)."""
        self._prune(now)
        self._attempts.append(now)
        if ok:
            self.respawns += 1
            self.state = ShardState.SERVING
            self._misses = 0

    def should_quarantine(self, now: float) -> bool:
        return self.attempts_in_window(now) >= self.policy.quarantine_after

    # -- quarantine ----------------------------------------------------

    def enter_quarantine(self, now: float) -> None:
        self.state = ShardState.QUARANTINED
        self.quarantines += 1
        self.quarantined_at = now
        self._misses = 0

    def probation_due(self, now: float) -> bool:
        return (
            self.state is ShardState.QUARANTINED
            and self.quarantined_at is not None
            and now - self.quarantined_at >= self.policy.quarantine_cooldown_s
        )

    def leave_quarantine(self, now: float) -> None:
        """Grant the probation respawn: a fresh attempt window, so one
        clean boot fully rehabilitates the shard."""
        self._attempts.clear()
        self.quarantined_at = None
        self.state = ShardState.RESPAWNING
        self.last_reason = "probation"
        self.next_attempt_at = now

    # -- reset / export ------------------------------------------------

    def reset(self) -> None:
        """Manual intervention (an admin restart): clean slate."""
        self.state = ShardState.SERVING
        self._misses = 0
        self._attempts.clear()
        self.next_attempt_at = 0.0
        self.quarantined_at = None
        self.last_reason = None

    def to_json(self) -> dict:
        return {
            "state": self.state.value,
            "respawns": self.respawns,
            "quarantines": self.quarantines,
            "quarantined": self.state is ShardState.QUARANTINED,
            "reason": self.last_reason,
        }
