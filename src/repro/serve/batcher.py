"""Micro-batching bridge between the event loop and the engine.

The HTTP handlers are coroutines; the engine is synchronous Python.
The :class:`Batcher` sits between them:

* **Fast path** — a spec whose result is already in the process-global
  :data:`~repro.engine.memo.RESULT_CACHE` returns synchronously on the
  event loop (one dict lookup, no batching window, no thread hop).
  This is what makes warm-cache predict queries cheap enough to serve
  hundreds per second.
* **Single-flight** — concurrent requests for the same
  :class:`~repro.exec.plan.RunSpec` content share one future; only the
  first costs an engine run.  Joins are tallied in the cache's
  ``coalesced`` counter (``repro_memo_singleflight_coalesced_total``).
* **Micro-batching** — distinct cold specs arriving within the batch
  window are merged into one batch and dispatched together to a
  single backend worker thread, where each runs through the retry
  ladder of :mod:`repro.exec.retry` (the per-run watchdog doubles as
  the request's compute deadline) and lands in the result cache.  The
  engine's kernel/setup/trace memo caches live in this process, so
  every request warms them for the next.

Results are deterministic pure functions of their spec, so cached,
coalesced and computed answers are all bit-identical.

Tracing: each queued spec carries its request's
:class:`~repro.obs.tracing.SpanContext` through the window and across
the thread hop (contextvars do not follow ``run_in_executor``), so the
batcher can attribute every microsecond a request spends here —
``batch_wait`` (submit → batch dispatch), ``queue_wait`` (dispatch →
the backend thread picking the spec up), ``engine`` (the compute
itself, parenting any deeper run spans), and ``coalesced_wait`` for
followers riding an identical in-flight spec.  All of it is
observation-only; with no ambient context the batcher records nothing.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, NamedTuple, Sequence

from ..apps.base import RunResult
from ..engine import memo
from ..exec.faults import RunError
from ..exec.plan import RunSpec
from ..exec.retry import RetryPolicy, run_with_retry
from ..obs import tracing
from ..obs.metrics import MetricsRegistry
from .store import STORED


class _BatchItem(NamedTuple):
    """One queued cold spec plus its request's trace context."""

    key: str
    spec: RunSpec
    ctx: tracing.SpanContext | None
    submitted_s: float

#: Provenance labels a served result can carry (``STORED`` — served
#: from the persistent on-disk store — is defined by the store module).
COMPUTED = "computed"
CACHED = "cache"
COALESCED = "coalesced"


class BackendRunError(RuntimeError):
    """A spec exhausted its retry budget in the backend (an HTTP 500)."""

    def __init__(self, error: RunError) -> None:
        super().__init__(f"{error.label}: {error.kind.value}: {error.message}")
        self.error = error


class Batcher:
    """Coalesce concurrent predictions into engine batches.

    One instance belongs to one event loop.  ``window_s`` bounds how
    long a cold request waits for companions; ``max_batch`` flushes a
    full batch early.  All engine work runs on one dedicated backend
    thread, so the simulator itself stays single-threaded while the
    loop keeps serving cache hits.

    ``engine`` picks how a flushed batch's cold specs are priced:
    ``"vector"`` gathers the columnar-eligible ones
    (:func:`repro.engine.study_vec.vector_eligible`) into one
    whole-batch pricing call, with the scalar retry ladder as the
    per-spec fallback; ``"scalar"`` runs every spec through the retry
    ladder individually.  Results are bit-identical either way.
    """

    def __init__(
        self,
        window_s: float = 0.002,
        max_batch: int = 32,
        policy: RetryPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        cache: memo.SingleFlightCache | None = None,
        engine: str = "vector",
    ) -> None:
        self.window_s = window_s
        self.max_batch = max_batch
        self.policy = policy if policy is not None else RetryPolicy(max_attempts=2)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = cache if cache is not None else memo.RESULT_CACHE
        self.engine = engine
        self._waiters: dict[str, asyncio.Future] = {}
        self._pending: list[_BatchItem] = []
        self._flush_handle: asyncio.TimerHandle | None = None
        self._flushes: set[asyncio.Task] = set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-engine"
        )
        self._closed = False

    # -- public API ----------------------------------------------------

    @property
    def depth(self) -> int:
        """Requests admitted but not yet answered (queued + in flight)."""
        return len(self._waiters)

    def _peek(self, key: str) -> tuple[RunResult | None, str | None]:
        """Non-computing lookup: ``(value, provenance)`` on a hit from
        memory or (with a persistent cache) disk, else ``(None, None)``."""
        peek_tiered = getattr(self.cache, "peek_tiered", None)
        if peek_tiered is not None:
            value, source = peek_tiered(key)
            if source is None:
                return None, None
            return value, CACHED if source == "memory" else STORED
        found, value = self.cache.peek(key)
        return (value, CACHED) if found else (None, None)

    async def submit(self, spec: RunSpec) -> tuple[RunResult, str]:
        """Resolve one spec to its result and provenance label."""
        key = spec.content_key()
        value, provenance = self._peek(key)
        if provenance is not None:
            return value, provenance
        ctx = tracing.current()
        future = self._waiters.get(key)
        if future is not None:
            self.cache.record_coalesced()
            wait_start = time.perf_counter()
            value = await asyncio.shield(future)
            if ctx is not None:
                tracing.TRACER.record(
                    "coalesced_wait", wait_start, time.perf_counter(), parent=ctx,
                    attrs={"key": key[:16]},
                )
            return value, COALESCED
        if self._closed:
            raise RuntimeError("batcher is draining; not accepting new work")
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._waiters[key] = future
        self._pending.append(_BatchItem(key, spec, ctx, time.perf_counter()))
        self._schedule_flush(loop)
        return await asyncio.shield(future), COMPUTED

    async def submit_batch(
        self, specs: Sequence[RunSpec]
    ) -> list[tuple[RunResult, str]]:
        """Resolve a bulk plan, bypassing the micro-batching window.

        The ``/v1/batch`` path: study-shaped traffic arrives already
        batched, so waiting ``window_s`` for companions only adds
        latency.  Warm cells are answered from cache/store in place;
        all cold cells are dispatched *immediately* as one engine
        batch (columnar-priced under the vector engine).  Duplicate
        specs — within the batch or against in-flight micro-batch
        work — coalesce onto one computation, exactly like
        :meth:`submit`.
        """
        results: list[tuple[RunResult, str] | None] = [None] * len(specs)
        awaiting: list[tuple[int, asyncio.Future, str]] = []
        cold: list[_BatchItem] = []
        ctx = tracing.current()
        loop = asyncio.get_running_loop()
        now = time.perf_counter()
        for index, spec in enumerate(specs):
            key = spec.content_key()
            value, provenance = self._peek(key)
            if provenance is not None:
                results[index] = (value, provenance)
                continue
            future = self._waiters.get(key)
            if future is not None:
                self.cache.record_coalesced()
                awaiting.append((index, future, COALESCED))
                continue
            if self._closed:
                raise RuntimeError("batcher is draining; not accepting new work")
            future = loop.create_future()
            self._waiters[key] = future
            cold.append(_BatchItem(key, spec, ctx, now))
            awaiting.append((index, future, COMPUTED))
        if cold:
            self.metrics.counter(
                "repro_serve_bulk_batches_total",
                help="Bulk (/v1/batch) engine batches dispatched, "
                "bypassing the micro-batch window.",
            ).inc()
            task = loop.create_task(self._flush(cold))
            self._flushes.add(task)
            task.add_done_callback(self._flushes.discard)
        for index, future, provenance in awaiting:
            results[index] = (await asyncio.shield(future), provenance)
        return results  # type: ignore[return-value]

    async def submit_many(
        self, specs: Iterable[RunSpec]
    ) -> list[tuple[RunResult, str]]:
        """Resolve a whole plan concurrently (the ``/v1/study`` path)."""
        return list(await asyncio.gather(*(self.submit(spec) for spec in specs)))

    async def drain(self) -> None:
        """Stop accepting new work and wait for everything in flight."""
        self._closed = True
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if self._pending:
            self._start_flush(asyncio.get_running_loop())
        while self._flushes or self._waiters:
            futures = list(self._waiters.values())
            tasks = list(self._flushes)
            await asyncio.gather(*futures, *tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)

    # -- batching machinery --------------------------------------------

    def _schedule_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        if len(self._pending) >= self.max_batch:
            if self._flush_handle is not None:
                self._flush_handle.cancel()
                self._flush_handle = None
            self._start_flush(loop)
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(self.window_s, self._on_window, loop)

    def _on_window(self, loop: asyncio.AbstractEventLoop) -> None:
        self._flush_handle = None
        if self._pending:
            self._start_flush(loop)

    def _start_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        batch, self._pending = self._pending, []
        task = loop.create_task(self._flush(batch))
        self._flushes.add(task)
        task.add_done_callback(self._flushes.discard)

    async def _flush(self, batch: list[_BatchItem]) -> None:
        loop = asyncio.get_running_loop()
        self.metrics.counter(
            "repro_serve_batches_total", help="Engine batches dispatched."
        ).inc()
        self.metrics.histogram(
            "repro_serve_batch_size",
            help="Coalesced specs per dispatched engine batch.",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
        ).observe(len(batch))
        dispatched_s = time.perf_counter()
        try:
            rows = await loop.run_in_executor(
                self._executor, self._run_batch, batch, dispatched_s
            )
        except Exception as exc:
            # The dispatch itself failed (e.g. executor torn down): no
            # waiter may be left pending forever.
            rows = [(item.key, None, exc) for item in batch]
        for key, value, exc in rows:
            future = self._waiters.pop(key, None)
            if future is None or future.done():
                continue
            if exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(value)

    def _run_batch(
        self, batch: list[_BatchItem], dispatched_s: float
    ) -> list[tuple[str, RunResult | None, Exception | None]]:
        """Backend thread: run each unique spec through cache + retry.

        With the vector engine, the batch's columnar-eligible cold
        specs are priced first as one whole-batch call; their results
        enter the single-flight cache under the same keys, and any
        spec the columnar path could not serve (ineligible, failed, or
        invalid) falls through to the scalar retry ladder.
        """
        tracer = tracing.TRACER
        if self.engine == "vector":
            precomputed, columnar_window = self._price_columnar(batch)
        else:
            precomputed, columnar_window = {}, None
        rows: list[tuple[str, RunResult | None, Exception | None]] = []
        for item in batch:
            key, spec, ctx = item.key, item.spec, item.ctx
            picked_up_s = time.perf_counter()
            if ctx is not None:
                # Window wait on the loop, then executor-queue wait plus
                # earlier batch members' compute, attributed per item.  A
                # columnar-served item stopped waiting when the shared
                # pricing call began — not when this loop reached it —
                # so its queue_wait must not overlap its engine segment.
                if key in precomputed and columnar_window is not None:
                    waited_until = columnar_window[0]
                else:
                    waited_until = picked_up_s
                tracer.record("batch_wait", item.submitted_s, dispatched_s, parent=ctx)
                tracer.record("queue_wait", dispatched_s, waited_until, parent=ctx)
            try:
                if key in precomputed:
                    value = self.cache.get_or_compute(
                        key, lambda key=key: precomputed[key]
                    )
                    if ctx is not None and columnar_window is not None:
                        tracer.record(
                            "engine", columnar_window[0], columnar_window[1],
                            parent=ctx, attrs={"source": "columnar"},
                        )
                else:
                    engine_span = None
                    if ctx is not None:
                        engine_span = tracer.start_span(
                            "engine", kind="segment", parent=ctx,
                            attrs={"source": "scalar"},
                        )
                    with tracing.use(
                        engine_span.context if engine_span is not None else None
                    ):
                        value = self.cache.get_or_compute(
                            key, lambda spec=spec: self._compute(spec)
                        )
                    if engine_span is not None:
                        tracer.finish_span(engine_span)
                rows.append((key, value, None))
            except Exception as exc:
                rows.append((key, None, exc))
        return rows

    def _price_columnar(
        self, batch: list[_BatchItem]
    ) -> tuple[dict[str, RunResult], tuple[float, float] | None]:
        """Columnar-price the batch's eligible cold specs in one call.

        Best-effort: any failure (capture, pricing, validation) simply
        leaves the affected specs to the scalar fallback — the batcher
        never loses a request to the fast path.  Returns the priced
        results plus the wall window of the columnar call, so each
        served request's trace carries an ``engine`` segment covering
        the shared computation that produced its answer.
        """
        from ..engine.study_vec import price_specs, vector_eligible
        from ..exec.retry import validate_result

        cold = [
            (item.key, item.spec)
            for item in batch
            if vector_eligible(item.spec) and not self.cache.contains(item.key)
        ]
        if not cold:
            return {}, None
        window_start = time.perf_counter()
        try:
            results = price_specs([spec for _key, spec in cold])
        except Exception:
            return {}, None
        window = (window_start, time.perf_counter())
        priced: dict[str, RunResult] = {}
        for (key, _spec), result in zip(cold, results):
            try:
                validate_result(result)
            except Exception:
                continue
            priced[key] = result
        if priced:
            self.metrics.counter(
                "repro_serve_columnar_specs_total",
                help="Cold specs priced by the columnar whole-batch path.",
            ).inc(len(priced))
        return priced, window

    def _compute(self, spec: RunSpec) -> RunResult:
        payload = run_with_retry(spec, self.policy)
        if isinstance(payload, RunError):
            raise BackendRunError(payload)
        self.metrics.counter(
            "repro_serve_engine_runs_total", help="Engine runs computed by the backend."
        ).inc()
        if payload.attempts > 1:
            self.metrics.counter(
                "repro_serve_engine_retries_total",
                help="Backend engine run attempts beyond the first.",
            ).inc(payload.attempts - 1)
        return payload.result
