"""The prediction service: the paper's models as an online system.

Four PRs of batch infrastructure (parallel executor, memo caches,
telemetry, fault tolerance) answer questions like "what speedup does
C++ AMP get for XSBench on the APU?" — but only via a full process
launch.  This package serves the same engine over HTTP with the
serving-stack shape the ROADMAP's north star asks for:

* :mod:`repro.serve.protocol` — versioned JSON request/response
  schemas (``/v1/predict``, ``/v1/study``, ``/v1/batch``,
  health/readiness/metrics).
* :mod:`repro.serve.batcher` — micro-batching with single-flight
  deduplication over the process-global result memo, dispatching to a
  backend thread that runs the exec retry ladder.
* :mod:`repro.serve.server` — stdlib asyncio HTTP/1.1 server with
  bounded admission (429 + ``Retry-After``), per-request deadlines,
  graceful drain, Prometheus instrumentation with trace exemplars,
  per-request span trees (``/v1/debug/traces``), and structured logs
  (``/v1/debug/logs``).
* :mod:`repro.serve.store` — the persistent content-addressed result
  store shared across processes (atomic writes, torn-entry tolerance,
  cross-process single-flight), and the two-tier cache over it.
* :mod:`repro.serve.warmup` — boot-time cache priming, so a restarted
  tier answers its first request warm.
* :mod:`repro.serve.shard` — the horizontally sharded tier: N server
  processes over one store behind a content-hash router
  (``repro serve --shards N``), self-healing via liveness supervision
  (:mod:`repro.serve.supervise`), per-shard circuit breakers with a
  global retry budget (:mod:`repro.serve.breaker`), and degraded local
  pricing while an owner shard is down.
* :mod:`repro.serve.faults` / :mod:`repro.serve.chaos` — the seeded
  serve-layer fault injector (crash/hang/slow/reset/corrupt) and the
  chaos drill (``repro loadtest --chaos``) that holds the tier to its
  self-healing invariants under storm.
* :mod:`repro.serve.loadgen` — closed-/open-loop load generation
  recording the ``BENCH_serve.json`` serving-perf baseline, plus the
  ``--breakdown`` per-segment latency attribution.

Entry points: ``repro serve``, ``repro loadtest``, and
``repro benchdiff`` (the SLO sentinel over the recorded baselines).
"""

from .batcher import BackendRunError, Batcher
from .breaker import BreakerState, CircuitBreaker, RetryBudget
from .chaos import ChaosReport, chaos_bodies, expected_responses, run_chaos_drill
from .faults import ServeChaos, ServeFaultPlan, parse_serve_fault_plan
from .loadgen import (
    LoadResult,
    SegmentStats,
    fetch_json,
    fetch_text,
    percentile,
    render_breakdown,
    render_shard_health,
    retry_after_delay,
    run_load,
    segment_breakdown,
    write_bench,
)
from .protocol import (
    MAX_BATCH_CELLS,
    MAX_STUDY_RUNS,
    PROTOCOL_VERSION,
    BatchRequest,
    LimitExceeded,
    PredictRequest,
    ProtocolError,
    StudyRequest,
    batch_response,
    error_response,
    predict_response,
    study_response,
)
from .server import ServeConfig, Server, ServerThread
from .shard import (
    RouterConfig,
    ShardedTier,
    ShardRouter,
    ShardSupervisor,
    shard_for_key,
)
from .store import PersistentResultCache, ResultStore
from .supervise import ShardHealth, ShardState, SupervisionPolicy
from .warmup import WarmReport, preset_specs, warm_presets

__all__ = [
    "BackendRunError",
    "BatchRequest",
    "Batcher",
    "BreakerState",
    "ChaosReport",
    "CircuitBreaker",
    "LimitExceeded",
    "LoadResult",
    "MAX_BATCH_CELLS",
    "MAX_STUDY_RUNS",
    "PROTOCOL_VERSION",
    "PersistentResultCache",
    "PredictRequest",
    "ProtocolError",
    "ResultStore",
    "RetryBudget",
    "RouterConfig",
    "SegmentStats",
    "ServeChaos",
    "ServeConfig",
    "ServeFaultPlan",
    "Server",
    "ServerThread",
    "ShardHealth",
    "ShardRouter",
    "ShardState",
    "ShardSupervisor",
    "ShardedTier",
    "StudyRequest",
    "SupervisionPolicy",
    "WarmReport",
    "batch_response",
    "chaos_bodies",
    "error_response",
    "expected_responses",
    "fetch_json",
    "fetch_text",
    "parse_serve_fault_plan",
    "percentile",
    "predict_response",
    "preset_specs",
    "render_breakdown",
    "render_shard_health",
    "retry_after_delay",
    "run_chaos_drill",
    "run_load",
    "segment_breakdown",
    "shard_for_key",
    "study_response",
    "warm_presets",
    "write_bench",
]
