"""Boot-time cache warm-up: pre-price the reachable preset lattice.

A freshly started serve process answers its first cold query at
engine speed (milliseconds to seconds); the ROADMAP's north star
wants a tier that restarts *warm*.  Two mechanisms, composed:

* **Load** — seed the in-memory result cache from everything already
  resident in the persistent :class:`~repro.serve.store.ResultStore`
  (one directory scan + unpickle per entry).  After the first boot
  this alone makes a restart serve every previously-seen spec with
  zero cold misses.
* **Pre-price** — enumerate every spec reachable through the
  protocol's *presets* (all apps x their ports x both platforms x
  both precisions x the requested scale presets, no clock overrides)
  and price the ones the store does not hold yet, columnar through
  :func:`repro.engine.study_vec.price_specs` with the scalar retry
  ladder for the few ineligible ports.  This is the first boot's
  warm-up; afterwards the lattice lives on disk.

N shard processes warming the same store split the pricing work
naturally: each missing key is claimed through the store's
cross-process lock, so every spec is priced by exactly one shard;
the rest load the published results afterwards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..apps import ALL_APPS
from ..engine.memo import SingleFlightCache
from ..exec.plan import PLATFORMS, RunSpec
from ..exec.retry import RetryPolicy, run_with_retry, validate_result
from ..hardware.specs import Precision
from .protocol import SCALES, resolve_config
from .store import ResultStore

#: Warm-up modes ``ServeConfig.warm`` may name.
WARM_MODES = ("none", "load", "presets")


@dataclass(frozen=True)
class WarmReport:
    """What one warm-up pass did."""

    total: int  #: presets enumerated (0 for a pure load)
    loaded: int  #: results seeded from store/memory
    priced: int  #: results computed by this process
    deferred: int  #: keys left to a concurrent process's lock
    wall_s: float

    def summary(self) -> str:
        return (
            f"warm-up: {self.loaded} loaded, {self.priced} priced, "
            f"{self.deferred} deferred of {self.total} presets "
            f"in {self.wall_s:.2f} s"
        )


def preset_specs(scales: tuple[str, ...] = ("bench",)) -> list[RunSpec]:
    """The reachable preset lattice, deduplicated, in a stable order.

    Exactly the specs a ``/v1/predict`` or ``/v1/batch`` cell can name
    without clock overrides: every port of every app, every platform
    selector (APU, dGPU, V100), both precisions, for each requested
    scale preset.  The order is append-only across releases *within a
    scale*: new platforms extend the innermost loops, so a store warmed
    by an older build stays a prefix-compatible subset — its keys keep
    hitting, and only the new cells are priced.
    """
    for scale in scales:
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}: expected one of {SCALES}")
    specs: list[RunSpec] = []
    seen: set[str] = set()
    for scale in scales:
        for app in ALL_APPS:
            config = resolve_config(app.name, scale)
            for model in app.ports:
                for platform in PLATFORMS:
                    for precision in Precision:
                        spec = RunSpec(
                            app.name, model, platform, precision, config,
                            projection=True,
                        )
                        key = spec.content_key()
                        if key not in seen:
                            seen.add(key)
                            specs.append(spec)
    return specs


def load_store(cache: SingleFlightCache, store: ResultStore) -> int:
    """Seed the in-memory cache from every entry resident on disk."""
    loaded = 0
    for key in store.keys():
        value = store.get(key)
        if value is not None:
            cache.seed(key, value)
            loaded += 1
    return loaded


def _price(specs: list[RunSpec]) -> dict[str, object]:
    """Price a cold spec list: columnar where eligible, scalar else.

    Best-effort — a spec whose pricing fails is simply left cold (the
    lazy serve path retries it with full error reporting).
    """
    from ..engine.study_vec import price_specs, vector_eligible

    priced: dict[str, object] = {}
    vector = [spec for spec in specs if vector_eligible(spec)]
    scalar = [spec for spec in specs if not vector_eligible(spec)]
    if vector:
        try:
            results = price_specs(vector)
        except Exception:
            scalar = list(specs)  # columnar capture failed: all via ladder
        else:
            for spec, result in zip(vector, results):
                try:
                    validate_result(result)
                except Exception:
                    scalar.append(spec)
                    continue
                priced[spec.content_key()] = result
    policy = RetryPolicy(max_attempts=2)
    for spec in scalar:
        payload = run_with_retry(spec, policy)
        result = getattr(payload, "result", None)
        if result is not None:
            priced[spec.content_key()] = result
    return priced


def warm_presets(
    cache: SingleFlightCache,
    store: ResultStore | None = None,
    scales: tuple[str, ...] = ("bench",),
    wait_s: float = 60.0,
) -> WarmReport:
    """Make the preset lattice warm in ``cache`` (and ``store``).

    Store hits are loaded; misses are priced — each missing key first
    claimed through the store's cross-process lock so concurrent
    shards partition the work.  Keys another process claimed are
    polled for up to ``wait_s`` and seeded as they publish.
    """
    started = time.perf_counter()
    specs = preset_specs(scales)
    missing: list[RunSpec] = []
    loaded = 0
    for spec in specs:
        key = spec.content_key()
        found, _value = cache.peek(key)
        if found:
            loaded += 1
            continue
        if store is not None:
            value = store.get(key)
            if value is not None:
                cache.seed(key, value)
                loaded += 1
                continue
        missing.append(spec)

    ours: list[RunSpec] = []
    deferred: list[RunSpec] = []
    if store is None:
        ours = missing
    else:
        for spec in missing:
            if store._try_lock(spec.content_key()):
                ours.append(spec)
            else:
                deferred.append(spec)
    priced = 0
    try:
        results = _price(ours)
        for spec in ours:
            key = spec.content_key()
            result = results.get(key)
            if result is None:
                continue
            cache.seed(key, result)
            if store is not None:
                store.put(key, result, label=spec.label)
            priced += 1
    finally:
        if store is not None:
            for spec in ours:
                store._unlock(spec.content_key())

    # Poll for the results concurrent warmers claimed.
    still_deferred = 0
    if deferred and store is not None:
        deadline = time.monotonic() + wait_s
        pending = {spec.content_key() for spec in deferred}
        while pending and time.monotonic() < deadline:
            for key in list(pending):
                value = store.get(key)
                if value is not None:
                    cache.seed(key, value)
                    loaded += 1
                    pending.discard(key)
            if pending:
                time.sleep(0.02)
        still_deferred = len(pending)

    return WarmReport(
        total=len(specs),
        loaded=loaded,
        priced=priced,
        deferred=still_deferred,
        wall_s=time.perf_counter() - started,
    )
