"""Versioned JSON request/response schemas of the prediction service.

The wire protocol is deliberately tiny and stdlib-JSON only.  Version
``v1`` has two prediction routes plus the operational endpoints:

* ``POST /v1/predict`` — one cell of the paper's matrices: an app, a
  programming model, a platform, a precision, and optional GPU clock
  overrides (the Figure 7/8 query shape).  The response carries the
  simulated times, the speedup over the 4-core OpenMP baseline, and
  per-run cache provenance.
* ``POST /v1/study`` — a small spec matrix (apps x models x platforms
  x precisions), answered with the same flat records ``repro study
  --out`` exports.
* ``GET /healthz`` / ``GET /readyz`` / ``GET /metrics`` — liveness,
  readiness (503 while draining), and Prometheus text exposition via
  :mod:`repro.obs.metrics` (latency buckets carry OpenMetrics trace
  exemplars).
* ``GET /v1/debug/traces`` — summaries of the retained request traces
  (tail-biased: recent, slowest, and errored), newest first; each row
  links to ``GET /v1/debug/traces/<trace_id>``, which returns the full
  span tree (``?format=chrome`` exports Chrome trace_event JSON).
* ``GET /v1/debug/logs`` — the most recent structured log records
  from the in-process ring.

Requests parse into frozen dataclasses that validate eagerly and
translate themselves into the *same* :class:`~repro.exec.plan.RunSpec`
descriptors the batch CLI builds, which is what makes HTTP responses
bit-identical to direct :func:`~repro.core.study.run_study` output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..apps import APPS_BY_NAME, PROXY_APPS
from ..core.configs import bench_configs, sweep_configs
from ..core.metrics import speedup
from ..core.study import BASELINE_MODEL, GPU_MODELS
from ..exec.plan import APU, DGPU, RunSpec, study_runs
from ..hardware.specs import Precision

PROTOCOL_VERSION = "v1"

#: Problem-scale presets a request may name.
SCALES = ("bench", "paper", "sweep")

#: Upper bound on the run matrix one ``/v1/study`` request may expand
#: to — admission control for a single request's cost.
MAX_STUDY_RUNS = 64


class ProtocolError(ValueError):
    """A malformed or out-of-range request (an HTTP 400)."""


def _require(doc: Mapping, field: str, default: object = None) -> object:
    value = doc.get(field, default)
    if value is None:
        raise ProtocolError(f"missing required field {field!r}")
    return value


def _parse_app(name: object) -> str:
    if not isinstance(name, str):
        raise ProtocolError(f"field 'app' must be a string, got {type(name).__name__}")
    for known in APPS_BY_NAME:
        if known.lower() == name.lower():
            return known
    raise ProtocolError(
        f"unknown app {name!r}: known apps are {', '.join(sorted(APPS_BY_NAME))}"
    )


def _parse_model(app: str, name: object) -> str:
    if not isinstance(name, str):
        raise ProtocolError(f"field 'model' must be a string, got {type(name).__name__}")
    ports = APPS_BY_NAME[app].ports
    for known in ports:
        if known.lower() == name.lower():
            return known
    raise ProtocolError(
        f"{app} has no {name!r} port: known models are {', '.join(sorted(ports))}"
    )


def _parse_platform(value: object) -> str:
    if isinstance(value, str) and value.lower() in (APU, DGPU):
        return value.lower()
    raise ProtocolError(f"field 'platform' must be {APU!r} or {DGPU!r}, got {value!r}")


def _parse_precision(value: object) -> Precision:
    if isinstance(value, str):
        for precision in Precision:
            if precision.value == value.lower():
                return precision
    raise ProtocolError(
        f"field 'precision' must be one of "
        f"{', '.join(repr(p.value) for p in Precision)}, got {value!r}"
    )


def _parse_scale(value: object) -> str:
    if isinstance(value, str) and value.lower() in SCALES:
        return value.lower()
    raise ProtocolError(
        f"field 'scale' must be one of {', '.join(map(repr, SCALES))}, got {value!r}"
    )


def _parse_clock(doc: Mapping, field: str) -> float | None:
    value = doc.get(field)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
        raise ProtocolError(f"field {field!r} must be a positive frequency in MHz")
    return float(value)


def resolve_config(app: str, scale: str) -> object:
    """The problem configuration a scale preset names for one app."""
    if scale == "bench":
        return bench_configs()[app]
    if scale == "sweep":
        return sweep_configs()[app]
    return APPS_BY_NAME[app].paper_config()


@dataclass(frozen=True)
class PredictRequest:
    """One prediction query: a single cell of the paper's matrices."""

    app: str
    model: str
    platform: str
    precision: Precision
    scale: str = "bench"
    core_mhz: float | None = None
    memory_mhz: float | None = None

    @classmethod
    def from_json(cls, doc: object) -> "PredictRequest":
        if not isinstance(doc, Mapping):
            raise ProtocolError("request body must be a JSON object")
        app = _parse_app(_require(doc, "app"))
        return cls(
            app=app,
            model=_parse_model(app, _require(doc, "model")),
            platform=_parse_platform(_require(doc, "platform")),
            precision=_parse_precision(_require(doc, "precision")),
            scale=_parse_scale(doc.get("scale", "bench")),
            core_mhz=_parse_clock(doc, "core_mhz"),
            memory_mhz=_parse_clock(doc, "memory_mhz"),
        )

    def to_json(self) -> dict:
        return {
            "app": self.app,
            "model": self.model,
            "platform": self.platform,
            "precision": self.precision.value,
            "scale": self.scale,
            "core_mhz": self.core_mhz,
            "memory_mhz": self.memory_mhz,
        }

    def specs(self) -> tuple[RunSpec, RunSpec]:
        """The ``(baseline, model)`` descriptors answering this query.

        Both are built exactly as :func:`~repro.exec.plan.study_runs`
        builds them — same config resolution, projection mode, and no
        clock overrides on the OpenMP baseline — so the response's
        numbers content-address to the same cached runs the batch
        pipeline computes.
        """
        config = resolve_config(self.app, self.scale)
        baseline = RunSpec(
            self.app, BASELINE_MODEL, self.platform, self.precision, config,
            projection=True,
        )
        model = RunSpec(
            self.app, self.model, self.platform, self.precision, config,
            projection=True, core_mhz=self.core_mhz, memory_mhz=self.memory_mhz,
        )
        return baseline, model


@dataclass(frozen=True)
class StudyRequest:
    """A small spec matrix: the ``/v1/study`` request body."""

    apps: tuple[str, ...]
    models: tuple[str, ...]
    platforms: tuple[str, ...]
    precisions: tuple[Precision, ...]
    scale: str = "bench"

    @classmethod
    def from_json(cls, doc: object) -> "StudyRequest":
        if not isinstance(doc, Mapping):
            raise ProtocolError("request body must be a JSON object")

        def listed(field: str, default: Sequence[object]) -> tuple[object, ...]:
            value = doc.get(field, list(default))
            if isinstance(value, str) or not isinstance(value, Sequence) or not value:
                raise ProtocolError(f"field {field!r} must be a non-empty array")
            return tuple(value)

        # Defaulting to the paper's four proxy apps (not every known
        # app) keeps the default matrix exactly at the run cap.
        apps = tuple(
            _parse_app(name)
            for name in listed("apps", [app.name for app in PROXY_APPS])
        )
        models = tuple(
            _parse_model(apps[0], name) for name in listed("models", GPU_MODELS)
        )
        for app in apps:
            for model in models:
                _parse_model(app, model)
        request = cls(
            apps=apps,
            models=models,
            platforms=tuple(
                _parse_platform(p) for p in listed("platforms", (APU, DGPU))
            ),
            precisions=tuple(
                _parse_precision(p)
                for p in listed("precisions", [p.value for p in Precision])
            ),
            scale=_parse_scale(doc.get("scale", "bench")),
        )
        n_runs = len(request.runs())
        if n_runs > MAX_STUDY_RUNS:
            raise ProtocolError(
                f"study matrix expands to {n_runs} runs, over the per-request "
                f"limit of {MAX_STUDY_RUNS}; split the request"
            )
        return request

    def to_json(self) -> dict:
        return {
            "apps": list(self.apps),
            "models": list(self.models),
            "platforms": list(self.platforms),
            "precisions": [p.value for p in self.precisions],
            "scale": self.scale,
        }

    @property
    def compared_models(self) -> tuple[str, ...]:
        """The requested models minus the baseline (it is always run)."""
        return tuple(m for m in self.models if m != BASELINE_MODEL)

    def runs(self) -> list[RunSpec]:
        """The flattened matrix, in ``study_runs``'s canonical order."""
        return study_runs(
            app_names=list(self.apps),
            configs={app: resolve_config(app, self.scale) for app in self.apps},
            apu_values=[platform == APU for platform in self.platforms],
            precisions=self.precisions,
            models=list(self.compared_models),
            baseline=BASELINE_MODEL,
            projection=True,
        )


def predict_response(
    request: PredictRequest,
    baseline_seconds: float,
    model_result,
    provenance: Mapping[str, str],
    key: str,
) -> dict:
    """The ``/v1/predict`` response document."""
    return {
        "version": PROTOCOL_VERSION,
        "request": request.to_json(),
        "seconds": model_result.seconds,
        "kernel_seconds": model_result.kernel_seconds,
        "baseline_seconds": baseline_seconds,
        "speedup": speedup(baseline_seconds, model_result.seconds),
        "kernel_speedup": speedup(baseline_seconds, model_result.kernel_seconds),
        "provenance": dict(provenance),
        "key": key,
    }


def study_response(request: StudyRequest, entries: list[dict], served: dict) -> dict:
    """The ``/v1/study`` response document."""
    return {
        "version": PROTOCOL_VERSION,
        "request": request.to_json(),
        "entries": entries,
        "served": served,
    }


def error_response(status: int, message: str) -> dict:
    return {
        "version": PROTOCOL_VERSION,
        "error": {"status": status, "message": message},
    }
