"""Versioned JSON request/response schemas of the prediction service.

The wire protocol is deliberately tiny and stdlib-JSON only.  Version
``v1`` has two prediction routes plus the operational endpoints:

* ``POST /v1/predict`` — one cell of the paper's matrices: an app, a
  programming model, a platform, a precision, and optional GPU clock
  overrides (the Figure 7/8 query shape).  The response carries the
  simulated times, the speedup over the 4-core OpenMP baseline, and
  per-run cache provenance.
* ``POST /v1/study`` — a small spec matrix (apps x models x platforms
  x precisions), answered with the same flat records ``repro study
  --out`` exports.
* ``GET /healthz`` / ``GET /readyz`` / ``GET /metrics`` — liveness,
  readiness (503 while draining), and Prometheus text exposition via
  :mod:`repro.obs.metrics` (latency buckets carry OpenMetrics trace
  exemplars).
* ``GET /v1/debug/traces`` — summaries of the retained request traces
  (tail-biased: recent, slowest, and errored), newest first; each row
  links to ``GET /v1/debug/traces/<trace_id>``, which returns the full
  span tree (``?format=chrome`` exports Chrome trace_event JSON).
* ``GET /v1/debug/logs`` — the most recent structured log records
  from the in-process ring.

Requests parse into frozen dataclasses that validate eagerly and
translate themselves into the *same* :class:`~repro.exec.plan.RunSpec`
descriptors the batch CLI builds, which is what makes HTTP responses
bit-identical to direct :func:`~repro.core.study.run_study` output.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping, Sequence

from ..apps import APPS_BY_NAME, PROXY_APPS
from ..core.configs import bench_configs, sweep_configs
from ..core.metrics import speedup
from ..core.study import BASELINE_MODEL, GPU_MODELS
from ..exec.plan import APU, DGPU, PLATFORMS, RunSpec, study_runs
from ..hardware.specs import Precision
from ..models.registry import normalize_model_name

PROTOCOL_VERSION = "v1"

#: Problem-scale presets a request may name.
SCALES = ("bench", "paper", "sweep")

#: Default upper bound on the run matrix one ``/v1/study`` request may
#: expand to — admission control for a single request's cost.  The
#: effective limit is configurable (``ServeConfig.max_study_runs`` /
#: the ``REPRO_SERVE_MAX_STUDY_RUNS`` environment variable).
MAX_STUDY_RUNS = 64

#: Default upper bound on cells per ``/v1/batch`` request.  Bulk
#: traffic is the endpoint's point, so the default is far above the
#: study cap; ``ServeConfig.max_batch_cells`` /
#: ``REPRO_SERVE_MAX_BATCH_CELLS`` override it.
MAX_BATCH_CELLS = 512


def _env_limit(name: str, default: int) -> int:
    """A positive-integer limit from the environment, else ``default``."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def max_study_runs() -> int:
    """The effective ``/v1/study`` run cap for this process."""
    return _env_limit("REPRO_SERVE_MAX_STUDY_RUNS", MAX_STUDY_RUNS)


def max_batch_cells() -> int:
    """The effective ``/v1/batch`` cell cap for this process."""
    return _env_limit("REPRO_SERVE_MAX_BATCH_CELLS", MAX_BATCH_CELLS)


class ProtocolError(ValueError):
    """A malformed or out-of-range request (an HTTP 400)."""


class LimitExceeded(ProtocolError):
    """A well-formed request over a configured size cap (an HTTP 413).

    Distinct from :class:`ProtocolError` so the server can answer with
    a payload-too-large status and a structured error naming both the
    actual size and the limit — the client's cue to split the request,
    not to fix it.
    """

    def __init__(self, what: str, actual: int, limit: int) -> None:
        super().__init__(
            f"{what} expands to {actual} runs, over the per-request limit "
            f"of {limit}; split the request"
        )
        self.actual = actual
        self.limit = limit


def _require(doc: Mapping, field: str, default: object = None) -> object:
    value = doc.get(field, default)
    if value is None:
        raise ProtocolError(f"missing required field {field!r}")
    return value


# The parse helpers sit on the bulk endpoint's per-cell hot path, so
# the case-insensitive table scans are memoized.  Each memo is guarded
# by an isinstance check *outside* the cached function: lru_cache would
# raise TypeError on unhashable junk (a list where a string belongs)
# before the lookup ran, and the client must see a ProtocolError.


@lru_cache(maxsize=None)
def _lookup_app(name: str) -> str | None:
    for known in APPS_BY_NAME:
        if known.lower() == name.lower():
            return known
    return None


def _parse_app(name: object) -> str:
    if not isinstance(name, str):
        raise ProtocolError(f"field 'app' must be a string, got {type(name).__name__}")
    known = _lookup_app(name)
    if known is None:
        raise ProtocolError(
            f"unknown app {name!r}: known apps are {', '.join(sorted(APPS_BY_NAME))}"
        )
    return known


@lru_cache(maxsize=None)
def _lookup_model(app: str, name: str) -> str | None:
    name = normalize_model_name(name)
    for known in APPS_BY_NAME[app].ports:
        if known.lower() == name.lower():
            return known
    return None


def _parse_model(app: str, name: object) -> str:
    if not isinstance(name, str):
        raise ProtocolError(f"field 'model' must be a string, got {type(name).__name__}")
    known = _lookup_model(app, name)
    if known is None:
        ports = APPS_BY_NAME[app].ports
        raise ProtocolError(
            f"{app} has no {name!r} port: known models are {', '.join(sorted(ports))}"
        )
    return known


def _parse_platform(value: object) -> str:
    if isinstance(value, str) and value.lower() in PLATFORMS:
        return value.lower()
    raise ProtocolError(
        f"field 'platform' must be one of {', '.join(map(repr, PLATFORMS))}, got {value!r}"
    )


@lru_cache(maxsize=None)
def _lookup_precision(value: str) -> Precision | None:
    for precision in Precision:
        if precision.value == value.lower():
            return precision
    return None


def _parse_precision(value: object) -> Precision:
    if isinstance(value, str):
        precision = _lookup_precision(value)
        if precision is not None:
            return precision
    raise ProtocolError(
        f"field 'precision' must be one of "
        f"{', '.join(repr(p.value) for p in Precision)}, got {value!r}"
    )


def _parse_scale(value: object) -> str:
    if isinstance(value, str) and value.lower() in SCALES:
        return value.lower()
    raise ProtocolError(
        f"field 'scale' must be one of {', '.join(map(repr, SCALES))}, got {value!r}"
    )


def _parse_clock(doc: Mapping, field: str) -> float | None:
    value = doc.get(field)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
        raise ProtocolError(f"field {field!r} must be a positive frequency in MHz")
    return float(value)


@lru_cache(maxsize=None)
def resolve_config(app: str, scale: str) -> object:
    """The problem configuration a scale preset names for one app.

    Memoized: the configs are frozen value objects, and rebuilding the
    preset table per request cell was the serving hot path's single
    largest cost (the bulk endpoint resolves one config per cell).
    """
    if scale == "bench":
        return bench_configs()[app]
    if scale == "sweep":
        return sweep_configs()[app]
    return APPS_BY_NAME[app].paper_config()


@lru_cache(maxsize=16384)
def _interned_spec(
    app: str,
    model: str,
    platform: str,
    precision: Precision,
    scale: str,
    core_mhz: float | None,
    memory_mhz: float | None,
) -> RunSpec:
    """One shared :class:`RunSpec` per distinct (validated) cell.

    Request cells repeat heavily in steady-state serving; interning
    the descriptor skips re-validation *and* lets the instance-level
    ``content_key`` memo hit across requests, collapsing the per-cell
    routing/caching key to a dict lookup.  Safe to share: the spec and
    its config are frozen, and every field here has already been
    validated by the parse layer.
    """
    return RunSpec(
        app, model, platform, precision, resolve_config(app, scale),
        projection=True, core_mhz=core_mhz, memory_mhz=memory_mhz,
    )


@dataclass(frozen=True)
class PredictRequest:
    """One prediction query: a single cell of the paper's matrices."""

    app: str
    model: str
    platform: str
    precision: Precision
    scale: str = "bench"
    core_mhz: float | None = None
    memory_mhz: float | None = None

    @classmethod
    def from_json(cls, doc: object) -> "PredictRequest":
        if not isinstance(doc, Mapping):
            raise ProtocolError("request body must be a JSON object")
        app = _parse_app(_require(doc, "app"))
        return cls(
            app=app,
            model=_parse_model(app, _require(doc, "model")),
            platform=_parse_platform(_require(doc, "platform")),
            precision=_parse_precision(_require(doc, "precision")),
            scale=_parse_scale(doc.get("scale", "bench")),
            core_mhz=_parse_clock(doc, "core_mhz"),
            memory_mhz=_parse_clock(doc, "memory_mhz"),
        )

    def to_json(self) -> dict:
        return {
            "app": self.app,
            "model": self.model,
            "platform": self.platform,
            "precision": self.precision.value,
            "scale": self.scale,
            "core_mhz": self.core_mhz,
            "memory_mhz": self.memory_mhz,
        }

    def specs(self) -> tuple[RunSpec, RunSpec]:
        """The ``(baseline, model)`` descriptors answering this query.

        Both are built exactly as :func:`~repro.exec.plan.study_runs`
        builds them — same config resolution, projection mode, and no
        clock overrides on the OpenMP baseline — so the response's
        numbers content-address to the same cached runs the batch
        pipeline computes.
        """
        baseline = _interned_spec(
            self.app, BASELINE_MODEL, self.platform, self.precision,
            self.scale, None, None,
        )
        return baseline, self.spec()

    def spec(self) -> RunSpec:
        """Just the queried cell's descriptor (no baseline) — the unit
        ``/v1/batch`` prices.  Interned across requests: routing,
        pricing, and the response echo all need it."""
        return _interned_spec(
            self.app, self.model, self.platform, self.precision,
            self.scale, self.core_mhz, self.memory_mhz,
        )


@dataclass(frozen=True)
class StudyRequest:
    """A small spec matrix: the ``/v1/study`` request body."""

    apps: tuple[str, ...]
    models: tuple[str, ...]
    platforms: tuple[str, ...]
    precisions: tuple[Precision, ...]
    scale: str = "bench"

    @classmethod
    def from_json(cls, doc: object, max_runs: int | None = None) -> "StudyRequest":
        if not isinstance(doc, Mapping):
            raise ProtocolError("request body must be a JSON object")

        def listed(field: str, default: Sequence[object]) -> tuple[object, ...]:
            value = doc.get(field, list(default))
            if isinstance(value, str) or not isinstance(value, Sequence) or not value:
                raise ProtocolError(f"field {field!r} must be a non-empty array")
            return tuple(value)

        # Defaulting to the paper's four proxy apps (not every known
        # app) keeps the default matrix exactly at the run cap.
        apps = tuple(
            _parse_app(name)
            for name in listed("apps", [app.name for app in PROXY_APPS])
        )
        models = tuple(
            _parse_model(apps[0], name) for name in listed("models", GPU_MODELS)
        )
        for app in apps:
            for model in models:
                _parse_model(app, model)
        request = cls(
            apps=apps,
            models=models,
            platforms=tuple(
                _parse_platform(p) for p in listed("platforms", (APU, DGPU))
            ),
            precisions=tuple(
                _parse_precision(p)
                for p in listed("precisions", [p.value for p in Precision])
            ),
            scale=_parse_scale(doc.get("scale", "bench")),
        )
        limit = max_runs if max_runs is not None else max_study_runs()
        n_runs = len(request.runs())
        if n_runs > limit:
            raise LimitExceeded("study matrix", n_runs, limit)
        return request

    def to_json(self) -> dict:
        return {
            "apps": list(self.apps),
            "models": list(self.models),
            "platforms": list(self.platforms),
            "precisions": [p.value for p in self.precisions],
            "scale": self.scale,
        }

    @property
    def compared_models(self) -> tuple[str, ...]:
        """The requested models minus the baseline (it is always run)."""
        return tuple(m for m in self.models if m != BASELINE_MODEL)

    def runs(self) -> list[RunSpec]:
        """The flattened matrix, in ``study_runs``'s canonical order."""
        return study_runs(
            app_names=list(self.apps),
            configs={app: resolve_config(app, self.scale) for app in self.apps},
            apu_values=None,
            precisions=self.precisions,
            models=list(self.compared_models),
            baseline=BASELINE_MODEL,
            projection=True,
            platforms=list(self.platforms),
        )


@dataclass(frozen=True)
class BatchRequest:
    """A flat list of cells to price: the ``/v1/batch`` request body.

    The bulk endpoint for study-shaped traffic.  Each cell carries the
    same fields as a ``/v1/predict`` request, but the response prices
    exactly the listed cells — no implicit baseline runs, no
    speedups — so a client (or the shard router fanning out a
    ``/v1/study``) controls precisely which specs are computed where.
    Cells skip the micro-batching window and go straight to columnar
    pricing.
    """

    cells: tuple[PredictRequest, ...]

    @classmethod
    def from_json(cls, doc: object, max_cells: int | None = None) -> "BatchRequest":
        if not isinstance(doc, Mapping):
            raise ProtocolError("request body must be a JSON object")
        raw = doc.get("cells")
        if isinstance(raw, str) or not isinstance(raw, Sequence) or not raw:
            raise ProtocolError("field 'cells' must be a non-empty array")
        limit = max_cells if max_cells is not None else max_batch_cells()
        if len(raw) > limit:
            raise LimitExceeded("cell list", len(raw), limit)
        cells = []
        for index, item in enumerate(raw):
            try:
                cells.append(PredictRequest.from_json(item))
            except LimitExceeded:
                raise
            except ProtocolError as exc:
                raise ProtocolError(f"cells[{index}]: {exc}") from exc
        return cls(cells=tuple(cells))

    def to_json(self) -> dict:
        return {"cells": [cell.to_json() for cell in self.cells]}

    def specs(self) -> list[RunSpec]:
        """One descriptor per cell, in request order."""
        return [cell.spec() for cell in self.cells]


def predict_response(
    request: PredictRequest,
    baseline_seconds: float,
    model_result,
    provenance: Mapping[str, str],
    key: str,
) -> dict:
    """The ``/v1/predict`` response document."""
    return {
        "version": PROTOCOL_VERSION,
        "request": request.to_json(),
        "seconds": model_result.seconds,
        "kernel_seconds": model_result.kernel_seconds,
        "baseline_seconds": baseline_seconds,
        "speedup": speedup(baseline_seconds, model_result.seconds),
        "kernel_speedup": speedup(baseline_seconds, model_result.kernel_seconds),
        # getattr: results can come off disk from a store written
        # before the energy model existed.
        "joules": getattr(model_result, "joules", 0.0),
        "edp": getattr(model_result, "joules", 0.0) * model_result.seconds,
        "provenance": dict(provenance),
        "key": key,
    }


def study_response(request: StudyRequest, entries: list[dict], served: dict) -> dict:
    """The ``/v1/study`` response document."""
    return {
        "version": PROTOCOL_VERSION,
        "request": request.to_json(),
        "entries": entries,
        "served": served,
    }


def batch_response(request: BatchRequest, priced: Sequence[tuple]) -> dict:
    """The ``/v1/batch`` response document.

    ``priced`` pairs each cell's :class:`~repro.apps.base.RunResult`
    with its provenance label, in request order.  Results echo the
    cell plus the raw prices and the content key — enough for a caller
    to join answers back to cells and to compute any derived metric
    (the shard router derives study speedups this way, bit-identically
    to ``run_study``).
    """
    results = []
    for cell, (result, provenance) in zip(request.cells, priced):
        doc = cell.to_json()
        doc.update({
            "seconds": result.seconds,
            "kernel_seconds": result.kernel_seconds,
            "joules": getattr(result, "joules", 0.0),
            "edp": getattr(result, "joules", 0.0) * result.seconds,
            "key": cell.spec().content_key()[:16],
            "provenance": provenance,
        })
        results.append(doc)
    tally: dict[str, int] = {}
    for _result, provenance in priced:
        tally[provenance] = tally.get(provenance, 0) + 1
    return {
        "version": PROTOCOL_VERSION,
        "count": len(results),
        "results": results,
        "served": tally,
    }


def error_response(status: int, message: str) -> dict:
    return {
        "version": PROTOCOL_VERSION,
        "error": {"status": status, "message": message},
    }
