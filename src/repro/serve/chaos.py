"""Serve-layer chaos drill: seeded faults under sustained load.

``repro loadtest --chaos`` (and the CI chaos-serve smoke) run this
harness: stand up a sharded tier with a seeded
:class:`~repro.serve.faults.ServeFaultPlan` armed via the environment
(so *respawned* shards re-arm and crash loops are reachable), drive
sustained load while a checker replays known cells, then stand the
storm down and hold the tier to the self-healing invariants:

* **Zero wrong answers** — every completed (200) response during the
  storm is bit-identical to the locally computed expectation; failures
  may only surface as 5xx/429, never as silently wrong numbers.
* **Bounded error rate** — degraded routing (local pricing behind the
  breakers) keeps the completed fraction high even while shards die.
* **Convergence** — after the faults stop, every shard returns to
  ``serving`` with a closed breaker within ``settle_timeout_s``, and a
  final whole-mix ``/v1/batch`` is answered warm (zero cold misses —
  everything the storm priced survived in the shared store) and
  bit-identical.
* **Recovery actually happened** — the drill fails if the storm was
  too gentle to force at least one automatic respawn and one breaker
  cycle; a chaos test that cannot distinguish a supervisor from a
  no-op is not a test.

Everything is deterministic per ``(plan, seed)``: the fault schedule
is content-hashed per request ordinal, the respawn backoff is the
deterministic exec-ladder curve, and the expectations come from the
same pure pricing functions the shards run.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..exec.faults import RunError
from ..exec.retry import RetryPolicy, run_with_retry
from ..obs import logging as obs_logging
from . import protocol
from .faults import ENV_SERVE_FAULTS, ENV_SERVE_SEED
from .loadgen import LoadResult, fetch_json, fetch_text, post_json, run_load
from .server import ServeConfig
from .shard import RouterConfig, ShardedTier
from .supervise import SupervisionPolicy

#: The default storm: every fault kind at rates that a few seconds of
#: closed-loop load reliably turns into at least one shard death, one
#: breaker cycle, a few resets/slowdowns, and a store corruption.
DEFAULT_CHAOS_PLAN = (
    "crash:0.004,hang:0.0004,slow:0.01,reset:0.01,corrupt:0.005,slow_s:0.02"
)
DEFAULT_CHAOS_SEED = 7

#: Supervision tuned for drill timescales: sub-second detection and
#: respawn, quarantine reachable within one storm, short probation.
DRILL_POLICY = SupervisionPolicy(
    probe_interval_s=0.25,
    probe_timeout_s=1.0,
    probe_failures=2,
    backoff_base_s=0.05,
    backoff_factor=2.0,
    backoff_cap_s=0.5,
    quarantine_after=4,
    quarantine_window_s=8.0,
    quarantine_cooldown_s=2.0,
)

#: Router tuned likewise: fail over to degraded pricing in ~2 s, try
#: a recovering shard again after 1 s.
DRILL_ROUTER = RouterConfig(deadline_s=2.0, breaker_reset_s=1.0)

#: Response fields that must match the local expectation bit for bit.
_PREDICT_FIELDS = (
    "seconds", "kernel_seconds", "baseline_seconds",
    "speedup", "kernel_speedup", "key",
)


def chaos_bodies(app: str = "XSBench", scale: str = "bench") -> list[dict]:
    """The drill's query mix: one app's full model/platform/precision
    lattice (12 cells), small enough to check exhaustively."""
    from ..core.study import GPU_MODELS

    return [
        {"app": app, "model": model, "platform": platform,
         "precision": precision, "scale": scale}
        for model in GPU_MODELS
        for platform in ("apu", "dgpu")
        for precision in ("single", "double")
    ]


def expected_responses(bodies: list[dict]) -> list[dict]:
    """Price every body locally — the bit-identity oracle.

    Runs the same retry ladder a shard's backend runs; results are
    pure functions of the spec, so these dicts are exactly what every
    200 ``/v1/predict`` answer must contain.
    """
    results: dict[str, object] = {}

    def price(spec) -> object:
        key = spec.content_key()
        if key not in results:
            outcome = run_with_retry(spec, RetryPolicy(max_attempts=3))
            if isinstance(outcome, RunError):
                raise RuntimeError(
                    f"chaos oracle failed to price {spec.label}: "
                    f"{outcome.message}"
                )
            results[key] = outcome.result
        return results[key]

    expected = []
    for body in bodies:
        request = protocol.PredictRequest.from_json(body)
        baseline_spec, model_spec = request.specs()
        baseline, model = price(baseline_spec), price(model_spec)
        expected.append(protocol.predict_response(
            request,
            baseline_seconds=baseline.seconds,
            model_result=model,
            provenance={},
            key=model_spec.content_key()[:16],
        ))
    return expected


def _metric_total(text: str, name: str, label_filter: str = "") -> float:
    """Sum one counter/gauge family from a Prometheus exposition."""
    total = 0.0
    for line in text.splitlines():
        if not line.startswith(name):
            continue
        rest = line[len(name):]
        if rest[:1] not in ("{", " "):
            continue
        if label_filter and label_filter not in line:
            continue
        try:
            total += float(line.rsplit(None, 1)[1])
        except (ValueError, IndexError):
            continue
    return total


@dataclass
class ChaosReport:
    """Everything one chaos drill measured, plus its verdict."""

    plan: str
    seed: int
    shards: int
    store: str
    max_error_rate: float
    load: LoadResult
    checked: int = 0
    mismatches: int = 0
    checker_requests: int = 0
    status_counts: dict[str, int] = field(default_factory=dict)
    respawns: float = 0.0
    quarantines: float = 0.0
    breaker_opens: float = 0.0
    degraded: float = 0.0
    rehomed: float = 0.0
    converged: bool = False
    settle_s: float = 0.0
    final_checked: int = 0
    final_mismatches: int = 0
    cold_misses: int = -1
    mismatch_samples: list[dict] = field(default_factory=list)

    @property
    def requests(self) -> int:
        return self.load.requests + self.checker_requests

    @property
    def errors(self) -> int:
        """Transport failures plus non-2xx responses, across the load
        generator and the checker."""
        non_2xx = sum(
            count for status, count in self.status_counts.items()
            if not status.startswith("2")
        )
        return self.load.errors + non_2xx

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    @property
    def disallowed(self) -> int:
        """Responses outside the failure contract (4xx other than 429)."""
        return sum(
            count for status, count in self.status_counts.items()
            if status.startswith("4") and status != "429"
        )

    def failures(self) -> list[str]:
        """The violated invariants (empty means the drill passed)."""
        problems = []
        if self.mismatches:
            problems.append(
                f"{self.mismatches} storm responses differed from the "
                "local expectation (wrong answers)"
            )
        if self.final_mismatches:
            problems.append(
                f"{self.final_mismatches} post-recovery cells differed "
                "from the local expectation"
            )
        if self.disallowed:
            problems.append(
                f"{self.disallowed} responses outside the 5xx/429 "
                "failure contract"
            )
        if self.error_rate > self.max_error_rate:
            problems.append(
                f"error rate {self.error_rate:.4f} exceeds "
                f"{self.max_error_rate:.4f}"
            )
        if not self.converged:
            problems.append(
                "tier did not converge to all-shards-serving with "
                "closed breakers"
            )
        if self.cold_misses != 0:
            problems.append(
                f"post-recovery sweep had {self.cold_misses} cold misses "
                "(expected 0: the store survived the storm)"
            )
        if self.respawns < 1:
            problems.append("storm forced no automatic respawn")
        if self.breaker_opens < 1:
            problems.append("storm opened no circuit breaker")
        return problems

    @property
    def ok(self) -> bool:
        return not self.failures()

    def row(self) -> dict:
        """The ``chaos`` row of ``BENCH_serve.json``."""
        return {
            "plan": self.plan,
            "seed": self.seed,
            "shards": self.shards,
            "requests": self.requests,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 5),
            "throughput_rps": self.load.throughput_rps,
            "checked": self.checked,
            "mismatches": self.mismatches,
            "respawns": self.respawns,
            "quarantines": self.quarantines,
            "breaker_opens": self.breaker_opens,
            "degraded": self.degraded,
            "rehomed": self.rehomed,
            "converged": 1 if self.converged else 0,
            "settle_s": round(self.settle_s, 3),
            "cold_misses": self.cold_misses,
            "final_mismatches": self.final_mismatches,
        }

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL: " + "; ".join(self.failures())
        return "\n".join([
            f"chaos plan: {self.plan} (seed {self.seed}, "
            f"{self.shards} shards)",
            f"storm: {self.requests} requests, {self.errors} errors "
            f"({self.error_rate:.2%}), {self.checked} checked, "
            f"{self.mismatches} mismatches",
            f"recovery: {self.respawns:g} respawns, "
            f"{self.quarantines:g} quarantines, "
            f"{self.breaker_opens:g} breaker opens, "
            f"{self.degraded:g} degraded serves, "
            f"{self.rehomed:g} re-homes",
            f"convergence: {'yes' if self.converged else 'NO'} in "
            f"{self.settle_s:.2f} s; final sweep {self.final_checked} "
            f"cells, {self.cold_misses} cold misses, "
            f"{self.final_mismatches} mismatches",
            verdict,
        ])


def merge_chaos_row(target: str | Path, row: dict) -> None:
    """Attach the drill's row to an existing serving bench document."""
    path = Path(target)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        doc = {}
    if not isinstance(doc, dict):
        doc = {}
    doc["chaos"] = row
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _matches(doc: dict, expected: dict) -> bool:
    return all(doc.get(name) == expected[name] for name in _PREDICT_FIELDS)


async def _checker(
    url: str,
    bodies: list[dict],
    expected: list[dict],
    duration_s: float,
    report: ChaosReport,
    log,
) -> None:
    """Replay known cells against the router for the storm's duration,
    holding every completed answer to the local expectation."""
    deadline = time.perf_counter() + duration_s
    i = 0
    while time.perf_counter() < deadline:
        index = i % len(bodies)
        i += 1
        try:
            status, doc = await post_json(url, "/v1/predict", bodies[index])
        except (OSError, asyncio.IncompleteReadError, ValueError):
            status, doc = 0, None
        report.checker_requests += 1
        report.status_counts[str(status)] = (
            report.status_counts.get(str(status), 0) + 1
        )
        if status != 200 or not isinstance(doc, dict):
            continue
        report.checked += 1
        if not _matches(doc, expected[index]):
            report.mismatches += 1
            if len(report.mismatch_samples) < 5:
                sample = {
                    "body": bodies[index],
                    "got": {k: doc.get(k) for k in _PREDICT_FIELDS},
                    "want": {k: expected[index][k] for k in _PREDICT_FIELDS},
                }
                report.mismatch_samples.append(sample)
                log.warning("chaos-mismatch", **sample)


async def _settle(
    url: str, bodies: list[dict], timeout_s: float
) -> tuple[bool, float]:
    """Stand the storm down and wait for all-shards-healthy.

    Broadcasts the disarm to surviving shards (crashed ones boot clean
    because the environment was already disarmed), then drives light
    probe traffic — breakers only close by observing a success — until
    ``/v1/shards`` shows every member serving with a closed breaker.
    """
    started = time.monotonic()
    try:
        await post_json(url, "/v1/admin/chaos", {"plan": None})
    except (OSError, asyncio.IncompleteReadError, ValueError):
        pass
    i = 0
    while time.monotonic() - started < timeout_s:
        try:
            await post_json(url, "/v1/predict", bodies[i % len(bodies)])
        except (OSError, asyncio.IncompleteReadError, ValueError):
            pass
        i += 1
        try:
            listing = await fetch_json(url, "/v1/shards")
        except (OSError, RuntimeError, ValueError):
            await asyncio.sleep(0.2)
            continue
        shards = listing.get("shards", [])
        healthy = bool(shards) and all(
            member.get("alive", False)
            and member.get("state", "serving") == "serving"
            and member.get("breaker", {}).get("state", "closed") == "closed"
            for member in shards
        )
        if healthy:
            return True, time.monotonic() - started
        await asyncio.sleep(0.2)
    return False, time.monotonic() - started


async def _final_sweep(
    url: str, bodies: list[dict], expected: list[dict], report: ChaosReport
) -> None:
    """One warm whole-mix batch after recovery: bit-identical, zero
    cold misses (``computed``/``degraded`` both count as cold)."""
    status, doc = await post_json(url, "/v1/batch", {"cells": bodies})
    if status != 200 or not isinstance(doc, dict):
        report.cold_misses = -1
        return
    served = doc.get("served", {})
    report.cold_misses = served.get("computed", 0) + served.get("degraded", 0)
    for result, want in zip(doc.get("results", []), expected):
        report.final_checked += 1
        matched = (
            result.get("seconds") == want["seconds"]
            and result.get("kernel_seconds") == want["kernel_seconds"]
            and result.get("key") == want["key"]
        )
        if not matched:
            report.final_mismatches += 1


def run_chaos_drill(
    shards: int = 2,
    duration_s: float = 8.0,
    concurrency: int = 4,
    plan: str = DEFAULT_CHAOS_PLAN,
    seed: int = DEFAULT_CHAOS_SEED,
    store: str | None = None,
    settle_timeout_s: float = 60.0,
    max_error_rate: float = 0.01,
    max_queue: int = 256,
    window_ms: float = 2.0,
    policy: SupervisionPolicy | None = None,
    router: RouterConfig | None = None,
    echo=None,
) -> ChaosReport:
    """Run one full drill; blocking (boots and tears down a tier)."""
    import tempfile

    log = obs_logging.get_logger("chaos")
    say = echo if echo is not None else (lambda *_: None)
    store = store or tempfile.mkdtemp(prefix="repro-chaos-store-")
    bodies = chaos_bodies()
    say(f"pricing the {len(bodies)}-cell oracle locally ...")
    expected = expected_responses(bodies)

    tier = ShardedTier(
        ServeConfig(
            max_queue=max_queue, window_s=window_ms / 1e3,
            store_path=store, warm="load",
        ),
        shards=shards,
        router=router if router is not None else DRILL_ROUTER,
        policy=policy if policy is not None else DRILL_POLICY,
    )

    os.environ[ENV_SERVE_FAULTS] = plan
    os.environ[ENV_SERVE_SEED] = str(seed)
    try:
        say(f"starting {shards}-shard tier (store {store}) with "
            f"faults armed: {plan} (seed {seed})")
        with tier:
            report = ChaosReport(
                plan=plan, seed=seed, shards=shards, store=store,
                max_error_rate=max_error_rate,
                load=LoadResult(mode="closed", duration_s=0.0,
                                concurrency=concurrency, rate=None),
            )
            url = tier.url
            say(f"storm: {duration_s:g} s of closed-loop load "
                f"(concurrency {concurrency}) + bit-identity checker")

            async def storm() -> LoadResult:
                load_coro = run_load(
                    url, bodies, mode="closed", concurrency=concurrency,
                    duration_s=duration_s, warmup=False,
                )
                load, _ = await asyncio.gather(
                    load_coro,
                    _checker(url, bodies, expected, duration_s, report, log),
                )
                return load

            report.load = asyncio.run(storm())
            for status, count in report.load.status_counts.items():
                report.status_counts[status] = (
                    report.status_counts.get(status, 0) + count
                )

            # Disarm *before* the settle: respawns from here boot clean.
            os.environ.pop(ENV_SERVE_FAULTS, None)
            os.environ.pop(ENV_SERVE_SEED, None)
            say("storm over; disarming and waiting for convergence ...")
            report.converged, report.settle_s = asyncio.run(
                _settle(url, bodies, settle_timeout_s)
            )
            asyncio.run(_final_sweep(url, bodies, expected, report))

            metrics_text = asyncio.run(fetch_text(url, "/metrics"))
            report.respawns = _metric_total(
                metrics_text, "repro_shard_respawns_total"
            )
            report.quarantines = _metric_total(
                metrics_text, "repro_shard_quarantines_total"
            )
            report.breaker_opens = _metric_total(
                metrics_text, "repro_router_breaker_transitions_total",
                label_filter='to="open"',
            )
            report.degraded = _metric_total(
                metrics_text, "repro_router_degraded_total"
            )
            report.rehomed = _metric_total(
                metrics_text, "repro_router_rehomed_total"
            )
    finally:
        os.environ.pop(ENV_SERVE_FAULTS, None)
        os.environ.pop(ENV_SERVE_SEED, None)
    log.info("chaos-drill-done", ok=report.ok, **report.row())
    return report
