"""miniFE: OpenACC port.

A ``data`` region holds the matrix and CG vectors on the device;
``update host`` fetches the dot results each iteration.  The paper:
"OpenACC performs the slowest because specialized sparse matrix
operations cannot be easily expressed at a high level, and the
compiler is unable to recognize and take advantage of the complicated
memory access patterns" — here, PGI gets neither the LDS row-blocks of
CSR-Adaptive nor decent gather vectorization.
"""

from __future__ import annotations

import numpy as np

from ...models.base import ExecutionContext
from ...models.openacc import OpenACC
from ..base import RunResult, make_result
from .kernels import dot, kernel_specs, spmv, waxpby
from .reference import MiniFEConfig, assemble

model_name = "OpenACC"

VECTOR_LENGTH = 256


def run(ctx: ExecutionContext, config: MiniFEConfig) -> RunResult:
    data, indices, indptr, b = assemble(config, ctx.precision)
    n = config.n_rows
    x = np.zeros(n, dtype=ctx.dtype)
    pap_out = np.zeros(1, dtype=ctx.dtype)
    rr_out = np.zeros(1, dtype=ctx.dtype)
    r = b.copy()
    p = b.copy()
    ap = np.zeros(n, dtype=ctx.dtype)

    acc = OpenACC(ctx)
    specs = kernel_specs(config, ctx.precision)
    gangs = -(-n // VECTOR_LENGTH)

    def launch_dot(a: np.ndarray, b_: np.ndarray, out: np.ndarray) -> float:
        # #pragma acc kernels loop reduction(+:sum)
        acc.kernels_loop(dot, specs["minife.dot"], arrays=[a, b_, out],
                         writes=[out], gang=gangs, vector=VECTOR_LENGTH)
        # #pragma acc update host(out)
        acc.update_host(out)
        return float(out[0])

    def launch_waxpby(w: np.ndarray, xa: np.ndarray, ya: np.ndarray, alpha: float, beta: float) -> None:
        # #pragma acc kernels loop independent
        acc.kernels_loop(waxpby, specs["minife.waxpby"], arrays=[w, xa, ya],
                         scalars=[alpha, beta], writes=[w], gang=gangs, vector=VECTOR_LENGTH)

    # #pragma acc data copyin(A, b) copy(x) create(r, p, ap, outs)
    with acc.data(
        copyin=[data, indices, indptr, r, p],
        copy=[x],
        create=[ap, pap_out, rr_out],
    ):
        rr = launch_dot(r, r, rr_out)
        for _ in range(config.cg_iterations):
            # #pragma acc kernels loop gang vector(VECTOR_LENGTH)
            acc.kernels_loop(spmv, specs["minife.spmv"],
                             arrays=[data, indices, indptr, p, ap],
                             writes=[ap], gang=gangs, vector=VECTOR_LENGTH)
            pap = launch_dot(p, ap, pap_out)
            alpha = rr / pap if pap else 0.0
            launch_waxpby(x, x, p, 1.0, alpha)
            launch_waxpby(r, r, ap, 1.0, -alpha)
            rr_new = launch_dot(r, r, rr_out)
            beta = rr_new / rr if rr else 0.0
            launch_waxpby(p, r, p, 1.0, beta)
            rr = rr_new
    return make_result("miniFE", ctx, model_name, acc.simulated_seconds, float(np.abs(x).sum()))
