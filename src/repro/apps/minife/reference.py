"""miniFE: finite-element conjugate-gradient solver (reference).

Section IV-D: "miniFE is a finite element proxy application that
solves a sparse linear-system using a simple un-preconditioned
conjugate-gradient (CG) algorithm.  Once the element-operators are
generated and assembled into a sparse matrix and vector, miniFE
executes the following kernels until the solution converges: sparse
matrix-vector multiplication (SpMV), axpy and dot product."

The reproduction performs the real pipeline: trilinear hexahedral
element stiffness matrices for the Poisson operator (2x2x2 Gauss
quadrature), assembly into CSR, Dirichlet boundary conditions, and an
unpreconditioned CG solve.  The SpMV uses the CSR format priced as the
CSR-Adaptive algorithm of Greathouse & Daga [15] in the OpenCL port.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ...engine.memo import memoized_setup, projection_stub
from ...hardware.specs import Precision


@dataclass(frozen=True)
class MiniFEConfig:
    """Problem definition: ``./miniFE -nx NX -ny NY -nz NZ``."""

    nx: int
    ny: int
    nz: int
    cg_iterations: int = 50
    tolerance: float = 1e-8

    def __post_init__(self) -> None:
        for name in ("nx", "ny", "nz"):
            if getattr(self, name) < 2:
                raise ValueError(f"{name} must be >= 2 elements")
        if self.cg_iterations < 1:
            raise ValueError("need at least one CG iteration")

    @property
    def n_rows(self) -> int:
        return (self.nx + 1) * (self.ny + 1) * (self.nz + 1)

    @property
    def n_elems(self) -> int:
        return self.nx * self.ny * self.nz


def default_config() -> MiniFEConfig:
    """CI-sized run (20^3 elements, 9261 rows)."""
    return MiniFEConfig(nx=20, ny=20, nz=20, cg_iterations=40)


def paper_config() -> MiniFEConfig:
    """Paper-sized run (Table I: ``./miniFE -nx 100 -ny 100 -nz 100``)."""
    return MiniFEConfig(nx=100, ny=100, nz=100, cg_iterations=200)


def hex8_stiffness() -> np.ndarray:
    """8x8 element stiffness matrix for the Poisson operator on the
    unit hexahedron, via 2x2x2 Gauss quadrature of grad(Ni).grad(Nj).

    Trilinear shape functions on [-1, 1]^3; the result is scaled by the
    element Jacobian at assembly (uniform mesh: a constant).
    """
    g = 1.0 / np.sqrt(3.0)
    gauss = np.array(
        [[sx * g, sy * g, sz * g] for sx in (-1, 1) for sy in (-1, 1) for sz in (-1, 1)]
    )
    # Node local coordinates, standard hex ordering.
    nodes = np.array(
        [[sx, sy, sz] for sz in (-1, 1) for sy in (-1, 1) for sx in (-1, 1)], dtype=float
    )
    K = np.zeros((8, 8))
    for xi, eta, zeta in gauss:
        # grad of Ni = 1/8 (1 + xi xi_i)(1 + eta eta_i)(1 + zeta zeta_i)
        grads = np.empty((8, 3))
        for i, (xi_i, eta_i, zeta_i) in enumerate(nodes):
            grads[i, 0] = 0.125 * xi_i * (1 + eta * eta_i) * (1 + zeta * zeta_i)
            grads[i, 1] = 0.125 * eta_i * (1 + xi * xi_i) * (1 + zeta * zeta_i)
            grads[i, 2] = 0.125 * zeta_i * (1 + xi * xi_i) * (1 + eta * eta_i)
        K += grads @ grads.T  # unit Gauss weights for 2-point rule
    return K


@memoized_setup
def assemble(config: MiniFEConfig, precision: Precision) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Assemble the global CSR Poisson system with Dirichlet walls.

    Returns ``(data, indices, indptr, rhs)`` — the CSR arrays every
    port shares (assembly is host-side setup in miniFE's GPU ports
    too; the timed kernels are SpMV/axpy/dot).
    """
    dtype = np.dtype(np.float32 if precision is Precision.SINGLE else np.float64)
    nx, ny, nz = config.nx, config.ny, config.nz
    nnx, nny, nnz_ = nx + 1, ny + 1, nz + 1
    K = hex8_stiffness()

    # Global node ids of each element's 8 corners.
    ex, ey, ez = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij")
    base = (ex * nny + ey) * nnz_ + ez  # node (i, j, k) -> id
    corner_offsets = [
        ((dx * nny) + dy) * nnz_ + dz
        for dz in (0, 1)
        for dy in (0, 1)
        for dx in (0, 1)
    ]
    elem_nodes = np.stack([base.reshape(-1) + off for off in corner_offsets], axis=1)

    n_elems = elem_nodes.shape[0]
    rows = np.repeat(elem_nodes, 8, axis=1).reshape(-1)
    cols = np.tile(elem_nodes, (1, 8)).reshape(-1)
    vals = np.tile(K.reshape(-1), n_elems)

    n = config.n_rows
    matrix = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()

    # Dirichlet u = 0 on all boundary faces: identity rows/cols.
    node_i = np.arange(n) // (nny * nnz_)
    node_j = (np.arange(n) // nnz_) % nny
    node_k = np.arange(n) % nnz_
    boundary = (
        (node_i == 0) | (node_i == nx) | (node_j == 0) | (node_j == ny)
        | (node_k == 0) | (node_k == nz)
    )
    interior = ~boundary
    diag = sp.diags(interior.astype(float))
    matrix = diag @ matrix @ diag + sp.diags(boundary.astype(float))
    matrix = sp.csr_matrix(matrix)
    matrix.sort_indices()

    rhs = np.where(boundary, 0.0, 1.0).astype(dtype)
    return (
        matrix.data.astype(dtype),
        matrix.indices.astype(np.int32),
        matrix.indptr.astype(np.int64),
        rhs,
    )


def system_nnz(config: MiniFEConfig) -> int:
    """Stored nonzeros of the assembled Dirichlet system, in closed form.

    Boundary rows are identity (1 nonzero); an interior node couples to
    the 27-point cube clipped to interior columns, giving
    ``prod(3n - 5)`` interior-block entries over the
    ``prod(n - 1)`` interior nodes of an ``nx x ny x nz`` element mesh.
    """
    nx, ny, nz = config.nx, config.ny, config.nz
    interior = (nx - 1) * (ny - 1) * (nz - 1)
    interior_block = (3 * nx - 5) * (3 * ny - 5) * (3 * nz - 5)
    return config.n_rows - interior + interior_block


@projection_stub(assemble)
def _projection_system(
    config: MiniFEConfig, precision: Precision
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shape-faithful stand-in for schedule capture: CSR arrays with
    the real lengths/dtypes (buffer sizes are all that the ports'
    schedules read) without assembling the matrix."""
    dtype = np.dtype(np.float32 if precision is Precision.SINGLE else np.float64)
    nnz = system_nnz(config)
    n = config.n_rows
    return (
        np.zeros(nnz, dtype=dtype),
        np.zeros(nnz, dtype=np.int32),
        np.zeros(n + 1, dtype=np.int64),
        np.zeros(n, dtype=dtype),
    )


def reference_solve(config: MiniFEConfig, precision: Precision) -> tuple[np.ndarray, list[float]]:
    """Plain NumPy CG, the correctness oracle; returns (x, residuals)."""
    data, indices, indptr, b = assemble(config, precision)
    n = config.n_rows
    matrix = sp.csr_matrix((data, indices, indptr), shape=(n, n))
    x = np.zeros(n, dtype=b.dtype)
    r = b - matrix @ x
    p = r.copy()
    rr = float(r @ r)
    residuals = [np.sqrt(rr)]
    for _ in range(config.cg_iterations):
        ap = matrix @ p
        alpha = rr / float(p @ ap)
        x = x + alpha * p
        r = r - alpha * ap
        rr_new = float(r @ r)
        residuals.append(np.sqrt(rr_new))
        if residuals[-1] < config.tolerance * residuals[0]:
            break
        p = r + (rr_new / rr) * p
        rr = rr_new
    return x, residuals
