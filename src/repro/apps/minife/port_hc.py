"""miniFE: Heterogeneous Compute port (Section VII).

The matrix stages once, the CG loop runs device-resident with raw
pointers, and only the 8-byte dot results synchronize per iteration.
"""

from __future__ import annotations

import numpy as np

from ...models.base import ExecutionContext
from ...models.hc import HCRuntime
from ..base import RunResult, make_result
from .kernels import dot, kernel_specs, spmv, waxpby
from .reference import MiniFEConfig, assemble

model_name = "Heterogeneous Compute"


def run(ctx: ExecutionContext, config: MiniFEConfig) -> RunResult:
    data, indices, indptr, b = assemble(config, ctx.precision)
    n = config.n_rows
    x = np.zeros(n, dtype=ctx.dtype)
    r = b.copy()
    p = b.copy()
    ap = np.zeros(n, dtype=ctx.dtype)
    pap_out = np.zeros(1, dtype=ctx.dtype)
    rr_out = np.zeros(1, dtype=ctx.dtype)

    hc = HCRuntime(ctx)
    specs = kernel_specs(config, ctx.precision)
    for array in (data, indices, indptr, x, r, p):
        hc.copy_to_device(array)
    for array in (ap, pap_out, rr_out):
        hc.device_alloc(array)

    def launch_dot(a: np.ndarray, b_: np.ndarray, out: np.ndarray) -> float:
        hc.launch(dot, specs["minife.dot"], arrays=[a, b_, out])
        hc.copy_to_host(out)
        return float(out[0])

    def launch_waxpby(w: np.ndarray, xa: np.ndarray, ya: np.ndarray, alpha: float, beta: float) -> None:
        hc.launch(waxpby, specs["minife.waxpby"], arrays=[w, xa, ya], scalars=[alpha, beta])

    rr = launch_dot(r, r, rr_out)
    for _ in range(config.cg_iterations):
        hc.launch(spmv, specs["minife.spmv"], arrays=[data, indices, indptr, p, ap])
        pap = launch_dot(p, ap, pap_out)
        alpha = rr / pap if pap else 0.0
        launch_waxpby(x, x, p, 1.0, alpha)
        launch_waxpby(r, r, ap, 1.0, -alpha)
        rr_new = launch_dot(r, r, rr_out)
        beta = rr_new / rr if rr else 0.0
        launch_waxpby(p, r, p, 1.0, beta)
        rr = rr_new

    hc.copy_to_host(x)
    return make_result("miniFE", ctx, model_name, hc.finish(), float(np.abs(x).sum()))
