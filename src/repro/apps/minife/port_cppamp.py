"""miniFE: C++ AMP port.

``array_view`` per CG vector; the dot results synchronize to the host
each iteration for the alpha/beta scalars.  Tiling gives the SpMV its
LDS row-blocks, but the CLAMP runtime still writes every kernel's
output back across PCIe on the dGPU.
"""

from __future__ import annotations

import numpy as np

from ...models import cppamp as amp
from ...models.base import ExecutionContext
from ..base import RunResult, make_result
from .kernels import dot, kernel_specs, spmv, waxpby
from .reference import MiniFEConfig, assemble

model_name = "C++ AMP"

TILE_SIZE = 256


def run(ctx: ExecutionContext, config: MiniFEConfig) -> RunResult:
    data, indices, indptr, b = assemble(config, ctx.precision)
    n = config.n_rows
    x = np.zeros(n, dtype=ctx.dtype)
    pap_out = np.zeros(1, dtype=ctx.dtype)
    rr_out = np.zeros(1, dtype=ctx.dtype)
    r = b.copy()
    p = b.copy()
    ap = np.zeros(n, dtype=ctx.dtype)

    rt = amp.AmpRuntime(ctx)
    data_view = amp.array_view(rt, data)
    indices_view = amp.array_view(rt, indices)
    indptr_view = amp.array_view(rt, indptr)
    x_view = amp.array_view(rt, x)
    r_view = amp.array_view(rt, r)
    p_view = amp.array_view(rt, p)
    ap_view = amp.array_view(rt, ap)
    pap_view = amp.array_view(rt, pap_out)
    rr_view = amp.array_view(rt, rr_out)

    specs = kernel_specs(config, ctx.precision)
    tiled = amp.extent(-(-n // TILE_SIZE) * TILE_SIZE).tile(TILE_SIZE)
    plain = amp.extent(n)

    def launch_dot(a_view: amp.array_view, b_view: amp.array_view, out_view: amp.array_view, out_host: np.ndarray) -> float:
        rt.parallel_for_each(
            tiled, dot, specs["minife.dot"],
            views=[a_view, b_view, out_view], writes=[out_view],
        )
        out_view.synchronize()
        return float(out_host[0])

    def launch_waxpby(w_view: amp.array_view, xv: amp.array_view, yv: amp.array_view, alpha: float, beta: float) -> None:
        rt.parallel_for_each(
            plain, waxpby, specs["minife.waxpby"],
            views=[w_view, xv, yv], scalars=[alpha, beta], writes=[w_view],
        )

    rr = launch_dot(r_view, r_view, rr_view, rr_out)
    for _ in range(config.cg_iterations):
        rt.parallel_for_each(
            tiled, spmv, specs["minife.spmv"],
            views=[data_view, indices_view, indptr_view, p_view, ap_view],
            writes=[ap_view],
        )
        pap = launch_dot(p_view, ap_view, pap_view, pap_out)
        alpha = rr / pap if pap else 0.0
        launch_waxpby(x_view, x_view, p_view, 1.0, alpha)
        launch_waxpby(r_view, r_view, ap_view, 1.0, -alpha)
        rr_new = launch_dot(r_view, r_view, rr_view, rr_out)
        beta = rr_new / rr if rr else 0.0
        launch_waxpby(p_view, r_view, p_view, 1.0, beta)
        rr = rr_new

    x_view.synchronize()
    return make_result("miniFE", ctx, model_name, rt.simulated_seconds, float(np.abs(x).sum()))
