"""miniFE finite-element proxy application (Sec. IV-D).

Assembles a hexahedral FEM Poisson system and solves it with
unpreconditioned CG: SpMV (CSR-Adaptive in the OpenCL port), waxpby
and dot kernels.  Memory-bandwidth bound with high IPC (Table I).
"""

from ..base import ProxyApp
from . import (
    port_cppamp,
    port_hc,
    port_omp_offload,
    port_openacc,
    port_opencl,
    port_openmp,
    port_serial,
)
from .kernels import NNZ_PER_ROW, dot, kernel_specs, spmv, waxpby
from .reference import (
    MiniFEConfig,
    assemble,
    default_config,
    hex8_stiffness,
    paper_config,
    reference_solve,
)

APP = ProxyApp(
    name="miniFE",
    description="hex-mesh FEM + unpreconditioned CG solve (Sec. IV-D)",
    command_line="./miniFE -nx 100 -ny 100 -nz 100",
    n_kernels=3,
    boundedness="Memory",
    default_config=default_config,
    paper_config=paper_config,
    ports={
        port_serial.model_name: port_serial.run,
        port_openmp.model_name: port_openmp.run,
        port_opencl.model_name: port_opencl.run,
        port_cppamp.model_name: port_cppamp.run,
        port_openacc.model_name: port_openacc.run,
        port_omp_offload.model_name: port_omp_offload.run,
        port_hc.model_name: port_hc.run,
    },
)

__all__ = [
    "APP",
    "MiniFEConfig",
    "NNZ_PER_ROW",
    "assemble",
    "default_config",
    "dot",
    "hex8_stiffness",
    "kernel_specs",
    "paper_config",
    "reference_solve",
    "spmv",
    "waxpby",
]
