"""miniFE: OpenMP CPU port (the Figures 8e/9e baseline).

``#pragma omp parallel for`` on the three kernels (reduction clauses
on the dot products) — Table IV's 18 changed lines.
"""

from __future__ import annotations

import numpy as np

from ...models.base import ExecutionContext
from ...models.openmp import OpenMP
from ..base import RunResult, make_result
from .kernels import dot, kernel_specs, spmv, waxpby
from .reference import MiniFEConfig, assemble

model_name = "OpenMP"


def run(ctx: ExecutionContext, config: MiniFEConfig) -> RunResult:
    data, indices, indptr, b = assemble(config, ctx.precision)
    n = config.n_rows
    x = np.zeros(n, dtype=ctx.dtype)
    r = b.copy()
    p = b.copy()
    ap = np.zeros(n, dtype=ctx.dtype)
    pap_out = np.zeros(1, dtype=ctx.dtype)
    rr_out = np.zeros(1, dtype=ctx.dtype)

    omp = OpenMP(ctx, num_threads=4)
    specs = kernel_specs(config, ctx.precision)
    # #pragma omp parallel for reduction(+:rr)
    omp.parallel_for(dot, specs["minife.dot"], arrays=[r, r, rr_out])
    rr = float(rr_out[0])
    for _ in range(config.cg_iterations):
        # #pragma omp parallel for
        omp.parallel_for(spmv, specs["minife.spmv"], arrays=[data, indices, indptr, p, ap])
        # #pragma omp parallel for reduction(+:pap)
        omp.parallel_for(dot, specs["minife.dot"], arrays=[p, ap, pap_out])
        pap = float(pap_out[0])
        alpha = rr / pap if pap else 0.0
        # #pragma omp parallel for (x, r updates and the new direction)
        omp.parallel_for(waxpby, specs["minife.waxpby"], arrays=[x, x, p], scalars=[1.0, alpha])
        omp.parallel_for(waxpby, specs["minife.waxpby"], arrays=[r, r, ap], scalars=[1.0, -alpha])
        omp.parallel_for(dot, specs["minife.dot"], arrays=[r, r, rr_out])
        rr_new = float(rr_out[0])
        beta = rr_new / rr if rr else 0.0
        omp.parallel_for(waxpby, specs["minife.waxpby"], arrays=[p, r, p], scalars=[1.0, beta])
        rr = rr_new
    return make_result("miniFE", ctx, model_name, omp.simulated_seconds, float(np.abs(x).sum()))
