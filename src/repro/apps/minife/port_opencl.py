"""miniFE: OpenCL port.

The matrix and vectors are staged to the device once; the CG loop runs
entirely on the GPU with only the two 8-byte dot-product results read
back per iteration.  The SpMV kernel is CSR-Adaptive [15]: workgroups
cooperatively process LDS-sized row blocks.
"""

from __future__ import annotations

import numpy as np

from ...models import opencl as cl
from ...models.base import ExecutionContext
from ..base import RunResult, make_result
from .kernels import dot, kernel_specs, spmv, waxpby
from .reference import MiniFEConfig, assemble

model_name = "OpenCL"

WORKGROUP_SIZE = 256


def run(ctx: ExecutionContext, config: MiniFEConfig) -> RunResult:
    data, indices, indptr, b = assemble(config, ctx.precision)
    n = config.n_rows
    x = np.zeros(n, dtype=ctx.dtype)
    ap = np.zeros(n, dtype=ctx.dtype)
    pap_out = np.zeros(1, dtype=ctx.dtype)
    rr_out = np.zeros(1, dtype=ctx.dtype)

    # InitCl(): platform, device, context, queue, program.
    platform = cl.get_platforms(ctx)[0]
    device = next(d for d in platform.get_devices() if d.is_gpu)
    context = cl.Context(ctx, [device])
    queue = cl.CommandQueue(context, device)
    program = cl.Program(context).build()

    # CreateClBuffer() + CopyClDataToGPU(): matrix and vectors, once.
    data_cl = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=data.nbytes)
    indices_cl = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=indices.nbytes)
    indptr_cl = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=indptr.nbytes)
    x_cl = cl.Buffer(context, cl.MemFlags.READ_WRITE, hostbuf=x)
    r_cl = cl.Buffer(context, cl.MemFlags.READ_WRITE, size=b.nbytes)
    p_cl = cl.Buffer(context, cl.MemFlags.READ_WRITE, size=b.nbytes)
    ap_cl = cl.Buffer(context, cl.MemFlags.READ_WRITE, hostbuf=ap)
    pap_cl = cl.Buffer(context, cl.MemFlags.WRITE_ONLY, hostbuf=pap_out)
    rr_cl = cl.Buffer(context, cl.MemFlags.WRITE_ONLY, hostbuf=rr_out)
    queue.enqueue_write_buffer(data_cl, data)
    queue.enqueue_write_buffer(indices_cl, indices)
    queue.enqueue_write_buffer(indptr_cl, indptr)
    queue.enqueue_write_buffer(x_cl, x)
    queue.enqueue_write_buffer(r_cl, b)
    queue.enqueue_write_buffer(p_cl, b)

    specs = kernel_specs(config, ctx.precision)
    spmv_kernel = program.create_kernel("minife_spmv_csr_adaptive", spmv, specs["minife.spmv"])
    waxpby_kernel = program.create_kernel("minife_waxpby", waxpby, specs["minife.waxpby"])
    dot_kernel = program.create_kernel("minife_dot", dot, specs["minife.dot"])
    global_size = -(-n // WORKGROUP_SIZE) * WORKGROUP_SIZE

    def launch_dot(a_cl: cl.Buffer, b_cl_: cl.Buffer, out_cl: cl.Buffer, out_host: np.ndarray) -> float:
        dot_kernel.set_args(a_cl, b_cl_, out_cl)
        queue.enqueue_nd_range_kernel(dot_kernel, global_size, WORKGROUP_SIZE)
        queue.enqueue_read_buffer(out_cl, out_host)
        return float(out_host[0])

    def launch_waxpby(w_cl: cl.Buffer, xa_cl: cl.Buffer, ya_cl: cl.Buffer, alpha: float, beta: float) -> None:
        waxpby_kernel.set_args(w_cl, xa_cl, ya_cl, alpha, beta)
        queue.enqueue_nd_range_kernel(waxpby_kernel, global_size, WORKGROUP_SIZE)

    rr = launch_dot(r_cl, r_cl, rr_cl, rr_out)
    for _ in range(config.cg_iterations):
        spmv_kernel.set_args(data_cl, indices_cl, indptr_cl, p_cl, ap_cl)
        queue.enqueue_nd_range_kernel(spmv_kernel, global_size, WORKGROUP_SIZE)
        pap = launch_dot(p_cl, ap_cl, pap_cl, pap_out)
        alpha = rr / pap if pap else 0.0
        launch_waxpby(x_cl, x_cl, p_cl, 1.0, alpha)
        launch_waxpby(r_cl, r_cl, ap_cl, 1.0, -alpha)
        rr_new = launch_dot(r_cl, r_cl, rr_cl, rr_out)
        beta = rr_new / rr if rr else 0.0
        launch_waxpby(p_cl, r_cl, p_cl, 1.0, beta)
        rr = rr_new

    # CopyClDataToHost(): the solution vector.
    queue.enqueue_read_buffer(x_cl, x)
    seconds = queue.finish()
    return make_result("miniFE", ctx, model_name, seconds, float(np.abs(x).sum()))
