"""miniFE: OpenMP target-offload port.

A ``target data`` region holds the matrix and CG vectors on the
device; ``target update from`` fetches the dot results each iteration.
Like PGI's OpenACC, the OpenMP compilers get neither the LDS
row-blocks of CSR-Adaptive nor decent gather vectorization for the
SpMV — only the loop-level directive surface.
"""

from __future__ import annotations

import numpy as np

from ...models.base import ExecutionContext
from ...models.omp_offload import OpenMPOffload
from ..base import RunResult, make_result
from .kernels import dot, kernel_specs, spmv, waxpby
from .reference import MiniFEConfig, assemble

model_name = "OpenMP Offload"

THREAD_LIMIT = 256


def run(ctx: ExecutionContext, config: MiniFEConfig) -> RunResult:
    data, indices, indptr, b = assemble(config, ctx.precision)
    n = config.n_rows
    x = np.zeros(n, dtype=ctx.dtype)
    pap_out = np.zeros(1, dtype=ctx.dtype)
    rr_out = np.zeros(1, dtype=ctx.dtype)
    r = b.copy()
    p = b.copy()
    ap = np.zeros(n, dtype=ctx.dtype)

    omp = OpenMPOffload(ctx)
    specs = kernel_specs(config, ctx.precision)
    teams = -(-n // THREAD_LIMIT)

    def launch_dot(a: np.ndarray, b_: np.ndarray, out: np.ndarray) -> float:
        # #pragma omp target teams distribute parallel for reduction(+:sum)
        omp.target_teams_loop(dot, specs["minife.dot"], arrays=[a, b_, out],
                              writes=[out], num_teams=teams, thread_limit=THREAD_LIMIT)
        # #pragma omp target update from(out)
        omp.update_from(out)
        return float(out[0])

    def launch_waxpby(w: np.ndarray, xa: np.ndarray, ya: np.ndarray, alpha: float, beta: float) -> None:
        # #pragma omp target teams distribute parallel for
        omp.target_teams_loop(waxpby, specs["minife.waxpby"], arrays=[w, xa, ya],
                              scalars=[alpha, beta], writes=[w],
                              num_teams=teams, thread_limit=THREAD_LIMIT)

    # #pragma omp target data map(to: A, b) map(tofrom: x) map(alloc: r, p, ap, outs)
    with omp.target_data(
        to=[data, indices, indptr, r, p],
        tofrom=[x],
        alloc=[ap, pap_out, rr_out],
    ):
        rr = launch_dot(r, r, rr_out)
        for _ in range(config.cg_iterations):
            # #pragma omp target teams distribute parallel for thread_limit(...)
            omp.target_teams_loop(spmv, specs["minife.spmv"],
                                  arrays=[data, indices, indptr, p, ap],
                                  writes=[ap], num_teams=teams, thread_limit=THREAD_LIMIT)
            pap = launch_dot(p, ap, pap_out)
            alpha = rr / pap if pap else 0.0
            launch_waxpby(x, x, p, 1.0, alpha)
            launch_waxpby(r, r, ap, 1.0, -alpha)
            rr_new = launch_dot(r, r, rr_out)
            beta = rr_new / rr if rr else 0.0
            launch_waxpby(p, r, p, 1.0, beta)
            rr = rr_new
    return make_result("miniFE", ctx, model_name, omp.simulated_seconds, float(np.abs(x).sum()))
