"""miniFE device kernels and characterizations.

Three kernels, as in Table I: CSR sparse matrix-vector multiplication
(priced as CSR-Adaptive [15] where the model can express it), the
waxpby vector update, and the dot-product reduction.
"""

from __future__ import annotations

import numpy as np

from ...engine.kernel import AccessKind, AccessPattern, KernelSpec, OpCount
from ...hardware.specs import Precision
from .reference import MiniFEConfig

#: 27-point stencil of trilinear hexes on a structured mesh.
NNZ_PER_ROW = 27


def spmv(data: np.ndarray, indices: np.ndarray, indptr: np.ndarray, x: np.ndarray, y: np.ndarray) -> None:
    """Kernel 1: y = A @ x in CSR format.

    The OpenCL port runs this as CSR-Adaptive: rows are batched into
    LDS-sized blocks processed by whole workgroups, which is what the
    spec's LDS fields describe.
    """
    products = data * x[indices]
    y[:] = np.add.reduceat(products, indptr[:-1].astype(np.int64))
    empty = indptr[:-1] == indptr[1:]
    if empty.any():
        y[empty] = 0.0


def waxpby(w: np.ndarray, x: np.ndarray, y: np.ndarray, alpha: float, beta: float) -> None:
    """Kernel 2: w = alpha*x + beta*y."""
    dtype = w.dtype
    np.multiply(x, dtype.type(alpha), out=w)
    w += dtype.type(beta) * y


def dot(x: np.ndarray, y: np.ndarray, out: np.ndarray) -> None:
    """Kernel 3: out[0] = x . y (tree reduction through the LDS)."""
    out[0] = np.dot(x, y)


def kernel_specs(config: MiniFEConfig, precision: Precision) -> dict[str, KernelSpec]:
    """Characterize the three kernels for the timing model."""
    eb = precision.bytes_per_element
    n = config.n_rows
    nnz = NNZ_PER_ROW

    return {
        "minife.spmv": KernelSpec(
            name="minife.spmv",
            work_items=n,
            ops=OpCount(
                flops=float(2 * nnz * n),
                int_ops=float(nnz * n),
                bytes_read=float((nnz * (eb + 4) + nnz * eb + 16) * n),
                bytes_written=float(eb * n),
            ),
            access=AccessPattern(
                kind=AccessKind.CSR_SPMV,
                working_set_bytes=float(nnz * (eb + 4) * n + 2 * eb * n),
                request_bytes=eb,
                reuse_fraction=0.6,
                row_buffer_efficiency=0.4,
            ),
            workgroup_size=256,
            instructions_per_item=float(int(2 * nnz * 1.7)),
            registers_per_thread=32,
            lds_bytes_per_workgroup=2048,
            lds_traffic_filter=0.3,
            divergence=0.08,
            unroll_benefit=0.1,
            cpu_simd_fraction=0.6,
        ),
        "minife.waxpby": KernelSpec(
            name="minife.waxpby",
            work_items=n,
            ops=OpCount(
                flops=float(3 * n),
                int_ops=float(n),
                bytes_read=float(2 * eb * n),
                bytes_written=float(eb * n),
            ),
            access=AccessPattern(
                kind=AccessKind.STREAMING,
                working_set_bytes=float(3 * eb * n),
                request_bytes=eb,
            ),
            workgroup_size=256,
            instructions_per_item=8.0,
            registers_per_thread=10,
            cpu_simd_fraction=1.0,
        ),
        "minife.dot": KernelSpec(
            name="minife.dot",
            work_items=n,
            ops=OpCount(
                flops=float(2 * n),
                int_ops=float(n),
                bytes_read=float(2 * eb * n),
                bytes_written=64.0,
            ),
            access=AccessPattern(
                kind=AccessKind.STREAMING,
                working_set_bytes=float(2 * eb * n),
                request_bytes=eb,
            ),
            workgroup_size=256,
            instructions_per_item=7.0,
            registers_per_thread=10,
            lds_bytes_per_workgroup=256 * eb,
            cpu_simd_fraction=1.0,
        ),
    }
