"""miniFE: serial CPU port."""

from __future__ import annotations

import numpy as np

from ...models.base import ExecutionContext
from ...models.serial import SerialCPU
from ..base import RunResult, make_result
from .kernels import dot, kernel_specs, spmv, waxpby
from .reference import MiniFEConfig, assemble

model_name = "Serial"


def run(ctx: ExecutionContext, config: MiniFEConfig) -> RunResult:
    data, indices, indptr, b = assemble(config, ctx.precision)
    n = config.n_rows
    x = np.zeros(n, dtype=ctx.dtype)
    r = b.copy()
    p = b.copy()
    ap = np.zeros(n, dtype=ctx.dtype)
    pap_out = np.zeros(1, dtype=ctx.dtype)
    rr_out = np.zeros(1, dtype=ctx.dtype)

    cpu = SerialCPU(ctx)
    specs = kernel_specs(config, ctx.precision)
    cpu.run_loop(dot, specs["minife.dot"], arrays=[r, r, rr_out])
    rr = float(rr_out[0])
    for _ in range(config.cg_iterations):
        cpu.run_loop(spmv, specs["minife.spmv"], arrays=[data, indices, indptr, p, ap])
        cpu.run_loop(dot, specs["minife.dot"], arrays=[p, ap, pap_out])
        pap = float(pap_out[0])
        alpha = rr / pap if pap else 0.0
        cpu.run_loop(waxpby, specs["minife.waxpby"], arrays=[x, x, p], scalars=[1.0, alpha])
        cpu.run_loop(waxpby, specs["minife.waxpby"], arrays=[r, r, ap], scalars=[1.0, -alpha])
        cpu.run_loop(dot, specs["minife.dot"], arrays=[r, r, rr_out])
        rr_new = float(rr_out[0])
        beta = rr_new / rr if rr else 0.0
        cpu.run_loop(waxpby, specs["minife.waxpby"], arrays=[p, r, p], scalars=[1.0, beta])
        rr = rr_new
    return make_result("miniFE", ctx, model_name, cpu.simulated_seconds, float(np.abs(x).sum()))
