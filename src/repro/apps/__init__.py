"""The paper's five workloads, each ported to every programming model.

``ALL_APPS`` lists them in the paper's presentation order (Figures
8-10, Table IV): the read-memory micro-benchmark, then LULESH, CoMD,
XSBench and miniFE.
"""

from .base import Port, ProxyApp, RunResult, make_result
from .comd import APP as COMD
from .lulesh import APP as LULESH
from .minife import APP as MINIFE
from .readmem import APP as READMEM
from .xsbench import APP as XSBENCH

#: Paper presentation order.
ALL_APPS: tuple[ProxyApp, ...] = (READMEM, LULESH, COMD, XSBENCH, MINIFE)

#: Lookup by the names used in the paper's tables and figures.
APPS_BY_NAME: dict[str, ProxyApp] = {app.name: app for app in ALL_APPS}

#: The four proxy applications of Table I (without the micro-benchmark).
PROXY_APPS: tuple[ProxyApp, ...] = (LULESH, COMD, XSBENCH, MINIFE)

__all__ = [
    "ALL_APPS",
    "APPS_BY_NAME",
    "COMD",
    "LULESH",
    "MINIFE",
    "PROXY_APPS",
    "Port",
    "ProxyApp",
    "READMEM",
    "RunResult",
    "XSBENCH",
    "make_result",
]
