"""XSBench: OpenCL port.

The 240 MB table (unionized grid + index matrix + nuclide data) is
staged to the discrete GPU exactly once — the explicit-transfer
advantage — and the lookup kernel is launched over the particle
stream in chunks, as the real GPU port batches its grid.
"""

from __future__ import annotations

import numpy as np

from ...models import opencl as cl
from ...models.base import ExecutionContext
from ..base import RunResult, make_result
from .kernels import lookup_kernel_spec, xs_lookup
from .reference import N_XS, XSBenchConfig, make_data

model_name = "OpenCL"

WORKGROUP_SIZE = 256
N_CHUNKS = 4


def run(ctx: ExecutionContext, config: XSBenchConfig) -> RunResult:
    data = make_data(config, ctx.precision)
    macro = np.zeros((config.n_lookups, N_XS), dtype=ctx.dtype)

    # InitCl(): platform, device, context, queue, program.
    platform = cl.get_platforms(ctx)[0]
    device = next(d for d in platform.get_devices() if d.is_gpu)
    context = cl.Context(ctx, [device])
    queue = cl.CommandQueue(context, device)
    program = cl.Program(context).build()

    # CreateClBuffer() + CopyClDataToGPU(): the table moves once.
    table_arrays = {
        "union_energy": data.union_energy,
        "union_index": data.union_index,
        "material_nuclides": data.material_nuclides,
        "material_density": data.material_density,
        "material_n": data.material_n,
        "nuclide_energy": data.nuclide_energy,
        "nuclide_xs": data.nuclide_xs,
    }
    table_buffers = {}
    for name, host in table_arrays.items():
        table_buffers[name] = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=host.nbytes)
        queue.enqueue_write_buffer(table_buffers[name], host)

    kernel = program.create_kernel(
        "xs_lookup", xs_lookup, lookup_kernel_spec(config, ctx.precision, 1)
    )

    # Launch the lookup stream in chunks.
    energy_chunks = np.array_split(data.lookup_energy, N_CHUNKS)
    material_chunks = np.array_split(data.lookup_material, N_CHUNKS)
    macro_chunks = np.array_split(macro, N_CHUNKS)
    for e_chunk, m_chunk, out_chunk in zip(energy_chunks, material_chunks, macro_chunks):
        e_cl = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=e_chunk.nbytes)
        m_cl = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=m_chunk.nbytes)
        out_cl = cl.Buffer(context, cl.MemFlags.WRITE_ONLY, hostbuf=out_chunk)
        queue.enqueue_write_buffer(e_cl, e_chunk)
        queue.enqueue_write_buffer(m_cl, m_chunk)
        spec = lookup_kernel_spec(config, ctx.precision, n_lookups=len(e_chunk))
        kernel = program.create_kernel("xs_lookup", xs_lookup, spec)
        kernel.set_args(
            e_cl, m_cl,
            table_buffers["union_energy"], table_buffers["union_index"],
            table_buffers["material_nuclides"], table_buffers["material_density"],
            table_buffers["material_n"], table_buffers["nuclide_energy"],
            table_buffers["nuclide_xs"], out_cl,
        )
        global_size = -(-len(e_chunk) // WORKGROUP_SIZE) * WORKGROUP_SIZE
        queue.enqueue_nd_range_kernel(kernel, global_size, WORKGROUP_SIZE)
        queue.enqueue_read_buffer(out_cl, out_chunk)

    seconds = queue.finish()
    return make_result("XSBench", ctx, model_name, seconds, np.abs(macro).sum())
