"""XSBench: OpenACC port.

The table lives in a ``data`` region around the chunk loop; each chunk
of lookups is an annotated ``kernels loop``.  PGI's generated gather
code reaches about half the bandwidth of the hand-written OpenCL
kernel, which dominates this latency-bound workload.
"""

from __future__ import annotations

import numpy as np

from ...models.base import ExecutionContext
from ...models.openacc import OpenACC
from ..base import RunResult, make_result
from .kernels import lookup_kernel_spec, xs_lookup
from .reference import N_XS, XSBenchConfig, make_data

model_name = "OpenACC"

VECTOR_LENGTH = 256
N_CHUNKS = 4


def run(ctx: ExecutionContext, config: XSBenchConfig) -> RunResult:
    data = make_data(config, ctx.precision)
    macro = np.zeros((config.n_lookups, N_XS), dtype=ctx.dtype)

    acc = OpenACC(ctx)
    table = [
        data.union_energy, data.union_index, data.material_nuclides,
        data.material_density, data.material_n, data.nuclide_energy, data.nuclide_xs,
    ]
    energy_chunks = np.array_split(data.lookup_energy, N_CHUNKS)
    material_chunks = np.array_split(data.lookup_material, N_CHUNKS)
    macro_chunks = np.array_split(macro, N_CHUNKS)

    # #pragma acc data copyin(<table arrays>)
    with acc.data(copyin=table):
        for e_chunk, m_chunk, out_chunk in zip(energy_chunks, material_chunks, macro_chunks):
            spec = lookup_kernel_spec(config, ctx.precision, n_lookups=len(e_chunk))
            # #pragma acc kernels loop gang vector(VECTOR_LENGTH) independent
            acc.kernels_loop(
                xs_lookup,
                spec,
                arrays=[e_chunk, m_chunk, *table, out_chunk],
                writes=[out_chunk],
                gang=-(-len(e_chunk) // VECTOR_LENGTH),
                vector=VECTOR_LENGTH,
            )
    return make_result("XSBench", ctx, model_name, acc.simulated_seconds, np.abs(macro).sum())
