"""XSBench: OpenMP target-offload port.

The table lives in a ``target data`` region around the chunk loop;
each chunk of lookups is a ``target teams distribute parallel for``.
The generated gather code, like OpenACC's, reaches a fraction of the
hand-written kernel's bandwidth — decisive for this latency-bound
workload.
"""

from __future__ import annotations

import numpy as np

from ...models.base import ExecutionContext
from ...models.omp_offload import OpenMPOffload
from ..base import RunResult, make_result
from .kernels import lookup_kernel_spec, xs_lookup
from .reference import N_XS, XSBenchConfig, make_data

model_name = "OpenMP Offload"

THREAD_LIMIT = 256
N_CHUNKS = 4


def run(ctx: ExecutionContext, config: XSBenchConfig) -> RunResult:
    data = make_data(config, ctx.precision)
    macro = np.zeros((config.n_lookups, N_XS), dtype=ctx.dtype)

    omp = OpenMPOffload(ctx)
    table = [
        data.union_energy, data.union_index, data.material_nuclides,
        data.material_density, data.material_n, data.nuclide_energy, data.nuclide_xs,
    ]
    energy_chunks = np.array_split(data.lookup_energy, N_CHUNKS)
    material_chunks = np.array_split(data.lookup_material, N_CHUNKS)
    macro_chunks = np.array_split(macro, N_CHUNKS)

    # #pragma omp target data map(to: <table arrays>)
    with omp.target_data(to=table):
        for e_chunk, m_chunk, out_chunk in zip(energy_chunks, material_chunks, macro_chunks):
            spec = lookup_kernel_spec(config, ctx.precision, n_lookups=len(e_chunk))
            # #pragma omp target teams distribute parallel for thread_limit(...)
            omp.target_teams_loop(
                xs_lookup,
                spec,
                arrays=[e_chunk, m_chunk, *table, out_chunk],
                writes=[out_chunk],
                num_teams=-(-len(e_chunk) // THREAD_LIMIT),
                thread_limit=THREAD_LIMIT,
            )
    return make_result("XSBench", ctx, model_name, omp.simulated_seconds, np.abs(macro).sum())
