"""XSBench device kernel and characterization.

One kernel, as in Table I: each thread performs one macroscopic
cross-section lookup — a binary search of the unionized energy grid
followed by interpolation over every nuclide in the sampled material.
"""

from __future__ import annotations

import numpy as np

from ...engine.kernel import AccessKind, AccessPattern, KernelSpec, OpCount
from ...hardware.specs import Precision
from .reference import (
    MATERIAL_NUCLIDE_COUNTS,
    MATERIAL_PROBABILITIES,
    N_XS,
    XSBenchConfig,
)

#: Expected nuclides per lookup under the material distribution.
AVG_NUCLIDES = sum(
    p * n for p, n in zip(MATERIAL_PROBABILITIES, MATERIAL_NUCLIDE_COUNTS)
) / sum(MATERIAL_PROBABILITIES)


def xs_lookup(
    lookup_energy: np.ndarray,
    lookup_material: np.ndarray,
    union_energy: np.ndarray,
    union_index: np.ndarray,
    material_nuclides: np.ndarray,
    material_density: np.ndarray,
    material_n: np.ndarray,
    nuclide_energy: np.ndarray,
    nuclide_xs: np.ndarray,
    macro_out: np.ndarray,
) -> None:
    """The unionized-grid lookup kernel.

    One binary search of the union grid locates, for every nuclide at
    once, the bracketing grid points (via the precomputed index
    matrix); the per-material loop then interpolates and accumulates
    the five macroscopic channels.
    """
    dtype = lookup_energy.dtype
    n_union = len(union_energy)
    # Binary search (this is what np.searchsorted performs).
    row = np.searchsorted(union_energy, lookup_energy, side="right") - 1
    np.clip(row, 0, n_union - 1, out=row)

    macro_out[:] = 0.0
    for m in range(material_n.shape[0]):
        sel = np.nonzero(lookup_material == m)[0]
        if len(sel) == 0:
            continue
        energy = lookup_energy[sel]
        rows_m = row[sel]
        acc = np.zeros((len(sel), N_XS), dtype=dtype)
        for slot in range(int(material_n[m])):
            nuclide = int(material_nuclides[m, slot])
            density = material_density[m, slot]
            lo = union_index[rows_m, nuclide]
            grid = nuclide_energy[nuclide]
            e_lo = grid[lo]
            e_hi = grid[lo + 1]
            frac = (energy - e_lo) / np.maximum(e_hi - e_lo, dtype.type(1e-30))
            xs_lo = nuclide_xs[nuclide, lo]
            xs_hi = nuclide_xs[nuclide, lo + 1]
            acc += density * (xs_lo + frac[:, None] * (xs_hi - xs_lo))
        macro_out[sel] = acc


def lookup_kernel_spec(config: XSBenchConfig, precision: Precision, n_lookups: int | None = None) -> KernelSpec:
    """Characterize the lookup kernel (optionally for a chunk)."""
    eb = precision.bytes_per_element
    lookups = config.n_lookups if n_lookups is None else n_lookups
    levels = max(1.0, np.log2(config.n_union))

    flops_per_lookup = AVG_NUCLIDES * 4 * N_XS + 6
    reads_per_lookup = (
        levels * eb  # binary-search probes
        + AVG_NUCLIDES * 4  # index-matrix row entries (int32)
        + AVG_NUCLIDES * 2 * (1 + N_XS) * eb  # two bracketing grid points
        + AVG_NUCLIDES * (4 + eb)  # material composition
    )
    return KernelSpec(
        name="xsbench.lookup",
        work_items=lookups,
        ops=OpCount(
            flops=float(flops_per_lookup * lookups),
            int_ops=float((levels * 4 + AVG_NUCLIDES * 6) * lookups),
            bytes_read=float(reads_per_lookup * lookups),
            bytes_written=float(N_XS * eb * lookups),
        ),
        access=AccessPattern(
            kind=AccessKind.BINARY_SEARCH,
            working_set_bytes=float(config.table_bytes(precision)),
            request_bytes=4 * eb,
            reuse_fraction=0.05,
            row_buffer_efficiency=0.45,
            table_entries=config.n_union,
        ),
        workgroup_size=256,
        instructions_per_item=float(levels * 9 + AVG_NUCLIDES * 70),
        registers_per_thread=48,
        divergence=0.3,
        unroll_benefit=0.1,
        cpu_simd_fraction=0.1,
    )
