"""XSBench: macroscopic neutron cross-section lookup (reference).

Section IV-C: "XSBench computes the intensive macroscopic neutron
cross-section lookup ... works with the Hoogenboom-Martin reactor
material properties data-set and creates a random set of energy and
material pairs representing particle or material interactions.  The
pairs are then used to lookup cross-section probability."

The reproduction implements the unionized-energy-grid algorithm of the
real XSBench: per-nuclide pointwise cross-section tables, a unionized
grid over all nuclide energies with per-nuclide lower-bound indices,
the 12-material Hoogenboom-Martin composition, and lookups that
binary-search the unionized grid then interpolate and accumulate the
five macroscopic cross sections over the material's nuclides.

The paper ran ``-s small`` whose 240 MB unionized table was chosen to
fit the discrete GPU's 3 GB ("the next step in the lookup-table size
was 5 GB").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...engine.memo import memoized_setup, projection_stub
from ...hardware.specs import Precision

#: Five cross-section channels per grid point.
N_XS = 5  # total, elastic, absorption, fission, nu-fission

#: Hoogenboom-Martin: 12 materials; number of nuclides each contains
#: (the "small" problem's composition) and the lookup probability of
#: each material, as in XSBench's ``pick_mat``.
MATERIAL_NUCLIDE_COUNTS = (34, 5, 4, 4, 27, 21, 21, 12, 11, 9, 16, 3)
MATERIAL_PROBABILITIES = (
    0.140, 0.052, 0.275, 0.134, 0.154, 0.064, 0.066, 0.055, 0.008, 0.015, 0.025, 0.012,
)


@dataclass(frozen=True)
class XSBenchConfig:
    """Problem definition: ``./XSBench -s small``."""

    n_nuclides: int
    n_gridpoints: int  # per nuclide
    n_lookups: int

    def __post_init__(self) -> None:
        if self.n_nuclides < max(MATERIAL_NUCLIDE_COUNTS):
            raise ValueError(
                f"need at least {max(MATERIAL_NUCLIDE_COUNTS)} nuclides for the "
                "Hoogenboom-Martin fuel composition"
            )
        if self.n_gridpoints < 2:
            raise ValueError("each nuclide grid needs at least 2 points")
        if self.n_lookups < 1:
            raise ValueError("need at least one lookup")

    @property
    def n_union(self) -> int:
        return self.n_nuclides * self.n_gridpoints

    def table_bytes(self, precision: Precision) -> int:
        """Size of the unionized grid + index matrix + nuclide tables."""
        eb = precision.bytes_per_element
        nuclide_tables = self.n_nuclides * self.n_gridpoints * (1 + N_XS) * eb
        union = self.n_union * eb
        index_matrix = self.n_union * self.n_nuclides * 4
        return nuclide_tables + union + index_matrix


def default_config() -> XSBenchConfig:
    """CI-sized run."""
    return XSBenchConfig(n_nuclides=34, n_gridpoints=200, n_lookups=20_000)


def paper_config() -> XSBenchConfig:
    """Paper-sized run (``-s small``: 68 nuclides, 11303 gridpoints,
    whose index matrix gives the 240 MB table the paper cites)."""
    return XSBenchConfig(n_nuclides=68, n_gridpoints=11_303, n_lookups=15_000_000)


@dataclass
class XSBenchData:
    """The generated reactor data set plus the lookup stream."""

    config: XSBenchConfig
    #: Per-nuclide energy grids, (n_nuclides, n_gridpoints), ascending.
    nuclide_energy: np.ndarray
    #: Per-nuclide cross sections, (n_nuclides, n_gridpoints, N_XS).
    nuclide_xs: np.ndarray
    #: Unionized ascending energy grid, (n_union,).
    union_energy: np.ndarray
    #: For each union point, the lower-bound index into every nuclide's
    #: grid, (n_union, n_nuclides), int32.
    union_index: np.ndarray
    #: Materials: padded nuclide-id table and per-nuclide densities.
    material_nuclides: np.ndarray  # (12, max_nuclides) int32, -1 padded
    material_density: np.ndarray  # (12, max_nuclides)
    material_n: np.ndarray  # (12,) int32
    #: The lookup stream.
    lookup_energy: np.ndarray  # (n_lookups,)
    lookup_material: np.ndarray  # (n_lookups,) int32

    def checksum_reference(self) -> float:
        """Oracle checksum via the plain per-nuclide search (no union)."""
        macro = compute_macro_xs_direct(self)
        return float(np.abs(macro).sum())


@memoized_setup
def make_data(config: XSBenchConfig, precision: Precision, seed: int = 23) -> XSBenchData:
    """Generate the synthetic Hoogenboom-Martin-like data set.

    The real XSBench also generates random cross sections; what matters
    to the workload is the *structure* (sorted grids, unionized index,
    material composition, lookup distribution), which is reproduced
    exactly.
    """
    dtype = np.dtype(np.float32 if precision is Precision.SINGLE else np.float64)
    rng = np.random.default_rng(seed)
    nn, ng = config.n_nuclides, config.n_gridpoints

    nuclide_energy = np.sort(rng.random((nn, ng)), axis=1).astype(dtype)
    # Guarantee strictly increasing grids and full [0, 1] coverage.
    nuclide_energy[:, 0] = 0.0
    nuclide_energy[:, -1] = 1.0
    nuclide_xs = rng.random((nn, ng, N_XS)).astype(dtype)

    union_energy = np.sort(nuclide_energy.reshape(-1)).astype(dtype)
    union_index = np.empty((config.n_union, nn), dtype=np.int32)
    for nuclide in range(nn):
        # Lower-bound index of each union energy in this nuclide's grid.
        idx = np.searchsorted(nuclide_energy[nuclide], union_energy, side="right") - 1
        union_index[:, nuclide] = np.clip(idx, 0, ng - 2)

    n_mats = len(MATERIAL_NUCLIDE_COUNTS)
    max_n = max(MATERIAL_NUCLIDE_COUNTS)
    material_nuclides = np.full((n_mats, max_n), -1, dtype=np.int32)
    material_density = np.zeros((n_mats, max_n), dtype=dtype)
    for m, count in enumerate(MATERIAL_NUCLIDE_COUNTS):
        material_nuclides[m, :count] = rng.choice(nn, size=count, replace=False)
        material_density[m, :count] = rng.random(count).astype(dtype) + 0.1

    probabilities = np.array(MATERIAL_PROBABILITIES)
    probabilities = probabilities / probabilities.sum()
    lookup_material = rng.choice(n_mats, size=config.n_lookups, p=probabilities).astype(np.int32)
    lookup_energy = rng.random(config.n_lookups).astype(dtype)

    return XSBenchData(
        config=config,
        nuclide_energy=nuclide_energy,
        nuclide_xs=nuclide_xs,
        union_energy=union_energy,
        union_index=union_index,
        material_nuclides=material_nuclides,
        material_density=material_density,
        material_n=np.array(MATERIAL_NUCLIDE_COUNTS, dtype=np.int32),
        lookup_energy=lookup_energy,
        lookup_material=lookup_material,
    )


@projection_stub(make_data)
def _projection_data(config: XSBenchConfig, precision: Precision, seed: int = 23) -> XSBenchData:
    """Shape-faithful stand-in for schedule capture.

    Every quantity the ports' schedules read is structural — buffer
    sizes from ``.nbytes``, chunk trip counts from ``array_split`` over
    the lookup stream, kernel specs from the config — so zeroed arrays
    with the real shapes/dtypes capture the identical schedule without
    generating (or deep-copying) the 240 MB data set.
    """
    dtype = np.dtype(np.float32 if precision is Precision.SINGLE else np.float64)
    nn, ng = config.n_nuclides, config.n_gridpoints
    n_mats = len(MATERIAL_NUCLIDE_COUNTS)
    max_n = max(MATERIAL_NUCLIDE_COUNTS)
    return XSBenchData(
        config=config,
        nuclide_energy=np.zeros((nn, ng), dtype=dtype),
        nuclide_xs=np.zeros((nn, ng, N_XS), dtype=dtype),
        union_energy=np.zeros(config.n_union, dtype=dtype),
        union_index=np.zeros((config.n_union, nn), dtype=np.int32),
        material_nuclides=np.full((n_mats, max_n), -1, dtype=np.int32),
        material_density=np.zeros((n_mats, max_n), dtype=dtype),
        material_n=np.array(MATERIAL_NUCLIDE_COUNTS, dtype=np.int32),
        lookup_energy=np.zeros(config.n_lookups, dtype=dtype),
        lookup_material=np.zeros(config.n_lookups, dtype=np.int32),
    )


def compute_macro_xs_direct(data: XSBenchData) -> np.ndarray:
    """Oracle: macroscopic XS via direct per-nuclide binary searches.

    Slower than the unionized-grid kernel but independent of it, so it
    validates the union construction.
    """
    config = data.config
    dtype = data.lookup_energy.dtype
    macro = np.zeros((config.n_lookups, N_XS), dtype=dtype)
    for m in range(len(MATERIAL_NUCLIDE_COUNTS)):
        sel = data.lookup_material == m
        if not sel.any():
            continue
        energy = data.lookup_energy[sel]
        acc = np.zeros((len(energy), N_XS), dtype=dtype)
        for slot in range(int(data.material_n[m])):
            nuclide = int(data.material_nuclides[m, slot])
            density = data.material_density[m, slot]
            grid = data.nuclide_energy[nuclide]
            lo = np.clip(np.searchsorted(grid, energy, side="right") - 1, 0, len(grid) - 2)
            e_lo, e_hi = grid[lo], grid[lo + 1]
            frac = (energy - e_lo) / np.maximum(e_hi - e_lo, 1e-30)
            xs_lo = data.nuclide_xs[nuclide, lo]
            xs_hi = data.nuclide_xs[nuclide, lo + 1]
            acc += density * (xs_lo + frac[:, None] * (xs_hi - xs_lo))
        macro[sel] = acc
    return macro
