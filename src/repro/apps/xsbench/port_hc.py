"""XSBench: Heterogeneous Compute port (Section VII).

The table stages once; the lookup chunks are *double-buffered* — the
next chunk's particle stream uploads asynchronously while the current
chunk computes, the Sec. VII overlap feature.
"""

from __future__ import annotations

import numpy as np

from ...models.base import ExecutionContext
from ...models.hc import HCRuntime
from ..base import RunResult, make_result
from .kernels import lookup_kernel_spec, xs_lookup
from .reference import N_XS, XSBenchConfig, make_data

model_name = "Heterogeneous Compute"

N_CHUNKS = 4


def run(ctx: ExecutionContext, config: XSBenchConfig) -> RunResult:
    data = make_data(config, ctx.precision)
    macro = np.zeros((config.n_lookups, N_XS), dtype=ctx.dtype)

    hc = HCRuntime(ctx)
    table = [data.union_energy, data.union_index, data.material_nuclides,
             data.material_density, data.material_n, data.nuclide_energy,
             data.nuclide_xs]
    for array in table:
        hc.async_copy_to_device(array)

    chunks = list(zip(
        np.array_split(data.lookup_energy, N_CHUNKS),
        np.array_split(data.lookup_material, N_CHUNKS),
        np.array_split(macro, N_CHUNKS),
    ))
    # Output chunks are allocation-only; prefetch the first inputs
    # behind the table upload.
    for _, _, out_chunk in chunks:
        hc.device_alloc(out_chunk)
    hc.async_copy_to_device(chunks[0][0])
    hc.async_copy_to_device(chunks[0][1])
    for i, (e_chunk, m_chunk, out_chunk) in enumerate(chunks):
        if i + 1 < len(chunks):
            hc.async_copy_to_device(chunks[i + 1][0])
            hc.async_copy_to_device(chunks[i + 1][1])
        spec = lookup_kernel_spec(config, ctx.precision, n_lookups=len(e_chunk))
        hc.launch(xs_lookup, spec,
                  arrays=[e_chunk, m_chunk, *table, out_chunk])
        hc.copy_to_host(out_chunk)
    return make_result("XSBench", ctx, model_name, hc.finish(), np.abs(macro).sum())
