"""XSBench neutron cross-section lookup proxy application (Sec. IV-C).

Unionized-energy-grid macroscopic XS lookups over the Hoogenboom-Martin
composition.  One kernel; compute/latency-bound with appalling data
locality (53% LLC miss rate, IPC 0.14 in Table I); the 240 MB lookup
table makes data transfers a first-order cost on the discrete GPU.
"""

from ..base import ProxyApp
from . import (
    port_cppamp,
    port_hc,
    port_omp_offload,
    port_openacc,
    port_opencl,
    port_openmp,
    port_serial,
)
from .kernels import AVG_NUCLIDES, lookup_kernel_spec, xs_lookup
from .reference import (
    MATERIAL_NUCLIDE_COUNTS,
    MATERIAL_PROBABILITIES,
    N_XS,
    XSBenchConfig,
    XSBenchData,
    compute_macro_xs_direct,
    default_config,
    make_data,
    paper_config,
)

APP = ProxyApp(
    name="XSBench",
    description="unionized-grid neutron cross-section lookups (Sec. IV-C)",
    command_line="./XSBench -s small",
    n_kernels=1,
    boundedness="Compute",
    default_config=default_config,
    paper_config=paper_config,
    ports={
        port_serial.model_name: port_serial.run,
        port_openmp.model_name: port_openmp.run,
        port_opencl.model_name: port_opencl.run,
        port_cppamp.model_name: port_cppamp.run,
        port_openacc.model_name: port_openacc.run,
        port_omp_offload.model_name: port_omp_offload.run,
        port_hc.model_name: port_hc.run,
    },
)

__all__ = [
    "APP",
    "AVG_NUCLIDES",
    "MATERIAL_NUCLIDE_COUNTS",
    "MATERIAL_PROBABILITIES",
    "N_XS",
    "XSBenchConfig",
    "XSBenchData",
    "compute_macro_xs_direct",
    "default_config",
    "lookup_kernel_spec",
    "make_data",
    "paper_config",
    "xs_lookup",
]
