"""XSBench: C++ AMP port.

``array_view`` wrappers over the table; on the APU the HSA stack uses
the host pointers directly — no staging, no ``cl_mem`` mapping toll —
which is why the paper found "C++ AMP resulted in the best performance
on the APU" for this transfer-dominated workload.
"""

from __future__ import annotations

import numpy as np

from ...models import cppamp as amp
from ...models.base import ExecutionContext
from ..base import RunResult, make_result
from .kernels import lookup_kernel_spec, xs_lookup
from .reference import N_XS, XSBenchConfig, make_data

model_name = "C++ AMP"

TILE_SIZE = 256
N_CHUNKS = 4


def run(ctx: ExecutionContext, config: XSBenchConfig) -> RunResult:
    data = make_data(config, ctx.precision)
    macro = np.zeros((config.n_lookups, N_XS), dtype=ctx.dtype)

    rt = amp.AmpRuntime(ctx)
    table_views = [
        amp.array_view(rt, data.union_energy),
        amp.array_view(rt, data.union_index),
        amp.array_view(rt, data.material_nuclides),
        amp.array_view(rt, data.material_density),
        amp.array_view(rt, data.material_n),
        amp.array_view(rt, data.nuclide_energy),
        amp.array_view(rt, data.nuclide_xs),
    ]

    energy_chunks = np.array_split(data.lookup_energy, N_CHUNKS)
    material_chunks = np.array_split(data.lookup_material, N_CHUNKS)
    macro_chunks = np.array_split(macro, N_CHUNKS)
    for e_chunk, m_chunk, out_chunk in zip(energy_chunks, material_chunks, macro_chunks):
        e_view = amp.array_view(rt, e_chunk)
        m_view = amp.array_view(rt, m_chunk)
        out_view = amp.array_view(rt, out_chunk)
        out_view.discard_data()
        spec = lookup_kernel_spec(config, ctx.precision, n_lookups=len(e_chunk))
        rt.parallel_for_each(
            amp.extent(len(e_chunk)),
            xs_lookup,
            spec,
            views=[e_view, m_view, *table_views, out_view],
            writes=[out_view],
        )
        out_view.synchronize()
    return make_result("XSBench", ctx, model_name, rt.simulated_seconds, np.abs(macro).sum())
