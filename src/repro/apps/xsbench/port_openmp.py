"""XSBench: OpenMP CPU port (the Figures 8d/9d baseline).

A single ``#pragma omp parallel for`` over the lookup loop — Table
IV's 13 changed lines.
"""

from __future__ import annotations

import numpy as np

from ...models.base import ExecutionContext
from ...models.openmp import OpenMP
from ..base import RunResult, make_result
from .kernels import lookup_kernel_spec, xs_lookup
from .reference import N_XS, XSBenchConfig, make_data

model_name = "OpenMP"


def run(ctx: ExecutionContext, config: XSBenchConfig) -> RunResult:
    data = make_data(config, ctx.precision)
    macro = np.zeros((config.n_lookups, N_XS), dtype=ctx.dtype)

    omp = OpenMP(ctx, num_threads=4)
    # #pragma omp parallel for schedule(dynamic)
    omp.parallel_for(
        xs_lookup,
        lookup_kernel_spec(config, ctx.precision),
        arrays=[data.lookup_energy, data.lookup_material, data.union_energy,
                data.union_index, data.material_nuclides, data.material_density,
                data.material_n, data.nuclide_energy, data.nuclide_xs, macro],
    )
    return make_result("XSBench", ctx, model_name, omp.simulated_seconds, np.abs(macro).sum())
