"""CoMD: OpenACC port.

``kernels loop`` directives over the three loops, with a ``data``
region per rebin epoch.  PGI cannot map the cell-pair parallelism onto
the vector units (no LDS, no workgroup barrier), which is why the
paper found "OpenACC demonstrated the worst performance on both
architectures because of the compiler's inability to expose
vector-parallelism in the accelerator code".
"""

from __future__ import annotations

from ...models.base import ExecutionContext
from ...models.openacc import OpenACC
from ..base import RunResult, make_result
from .driver import epochs
from .kernels import advance_position, advance_velocity, kernel_specs, lj_force
from .reference import LJ_CUTOFF, CoMDConfig, bin_atoms, make_state

model_name = "OpenACC"

VECTOR_LENGTH = 128


def run(ctx: ExecutionContext, config: CoMDConfig) -> RunResult:
    state = make_state(config, ctx.precision)
    specs = kernel_specs(config, ctx.precision)
    dt = config.dt
    box = config.box  # bind once: the data region tracks identity
    acc = OpenACC(ctx)
    n = config.n_atoms
    gangs = -(-n // VECTOR_LENGTH)

    def launch_force() -> None:
        # #pragma acc kernels loop gang vector(VECTOR_LENGTH) independent
        acc.kernels_loop(
            lj_force,
            specs["comd.lj_force"],
            arrays=[state.positions, state.forces, state.pe_per_atom,
                    state.cell_atoms, state.cell_count, state.neighbor_cells,
                    box],
            scalars=[LJ_CUTOFF],
            writes=[state.forces, state.pe_per_atom],
            gang=gangs, vector=VECTOR_LENGTH,
        )

    first = True
    chunks = list(epochs(config.steps))
    for i, chunk in enumerate(chunks):
        # #pragma acc data copy(pos, vel, force, pe) copyin(cells, counts, neigh, box)
        with acc.data(
            copy=[state.positions, state.velocities, state.forces, state.pe_per_atom],
            copyin=[state.cell_atoms, state.cell_count, state.neighbor_cells, box],
        ):
            if first:
                launch_force()
                first = False
            for _ in range(chunk):
                acc.kernels_loop(
                    advance_velocity, specs["comd.advance_velocity"],
                    arrays=[state.velocities, state.forces], scalars=[0.5 * dt],
                    writes=[state.velocities], gang=gangs, vector=VECTOR_LENGTH,
                )
                acc.kernels_loop(
                    advance_position, specs["comd.advance_position"],
                    arrays=[state.positions, state.velocities, box], scalars=[dt],
                    writes=[state.positions], gang=gangs, vector=VECTOR_LENGTH,
                )
                launch_force()
                acc.kernels_loop(
                    advance_velocity, specs["comd.advance_velocity"],
                    arrays=[state.velocities, state.forces], scalars=[0.5 * dt],
                    writes=[state.velocities], gang=gangs, vector=VECTOR_LENGTH,
                )
        if i + 1 < len(chunks):
            bin_atoms(state)
    return make_result("CoMD", ctx, model_name, acc.simulated_seconds, state.checksum())
