"""CoMD: serial CPU port."""

from __future__ import annotations

from ...models.base import ExecutionContext
from ...models.serial import SerialCPU
from ..base import RunResult, make_result
from .driver import epochs
from .kernels import advance_position, advance_velocity, kernel_specs, lj_force
from .reference import LJ_CUTOFF, CoMDConfig, bin_atoms, make_state

model_name = "Serial"


def run(ctx: ExecutionContext, config: CoMDConfig) -> RunResult:
    state = make_state(config, ctx.precision)
    specs = kernel_specs(config, ctx.precision)
    dt = config.dt
    cpu = SerialCPU(ctx)

    def force() -> None:
        cpu.run_loop(
            lj_force,
            specs["comd.lj_force"],
            arrays=[state.positions, state.forces, state.pe_per_atom,
                    state.cell_atoms, state.cell_count, state.neighbor_cells,
                    config.box],
            scalars=[LJ_CUTOFF],
        )

    force()
    chunks = list(epochs(config.steps))
    for i, chunk in enumerate(chunks):
        for _ in range(chunk):
            cpu.run_loop(advance_velocity, specs["comd.advance_velocity"],
                         arrays=[state.velocities, state.forces], scalars=[0.5 * dt])
            cpu.run_loop(advance_position, specs["comd.advance_position"],
                         arrays=[state.positions, state.velocities, config.box], scalars=[dt])
            force()
            cpu.run_loop(advance_velocity, specs["comd.advance_velocity"],
                         arrays=[state.velocities, state.forces], scalars=[0.5 * dt])
        if i + 1 < len(chunks):
            bin_atoms(state)
    return make_result("CoMD", ctx, model_name, cpu.simulated_seconds, state.checksum())
