"""CoMD: OpenMP CPU port (the Figures 8c/9c baseline).

A ``#pragma omp parallel for`` on each of the three loops — Table IV's
23 changed lines.
"""

from __future__ import annotations

from ...models.base import ExecutionContext
from ...models.openmp import OpenMP
from ..base import RunResult, make_result
from .driver import epochs
from .kernels import advance_position, advance_velocity, kernel_specs, lj_force
from .reference import LJ_CUTOFF, CoMDConfig, bin_atoms, make_state

model_name = "OpenMP"


def run(ctx: ExecutionContext, config: CoMDConfig) -> RunResult:
    state = make_state(config, ctx.precision)
    specs = kernel_specs(config, ctx.precision)
    dt = config.dt
    omp = OpenMP(ctx, num_threads=4)

    def force() -> None:
        # #pragma omp parallel for schedule(dynamic)
        omp.parallel_for(
            lj_force,
            specs["comd.lj_force"],
            arrays=[state.positions, state.forces, state.pe_per_atom,
                    state.cell_atoms, state.cell_count, state.neighbor_cells,
                    config.box],
            scalars=[LJ_CUTOFF],
        )

    force()
    chunks = list(epochs(config.steps))
    for i, chunk in enumerate(chunks):
        for _ in range(chunk):
            # #pragma omp parallel for
            omp.parallel_for(advance_velocity, specs["comd.advance_velocity"],
                             arrays=[state.velocities, state.forces], scalars=[0.5 * dt])
            # #pragma omp parallel for
            omp.parallel_for(advance_position, specs["comd.advance_position"],
                             arrays=[state.positions, state.velocities, config.box], scalars=[dt])
            force()
            # #pragma omp parallel for
            omp.parallel_for(advance_velocity, specs["comd.advance_velocity"],
                             arrays=[state.velocities, state.forces], scalars=[0.5 * dt])
        if i + 1 < len(chunks):
            bin_atoms(state)
    return make_result("CoMD", ctx, model_name, omp.simulated_seconds, state.checksum())
