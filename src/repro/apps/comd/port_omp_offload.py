"""CoMD: OpenMP target-offload port.

``target teams distribute parallel for`` over the three loops, with a
``target data`` region per rebin epoch.  Like OpenACC, the directive
level exposes no LDS and no workgroup barrier, so the cell-pair force
loop cannot be tiled — the compilers fall back to scattered per-lane
work on this, their worst kernel.
"""

from __future__ import annotations

from ...models.base import ExecutionContext
from ...models.omp_offload import OpenMPOffload
from ..base import RunResult, make_result
from .driver import epochs
from .kernels import advance_position, advance_velocity, kernel_specs, lj_force
from .reference import LJ_CUTOFF, CoMDConfig, bin_atoms, make_state

model_name = "OpenMP Offload"

THREAD_LIMIT = 128


def run(ctx: ExecutionContext, config: CoMDConfig) -> RunResult:
    state = make_state(config, ctx.precision)
    specs = kernel_specs(config, ctx.precision)
    dt = config.dt
    box = config.box  # bind once: the data environment tracks identity
    omp = OpenMPOffload(ctx)
    n = config.n_atoms
    teams = -(-n // THREAD_LIMIT)

    def launch_force() -> None:
        # #pragma omp target teams distribute parallel for thread_limit(...)
        omp.target_teams_loop(
            lj_force,
            specs["comd.lj_force"],
            arrays=[state.positions, state.forces, state.pe_per_atom,
                    state.cell_atoms, state.cell_count, state.neighbor_cells,
                    box],
            scalars=[LJ_CUTOFF],
            writes=[state.forces, state.pe_per_atom],
            num_teams=teams, thread_limit=THREAD_LIMIT,
        )

    first = True
    chunks = list(epochs(config.steps))
    for i, chunk in enumerate(chunks):
        # #pragma omp target data map(tofrom: pos, vel, force, pe) \
        #     map(to: cells, counts, neigh, box)
        with omp.target_data(
            tofrom=[state.positions, state.velocities, state.forces, state.pe_per_atom],
            to=[state.cell_atoms, state.cell_count, state.neighbor_cells, box],
        ):
            if first:
                launch_force()
                first = False
            for _ in range(chunk):
                omp.target_teams_loop(
                    advance_velocity, specs["comd.advance_velocity"],
                    arrays=[state.velocities, state.forces], scalars=[0.5 * dt],
                    writes=[state.velocities], num_teams=teams, thread_limit=THREAD_LIMIT,
                )
                omp.target_teams_loop(
                    advance_position, specs["comd.advance_position"],
                    arrays=[state.positions, state.velocities, box], scalars=[dt],
                    writes=[state.positions], num_teams=teams, thread_limit=THREAD_LIMIT,
                )
                launch_force()
                omp.target_teams_loop(
                    advance_velocity, specs["comd.advance_velocity"],
                    arrays=[state.velocities, state.forces], scalars=[0.5 * dt],
                    writes=[state.velocities], num_teams=teams, thread_limit=THREAD_LIMIT,
                )
        if i + 1 < len(chunks):
            bin_atoms(state)
    return make_result("CoMD", ctx, model_name, omp.simulated_seconds, state.checksum())
