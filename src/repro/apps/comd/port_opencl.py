"""CoMD: OpenCL port.

Explicit host code: buffers for atoms, cells and tables are staged
once per epoch, kernels run back-to-back on the device, and only the
positions needed for the host-side re-binning (plus the final state)
cross the bus.  The force kernel is the hand-tuned, LDS-tiled variant
(one workgroup per pair of link cells, neighbour positions staged in
local memory).
"""

from __future__ import annotations

from ...models import opencl as cl
from ...models.base import ExecutionContext
from ..base import RunResult, make_result
from .driver import epochs
from .kernels import advance_position, advance_velocity, kernel_specs, lj_force
from .reference import LJ_CUTOFF, CoMDConfig, bin_atoms, make_state

model_name = "OpenCL"

WORKGROUP_SIZE = 64


def run(ctx: ExecutionContext, config: CoMDConfig) -> RunResult:
    state = make_state(config, ctx.precision)
    specs = kernel_specs(config, ctx.precision)
    dt = config.dt

    # InitCl(): platform, device, context, queue, program.
    platform = cl.get_platforms(ctx)[0]
    device = next(d for d in platform.get_devices() if d.is_gpu)
    context = cl.Context(ctx, [device])
    queue = cl.CommandQueue(context, device)
    program = cl.Program(context).build()

    # CreateClBuffer() + CopyClDataToGPU() for the atom state.
    pos_cl = cl.Buffer(context, cl.MemFlags.READ_WRITE, size=state.positions.nbytes)
    vel_cl = cl.Buffer(context, cl.MemFlags.READ_WRITE, size=state.velocities.nbytes)
    force_cl = cl.Buffer(context, cl.MemFlags.READ_WRITE, size=state.forces.nbytes)
    pe_cl = cl.Buffer(context, cl.MemFlags.READ_WRITE, size=state.pe_per_atom.nbytes)
    box_cl = cl.Buffer(context, cl.MemFlags.READ_ONLY | cl.MemFlags.COPY_HOST_PTR, hostbuf=config.box)
    neigh_cl = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=state.neighbor_cells.nbytes)
    queue.enqueue_write_buffer(pos_cl, state.positions)
    queue.enqueue_write_buffer(vel_cl, state.velocities)
    queue.enqueue_write_buffer(force_cl, state.forces)
    queue.enqueue_write_buffer(pe_cl, state.pe_per_atom)
    queue.enqueue_write_buffer(neigh_cl, state.neighbor_cells)

    force_kernel = program.create_kernel("comd_lj_force", lj_force, specs["comd.lj_force"])
    velocity_kernel = program.create_kernel(
        "comd_advance_velocity", advance_velocity, specs["comd.advance_velocity"]
    )
    position_kernel = program.create_kernel(
        "comd_advance_position", advance_position, specs["comd.advance_position"]
    )

    n = config.n_atoms
    global_atoms = -(-n // WORKGROUP_SIZE) * WORKGROUP_SIZE

    def stage_cells() -> tuple[cl.Buffer, cl.Buffer]:
        cells_cl = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=state.cell_atoms.nbytes)
        counts_cl = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=state.cell_count.nbytes)
        queue.enqueue_write_buffer(cells_cl, state.cell_atoms)
        queue.enqueue_write_buffer(counts_cl, state.cell_count)
        return cells_cl, counts_cl

    cells_cl, counts_cl = stage_cells()

    def launch_force() -> None:
        force_kernel.set_args(pos_cl, force_cl, pe_cl, cells_cl, counts_cl, neigh_cl, box_cl, LJ_CUTOFF)
        queue.enqueue_nd_range_kernel(force_kernel, global_atoms, WORKGROUP_SIZE)

    launch_force()
    chunks = list(epochs(config.steps))
    for i, chunk in enumerate(chunks):
        for _ in range(chunk):
            velocity_kernel.set_args(vel_cl, force_cl, 0.5 * dt)
            queue.enqueue_nd_range_kernel(velocity_kernel, global_atoms, WORKGROUP_SIZE)
            position_kernel.set_args(pos_cl, vel_cl, box_cl, dt)
            queue.enqueue_nd_range_kernel(position_kernel, global_atoms, WORKGROUP_SIZE)
            launch_force()
            velocity_kernel.set_args(vel_cl, force_cl, 0.5 * dt)
            queue.enqueue_nd_range_kernel(velocity_kernel, global_atoms, WORKGROUP_SIZE)
        if i + 1 < len(chunks):
            # Host rebuilds the link cells: fetch positions, re-stage tables.
            queue.enqueue_read_buffer(pos_cl, state.positions)
            bin_atoms(state)
            cells_cl, counts_cl = stage_cells()

    # CopyClDataToHost(): final state for the energy checksum.
    queue.enqueue_read_buffer(pos_cl, state.positions)
    queue.enqueue_read_buffer(vel_cl, state.velocities)
    queue.enqueue_read_buffer(force_cl, state.forces)
    queue.enqueue_read_buffer(pe_cl, state.pe_per_atom)
    seconds = queue.finish()
    return make_result("CoMD", ctx, model_name, seconds, state.checksum())
